//! Minimal, deterministic stand-in for the `criterion` crate.
//!
//! Implements the subset the `tracered` workspace uses:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`bench_function`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! wall-clock loop (no outlier analysis or plots); results print as
//! `name … mean <time>/iter over <n> iters`.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Maximum wall-clock budget per benchmark function.
const TIME_BUDGET: Duration = Duration::from_millis(500);

/// Benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

/// Measures one closure; created by [`Criterion::bench_function`].
#[derive(Debug)]
pub struct Bencher {
    min_iters: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` repeatedly until the time budget or iteration floor is
    /// met.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up call outside the measurement.
        std::hint::black_box(f());
        let start = Instant::now();
        let mut n = 0u64;
        loop {
            std::hint::black_box(f());
            n += 1;
            let elapsed = start.elapsed();
            if (elapsed >= TIME_BUDGET && n >= self.min_iters) || n >= 100_000 {
                self.elapsed = elapsed;
                self.iters = n;
                return;
            }
        }
    }
}

fn run_one(name: &str, min_iters: u64, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher { min_iters, elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    if b.iters == 0 {
        println!("{name:<44} (no measurement — Bencher::iter never called)");
    } else {
        let per = b.elapsed.as_secs_f64() / b.iters as f64;
        println!("{name:<44} mean {:.6} s/iter over {} iters", per, b.iters);
    }
}

impl Criterion {
    /// Runs and reports one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, 2, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { _c: self, min_iters: 2 }
    }
}

/// A group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    min_iters: u64,
}

impl BenchmarkGroup<'_> {
    /// Lower bound on measured iterations (approximates criterion's
    /// sample count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.min_iters = (n as u64).max(1);
        self
    }

    /// Runs and reports one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(&format!("  {name}"), self.min_iters, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function running each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function("x", |b| b.iter(|| 1 + 1));
        group.finish();
    }
}
