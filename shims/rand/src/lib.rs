//! Minimal, deterministic stand-in for the `rand` crate.
//!
//! Implements exactly the API subset the `tracered` workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! methods `random::<bool>()`, `random::<f64>()` and
//! `random_range(lo..hi)`. The generator is xoshiro256++ seeded through
//! SplitMix64 — a different stream than crates.io `rand`'s `StdRng`,
//! which is fine because the workspace only relies on determinism given
//! a seed, never on a specific stream.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Random number generators.
pub mod rngs {
    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

pub use rngs::StdRng;

/// Seeding support (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        StdRng {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }
}

/// Core generator interface (subset of `rand::RngCore`).
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++ by Blackman & Vigna (public domain reference).
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly from all bit patterns (subset of the
/// `StandardUniform` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable uniformly from a half-open range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws one value from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range in random_range");
        let u = f64::sample(rng);
        range.start + u * (range.end - range.start)
    }
}

/// User-facing sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    #[inline]
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.random_range(-2.0f64..5.0);
            assert!((-2.0..5.0).contains(&f));
            let i = rng.random_range(1i32..4);
            assert!((1..4).contains(&i));
        }
    }

    #[test]
    fn bool_takes_both_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<bool> = (0..100).map(|_| rng.random::<bool>()).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
