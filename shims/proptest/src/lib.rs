//! Minimal, deterministic stand-in for the `proptest` crate.
//!
//! Implements the subset the `tracered` workspace uses: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`prop_flat_map`,
//! range and tuple strategies, [`collection::vec`],
//! [`ProptestConfig::with_cases`], and the
//! [`prop_assert!`]/[`prop_assert_eq!`] macros.
//!
//! Differences from real proptest: cases are pure random sampling from
//! a deterministic per-test stream (seeded from the test's module path
//! and name) and failing inputs are **not shrunk** — the failing case
//! index is reported instead so the run can be reproduced.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Deterministic generator backing each test case (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed ^ 0x51a5_17c8_f226_1b6d }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        self.next_u64() % n
    }
}

/// Deterministic seed derived from a test's fully qualified name.
pub fn test_seed(name: &str) -> u64 {
    // FNV-1a; stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Run-configuration knob (subset of proptest's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values (subset of proptest's `Strategy`).
pub trait Strategy {
    /// The type of value generated.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use core::ops::Range;

    /// Accepted sizes for [`vec()`]: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi: r.end.max(r.start + 1) }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a fixed or ranged length.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo).max(1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a proptest file typically imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a proptest case, reporting the failing
/// expression (and optional formatted message) without panicking the
/// generator loop directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l,
                        r
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err(::std::format!($($fmt)+));
                }
            }
        }
    };
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                if *l == *r {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        l
                    ));
                }
            }
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over random strategy draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let seed = $crate::test_seed(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::from_seed(
                    seed ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
                );
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(n in 3usize..14, x in -1.5f64..2.5) {
            prop_assert!((3..14).contains(&n));
            prop_assert!((-1.5..2.5).contains(&x));
        }

        #[test]
        fn maps_and_vecs_compose(v in (1usize..5).prop_flat_map(|n| collection::vec(0.0f64..1.0, n))) {
            prop_assert!(!v.is_empty() && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn tuples_generate_componentwise((a, b) in (0u32..4, 10u64..20)) {
            prop_assert!(a < 4);
            prop_assert_eq!(b / 10, 1);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(crate::test_seed("x"), crate::test_seed("x"));
        assert_ne!(crate::test_seed("x"), crate::test_seed("y"));
        let mut a = crate::TestRng::from_seed(1);
        let mut b = crate::TestRng::from_seed(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
