//! End-to-end spectral-partitioning test mirroring the paper's Table 3
//! methodology at test scale.

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_partition::{bisect_direct, bisect_pcg, partition_shift, relative_error};
use tracered_solver::precond::CholPreconditioner;

#[test]
fn all_methods_reproduce_the_direct_partition() {
    let g = tri_mesh(24, 15, WeightProfile::Unit, 13);
    let direct = bisect_direct(&g, 5, 99).unwrap();
    let s = partition_shift(&g);
    for method in [Method::TraceReduction, Method::Grass, Method::EffectiveResistance] {
        let sp = sparsify(&g, &SparsifyConfig::new(method).shift(ShiftPolicy::Uniform(s))).unwrap();
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        let bis = bisect_pcg(&g, &pre, 5, 99, 1e-3).unwrap();
        let err = relative_error(&direct.side, &bis.side);
        assert!(err < 0.05, "{method:?}: RelErr {err} (paper reports ~1e-3)");
        assert!(bis.inner_iterations > 0);
    }
}

#[test]
fn rectangular_grid_cut_is_near_optimal() {
    // For an r×c grid with r > c the optimal bisection cuts c edges.
    let g = grid2d(30, 10, WeightProfile::Unit, 3);
    let b = bisect_direct(&g, 8, 5).unwrap();
    assert!(b.cut_weight <= 14.0, "cut {} too heavy for a 30x10 grid", b.cut_weight);
    assert!((b.balance - 0.5).abs() < 0.01);
}

#[test]
fn proposed_needs_no_more_inner_iterations_than_grass() {
    let g = tri_mesh(22, 22, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 21);
    let s = partition_shift(&g);
    let inner = |method: Method| -> usize {
        let sp = sparsify(&g, &SparsifyConfig::new(method).shift(ShiftPolicy::Uniform(s))).unwrap();
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        bisect_pcg(&g, &pre, 5, 7, 1e-3).unwrap().inner_iterations
    };
    let tr = inner(Method::TraceReduction);
    let gr = inner(Method::Grass);
    assert!(tr as f64 <= gr as f64 * 1.3 + 5.0, "proposed {tr} inner iterations vs GRASS {gr}");
}
