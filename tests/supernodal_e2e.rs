//! End-to-end sweep of the `kernel` knob: the supernodal blocked
//! Cholesky must be a drop-in numeric replacement for the scalar
//! up-looking kernel. Within a variant results are bit-identical at
//! every `factor_threads` count; across variants the blocked panel
//! updates reassociate sums, so pipelines agree only to rounding — the
//! documented cross-variant tolerance on solution vectors is `1e-5`
//! relative (each run converges PCG to `1e-6`, so the two answers sit
//! within a small multiple of the solve tolerance of each other).

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_direct, TransientConfig};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_solver::robust::{robust_solve, RobustSolveConfig, SolveStrategy};
use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, KernelVariant};

/// Documented cross-variant tolerance: relative `∞`-norm gap between
/// solution vectors produced under the two kernels.
const CROSS_KERNEL_TOL: f64 = 1e-5;

#[test]
fn sparsify_then_pcg_supernodal_matches_scalar() {
    let g = tri_mesh(16, 14, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 9);
    let n = g.num_nodes();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();

    let mut solutions = Vec::new();
    for kernel in [KernelVariant::Scalar, KernelVariant::Supernodal] {
        let cfg = SparsifyConfig::new(Method::TraceReduction).kernel(kernel);
        let sp = sparsify(&g, &cfg).unwrap();
        let lg = sp.graph_laplacian(&g);
        let ls = sp.laplacian(&g);
        // Route the preconditioner factorization itself through the
        // kernel under test.
        let f = CholeskyFactor::factorize_kernel(&ls, Ordering::MinDegree, kernel, 1).unwrap();
        let pre = CholPreconditioner::from_factor(f);
        let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
        assert!(sol.converged, "{kernel:?} pipeline must converge");
        solutions.push(sol.x);
    }
    let scale = solutions[0].iter().fold(0.0f64, |m, v| m.max(v.abs())).max(1.0);
    for (s, v) in solutions[0].iter().zip(solutions[1].iter()) {
        assert!(
            (s - v).abs() <= CROSS_KERNEL_TOL * scale,
            "kernels disagree beyond the documented tolerance: {s} vs {v}"
        );
    }
}

#[test]
fn supernodal_transient_waveforms_bit_identical_across_factor_threads() {
    let pg = synthesize(&SynthConfig { mesh: 9, source_fraction: 0.2, ..Default::default() });
    let (near, far) = probe_pair(&pg);
    let base_cfg = TransientConfig {
        t_end: 5e-10,
        fixed_step: Some(2.5e-11),
        kernel: KernelVariant::Supernodal,
        ..Default::default()
    };
    let baseline = simulate_direct(&pg, &base_cfg, &[near, far]).unwrap();
    for threads in [2usize, 4] {
        let cfg = TransientConfig { factor_threads: threads, ..base_cfg };
        let run = simulate_direct(&pg, &cfg, &[near, far]).unwrap();
        assert_eq!(run.times, baseline.times);
        for (a, b) in run.probes.iter().flatten().zip(baseline.probes.iter().flatten()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "supernodal waveform changed at {threads} threads"
            );
        }
    }
}

#[test]
fn robust_escalation_honors_configured_ordering_and_kernel() {
    // A Jacobi-grade preconditioner and a 1-iteration cap force the chain
    // all the way to the direct stage, which must factor with the
    // caller's ordering and kernel (it used to hardcode min-degree).
    let g = tri_mesh(12, 12, WeightProfile::Unit, 3);
    let n = g.num_nodes();
    let a = tracered_graph::laplacian::laplacian_with_shifts(&g, &vec![0.05; 144]);
    let m = {
        let mut coo = tracered_sparse::CooMatrix::new(n, n);
        for (i, &d) in a.diagonal().iter().enumerate() {
            coo.push(i, i, d).unwrap();
        }
        coo.to_csc()
    };
    let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
    let cfg = RobustSolveConfig {
        pcg: PcgOptions { rel_tolerance: 1e-10, max_iterations: 1, ..Default::default() },
        ordering: Ordering::NestedDissection,
        kernel: KernelVariant::Supernodal,
        ..Default::default()
    };
    let sol = robust_solve(&a, &b, &m, &cfg).unwrap();
    assert!(sol.converged());
    assert_eq!(sol.strategy, SolveStrategy::Direct);
    assert!(a.residual_inf_norm(&sol.x, &b) < 1e-6);
}
