//! End-to-end power-grid test mirroring the paper's Table 2 / Fig. 1
//! methodology at test scale: direct fixed-step vs sparsifier-PCG
//! variable-step transient simulation, with accuracy, step-count and
//! memory assertions.

use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_direct, simulate_pcg, TransientConfig};
use tracered_powergrid::PowerGrid;
use tracered_solver::precond::{CholPreconditioner, Preconditioner};

fn grid() -> PowerGrid {
    synthesize(&SynthConfig { mesh: 16, source_fraction: 0.15, seed: 77, ..Default::default() })
}

fn sparsifier_preconditioner(pg: &PowerGrid, method: Method) -> CholPreconditioner {
    let cfg =
        SparsifyConfig::new(method).shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = tracered_core::sparsify(pg.graph(), &cfg).unwrap();
    CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).unwrap()
}

#[test]
fn direct_and_sparsifier_pcg_agree_within_16mv() {
    let pg = grid();
    let (near, far) = probe_pair(&pg);
    let probes = vec![near, far];
    let direct = simulate_direct(
        &pg,
        &TransientConfig { t_end: 2e-9, fixed_step: Some(1e-11), ..Default::default() },
        &probes,
    )
    .unwrap();
    let pre = sparsifier_preconditioner(&pg, Method::TraceReduction);
    let iter =
        simulate_pcg(&pg, &TransientConfig { t_end: 2e-9, ..Default::default() }, &pre, &probes)
            .unwrap();
    for idx in 0..probes.len() {
        let d = direct.max_probe_difference(&iter, idx, 400);
        assert!(d < 0.016, "probe {idx}: deviation {d} V exceeds the paper's 16 mV");
    }
}

#[test]
fn variable_stepping_takes_far_fewer_steps_than_breakpoint_limited_direct() {
    let pg = grid();
    let (near, _) = probe_pair(&pg);
    let direct = simulate_direct(
        &pg,
        &TransientConfig { t_end: 2e-9, fixed_step: Some(1e-11), ..Default::default() },
        &[near],
    )
    .unwrap();
    let pre = sparsifier_preconditioner(&pg, Method::TraceReduction);
    let iter =
        simulate_pcg(&pg, &TransientConfig { t_end: 2e-9, ..Default::default() }, &pre, &[near])
            .unwrap();
    assert!(
        iter.stats.steps * 3 < direct.stats.steps,
        "variable steps {} should be far fewer than fixed steps {}",
        iter.stats.steps,
        direct.stats.steps
    );
}

#[test]
fn sparsifier_memory_is_smaller_than_direct_factor() {
    // The paper's ~4× memory advantage for the iterative solver.
    let pg = grid();
    let direct = simulate_direct(
        &pg,
        &TransientConfig { t_end: 5e-10, fixed_step: Some(1e-11), ..Default::default() },
        &[0],
    )
    .unwrap();
    let pre = sparsifier_preconditioner(&pg, Method::TraceReduction);
    assert!(
        pre.memory_bytes() < direct.stats.memory_bytes,
        "sparsifier factor {} must be below direct factor {}",
        pre.memory_bytes(),
        direct.stats.memory_bytes
    );
}

#[test]
fn proposed_preconditioner_needs_no_more_iterations_than_grass() {
    let pg = grid();
    let (near, _) = probe_pair(&pg);
    let cfg = TransientConfig { t_end: 2e-9, ..Default::default() };
    let grass =
        simulate_pcg(&pg, &cfg, &sparsifier_preconditioner(&pg, Method::Grass), &[near]).unwrap();
    let proposed =
        simulate_pcg(&pg, &cfg, &sparsifier_preconditioner(&pg, Method::TraceReduction), &[near])
            .unwrap();
    // Shape check with small-scale slack.
    assert!(
        proposed.stats.avg_pcg_iterations <= grass.stats.avg_pcg_iterations * 1.3 + 2.0,
        "proposed N_e {} vs GRASS N_e {}",
        proposed.stats.avg_pcg_iterations,
        grass.stats.avg_pcg_iterations
    );
}

#[test]
fn dc_operating_point_has_droop_below_vdd() {
    let pg = grid();
    let v = tracered_powergrid::transient::dc_operating_point(&pg).unwrap();
    let vdd = pg.vdd();
    assert!(v.iter().all(|&x| x > 0.0 && x <= vdd + 1e-9));
    // Some node must droop (sources draw current at t = 0+ on average,
    // but DC uses t = 0 draw; pads keep everything near VDD).
    let vmin = v.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(vmin > 0.9 * vdd, "DC droop {vmin} too deep for a padded grid");
}

#[test]
fn batch_transient_matches_solo_runs_and_amortizes() {
    // End-to-end batched multi-RHS flow: sparsify once, precondition
    // once, advance an 8-scenario ensemble through blocked PCG, and
    // check every scenario against an isolated run.
    use tracered_powergrid::transient::{simulate_pcg_batch, SourceScenario};

    let pg = grid();
    let (near, far) = probe_pair(&pg);
    let probes = vec![near, far];
    let cfg = TransientConfig { t_end: 1e-9, ..Default::default() };
    let pre = sparsifier_preconditioner(&pg, Method::TraceReduction);
    let m = pg.sources().len();
    let scenarios: Vec<SourceScenario> = (0..8)
        .map(|i| {
            if i == 0 {
                SourceScenario::nominal()
            } else {
                SourceScenario::per_source(
                    (0..m).map(|j| 0.2 + ((i * 5 + j) % 8) as f64 * 0.2).collect(),
                )
            }
        })
        .collect();
    let batch = simulate_pcg_batch(&pg, &cfg, &pre, &probes, &scenarios).unwrap();
    assert_eq!(batch.len(), scenarios.len());
    // Nominal column equals the public single-RHS API.
    let solo = simulate_pcg(&pg, &cfg, &pre, &probes).unwrap();
    for idx in 0..probes.len() {
        let d = solo.max_probe_difference(&batch[0], idx, 300);
        assert!(d < 1e-12, "nominal batch column diverged by {d} V");
    }
    // Every scaled scenario equals its isolated batch-of-1 run.
    for (s, sc) in scenarios.iter().enumerate().skip(1) {
        let single = simulate_pcg_batch(&pg, &cfg, &pre, &probes, std::slice::from_ref(sc))
            .unwrap()
            .pop()
            .unwrap();
        for idx in 0..probes.len() {
            let d = single.max_probe_difference(&batch[s], idx, 300);
            assert!(d < 1e-12, "scenario {s} diverged by {d} V");
        }
        assert_eq!(single.stats.total_pcg_iterations, batch[s].stats.total_pcg_iterations);
    }
    // Heavier corners droop more: a scenario with all scales >= nominal's
    // ceiling would, but here we just sanity-check traces stay physical.
    for r in &batch {
        for trace in &r.probes {
            assert!(trace.iter().all(|&v| v > 0.0 && v <= pg.vdd() * 1.001));
        }
    }
}
