//! End-to-end sweep of the `factor_threads` knob: the parallel numeric
//! Cholesky must be invisible everywhere except `factor_time` — same
//! sparsifier edge sets, same PCG iteration counts and residual
//! histories, same stitched partitioned results, same transient
//! waveforms, at every thread count.

use tracered_core::{sparsify, sparsify_partitioned, Method, PartitionedConfig, SparsifyConfig};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_direct, TransientConfig};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_sparse::CscMatrix;

const SWEEP: [usize; 3] = [1, 2, 4];

/// Per-iteration relative residuals of a PCG run: solve with the
/// iteration cap stepped from 1 to `len`, recording the final relative
/// residual each time. Equal histories mean the whole convergence
/// trajectory — not just the end state — is unchanged.
fn residual_history(a: &CscMatrix, b: &[f64], pre: &CholPreconditioner, len: usize) -> Vec<u64> {
    (1..=len)
        .map(|cap| {
            let opts = PcgOptions { rel_tolerance: 1e-30, max_iterations: cap, threads: 1 };
            pcg(a, b, pre, &opts).rel_residual.to_bits()
        })
        .collect()
}

#[test]
fn sparsify_then_pcg_is_invariant_under_factor_threads() {
    let g = tri_mesh(16, 14, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 9);
    let n = g.num_nodes();
    let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 11) as f64) - 5.0).collect();

    let mut baseline: Option<(Vec<usize>, usize, Vec<u64>)> = None;
    for threads in SWEEP {
        let cfg = SparsifyConfig::new(Method::TraceReduction).factor_threads(Some(threads));
        let sp = sparsify(&g, &cfg).unwrap();
        // The knob is recorded in every iteration's stats.
        assert!(sp.report().iterations.iter().all(|it| it.factor_threads == threads));

        let lg = sp.graph_laplacian(&g);
        let pre = CholPreconditioner::from_matrix_threads(&sp.laplacian(&g), threads).unwrap();
        let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
        assert!(sol.converged);
        let history = residual_history(&lg, &b, &pre, 12);

        match &baseline {
            None => baseline = Some((sp.edge_ids().to_vec(), sol.iterations, history)),
            Some((edges, iters, hist)) => {
                assert_eq!(sp.edge_ids(), &edges[..], "edge set changed at {threads} threads");
                assert_eq!(sol.iterations, *iters, "PCG iterations changed at {threads} threads");
                assert_eq!(&history, hist, "residual history changed at {threads} threads");
            }
        }
    }
}

#[test]
fn partitioned_sparsify_is_invariant_under_factor_threads() {
    let g = grid2d(22, 18, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 5);
    let mut baseline: Option<(Vec<usize>, Vec<usize>)> = None;
    for threads in SWEEP {
        let cfg = PartitionedConfig::new(4).factor_threads(Some(threads));
        let psp = sparsify_partitioned(&g, &cfg).unwrap();
        match &baseline {
            None => {
                baseline = Some((psp.sparsifier().edge_ids().to_vec(), psp.assignment().to_vec()));
            }
            Some((edges, assignment)) => {
                assert_eq!(
                    psp.sparsifier().edge_ids(),
                    &edges[..],
                    "stitched edge set changed at {threads} threads"
                );
                assert_eq!(
                    psp.assignment(),
                    &assignment[..],
                    "spectral partition changed at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn partitioned_inner_and_outer_parallelism_compose() {
    // Outer partition jobs and inner factor threads active at once: the
    // nested regions must still produce the serial-reference edge set.
    let g = grid2d(20, 16, WeightProfile::Unit, 3);
    let serial = sparsify_partitioned(&g, &PartitionedConfig::new(4)).unwrap();
    let nested = sparsify_partitioned(
        &g,
        &PartitionedConfig::new(4).threads(Some(2)).factor_threads(Some(2)),
    )
    .unwrap();
    assert_eq!(serial.sparsifier().edge_ids(), nested.sparsifier().edge_ids());
}

#[test]
fn transient_waveforms_are_invariant_under_factor_threads() {
    let pg = synthesize(&SynthConfig { mesh: 9, source_fraction: 0.2, ..Default::default() });
    let (near, far) = probe_pair(&pg);
    let base_cfg =
        TransientConfig { t_end: 5e-10, fixed_step: Some(2.5e-11), ..Default::default() };
    let baseline = simulate_direct(&pg, &base_cfg, &[near, far]).unwrap();
    for threads in [2usize, 4] {
        let cfg = TransientConfig { factor_threads: threads, ..base_cfg };
        let run = simulate_direct(&pg, &cfg, &[near, far]).unwrap();
        assert_eq!(run.times, baseline.times);
        for (a, b) in run.probes.iter().flatten().zip(baseline.probes.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits(), "waveform changed at {threads} threads");
        }
    }
}
