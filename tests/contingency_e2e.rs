//! Contingency-screening equivalence suite: the incremental batch path
//! (`simulate_contingency_batch`, rank-1 factor updates) must agree
//! with the naive refactor-everything reference
//! (`simulate_contingency_refactor`) **outage for outage** — solves
//! within tolerance, failure classifications bitwise identical — and
//! a mid-batch failure must be quarantined without perturbing the
//! survivors.
//!
//! CI runs this suite under `TRACERED_THREADS=1` and
//! `TRACERED_THREADS=4`.

use tracered_graph::Graph;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::{
    simulate_contingency_batch, simulate_contingency_refactor, ContingencyConfig,
    ContingencyMethod, ContingencySweep, CurrentSource, Outage, OutageFailureKind, OutageOutcome,
    PowerGrid, PulseWaveform,
};

/// Asserts outage-for-outage equivalence of two sweeps: completed
/// solves within `tol` (relative), failures bitwise identical.
fn assert_equivalent(batch: &ContingencySweep, naive: &ContingencySweep, tol: f64) {
    assert_eq!(batch.outcomes.len(), naive.outcomes.len());
    for (i, (b, r)) in batch.outcomes.iter().zip(&naive.outcomes).enumerate() {
        match (b, r) {
            (OutageOutcome::Completed(bs), OutageOutcome::Completed(rs)) => {
                assert_eq!(bs.outage, rs.outage);
                for (x, y) in bs.probes.iter().zip(&rs.probes) {
                    assert!(
                        (x - y).abs() <= tol * y.abs().max(1.0),
                        "outage {i}: probe {x} vs reference {y}"
                    );
                }
                let mtol = tol * rs.min_voltage.abs().max(1.0);
                assert!((bs.min_voltage - rs.min_voltage).abs() <= mtol, "outage {i}: min");
                assert!((bs.max_voltage - rs.max_voltage).abs() <= mtol, "outage {i}: max");
            }
            (OutageOutcome::Failed(bf), OutageOutcome::Failed(rf)) => {
                // `OutageFailure` is integer-only `Eq` by design: the
                // classification must agree *bitwise*, not merely in kind.
                assert_eq!(bf, rf, "outage {i}: classification must be identical");
            }
            other => panic!("outage {i}: outcome class mismatch: {other:?}"),
        }
    }
    assert_eq!(batch.report.completed, naive.report.completed);
    assert_eq!(batch.report.failures, naive.report.failures);
}

fn mixed_outages(pg: &PowerGrid) -> Vec<Outage> {
    let num_edges = pg.graph().num_edges();
    vec![
        Outage::LineOutage { edge: 0 },
        Outage::Reweight { edge: 2 % num_edges, new_weight: 4.0 },
        Outage::LoadStep { node: pg.num_nodes() / 2, extra_current: 0.01 },
        Outage::LineOutage { edge: 7 % num_edges },
        Outage::Reweight { edge: 5 % num_edges, new_weight: 0.25 },
        Outage::LoadStep { node: 1, extra_current: 0.002 },
        // An invalid outage: classification must match bitwise too.
        Outage::LineOutage { edge: num_edges },
    ]
}

#[test]
fn batch_matches_refactor_reference_direct() {
    let pg = synthesize(&SynthConfig { mesh: 10, ..Default::default() });
    let outages = mixed_outages(&pg);
    let probes = [0, pg.num_nodes() / 3, pg.num_nodes() - 1];
    let cfg = ContingencyConfig::default();

    let batch = simulate_contingency_batch(&pg, &outages, &probes, &cfg, None).unwrap();
    let naive = simulate_contingency_refactor(&pg, &outages, &probes, &cfg).unwrap();

    assert_equivalent(&batch, &naive, 1e-6);
    // The batch path realized the matrix perturbations incrementally;
    // the reference refactorized every one of them.
    assert_eq!(batch.report.applied_updates, 4);
    assert_eq!(batch.report.update_fallbacks, 0);
    assert!(naive.report.refactorizations > batch.report.refactorizations);
    // The invalid outage is a typed rejection in both.
    let f = batch.outcomes[6].failure().expect("out-of-bounds edge must fail");
    assert!(matches!(f.kind, OutageFailureKind::Invalid(_)));
}

#[test]
fn batch_matches_refactor_reference_pcg() {
    let pg = synthesize(&SynthConfig { mesh: 10, ..Default::default() });
    let outages = mixed_outages(&pg);
    let probes = [3, pg.num_nodes() - 2];
    let cfg = ContingencyConfig {
        method: ContingencyMethod::Pcg { rel_tolerance: 1e-10, max_iterations: 500 },
        ..ContingencyConfig::default()
    };

    let batch = simulate_contingency_batch(&pg, &outages, &probes, &cfg, None).unwrap();
    let naive = simulate_contingency_refactor(&pg, &outages, &probes, &cfg).unwrap();
    assert_equivalent(&batch, &naive, 1e-6);

    // Load steps went through the batched PCG group in the batch path.
    assert_eq!(batch.report.rhs_only, 2);
    for idx in [2usize, 5] {
        let s = batch.outcomes[idx].result().expect("load step completes");
        assert!(s.iterations > 0, "PCG load step must report its iterations");
    }
}

/// A grid whose bridge edge, once removed, strands a pad-free island:
/// nodes 0–3 are a padded chain, nodes 4–5 hang off node 3 through the
/// bridge 3–4 with no pads of their own. `G` is PD (the island drains
/// through the bridge); `G` minus the bridge is exactly singular, and a
/// source mid-pulse at `t = 0` keeps drawing current on the island, so
/// the post-outage system is genuinely inconsistent — the outage must
/// classify as a failure, not solve to an arbitrary floating island.
fn bridged_grid() -> (PowerGrid, usize) {
    let edges =
        [(0usize, 1usize, 1.0f64), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 0.5), (3, 4, 2.0), (4, 5, 1.0)];
    let g = Graph::from_edges(6, &edges).expect("valid edge list");
    let bridge =
        (0..g.num_edges()).find(|&i| g.edge(i).u == 3 && g.edge(i).v == 4).expect("bridge edge");
    let pads = vec![1.0, 1.0, 1.0, 1.0, 0.0, 0.0];
    let island_draw = CurrentSource {
        node: 5,
        // Negative delay: the pulse is on its plateau at t = 0, so the
        // DC operating point sees a nonzero island draw.
        waveform: PulseWaveform {
            delay: -0.5,
            rise: 0.1,
            width: 0.8,
            fall: 0.1,
            period: 2.0,
            amplitude: 0.05,
        },
    };
    let pg = PowerGrid::new(g, pads, vec![1e-12; 6], vec![island_draw], 1.8);
    (pg, bridge)
}

#[test]
fn disconnecting_outage_is_classified_identically_in_both_paths() {
    let (pg, bridge) = bridged_grid();
    let outages = [
        Outage::Reweight { edge: 0, new_weight: 2.0 },
        Outage::LineOutage { edge: bridge },
        Outage::LoadStep { node: 2, extra_current: 0.05 },
    ];
    let probes = [0, 4, 5];
    let cfg = ContingencyConfig::default();

    let batch = simulate_contingency_batch(&pg, &outages, &probes, &cfg, None).unwrap();
    let naive = simulate_contingency_refactor(&pg, &outages, &probes, &cfg).unwrap();
    assert_equivalent(&batch, &naive, 1e-6);

    // The bridge removal disconnects the pad-free island {4, 5}: the
    // perturbed matrix is singular, and both paths must say so.
    for sweep in [&batch, &naive] {
        let f = sweep.outcomes[1].failure().expect("disconnecting outage must fail");
        assert_eq!(f.kind, OutageFailureKind::SingularPerturbation);
    }
    // The downdate refused the rank-deficient perturbation, so the
    // batch path took (and counted) the refactorization fallback.
    assert_eq!(batch.report.update_fallbacks, 1);
    assert!(!batch.outcomes[0].result().unwrap().used_fallback);
}

#[test]
fn mid_batch_failure_leaves_survivors_bitwise_unaffected() {
    let (pg, bridge) = bridged_grid();
    let survivors_only = [
        Outage::Reweight { edge: 0, new_weight: 2.0 },
        Outage::LineOutage { edge: 1 },
        Outage::LoadStep { node: 1, extra_current: 0.01 },
    ];
    let mut with_failure = survivors_only.to_vec();
    with_failure.insert(1, Outage::LineOutage { edge: bridge });
    let probes = [0, 3, 5];
    let cfg = ContingencyConfig::default();

    let full = simulate_contingency_batch(&pg, &with_failure, &probes, &cfg, None).unwrap();
    let clean = simulate_contingency_batch(&pg, &survivors_only, &probes, &cfg, None).unwrap();

    assert_eq!(full.report.failures, 1);
    assert!(matches!(
        full.outcomes[1].failure().unwrap().kind,
        OutageFailureKind::SingularPerturbation
    ));
    // Every survivor matches the failure-free sweep bit for bit: the
    // failed outage's fallback was quarantined and the factor restored.
    let survivors: Vec<&OutageOutcome> =
        full.outcomes.iter().enumerate().filter(|&(i, _)| i != 1).map(|(_, o)| o).collect();
    for (sv, cl) in survivors.iter().zip(&clean.outcomes) {
        let (sv, cl) = (sv.result().expect("survivor"), cl.result().expect("clean"));
        let sb: Vec<u64> = sv.probes.iter().map(|p| p.to_bits()).collect();
        let cb: Vec<u64> = cl.probes.iter().map(|p| p.to_bits()).collect();
        assert_eq!(sb, cb, "survivor probes must be bitwise identical");
        assert_eq!(sv.rel_residual.to_bits(), cl.rel_residual.to_bits());
    }
}

#[test]
fn sweeps_are_thread_invariant() {
    let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
    let outages = mixed_outages(&pg);
    let probes = [0, pg.num_nodes() - 1];
    for method in [
        ContingencyMethod::Direct,
        ContingencyMethod::Pcg { rel_tolerance: 1e-10, max_iterations: 500 },
    ] {
        let serial = ContingencyConfig { method, ..ContingencyConfig::default() };
        let parallel = ContingencyConfig {
            method,
            factor_threads: 4,
            solver_threads: 4,
            ..ContingencyConfig::default()
        };
        let s = simulate_contingency_batch(&pg, &outages, &probes, &serial, None).unwrap();
        let p = simulate_contingency_batch(&pg, &outages, &probes, &parallel, None).unwrap();
        assert_eq!(s.report.completed, p.report.completed);
        for (i, (a, b)) in s.outcomes.iter().zip(&p.outcomes).enumerate() {
            match (a, b) {
                (OutageOutcome::Completed(x), OutageOutcome::Completed(y)) => {
                    let xb: Vec<u64> = x.probes.iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u64> = y.probes.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "outage {i}: thread count changed the answer");
                }
                (OutageOutcome::Failed(x), OutageOutcome::Failed(y)) => assert_eq!(x, y),
                other => panic!("outage {i}: outcome class mismatch: {other:?}"),
            }
        }
    }
}
