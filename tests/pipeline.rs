//! End-to-end pipeline test: graph generation → sparsification (all
//! three methods) → preconditioned solve → quality metrics, mirroring
//! the paper's Table 1 methodology at test scale.

use tracered_core::metrics::{
    relative_condition_number, trace_proxy_exact, trace_proxy_hutchinson,
};
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{grid2d, grid3d, tri_mesh, WeightProfile};
use tracered_graph::Graph;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

fn full_eval(g: &Graph, method: Method) -> (f64, usize) {
    let sp = sparsify(g, &SparsifyConfig::new(method)).unwrap();
    assert!(sp.as_graph(g).is_connected());
    let lg = sp.graph_laplacian(g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g)).unwrap();
    let kappa = relative_condition_number(&lg, pre.factor(), 60, 5);
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i * 7 % 19) as f64) - 9.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-3));
    assert!(sol.converged);
    assert!(lg.residual_inf_norm(&sol.x, &b) < 1.0);
    (kappa, sol.iterations)
}

#[test]
fn table1_methodology_on_all_generator_families() {
    let cases: Vec<(&str, Graph)> = vec![
        ("grid2d", grid2d(22, 22, WeightProfile::Unit, 1)),
        ("grid3d", grid3d(8, 8, 8, WeightProfile::LogUniform { lo: 0.1, hi: 10.0 }, 2)),
        ("trimesh", tri_mesh(20, 20, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 3)),
    ];
    for (name, g) in cases {
        let (k_tr, it_tr) = full_eval(&g, Method::TraceReduction);
        let (k_gr, it_gr) = full_eval(&g, Method::Grass);
        let (k_er, _) = full_eval(&g, Method::EffectiveResistance);
        assert!(k_tr >= 1.0 && k_gr >= 1.0 && k_er >= 1.0, "{name}: κ below 1");
        // The paper's claim, with generous slack at this tiny scale: the
        // proposed metric is competitive with the best baseline.
        let best = k_gr.min(k_er);
        assert!(k_tr <= best * 1.6, "{name}: trace reduction κ = {k_tr} vs best baseline {best}");
        assert!(it_tr > 0 && it_gr > 0);
    }
}

#[test]
fn kappa_and_iterations_decrease_together_as_budget_grows() {
    let g = tri_mesh(18, 18, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 9);
    let mut last_kappa = f64::INFINITY;
    for fraction in [0.0, 0.05, 0.10, 0.25] {
        let sp = sparsify(&g, &SparsifyConfig::default().edge_fraction(fraction)).unwrap();
        let lg = sp.graph_laplacian(&g);
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        let kappa = relative_condition_number(&lg, pre.factor(), 80, 3);
        assert!(
            kappa <= last_kappa * 1.10,
            "κ should not grow materially with budget: {kappa} after {last_kappa}"
        );
        last_kappa = kappa;
    }
}

#[test]
fn trace_proxy_dominates_kappa_across_methods() {
    // The theoretical basis of the whole paper: κ ≤ Trace(L_P⁻¹ L_G).
    let g = grid2d(14, 14, WeightProfile::Unit, 4);
    for method in [Method::TraceReduction, Method::Grass, Method::EffectiveResistance] {
        let sp = sparsify(&g, &SparsifyConfig::new(method)).unwrap();
        let lg = sp.graph_laplacian(&g);
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        let kappa = relative_condition_number(&lg, pre.factor(), 80, 7);
        let trace = trace_proxy_exact(&lg, pre.factor());
        assert!(trace >= kappa - 1e-6, "{method:?}: trace {trace} < κ {kappa}");
        let hutch = trace_proxy_hutchinson(&lg, pre.factor(), 150, 8);
        assert!((hutch - trace).abs() < 0.2 * trace, "{method:?}: hutchinson off");
    }
}

#[test]
fn sparsifier_reused_across_many_right_hand_sides() {
    // The paper's amortization argument: one sparsifier, many solves.
    let g = tri_mesh(16, 16, WeightProfile::Unit, 6);
    let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
    let opts = PcgOptions::with_tolerance(1e-6);
    let mut iters = Vec::new();
    for seed in 0..6 {
        let b: Vec<f64> =
            (0..g.num_nodes()).map(|i| (((i + seed * 31) % 23) as f64) - 11.0).collect();
        let sol = pcg(&lg, &b, &pre, &opts);
        assert!(sol.converged);
        iters.push(sol.iterations);
    }
    let spread = iters.iter().max().unwrap() - iters.iter().min().unwrap();
    assert!(spread <= 12, "iteration counts should be stable across RHS: {iters:?}");
}
