//! File-based pipeline: write a graph's Laplacian as Matrix Market, read
//! it back (the path real SuiteSparse matrices would take), and run the
//! full sparsification + solve pipeline on the result.

use tracered_core::{sparsify, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::mmio::{read_graph, write_laplacian};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

#[test]
fn mtx_roundtrip_then_sparsify_and_solve() {
    let original = tri_mesh(15, 15, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 19);
    // Physical grounding slack on a few nodes, as circuit matrices have.
    let slack: Vec<f64> =
        (0..original.num_nodes()).map(|i| if i % 16 == 0 { 0.5 } else { 0.0 }).collect();
    let mut buf = Vec::new();
    write_laplacian(&mut buf, &original, &slack).unwrap();

    let mm = read_graph(buf.as_slice()).unwrap();
    assert_eq!(mm.graph.num_nodes(), original.num_nodes());
    assert_eq!(mm.graph.num_edges(), original.num_edges());

    // Use the recovered diagonal slack as the physical grounding, exactly
    // as the harness would for a real SuiteSparse SDD matrix. Nodes
    // without slack still need the algorithmic shift, so blend both.
    let n = mm.graph.num_nodes();
    let base = 1e-3 * 2.0 * mm.graph.total_weight() / n as f64;
    let shifts: Vec<f64> = mm.diag_slack.iter().map(|&s| s + base).collect();
    let sp = sparsify(&mm.graph, &SparsifyConfig::default().shift(ShiftPolicy::PerNode(shifts)))
        .unwrap();
    let lg = sp.graph_laplacian(&mm.graph);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&mm.graph)).unwrap();
    let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    assert!(sol.converged);
    assert!(lg.residual_inf_norm(&sol.x, &b) < 1e-3);
}

#[test]
fn file_based_roundtrip_through_disk() {
    let g = tri_mesh(8, 8, WeightProfile::Unit, 5);
    let dir = std::env::temp_dir().join("tracered_mmio_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip.mtx");
    {
        let f = std::fs::File::create(&path).unwrap();
        write_laplacian(f, &g, &vec![0.0; g.num_nodes()]).unwrap();
    }
    let mm = tracered_graph::mmio::read_graph_path(&path).unwrap();
    assert_eq!(mm.graph.num_edges(), g.num_edges());
    assert!(mm.diag_slack.iter().all(|&s| s.abs() < 1e-9));
    std::fs::remove_file(&path).ok();
}
