//! Tracing transparency gate: enabling the recorder must not change a
//! single bit of any numeric result. Span guards read clocks and append
//! to thread-local buffers — they must never reorder arithmetic, change
//! iteration counts, or perturb scheduling-sensitive results (all
//! kernels are deterministic at a fixed thread count regardless).
//!
//! The recorder's enabled flag is process-global, so every test takes a
//! shared lock, flips tracing around the traced run, and restores the
//! disabled default before releasing it. CI runs this suite under
//! `TRACERED_THREADS=1` and `=4`.

use std::sync::Mutex;

use tracered_core::{sparsify, sparsify_partitioned, Method, PartitionedConfig, SparsifyConfig};
use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_graph::laplacian::{laplacian_with_shifts, ShiftPolicy};
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    probe_pair, simulate_pcg_batch, SourceScenario, TransientConfig,
};
use tracered_service::{ContextSpec, ServiceConfig, ServiceRequest, SolverService};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_sparse::order::Ordering;
use tracered_sparse::CholeskyFactor;

/// Serializes tests that flip the process-global tracing flag.
static TRACING_FLAG: Mutex<()> = Mutex::new(());

/// Runs `f` twice — tracing off, then on (with per-iteration events) —
/// restores the disabled default, clears the recorder, and returns both
/// results for bit comparison.
fn plain_and_traced<T>(f: impl Fn() -> T) -> (T, T) {
    let _guard = TRACING_FLAG.lock().unwrap_or_else(|e| e.into_inner());
    tracered_obs::set_enabled(false);
    let plain = f();
    tracered_obs::set_enabled(true);
    tracered_obs::set_iter_events(true);
    let traced = f();
    tracered_obs::set_iter_events(false);
    tracered_obs::set_enabled(false);
    tracered_obs::recorder().reset();
    (plain, traced)
}

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length changed under tracing");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: entry {i} changed under tracing");
    }
}

#[test]
fn sparsify_is_bit_identical_under_tracing() {
    let g = grid2d(24, 24, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 9);
    let cfg = SparsifyConfig::new(Method::TraceReduction);
    let (plain, traced) = plain_and_traced(|| sparsify(&g, &cfg).expect("grid is connected"));
    assert_eq!(plain.edge_ids(), traced.edge_ids(), "kept edge set changed under tracing");
    let (lp, lt) = (plain.laplacian(&g), traced.laplacian(&g));
    assert_bits_eq(lp.values(), lt.values(), "sparsifier Laplacian");
}

#[test]
fn partitioned_sparsify_is_bit_identical_under_tracing() {
    let g = grid2d(30, 30, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 11);
    let cfg = PartitionedConfig::new(4).base(SparsifyConfig::new(Method::TraceReduction));
    let (plain, traced) = plain_and_traced(|| {
        sparsify_partitioned(&g, &cfg).expect("grid is connected").into_sparsifier()
    });
    assert_eq!(plain.edge_ids(), traced.edge_ids(), "kept edge set changed under tracing");
    let (lp, lt) = (plain.laplacian(&g), traced.laplacian(&g));
    assert_bits_eq(lp.values(), lt.values(), "partitioned sparsifier Laplacian");
}

#[test]
fn parallel_factorization_is_bit_identical_under_tracing() {
    let g = grid2d(40, 40, WeightProfile::Unit, 3);
    let n = g.num_nodes();
    let l = laplacian_with_shifts(&g, &vec![1e-3; n]);
    let (plain, traced) = plain_and_traced(|| {
        CholeskyFactor::factorize_threads(&l, Ordering::MinDegree, 4).expect("SPD")
    });
    assert_eq!(plain.l().colptr(), traced.l().colptr(), "factor pattern changed under tracing");
    assert_bits_eq(plain.l().values(), traced.l().values(), "Cholesky factor");
}

#[test]
fn pcg_is_bit_identical_under_tracing() {
    let g = grid2d(32, 32, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 5);
    let n = g.num_nodes();
    let l = laplacian_with_shifts(&g, &vec![1e-3; n]);
    let pre = CholPreconditioner::from_matrix(&l).expect("SPD");
    let b: Vec<f64> = (0..n).map(|i| ((i % 17) as f64) - 8.0).collect();
    let (plain, traced) =
        plain_and_traced(|| pcg(&l, &b, &pre, &PcgOptions::with_tolerance(1e-10)));
    assert_eq!(plain.iterations, traced.iterations, "iteration count changed under tracing");
    assert_bits_eq(&plain.x, &traced.x, "PCG solution");
}

#[test]
fn service_responses_are_bit_identical_under_tracing() {
    let pg = synthesize(&SynthConfig { mesh: 12, seed: 7, ..Default::default() });
    let n = pg.num_nodes();
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg).expect("power grid is connected");
    let system = pg.conductance_shared();
    let precond = std::sync::Arc::new(sp.laplacian(pg.graph()));
    let rhs: Vec<f64> = (0..n).map(|i| ((i % 11) as f64) / 10.0 - 0.5).collect();

    let (plain, traced) = plain_and_traced(|| {
        let svc = SolverService::start(ServiceConfig::default());
        svc.publish(
            ContextSpec::new(std::sync::Arc::clone(&system), std::sync::Arc::clone(&precond))
                .with_tag(sp_cfg.fingerprint()),
        )
        .expect("publish");
        let out = svc
            .client()
            .solve(ServiceRequest::pcg(rhs.clone(), 1e-8))
            .expect("healthy request")
            .into_solve()
            .expect("solve response");
        svc.shutdown();
        out
    });
    assert_eq!(plain.iterations, traced.iterations, "iteration count changed under tracing");
    assert_bits_eq(&plain.x, &traced.x, "service solve");
}

#[test]
fn batch_transient_is_bit_identical_under_tracing() {
    let pg = synthesize(&SynthConfig { mesh: 12, seed: 7, ..Default::default() });
    let (near, far) = probe_pair(&pg);
    let probes = vec![near, far];
    let cfg = TransientConfig { t_end: 4e-10, ..Default::default() };
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg).expect("power grid is connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).expect("SPD");
    let m = pg.sources().len();
    let scenarios = vec![
        SourceScenario::nominal(),
        SourceScenario::per_source((0..m).map(|j| 0.4 + (j % 5) as f64 * 0.3).collect()),
    ];

    let (plain, traced) = plain_and_traced(|| {
        simulate_pcg_batch(&pg, &cfg, &pre, &probes, &scenarios).expect("transient runs")
    });
    assert_eq!(plain.len(), traced.len());
    for (s, (p, t)) in plain.iter().zip(&traced).enumerate() {
        assert_bits_eq(&p.times, &t.times, "time grid");
        assert_eq!(
            p.stats.total_pcg_iterations, t.stats.total_pcg_iterations,
            "scenario {s}: PCG work changed under tracing"
        );
        for (idx, (pp, tp)) in p.probes.iter().zip(&t.probes).enumerate() {
            assert_bits_eq(pp, tp, &format!("scenario {s} probe {idx} waveform"));
        }
    }
}
