//! End-to-end tests for the beyond-the-paper extensions (DESIGN.md X1–X10).

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_partition::recursive_bisection;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    probe_pair, simulate_direct, IntegrationScheme, TransientConfig,
};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::{CholPreconditioner, IcPreconditioner};

#[test]
fn trapezoidal_converges_faster_than_backward_euler() {
    // Halving the step should cut backward Euler's error ~2× (first
    // order) and the trapezoidal rule's ~4× (second order). Reference:
    // a very fine backward-Euler run.
    let pg =
        synthesize(&SynthConfig { mesh: 6, source_fraction: 0.4, seed: 3, ..Default::default() });
    let (_, far) = probe_pair(&pg);
    let t_end = 4e-10;
    let run = |scheme: IntegrationScheme, h: f64| {
        simulate_direct(
            &pg,
            &TransientConfig { t_end, fixed_step: Some(h), scheme, ..Default::default() },
            &[far],
        )
        .unwrap()
    };
    let reference = run(IntegrationScheme::BackwardEuler, 1.25e-13);
    let err = |scheme: IntegrationScheme, h: f64| -> f64 {
        run(scheme, h).max_probe_difference(&reference, 0, 64)
    };
    let (h1, h2) = (2e-11, 1e-11);
    let be_ratio = err(IntegrationScheme::BackwardEuler, h1)
        / err(IntegrationScheme::BackwardEuler, h2).max(1e-18);
    let tr_ratio = err(IntegrationScheme::Trapezoidal, h1)
        / err(IntegrationScheme::Trapezoidal, h2).max(1e-18);
    // First vs second order, with slack for the non-smooth source kinks.
    assert!((1.4..3.0).contains(&be_ratio), "backward Euler halving ratio {be_ratio} should be ~2");
    assert!(tr_ratio > 2.8, "trapezoidal halving ratio {tr_ratio} should be ~4");
    assert!(
        err(IntegrationScheme::Trapezoidal, h1) < err(IntegrationScheme::BackwardEuler, h1),
        "trapezoidal must be more accurate at equal step"
    );
}

#[test]
fn sparsifier_iterations_scale_flatter_than_ic0() {
    // The reason sparsifier preconditioners exist: IC(0)'s PCG iteration
    // count grows with the mesh, a sparsifier's stays nearly flat.
    let counts = |k: usize| -> (usize, usize) {
        let g = grid2d(k, k, WeightProfile::Unit, 7);
        let n = g.num_nodes();
        let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
        let lg = sp.graph_laplacian(&g);
        let b: Vec<f64> = (0..n).map(|i| ((i % 23) as f64) - 11.0).collect();
        let opts = PcgOptions::with_tolerance(1e-6);
        let ic = pcg(&lg, &b, &IcPreconditioner::from_matrix(&lg).unwrap(), &opts);
        let spp = pcg(&lg, &b, &CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap(), &opts);
        assert!(ic.converged && spp.converged);
        (ic.iterations, spp.iterations)
    };
    let (ic_small, sp_small) = counts(12);
    let (ic_big, sp_big) = counts(36);
    let ic_growth = ic_big as f64 / ic_small as f64;
    let sp_growth = sp_big as f64 / sp_small as f64;
    assert!(
        ic_growth > sp_growth,
        "IC(0) growth {ic_growth:.2} must exceed sparsifier growth {sp_growth:.2} \
         (IC {ic_small}→{ic_big}, sparsifier {sp_small}→{sp_big})"
    );
}

#[test]
fn jl_method_end_to_end_on_mesh() {
    let g = tri_mesh(16, 16, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 5);
    let sp = sparsify(&g, &SparsifyConfig::new(Method::JlResistance).jl_probes(32)).unwrap();
    assert!(sp.as_graph(&g).is_connected());
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i % 9) as f64) - 4.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    assert!(sol.converged);
}

#[test]
fn kway_partition_cut_grows_sublinearly_in_parts() {
    // Doubling the part count on a grid should add roughly one more
    // separator's worth of cut, not double it: cut(4) < 3·cut(2).
    let g = grid2d(16, 16, WeightProfile::Unit, 9);
    let c2 = recursive_bisection(&g, 2, 8, 1).unwrap().cut_weight;
    let c4 = recursive_bisection(&g, 4, 8, 1).unwrap().cut_weight;
    let c8 = recursive_bisection(&g, 8, 8, 1).unwrap().cut_weight;
    assert!(c2 < c4 && c4 < c8, "cut must grow with parts: {c2} {c4} {c8}");
    assert!(c4 < 3.0 * c2, "4-way cut {c4} should be < 3x bisection cut {c2}");
}

#[test]
fn tracked_trace_upper_bounds_measured_kappa() {
    let g = tri_mesh(12, 12, WeightProfile::Unit, 2);
    let sp = sparsify(&g, &SparsifyConfig::default().track_trace(true)).unwrap();
    let last_trace =
        sp.report().iterations.last().and_then(|it| it.trace_estimate).expect("tracking enabled");
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
    let kappa = tracered_core::metrics::relative_condition_number(&lg, pre.factor(), 60, 4);
    // The last tracked trace is measured *before* the final recovery, so
    // with Hutchinson slack it must still dominate the final κ.
    assert!(last_trace * 1.2 > kappa, "trace estimate {last_trace} should bound κ {kappa}");
}

#[test]
fn stretch_identity_links_tree_trace_and_stretch() {
    // For an (unshifted) spanning-tree preconditioner,
    // Tr(L_T⁺ L_G) = total stretch (on the orthogonal complement of 1).
    // With a tiny shift the shifted trace approaches stretch + 1.
    use tracered_graph::lca::total_stretch;
    use tracered_graph::mst::{spanning_tree, TreeKind};
    let g = tri_mesh(7, 7, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 8);
    let n = g.num_nodes();
    let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
    let tree = tracered_graph::RootedTree::build(&g, &st.tree_edges, 0).unwrap();
    let stretch = total_stretch(&g, &tree);
    let shifts = vec![1e-9 * 2.0 * g.total_weight() / n as f64; n];
    let lg = laplacian_with_shifts(&g, &shifts);
    let lt = tracered_graph::laplacian::subgraph_laplacian(&g, &st.tree_edges, &shifts);
    let f = tracered_sparse::CholeskyFactor::factorize(
        &lt,
        tracered_sparse::order::Ordering::MinDegree,
    )
    .unwrap();
    let trace = tracered_core::metrics::trace_proxy_exact(&lg, &f);
    // trace ≈ stretch + 1 (the shift eigenpair contributes exactly 1).
    assert!(
        (trace - stretch - 1.0).abs() < 1e-3 * (stretch + 1.0),
        "trace {trace} vs stretch + 1 = {}",
        stretch + 1.0
    );
}
