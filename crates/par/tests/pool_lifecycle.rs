//! Lifecycle tests for the persistent pool: worker-thread creation is
//! O(1) per process, regions nest without deadlock, panics propagate
//! without poisoning the pool, and the sizing helpers handle degenerate
//! knobs.

use std::sync::atomic::{AtomicUsize, Ordering};

use tracered_par::Pool;

/// The acceptance-criterion counter: hundreds of regions reuse the same
/// parked workers, so the spawn count equals `size − 1` forever — with
/// `std::thread::scope` it would have been `regions × (threads − 1)`.
#[test]
fn worker_creation_is_o1_per_process() {
    let pool = Pool::new(4);
    assert_eq!(pool.threads_spawned(), 3, "workers spawn eagerly at construction");
    for round in 0..200 {
        let mut out = vec![0usize; 2048];
        pool.chunks_mut(&mut out, 64, 4, |start, piece| {
            for (off, v) in piece.iter_mut().enumerate() {
                *v = start + off + round;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + round));
        assert_eq!(
            pool.threads_spawned(),
            3,
            "region {round} must not create threads — the pool is persistent"
        );
    }
}

#[test]
fn pool_reuse_across_region_shapes() {
    // One pool serves every region shape back to back.
    let pool = Pool::new(3);
    let mut a = vec![0.0f64; 1000];
    let mut b = vec![1.0f64; 1000];
    pool.chunks_mut(&mut a, 128, 3, |start, piece| {
        for (off, v) in piece.iter_mut().enumerate() {
            *v = (start + off) as f64;
        }
    });
    pool.chunks2_mut(&mut a, &mut b, 128, 3, |start, xs, ys| {
        for off in 0..xs.len() {
            ys[off] += xs[off];
            xs[off] *= 2.0;
            let _ = start;
        }
    });
    let total = pool.reduce_f64(1000, 64, 3, |lo, hi| {
        a[lo..hi].iter().sum::<f64>() + b[lo..hi].iter().sum::<f64>()
    });
    // a[i] = 2i, b[i] = 1 + i ⇒ Σ = 2·Σi + 1000 + Σi = 3·499500 + 1000.
    assert_eq!(total, 3.0 * 499_500.0 + 1000.0);
    assert_eq!(pool.threads_spawned(), 2);
}

/// Nested regions: `par_chunks_mut` inside a `par_jobs` job — the shape
/// of partition-parallel densification calling parallel scoring. Must
/// complete (no deadlock) and stay bit-identical at every thread count.
#[test]
fn nested_chunks_inside_jobs() {
    let pool = Pool::new(4);
    let run = |threads: usize| -> Vec<Vec<f64>> {
        let mut blocks: Vec<Vec<f64>> = (0..6).map(|_| vec![0.0; 513]).collect();
        let jobs: Vec<(usize, &mut Vec<f64>)> = blocks.iter_mut().enumerate().collect();
        pool.jobs(jobs, threads, |(j, block)| {
            // Inner region runs on the same pool, from inside a job.
            pool.chunks_mut(block, 64, threads, |start, piece| {
                for (off, v) in piece.iter_mut().enumerate() {
                    let i = start + off;
                    *v = ((i * 31 + j * 7) as f64).sin();
                }
            });
        });
        blocks
    };
    let serial = run(1);
    for threads in [2, 4] {
        let par = run(threads);
        for (s, p) in serial.iter().zip(par.iter()) {
            assert!(
                s.iter().zip(p.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "nested region changed results at {threads} threads"
            );
        }
    }
    assert_eq!(pool.threads_spawned(), 3, "nesting must not spawn extra threads");
}

/// The reverse nesting: `par_jobs` from inside a `par_chunks_mut` body.
#[test]
fn nested_jobs_inside_chunks() {
    let pool = Pool::new(4);
    let hits = AtomicUsize::new(0);
    let mut out = vec![0u32; 16];
    pool.chunks_mut(&mut out, 4, 4, |_, piece| {
        let jobs: Vec<&mut u32> = piece.iter_mut().collect();
        pool.jobs(jobs, 2, |slot| {
            *slot += 1;
            hits.fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(out.iter().all(|&v| v == 1));
    assert_eq!(hits.load(Ordering::Relaxed), 16);
}

/// A panicking job propagates its payload to the region's caller, and
/// the pool stays healthy for later regions (no poisoning, no thread
/// churn).
#[test]
fn panic_propagates_without_poisoning_the_pool() {
    let pool = Pool::new(4);
    let spawned_before = pool.threads_spawned();
    for round in 0..3 {
        let mut out = vec![0u32; 256];
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.chunks_mut(&mut out, 8, 4, |start, piece| {
                if start == 64 {
                    panic!("deliberate job failure (round {round})");
                }
                for v in piece.iter_mut() {
                    *v = 1;
                }
            });
        }));
        let payload = result.expect_err("the job panic must reach the caller");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("deliberate job failure"), "unexpected payload: {msg}");
        // The same pool immediately serves a clean region.
        let mut ok = vec![0u32; 256];
        pool.chunks_mut(&mut ok, 8, 4, |_, piece| {
            for v in piece.iter_mut() {
                *v = 7;
            }
        });
        assert!(ok.iter().all(|&v| v == 7), "pool poisoned after panic in round {round}");
    }
    assert_eq!(pool.threads_spawned(), spawned_before, "panic recovery must not respawn");
}

/// Panic inside a `par_jobs` job: later jobs are discarded (their `Drop`
/// still runs), the first payload wins, and the pool survives.
#[test]
fn panic_in_jobs_region_drops_remaining_jobs() {
    let pool = Pool::new(2);
    let ran = AtomicUsize::new(0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let jobs: Vec<usize> = (0..100).collect();
        pool.jobs(jobs, 2, |j| {
            if j == 0 {
                panic!("first job fails");
            }
            ran.fetch_add(1, Ordering::Relaxed);
        });
    }));
    assert!(result.is_err(), "panic must propagate");
    assert!(
        ran.load(Ordering::Relaxed) < 100,
        "cancellation should discard at least the tail of the job list"
    );
    // Pool still works.
    let mut out = vec![0u8; 64];
    pool.chunks_mut(&mut out, 4, 2, |_, piece| piece.fill(1));
    assert!(out.iter().all(|&v| v == 1));
}

/// A panicking serial region (threads = 1) takes the plain unwinding
/// path and equally leaves the pool reusable.
#[test]
fn serial_region_panic_is_transparent() {
    let pool = Pool::new(2);
    let mut out = vec![0u32; 8];
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.chunks_mut(&mut out, 2, 1, |start, _| {
            if start == 4 {
                panic!("serial failure");
            }
        });
    }));
    assert!(result.is_err());
    pool.chunks_mut(&mut out, 2, 2, |_, piece| piece.fill(3));
    assert!(out.iter().all(|&v| v == 3));
}

/// Scratch recycling: the factory sees the cached workspace from the
/// previous region (serial path, so the cache lives on this thread) and
/// may reuse its allocation.
#[test]
fn scratch_is_recycled_across_regions() {
    struct Arena {
        generation: u32,
        buf: Vec<f64>,
    }
    let pool = Pool::new(1);
    let reused = AtomicUsize::new(0);
    for _ in 0..5 {
        let mut out = vec![0.0f64; 64];
        pool.chunks_mut_scratch(
            &mut out,
            8,
            1,
            |cached: Option<Arena>| match cached {
                Some(mut a) if a.buf.len() == 16 => {
                    reused.fetch_add(1, Ordering::Relaxed);
                    a.generation += 1;
                    a
                }
                _ => Arena { generation: 0, buf: vec![0.0; 16] },
            },
            |arena, _, piece| {
                arena.buf[0] += 1.0; // workspace only
                piece.fill(f64::from(arena.generation));
            },
        );
    }
    assert_eq!(reused.load(Ordering::Relaxed), 4, "regions 2..=5 must see the cached arena");
}

/// Scratch dirtied by a panicking body must NOT be recycled: the body
/// aborted mid-update, so its workspace invariants may be broken, and a
/// later region's factory must never be handed it as a capacity donor.
#[test]
fn panicked_region_scratch_is_not_recycled() {
    struct Probe(Vec<f64>);
    let pool = Pool::new(2);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut out = vec![0u8; 64];
        pool.chunks_mut_scratch(
            &mut out,
            4,
            2,
            |cached: Option<Probe>| cached.unwrap_or_else(|| Probe(vec![0.0; 8])),
            |probe, _, _| {
                probe.0[0] += 1.0; // dirty the workspace…
                panic!("abort mid-update"); // …and die before cleanup
            },
        );
    }));
    assert!(result.is_err(), "the body panic must reach the caller");
    // The next region of the same scratch type must start from scratch.
    let saw_cached = AtomicUsize::new(0);
    let mut out = vec![0u8; 64];
    pool.chunks_mut_scratch(
        &mut out,
        4,
        2,
        |cached: Option<Probe>| {
            if cached.is_some() {
                saw_cached.fetch_add(1, Ordering::Relaxed);
            }
            Probe(vec![0.0; 8])
        },
        |_, _, piece| piece.fill(1),
    );
    assert!(out.iter().all(|&v| v == 1));
    assert_eq!(
        saw_cached.load(Ordering::Relaxed),
        0,
        "scratch from the panicked region leaked into the cache"
    );
}

#[test]
fn degenerate_thread_and_chunk_knobs() {
    // threads = 0 is clamped to 1 everywhere.
    assert_eq!(tracered_par::effective_threads(Some(0)), 1);
    let pool = Pool::new(0);
    assert_eq!(pool.size(), 1);
    assert_eq!(pool.worker_count(), 0);
    assert_eq!(pool.threads_spawned(), 0);
    let mut out = vec![0u8; 10];
    pool.chunks_mut(&mut out, 0, 0, |_, piece| piece.fill(1)); // chunk 0 → 1
    assert!(out.iter().all(|&v| v == 1));
    // 0-length inputs never invoke the body.
    let mut empty: Vec<u8> = Vec::new();
    pool.chunks_mut(&mut empty, 4, 4, |_, _| unreachable!("empty input"));
    pool.jobs(Vec::<u8>::new(), 4, |_| unreachable!("no jobs"));
    assert_eq!(pool.reduce_f64(0, 4, 4, |_, _| unreachable!("empty reduction")), 0.0);
    // len < chunk runs as one serial chunk.
    let mut small = vec![0u8; 3];
    pool.chunks_mut(&mut small, 64, 4, |start, piece| {
        assert_eq!(start, 0);
        assert_eq!(piece.len(), 3);
        piece.fill(9);
    });
    assert!(small.iter().all(|&v| v == 9));
    // chunk_size edge cases.
    assert_eq!(tracered_par::chunk_size(0, 4, 8), 8);
    assert_eq!(tracered_par::chunk_size(0, 0, 0), 1);
    assert_eq!(tracered_par::chunk_size(10, 4, 64), 10);
    assert!(tracered_par::chunk_size(1_000_000, 0, 1) >= 1);
}

/// Explicit pools are independent: dropping one does not disturb the
/// global pool or other pools.
#[test]
fn dropping_a_pool_joins_its_workers() {
    for _ in 0..10 {
        let pool = Pool::new(3);
        let mut out = vec![0u16; 128];
        pool.chunks_mut(&mut out, 8, 3, |_, piece| piece.fill(5));
        assert!(out.iter().all(|&v| v == 5));
        drop(pool); // joins the two workers; must not hang or leak
    }
    // The global pool still functions afterwards.
    let mut out = vec![0u16; 128];
    tracered_par::par_chunks_mut(&mut out, 8, 4, |_, piece| piece.fill(6));
    assert!(out.iter().all(|&v| v == 6));
}
