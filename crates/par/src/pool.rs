//! The persistent worker pool: parked workers, the shared injector
//! queue, and the region protocol that lets borrowed (non-`'static`)
//! parallel regions run on long-lived threads.
//!
//! # Why a pool
//!
//! Through PR 3 every parallel region spawned fresh OS threads via
//! `std::thread::scope` and joined them on exit. A PCG iteration enters
//! ~5 parallel regions (SpMV, two fused vector updates, two dots), so at
//! `threads > 1` the solver paid ~5 spawn/join rounds *per iteration* —
//! often more than the kernel work itself on mid-sized systems. The pool
//! spawns `size − 1` workers **once** (lazily for the global pool, see
//! [`crate::global`]) and parks them on a condvar between regions; a
//! region entry is now an `Arc` allocation, a queue push, and a few
//! wakeups.
//!
//! # Region protocol
//!
//! A *region* is one parallel call ([`Pool::chunks_mut`],
//! [`Pool::jobs`], …). The calling thread (the region's **owner**):
//!
//! 1. builds a [`Region`] — a type-erased descriptor holding a pointer
//!    to the stack-allocated runner (closures + output pointers), the
//!    job count, and the claim/completion counters;
//! 2. publishes it on the pool's **injector queue** and wakes up to
//!    `min(worker_count, threads − 1, njobs − 1)` parked workers;
//! 3. participates: it claims and runs jobs exactly like a worker
//!    (work-stealing from within the region), so a pool of size 1 — or
//!    a region that drains before any worker arrives — degenerates to
//!    the serial loop;
//! 4. retires the region from the injector (under the queue lock, so no
//!    new worker can attach afterwards) and waits for **quiescence**:
//!    `pending == 0 && workers_in == 0`;
//! 5. resumes the first captured panic, if any job panicked.
//!
//! Workers park on the pool condvar, wake when a region is published,
//! *attach* (increment `workers_in` under the injector lock), run the
//! region's claim loop until no jobs remain, *detach*, and go back to
//! the queue — claiming work from whatever region is waiting next, which
//! is what makes nested regions (a `par_jobs` job that itself calls
//! `par_chunks_mut`) compose: the inner region's owner is a worker, it
//! claims inner jobs itself, and any idle worker can steal them too.
//!
//! # Why the `unsafe` is sound
//!
//! This module contains the crate's only `unsafe` code, all of it in
//! service of one fact: region runners live on the owner's stack and
//! borrow caller data, while workers are `'static` threads. Soundness
//! hangs on three invariants:
//!
//! - **Attach before deref, under the lock.** A worker only learns about
//!   a region by finding it on the injector queue, and it increments
//!   `workers_in` *while holding the queue lock*. The owner removes the
//!   region from the queue under that same lock before it starts
//!   waiting, so after retirement the attach count can only fall.
//! - **Quiescence before return.** The owner does not return (or unwind
//!   — panics from its own claim loop are captured and re-raised *after*
//!   the wait) until `pending == 0 && workers_in == 0`, so every worker
//!   that could ever dereference the runner has finished doing so while
//!   the owner's frame was still alive.
//! - **Disjoint claims.** Job indices are handed out by an atomic
//!   fetch-add style claim, so each index — and therefore each disjoint
//!   output chunk carved from the raw base pointer — is visited exactly
//!   once.
//!
//! Completion uses `AcqRel` read-modify-writes on `pending`/`workers_in`
//! and a mutex-protected condvar, so all job writes happen-before the
//! owner observes quiescence.
//!
//! # Panic containment
//!
//! Job bodies run under `catch_unwind`. The first panic is recorded, the
//! region is cancelled (remaining jobs are claimed and discarded without
//! running the body), and the payload is re-raised on the owner thread
//! once the region is quiescent. Workers never die: the pool is **not
//! poisoned** by a panicking job and keeps serving later regions.

#![allow(unsafe_code)]

use std::any::Any;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::scratch;

/// State shared between a pool handle and its workers.
struct Shared {
    /// Published regions with unclaimed jobs, oldest first. Workers scan
    /// front-to-back and attach to the first region that still has work
    /// and a free slot under its thread cap.
    injector: Mutex<VecDeque<Arc<Region>>>,
    /// Parked workers wait here; region publication notifies it.
    work_cv: Condvar,
    /// Set (under the injector lock) by `Pool::drop`; workers exit their
    /// loop when they observe it.
    shutdown: AtomicBool,
    /// Total worker threads ever created — the O(1)-per-process
    /// instrumentation counter checked by the lifecycle tests.
    spawned: AtomicUsize,
}

/// A persistent work-stealing thread pool.
///
/// A `Pool` of size `n` owns `n − 1` parked worker threads; the thread
/// that enters a parallel region is always the n-th participant. Most
/// code uses the process-global pool through the free functions of this
/// crate ([`crate::par_chunks_mut`], …); an explicit `Pool` is the
/// handle for tests and for callers that want isolated sizing:
///
/// ```
/// let pool = tracered_par::Pool::new(4); // spawns 3 workers immediately
/// let mut out = vec![0usize; 1000];
/// pool.chunks_mut(&mut out, 64, 4, |start, piece| {
///     for (off, v) in piece.iter_mut().enumerate() {
///         *v = start + off;
///     }
/// });
/// assert!(out.iter().enumerate().all(|(i, &v)| v == i));
/// assert_eq!(pool.threads_spawned(), 3); // never grows afterwards
/// ```
///
/// Dropping an explicit pool joins its workers. The global pool lives
/// for the process.
pub struct Pool {
    shared: Arc<Shared>,
    size: usize,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("size", &self.size)
            .field("threads_spawned", &self.threads_spawned())
            .finish()
    }
}

impl Pool {
    /// Creates a pool that can run regions on up to `threads` threads
    /// (the caller plus `threads − 1` eagerly spawned, parked workers).
    ///
    /// `threads` is clamped to at least 1; a size-1 pool spawns no
    /// workers and runs every region serially on the calling thread.
    pub fn new(threads: usize) -> Pool {
        let size = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            work_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            spawned: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(size - 1);
        for i in 0..size - 1 {
            let sh = Arc::clone(&shared);
            sh.spawned.fetch_add(1, Ordering::Relaxed);
            let handle = std::thread::Builder::new()
                .name(format!("tracered-par-{i}"))
                .spawn(move || worker_loop(&sh))
                .expect("failed to spawn pool worker thread");
            workers.push(handle);
        }
        Pool { shared, size, workers }
    }

    /// Total threads a region may run on: the owner plus
    /// [`Pool::worker_count`] parked workers.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of persistent worker threads owned by this pool
    /// (`size − 1`).
    pub fn worker_count(&self) -> usize {
        self.size - 1
    }

    /// Total worker threads this pool has ever created.
    ///
    /// Workers are spawned once in [`Pool::new`] and parked between
    /// regions, so this counter is **O(1) per process** — it equals
    /// [`Pool::worker_count`] no matter how many regions have run. The
    /// lifecycle tests pin this down; it is the observable difference
    /// between the pool and the per-region `std::thread::scope` runtime
    /// it replaced.
    pub fn threads_spawned(&self) -> usize {
        self.shared.spawned.load(Ordering::Relaxed)
    }

    /// Runs `body` over disjoint chunks of `out`, capped at `threads`
    /// threads. See [`crate::par_chunks_mut`] for the contract.
    pub fn chunks_mut<T, F>(&self, out: &mut [T], chunk: usize, threads: usize, body: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        self.chunks_mut_scratch(
            out,
            chunk,
            threads,
            |_: Option<()>| (),
            move |(), start, piece| body(start, piece),
        );
    }

    /// [`Pool::chunks_mut`] with a per-worker scratch value recycled
    /// through the thread-local cache. See
    /// [`crate::par_chunks_mut_scratch`] for the factory contract.
    pub fn chunks_mut_scratch<T, S, B, F>(
        &self,
        out: &mut [T],
        chunk: usize,
        threads: usize,
        factory: B,
        body: F,
    ) where
        T: Send,
        S: 'static,
        B: Fn(Option<S>) -> S + Sync,
        F: Fn(&mut S, usize, &mut [T]) + Sync,
    {
        if out.is_empty() {
            return;
        }
        let chunk = chunk.max(1);
        let threads = threads.max(1);
        let njobs = out.len().div_ceil(chunk);
        if threads <= 1 || njobs <= 1 || self.worker_count() == 0 {
            let mut s = factory(scratch::take::<S>());
            let mut start = 0;
            for piece in out.chunks_mut(chunk) {
                let len = piece.len();
                body(&mut s, start, piece);
                start += len;
            }
            scratch::store(s);
            return;
        }
        let runner = ChunksRunner {
            base: out.as_mut_ptr(),
            len: out.len(),
            chunk,
            factory: &factory,
            body: &body,
            _scratch: PhantomData::<fn() -> S>,
        };
        execute(self, &runner, njobs, threads);
    }

    /// Runs `body` over paired disjoint chunks of two equally long
    /// slices. See [`crate::par_chunks2_mut`] for the contract.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn chunks2_mut<A, B, F>(
        &self,
        a: &mut [A],
        b: &mut [B],
        chunk: usize,
        threads: usize,
        body: F,
    ) where
        A: Send,
        B: Send,
        F: Fn(usize, &mut [A], &mut [B]) + Sync,
    {
        assert_eq!(a.len(), b.len(), "paired slices must have equal length");
        if a.is_empty() {
            return;
        }
        let chunk = chunk.max(1);
        let threads = threads.max(1);
        let njobs = a.len().div_ceil(chunk);
        if threads <= 1 || njobs <= 1 || self.worker_count() == 0 {
            let mut start = 0;
            for (pa, pb) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)) {
                let len = pa.len();
                body(start, pa, pb);
                start += len;
            }
            return;
        }
        let runner = Chunks2Runner {
            base_a: a.as_mut_ptr(),
            base_b: b.as_mut_ptr(),
            len: a.len(),
            chunk,
            body: &body,
        };
        execute(self, &runner, njobs, threads);
    }

    /// Runs an explicit job list through the pool. See
    /// [`crate::par_jobs`] for the contract.
    pub fn jobs<T, F>(&self, jobs: Vec<T>, threads: usize, body: F)
    where
        T: Send,
        F: Fn(T) + Sync,
    {
        let njobs = jobs.len();
        if njobs == 0 {
            return;
        }
        let threads = threads.max(1);
        if threads <= 1 || njobs <= 1 || self.worker_count() == 0 {
            for job in jobs {
                body(job);
            }
            return;
        }
        let runner = JobsRunner { queue: Mutex::new(jobs.into_iter()), body: &body };
        execute(self, &runner, njobs, threads);
    }

    /// Chunked deterministic sum reduction. See
    /// [`crate::par_reduce_f64`] for the contract.
    pub fn reduce_f64<F>(&self, len: usize, chunk: usize, threads: usize, body: F) -> f64
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        let chunk = chunk.max(1);
        if len == 0 {
            return 0.0;
        }
        let threads = threads.max(1);
        let nchunks = len.div_ceil(chunk);
        if threads <= 1 || nchunks <= 1 || self.worker_count() == 0 {
            // Same chunk decomposition and left-to-right combination as
            // the parallel path, so the two are bit-identical.
            let mut acc = 0.0;
            let mut lo = 0;
            while lo < len {
                let hi = (lo + chunk).min(len);
                acc += body(lo, hi);
                lo = hi;
            }
            return acc;
        }
        // The partials buffer is recycled through the scratch cache so a
        // PCG iteration's dot products stop allocating.
        let mut partials = scratch::take::<ReducePartials>().unwrap_or_default().0;
        partials.clear();
        partials.resize(nchunks, 0.0);
        self.chunks_mut(&mut partials, 1, threads, |ci, slot| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(len);
            slot[0] = body(lo, hi);
        });
        let total = partials.iter().sum();
        scratch::store(ReducePartials(partials));
        total
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        {
            let _guard = self.shared.injector.lock().unwrap_or_else(|e| e.into_inner());
            self.shared.shutdown.store(true, Ordering::Release);
        }
        self.shared.work_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Newtype for the cached [`Pool::reduce_f64`] partials buffer, so it
/// cannot collide with a caller's `Vec<f64>` scratch in the cache.
#[derive(Default)]
struct ReducePartials(Vec<f64>);

/// Type-erased descriptor of one parallel region.
///
/// `body` points at a runner on the owner's stack; `run` is the
/// monomorphized claim loop that knows the runner's concrete type. The
/// soundness argument for sharing these raw pointers with worker
/// threads is in the module docs.
struct Region {
    /// Monomorphized worker entry: casts `body` back to the concrete
    /// runner and runs its claim loop.
    run: unsafe fn(*const (), &Region),
    /// The runner, erased. Valid until the owner observes quiescence.
    body: *const (),
    /// Total jobs in the region.
    njobs: usize,
    /// Region thread cap (owner included): at most `max_threads − 1`
    /// workers attach concurrently.
    max_threads: usize,
    /// Next unclaimed job index. `next >= njobs` means drained; workers
    /// use it to skip (and garbage-collect) exhausted regions.
    next: AtomicUsize,
    /// Jobs not yet finished. Quiescence requires it to reach 0.
    pending: AtomicUsize,
    /// Workers currently attached (owner excluded). Quiescence requires
    /// it to reach 0 after retirement.
    workers_in: AtomicUsize,
    /// Set on first panic: remaining jobs are claimed and discarded.
    cancelled: AtomicBool,
    /// First captured panic payload, re-raised on the owner thread.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Guards the quiescence condvar below.
    done_mx: Mutex<()>,
    /// Signalled when `pending` or `workers_in` drops to zero.
    done_cv: Condvar,
}

// SAFETY: `body` is dereferenced only between a worker's attach (under
// the injector lock, while the region is still queued) and its detach,
// and the owner blocks until `workers_in == 0` after unpublishing the
// region — so the pointee outlives every dereference. All other fields
// are ordinary sync primitives.
unsafe impl Send for Region {}
// SAFETY: as above; shared access to `body` is `&`-only and the runner
// types are `Sync`.
unsafe impl Sync for Region {}

impl Region {
    /// Claims the next job index, or `None` when the region is drained.
    fn claim(&self) -> Option<usize> {
        let mut cur = self.next.load(Ordering::Relaxed);
        loop {
            if cur >= self.njobs {
                return None;
            }
            match self.next.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(cur),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Marks one claimed job finished; wakes the owner when it was the
    /// last. The `AcqRel` read-modify-write chains every job's writes
    /// into the owner's quiescence observation.
    fn finish_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_mx.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_all();
        }
    }

    /// Whether a panic has cancelled the region (bodies are skipped).
    fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Records the first panic payload and cancels the region.
    fn record_panic(&self, payload: Box<dyn Any + Send>) {
        self.cancelled.store(true, Ordering::Relaxed);
        let mut slot = self.panic.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Worker-side detach; wakes the owner when the last worker leaves.
    fn detach(&self) {
        if self.workers_in.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.done_mx.lock().unwrap_or_else(|e| e.into_inner());
            self.done_cv.notify_all();
        }
    }

    /// Owner-side wait for `pending == 0 && workers_in == 0`. Must be
    /// called only after the region is retired from the injector.
    fn wait_quiescent(&self) {
        if self.pending.load(Ordering::Acquire) == 0 && self.workers_in.load(Ordering::Acquire) == 0
        {
            return;
        }
        let mut guard = self.done_mx.lock().unwrap_or_else(|e| e.into_inner());
        while self.pending.load(Ordering::Acquire) != 0
            || self.workers_in.load(Ordering::Acquire) != 0
        {
            guard = self.done_cv.wait(guard).unwrap_or_else(|e| e.into_inner());
        }
    }
}

/// The monomorphized region entry point: one instantiation per runner
/// type, stored as the region's `run` pointer.
///
/// # Safety
///
/// `ptr` must point at a live `R`; guaranteed by the attach/quiescence
/// protocol (module docs).
unsafe fn worker_shim<R: WorkerRun>(ptr: *const (), region: &Region) {
    // SAFETY: see the protocol invariants in the module docs.
    let runner = unsafe { &*(ptr.cast::<R>()) };
    runner.run_worker(region);
}

/// A region runner: owns the claim loop for one region shape.
trait WorkerRun {
    /// Claims and executes jobs until the region is drained. Must never
    /// unwind — panics from user code are captured into the region.
    fn run_worker(&self, region: &Region);
}

/// Publishes `runner` as a region, participates, and blocks until the
/// region is quiescent; then re-raises any captured panic.
/// RAII update of the pool occupancy gauge (`par.pool.active_regions`).
///
/// The gauge is only touched while tracing is enabled — parallel
/// regions are entered ~5× per PCG iteration, and the zero-overhead
/// contract demands that an idle recorder costs the hot path nothing
/// beyond one relaxed load. The guard remembers whether it incremented
/// so a mid-region toggle can never unbalance the gauge.
struct RegionOccupancy {
    counted: bool,
}

impl RegionOccupancy {
    fn enter() -> RegionOccupancy {
        let counted = tracered_obs::enabled();
        if counted {
            tracered_obs::gauge("par.pool.active_regions").inc();
        }
        RegionOccupancy { counted }
    }
}

impl Drop for RegionOccupancy {
    fn drop(&mut self) {
        if self.counted {
            tracered_obs::gauge("par.pool.active_regions").dec();
        }
    }
}

fn execute<R: WorkerRun + Sync>(pool: &Pool, runner: &R, njobs: usize, threads: usize) {
    // Region entry/exit span: publish → claim loop → quiescence. One
    // relaxed load when tracing is off.
    let _span = tracered_obs::span!("par.region", { jobs: njobs, threads: threads });
    let _occupancy = RegionOccupancy::enter();
    let region = Arc::new(Region {
        run: worker_shim::<R>,
        body: (runner as *const R).cast::<()>(),
        njobs,
        max_threads: threads,
        next: AtomicUsize::new(0),
        pending: AtomicUsize::new(njobs),
        workers_in: AtomicUsize::new(0),
        cancelled: AtomicBool::new(false),
        panic: Mutex::new(None),
        done_mx: Mutex::new(()),
        done_cv: Condvar::new(),
    });
    let wake = pool.worker_count().min(threads.saturating_sub(1)).min(njobs.saturating_sub(1));
    {
        let mut queue = pool.shared.injector.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(Arc::clone(&region));
    }
    if wake >= pool.worker_count() {
        pool.shared.work_cv.notify_all();
    } else {
        for _ in 0..wake {
            pool.shared.work_cv.notify_one();
        }
    }
    // The owner is a full participant: it steals jobs from its own
    // region like any worker, so small regions finish without waiting
    // for a wakeup.
    runner.run_worker(&region);
    // Unpublish under the lock: afterwards no new worker can attach, so
    // the quiescence wait below is a strictly decreasing race.
    {
        let mut queue = pool.shared.injector.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(pos) = queue.iter().position(|r| Arc::ptr_eq(r, &region)) {
            queue.remove(pos);
        }
    }
    region.wait_quiescent();
    let payload = region.panic.lock().unwrap_or_else(|e| e.into_inner()).take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Main loop of a parked worker thread.
fn worker_loop(shared: &Shared) {
    loop {
        let region: Arc<Region> = {
            let mut queue = shared.injector.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                if let Some(r) = attach_one(&mut queue) {
                    break r;
                }
                queue = shared.work_cv.wait(queue).unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: we attached under the injector lock while the region
        // was queued; the owner waits for our detach before freeing the
        // runner (module docs).
        unsafe { (region.run)(region.body, &region) };
        region.detach();
    }
}

/// Scans the injector for a region with unclaimed jobs and a free slot
/// under its thread cap, attaching to the first match. Exhausted regions
/// encountered on the way are dropped from the queue (the owner's retire
/// step tolerates the region already being gone).
fn attach_one(queue: &mut VecDeque<Arc<Region>>) -> Option<Arc<Region>> {
    let mut i = 0;
    while i < queue.len() {
        let region = &queue[i];
        if region.next.load(Ordering::Relaxed) >= region.njobs {
            queue.remove(i);
            continue;
        }
        if region.workers_in.load(Ordering::Relaxed) + 1 < region.max_threads {
            region.workers_in.fetch_add(1, Ordering::Relaxed);
            return Some(Arc::clone(region));
        }
        i += 1;
    }
    None
}

/// Runner for [`Pool::chunks_mut_scratch`]: jobs are disjoint
/// `chunk`-sized ranges of a single output slice, carved from the raw
/// base pointer by claimed index.
struct ChunksRunner<'a, T, S, B, F> {
    base: *mut T,
    len: usize,
    chunk: usize,
    factory: &'a B,
    body: &'a F,
    _scratch: PhantomData<fn() -> S>,
}

// SAFETY: concurrent `run_worker` calls write only to the disjoint
// `[i*chunk, (i+1)*chunk)` ranges handed out by the atomic claim, so
// sharing the raw base pointer is a manual `chunks_mut` split.
unsafe impl<T: Send, S, B: Sync, F: Sync> Sync for ChunksRunner<'_, T, S, B, F> {}

impl<T, S, B, F> WorkerRun for ChunksRunner<'_, T, S, B, F>
where
    T: Send,
    S: 'static,
    B: Fn(Option<S>) -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    fn run_worker(&self, region: &Region) {
        // Scratch is built lazily on the first claim (workers that
        // arrive after the queue drained pay nothing) and recycled
        // through the thread-local cache on exit.
        let mut scratch_val: Option<S> = None;
        while let Some(i) = region.claim() {
            if region.is_cancelled() {
                region.finish_one();
                continue;
            }
            if scratch_val.is_none() {
                match catch_unwind(AssertUnwindSafe(|| (self.factory)(scratch::take::<S>()))) {
                    Ok(s) => scratch_val = Some(s),
                    Err(payload) => {
                        region.record_panic(payload);
                        region.finish_one();
                        continue;
                    }
                }
            }
            let lo = i * self.chunk;
            let hi = (lo + self.chunk).min(self.len);
            // SAFETY: `claim` yields each index at most once and
            // `lo < len` holds for every valid index, so this range is
            // in bounds and disjoint from every other claim.
            let piece = unsafe { std::slice::from_raw_parts_mut(self.base.add(lo), hi - lo) };
            let s = scratch_val.as_mut().expect("scratch initialized above");
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(s, lo, piece))) {
                region.record_panic(payload);
            }
            region.finish_one();
        }
        // A cancelled region aborted some body mid-update; this thread's
        // scratch may hold broken invariants (e.g. a scatter buffer that
        // was never rezeroed), so drop it instead of letting a later
        // region recycle it.
        if let Some(s) = scratch_val {
            if !region.is_cancelled() {
                scratch::store(s);
            }
        }
    }
}

/// Runner for [`Pool::chunks2_mut`]: paired disjoint ranges of two
/// equally long slices.
struct Chunks2Runner<'a, A, B, F> {
    base_a: *mut A,
    base_b: *mut B,
    len: usize,
    chunk: usize,
    body: &'a F,
}

// SAFETY: same disjoint-claimed-ranges argument as `ChunksRunner`,
// applied to both slices.
unsafe impl<A: Send, B: Send, F: Sync> Sync for Chunks2Runner<'_, A, B, F> {}

impl<A, B, F> WorkerRun for Chunks2Runner<'_, A, B, F>
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    fn run_worker(&self, region: &Region) {
        while let Some(i) = region.claim() {
            if region.is_cancelled() {
                region.finish_one();
                continue;
            }
            let lo = i * self.chunk;
            let hi = (lo + self.chunk).min(self.len);
            // SAFETY: in-bounds disjoint ranges per unique claim, on
            // both equally long slices.
            let (pa, pb) = unsafe {
                (
                    std::slice::from_raw_parts_mut(self.base_a.add(lo), hi - lo),
                    std::slice::from_raw_parts_mut(self.base_b.add(lo), hi - lo),
                )
            };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(lo, pa, pb))) {
                region.record_panic(payload);
            }
            region.finish_one();
        }
    }
}

/// Runner for [`Pool::jobs`]: claimed indices reserve one pop each from
/// a mutex-guarded job iterator, so jobs are consumed in claim order and
/// dropped (not run) once the region is cancelled.
struct JobsRunner<'a, T, F> {
    queue: Mutex<std::vec::IntoIter<T>>,
    body: &'a F,
}

impl<T, F> WorkerRun for JobsRunner<'_, T, F>
where
    T: Send,
    F: Fn(T) + Sync,
{
    fn run_worker(&self, region: &Region) {
        while region.claim().is_some() {
            let job = self
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .next()
                .expect("one queued job per claimed index");
            if region.is_cancelled() {
                region.finish_one();
                continue; // job dropped without running
            }
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| (self.body)(job))) {
                region.record_panic(payload);
            }
            region.finish_one();
        }
    }
}
