//! Dependency-free parallel runtime for the sparsification hot paths.
//!
//! The container builds fully offline, so instead of `rayon` this crate
//! provides a small **work-stealing chunk scheduler** on top of
//! `std::thread::scope`: a parallel region splits its index space into
//! chunks (several per worker), pushes them onto a shared queue, and
//! spawned workers repeatedly steal the next unclaimed chunk until the
//! queue drains. Dynamic stealing keeps workers busy even when per-item
//! cost is wildly skewed (β-layer BFS neighbourhoods vary by orders of
//! magnitude across candidate edges).
//!
//! # Determinism contract
//!
//! Every entry point partitions its **output** slice into disjoint
//! chunks and computes each element from read-only shared inputs, so
//! results are bit-identical for every thread count — including the
//! serial path, which runs the exact same per-chunk closure in chunk
//! order on the calling thread. Reductions ([`par_reduce_f64`]) fix the
//! chunk decomposition independently of the thread count and combine
//! partial results in chunk order, so they are deterministic for a given
//! chunk size (though not bit-identical to an unchunked serial fold).
//!
//! Per-worker scratch state (BFS stamps, voltage arrays, …) is created
//! once per worker by a caller-supplied factory, replicating the serial
//! code's reuse pattern without sharing mutable state across threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::Mutex;

/// Resolves a requested thread count: `Some(t)` is honoured (min 1),
/// `None` asks the OS for the available parallelism.
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(t) => t.max(1),
        None => std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1),
    }
}

/// Picks a chunk size giving each worker several chunks to steal while
/// keeping chunks at least `min_chunk` long (amortises scratch setup and
/// queue traffic for cheap per-item work).
pub fn chunk_size(len: usize, threads: usize, min_chunk: usize) -> usize {
    if len == 0 {
        return min_chunk.max(1);
    }
    let target = len.div_ceil(threads.max(1) * 4);
    target.max(min_chunk.max(1)).min(len)
}

/// Runs `body` over disjoint chunks of `out` on `threads` workers, each
/// worker owning one scratch value from `scratch`.
///
/// `body(scratch, start, chunk)` must fill `chunk` (which aliases
/// `out[start..start + chunk.len()]`) from read-only captured state; the
/// scheduler guarantees every element of `out` is visited exactly once.
/// With `threads <= 1` the chunks run sequentially on the calling thread
/// with a single scratch value — the same code path, so parallel and
/// serial results are bit-identical.
pub fn par_chunks_mut<T, S, B, F>(out: &mut [T], chunk: usize, threads: usize, scratch: B, body: F)
where
    T: Send,
    B: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    let chunk = chunk.max(1);
    if threads <= 1 || out.len() <= chunk {
        let mut s = scratch();
        let mut start = 0;
        for piece in out.chunks_mut(chunk) {
            let len = piece.len();
            body(&mut s, start, piece);
            start += len;
        }
        return;
    }
    let jobs: Vec<(usize, &mut [T])> = {
        let mut start = 0;
        out.chunks_mut(chunk)
            .map(|piece| {
                let job = (start, piece);
                start += job.1.len();
                job
            })
            .collect()
    };
    let workers = threads.min(jobs.len());
    let queue = Mutex::new(jobs.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut s = scratch();
                loop {
                    let job = queue.lock().expect("worker panicked holding job queue").next();
                    match job {
                        Some((start, piece)) => body(&mut s, start, piece),
                        None => break,
                    }
                }
            });
        }
    });
}

/// Runs `body` over paired disjoint chunks of two equally long slices —
/// the shape of fused vector updates (`x += α p`, `r -= α Ap`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_chunks2_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk: usize, threads: usize, body: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    assert_eq!(a.len(), b.len(), "paired slices must have equal length");
    let chunk = chunk.max(1);
    if threads <= 1 || a.len() <= chunk {
        let mut start = 0;
        for (pa, pb) in a.chunks_mut(chunk).zip(b.chunks_mut(chunk)) {
            let len = pa.len();
            body(start, pa, pb);
            start += len;
        }
        return;
    }
    let jobs: Vec<(usize, &mut [A], &mut [B])> = {
        let mut start = 0;
        a.chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .map(|(pa, pb)| {
                let job = (start, pa, pb);
                start += job.1.len();
                job
            })
            .collect()
    };
    let workers = threads.min(jobs.len());
    let queue = Mutex::new(jobs.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("worker panicked holding job queue").next();
                match job {
                    Some((start, pa, pb)) => body(start, pa, pb),
                    None => break,
                }
            });
        }
    });
}

/// Runs an explicit job list on `threads` workers through the same
/// work-stealing queue as the chunk entry points.
///
/// This is the escape hatch for parallel regions whose output cannot be
/// expressed as chunks of a single slice — e.g. the multi-RHS SpMM,
/// whose jobs are (column, row-range) tiles of a column-major block.
/// Jobs carry their own disjoint `&mut` state; with `threads <= 1` they
/// run in order on the calling thread, and because each job writes only
/// its own state the results are bit-identical for every thread count.
pub fn par_jobs<T, F>(jobs: Vec<T>, threads: usize, body: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if threads <= 1 || jobs.len() <= 1 {
        for job in jobs {
            body(job);
        }
        return;
    }
    let workers = threads.min(jobs.len());
    let queue = Mutex::new(jobs.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("worker panicked holding job queue").next();
                match job {
                    Some(job) => body(job),
                    None => break,
                }
            });
        }
    });
}

/// Chunked deterministic sum reduction: `Σ_i body(i)` over `0..len`,
/// computed as per-chunk partial sums combined in chunk order.
///
/// The chunk decomposition depends only on `chunk`, never on `threads`,
/// so the result is identical for every thread count.
pub fn par_reduce_f64<F>(len: usize, chunk: usize, threads: usize, body: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    let chunk = chunk.max(1);
    let nchunks = len.div_ceil(chunk);
    let mut partials = vec![0.0f64; nchunks];
    par_chunks_mut(
        &mut partials,
        1,
        threads,
        || (),
        |_, ci, slot| {
            let lo = ci * chunk;
            let hi = (lo + chunk).min(len);
            slot[0] = body(lo, hi);
        },
    );
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(Some(4)), 4);
        assert_eq!(effective_threads(Some(0)), 1);
        assert!(effective_threads(None) >= 1);
    }

    #[test]
    fn chunk_size_bounds() {
        assert_eq!(chunk_size(0, 4, 8), 8);
        let c = chunk_size(1000, 4, 1);
        assert!((1..=1000).contains(&c));
        assert!(chunk_size(10, 4, 64) == 10);
    }

    #[test]
    fn parallel_fill_matches_serial_exactly() {
        let f = |s: &mut u64, start: usize, out: &mut [f64]| {
            for (off, v) in out.iter_mut().enumerate() {
                *s += 1; // scratch is per-worker; value independence matters
                let i = start + off;
                *v = (i as f64).sin() * (i as f64 + 0.5).sqrt();
            }
        };
        let mut serial = vec![0.0; 1023];
        par_chunks_mut(&mut serial, 64, 1, || 0u64, f);
        for threads in [2, 3, 8] {
            let mut par = vec![0.0; 1023];
            par_chunks_mut(&mut par, 64, threads, || 0u64, f);
            assert!(
                serial.iter().zip(par.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed results"
            );
        }
    }

    #[test]
    fn every_element_visited_exactly_once() {
        let mut counts = vec![0u32; 509];
        par_chunks_mut(
            &mut counts,
            7,
            5,
            || (),
            |_, _, out| {
                for v in out.iter_mut() {
                    *v += 1;
                }
            },
        );
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        let n = 777;
        let p: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut x = vec![0.0f64; n];
        let mut r = vec![100.0f64; n];
        par_chunks2_mut(&mut x, &mut r, 32, 4, |start, xs, rs| {
            for off in 0..xs.len() {
                xs[off] += 2.0 * p[start + off];
                rs[off] -= p[start + off];
            }
        });
        for i in 0..n {
            assert_eq!(x[i], 2.0 * i as f64);
            assert_eq!(r[i], 100.0 - i as f64);
        }
    }

    #[test]
    fn jobs_all_run_exactly_once_for_every_thread_count() {
        for threads in [1usize, 2, 5] {
            let mut out = vec![0u32; 100];
            let jobs: Vec<(usize, &mut u32)> = out.iter_mut().enumerate().collect();
            par_jobs(jobs, threads, |(i, slot)| {
                *slot += 1 + i as u32;
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 1 + i as u32, "job {i} at {threads} threads");
            }
        }
        par_jobs(Vec::<usize>::new(), 4, |_| panic!("no jobs expected"));
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let body = |lo: usize, hi: usize| (lo..hi).map(|i| 1.0 / (1.0 + i as f64)).sum::<f64>();
        let base = par_reduce_f64(10_000, 128, 1, body);
        for threads in [2, 4, 7] {
            let v = par_reduce_f64(10_000, 128, threads, body);
            assert_eq!(base.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let mut empty: Vec<f64> = vec![];
        par_chunks_mut(&mut empty, 16, 4, || (), |_, _, _| panic!("no chunks expected"));
        assert_eq!(par_reduce_f64(0, 16, 4, |_, _| 1.0), 0.0);
        let mut one = vec![0.0f64];
        par_chunks_mut(
            &mut one,
            16,
            4,
            || (),
            |_, start, out| {
                assert_eq!(start, 0);
                out[0] = 42.0;
            },
        );
        assert_eq!(one[0], 42.0);
    }
}
