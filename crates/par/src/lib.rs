//! Dependency-free parallel runtime for the sparsification hot paths,
//! built around a **persistent work-stealing worker pool**.
//!
//! The container builds fully offline, so instead of `rayon` this crate
//! provides its own runtime: a process-global [`Pool`] (lazily created
//! on first use, sized by the `TRACERED_THREADS` environment variable or
//! the OS-reported parallelism) parks `size − 1` worker threads and
//! feeds them parallel *regions* through a shared injector queue. A
//! region splits its index space into chunks (several per worker),
//! workers and the calling thread repeatedly steal the next unclaimed
//! chunk until the queue drains, and the call returns once every chunk
//! has finished. Dynamic stealing keeps workers busy even when per-item
//! cost is wildly skewed (β-layer BFS neighbourhoods vary by orders of
//! magnitude across candidate edges); the persistent pool means entering
//! a region costs a queue push and a few wakeups instead of spawning and
//! joining OS threads — the difference between parallelism paying off at
//! `n ≈ 10⁴` or only at `n ≈ 10⁶` for the PCG vector kernels (see the
//! `spawn_overhead` microbench in `tracered-bench`).
//!
//! Entry points: [`par_chunks_mut`] (disjoint chunks of one slice),
//! [`par_chunks_mut_scratch`] (same, with a recycled per-worker
//! workspace), [`par_chunks2_mut`] (paired chunks of two slices — fused
//! PCG vector updates), [`par_jobs`] (an explicit job list), and
//! [`par_reduce_f64`] (chunk-ordered sum reduction). Each takes a
//! `threads` cap so callers' `threads: Option<usize>` knobs keep
//! working: `Some(1)` routes to the exact serial path, larger values cap
//! how many pool threads the region may occupy.
//!
//! # Determinism contract
//!
//! Every entry point partitions its **output** into disjoint jobs fixed
//! by the chunk size — never by the thread count — and computes each
//! element from read-only shared inputs, so results are bit-identical
//! for every thread count, including the serial path, which runs the
//! exact same per-chunk closure in chunk order on the calling thread.
//! Reductions ([`par_reduce_f64`]) combine per-chunk partial sums in
//! chunk order, so they are deterministic for a given chunk size (though
//! not bit-identical to an unchunked serial fold). The property tests in
//! `tracered-core` (`parallel_equivalence`), `tracered-solver` (block
//! PCG), and `tracered-partition` (partitioned determinism) pin this
//! contract down at thread counts {1, 2, 4}.
//!
//! # Scratch reuse
//!
//! Per-worker scratch state (BFS stamps, voltage arrays, probe buffers,
//! …) is created by a caller-supplied *recycling factory*
//! `Fn(Option<S>) -> S`: the factory receives this thread's cached
//! scratch of the same type from the previous region (if any) and may
//! reuse its allocations after validating dimensions, or build fresh.
//! Because pool workers are persistent, the cache survives across
//! regions — scoring sweeps and PCG iterations stop re-allocating their
//! arenas every region. See [`par_chunks_mut_scratch`].
//!
//! # Nesting
//!
//! Regions compose: a [`par_jobs`] job may itself call
//! [`par_chunks_mut`] (partition-parallel densification scores each
//! partition in parallel *inside* a partition job). The inner region's
//! owner claims inner jobs itself — work-stealing from within a job —
//! and idle workers help, so nesting cannot deadlock: a thread waiting
//! on a region is only ever waiting on jobs that some live thread is
//! actively executing.
//!
//! # Panics
//!
//! A panic in a job body cancels its region (remaining jobs are
//! discarded), propagates to the region's caller once the region is
//! quiescent, and leaves the pool healthy — workers survive and later
//! regions run normally. The `tracered-fi` chaos suite exercises this
//! contract under deterministic fault injection: seed-chosen jobs panic
//! mid-region, the caller catches the propagated panic, and a full
//! follow-up region must complete on the same pool.

#![deny(unsafe_code)]
#![warn(missing_docs)]

use std::num::NonZeroUsize;
use std::sync::OnceLock;

mod pool;
mod scratch;

pub use pool::Pool;

/// Environment variable overriding the global pool size (total threads,
/// calling thread included). Read once, when the global pool is first
/// used; values that do not parse as a positive integer are ignored in
/// favour of the OS-reported parallelism.
pub const THREADS_ENV: &str = "TRACERED_THREADS";

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-global pool used by the free functions of this crate.
///
/// Created lazily on first use: `size = TRACERED_THREADS` if set and
/// valid, else [`std::thread::available_parallelism`]; `size − 1` worker
/// threads are spawned once and parked between regions. Explicit
/// [`Pool`] handles (tests, isolation) are independent of this one.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(default_pool_size()))
}

/// Size of the global pool — the resolved thread budget that `None`
/// thread knobs map to. Initializes the pool if needed.
///
/// Benchmarks and [`IterationStats`-style](fn@global_pool_size) reports
/// record this value so result files are self-describing on any
/// hardware.
pub fn global_pool_size() -> usize {
    global().size()
}

/// Worker threads the global pool has ever created: `size − 1` after
/// first use, `0` before — and **never more**, regardless of how many
/// parallel regions have run. This is the instrumentation hook proving
/// worker-thread creation is O(1) per process.
pub fn global_threads_spawned() -> usize {
    GLOBAL.get().map(Pool::threads_spawned).unwrap_or(0)
}

fn default_pool_size() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Resolves a requested thread count: `Some(t)` is honoured (min 1),
/// `None` resolves to the global pool size (the `TRACERED_THREADS`
/// override or the OS-reported parallelism).
///
/// ```
/// assert_eq!(tracered_par::effective_threads(Some(4)), 4);
/// assert_eq!(tracered_par::effective_threads(Some(0)), 1);
/// assert!(tracered_par::effective_threads(None) >= 1);
/// ```
pub fn effective_threads(requested: Option<usize>) -> usize {
    match requested {
        Some(t) => t.max(1),
        None => global_pool_size(),
    }
}

/// Picks a chunk size giving each worker several chunks to steal while
/// keeping chunks at least `min_chunk` long (amortises scratch setup and
/// queue traffic for cheap per-item work).
///
/// The result depends only on `len`, `threads`, and `min_chunk` — pass a
/// fixed `threads` when thread-count-invariant chunking is required (as
/// [`par_reduce_f64`] callers do).
pub fn chunk_size(len: usize, threads: usize, min_chunk: usize) -> usize {
    if len == 0 {
        return min_chunk.max(1);
    }
    let target = len.div_ceil(threads.max(1) * 4);
    target.max(min_chunk.max(1)).min(len)
}

/// Runs `body` over disjoint chunks of `out` on up to `threads` threads
/// of the [global pool](global).
///
/// `body(start, chunk)` must fill `chunk` (which aliases
/// `out[start..start + chunk.len()]`) from read-only captured state; the
/// scheduler guarantees every element of `out` is visited exactly once.
/// With `threads <= 1` the chunks run sequentially on the calling thread
/// — the same code path in the same order, so parallel and serial
/// results are bit-identical.
///
/// ```
/// let mut squares = vec![0u64; 1000];
/// tracered_par::par_chunks_mut(&mut squares, 128, 4, |start, chunk| {
///     for (off, v) in chunk.iter_mut().enumerate() {
///         let i = (start + off) as u64;
///         *v = i * i;
///     }
/// });
/// assert_eq!(squares[31], 31 * 31);
/// ```
pub fn par_chunks_mut<T, F>(out: &mut [T], chunk: usize, threads: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    global().chunks_mut(out, chunk, threads, body);
}

/// [`par_chunks_mut`] with a per-worker scratch workspace, recycled
/// across regions through a per-thread cache.
///
/// Each participating thread obtains one scratch value by calling
/// `factory(cached)`, where `cached` is that thread's scratch of type
/// `S` left over from a previous region (or `None`). The factory owns
/// validation: the cached value is a **capacity donor only** — reuse its
/// allocations when the dimensions still fit, rebuild otherwise, and
/// return a value satisfying the body's preconditions either way.
/// Scratch must hold workspace, never results: outputs go through the
/// `out` chunks, so scratch reuse cannot affect values and the
/// determinism contract holds.
///
/// ```
/// struct Arena { marks: Vec<u32> }
/// let n = 500;
/// let mut out = vec![0u32; n];
/// tracered_par::par_chunks_mut_scratch(
///     &mut out,
///     64,
///     4,
///     |cached: Option<Arena>| match cached {
///         // Reuse the allocation when it still fits this region.
///         Some(a) if a.marks.len() == n => a,
///         _ => Arena { marks: vec![0; n] },
///     },
///     |arena, start, chunk| {
///         for (off, v) in chunk.iter_mut().enumerate() {
///             arena.marks[start + off] += 1; // workspace, not output
///             *v = (start + off) as u32;
///         }
///     },
/// );
/// assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32));
/// ```
pub fn par_chunks_mut_scratch<T, S, B, F>(
    out: &mut [T],
    chunk: usize,
    threads: usize,
    factory: B,
    body: F,
) where
    T: Send,
    S: 'static,
    B: Fn(Option<S>) -> S + Sync,
    F: Fn(&mut S, usize, &mut [T]) + Sync,
{
    global().chunks_mut_scratch(out, chunk, threads, factory, body);
}

/// Runs `body` over paired disjoint chunks of two equally long slices —
/// the shape of fused vector updates (`x += α p`, `r -= α Ap`) — on up
/// to `threads` threads of the [global pool](global).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn par_chunks2_mut<A, B, F>(a: &mut [A], b: &mut [B], chunk: usize, threads: usize, body: F)
where
    A: Send,
    B: Send,
    F: Fn(usize, &mut [A], &mut [B]) + Sync,
{
    global().chunks2_mut(a, b, chunk, threads, body);
}

/// Runs an explicit job list on up to `threads` threads of the
/// [global pool](global), through the same work-stealing queue as the
/// chunk entry points.
///
/// This is the escape hatch for parallel regions whose output cannot be
/// expressed as chunks of a single slice — e.g. the multi-RHS SpMM,
/// whose jobs are (column, row-range) tiles of a column-major block, or
/// partition-parallel densification, whose jobs own one partition each.
/// Jobs carry their own disjoint `&mut` state; with `threads <= 1` they
/// run in order on the calling thread, and because each job writes only
/// its own state the results are bit-identical for every thread count.
/// Jobs may themselves enter nested parallel regions.
pub fn par_jobs<T, F>(jobs: Vec<T>, threads: usize, body: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    global().jobs(jobs, threads, body);
}

/// Chunked deterministic sum reduction: `Σ body(lo, hi)` over
/// consecutive `chunk`-sized ranges of `0..len`, partial sums combined
/// in chunk order on up to `threads` threads of the
/// [global pool](global).
///
/// The chunk decomposition depends only on `chunk`, never on `threads`,
/// so the result is bit-identical for every thread count.
///
/// ```
/// let dot = tracered_par::par_reduce_f64(10_000, 1024, 4, |lo, hi| {
///     (lo..hi).map(|i| ((i + 1) as f64).recip().powi(2)).sum()
/// });
/// assert!((dot - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-3);
/// ```
pub fn par_reduce_f64<F>(len: usize, chunk: usize, threads: usize, body: F) -> f64
where
    F: Fn(usize, usize) -> f64 + Sync,
{
    global().reduce_f64(len, chunk, threads, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_threads_resolution() {
        assert_eq!(effective_threads(Some(4)), 4);
        assert_eq!(effective_threads(Some(0)), 1);
        assert!(effective_threads(None) >= 1);
        assert_eq!(effective_threads(None), global_pool_size());
    }

    #[test]
    fn chunk_size_bounds() {
        assert_eq!(chunk_size(0, 4, 8), 8);
        let c = chunk_size(1000, 4, 1);
        assert!((1..=1000).contains(&c));
        assert!(chunk_size(10, 4, 64) == 10);
        // Degenerate knobs fall back to sane minima.
        assert_eq!(chunk_size(0, 0, 0), 1);
        assert!(chunk_size(100, 0, 1) >= 1);
    }

    #[test]
    fn parallel_fill_matches_serial_exactly() {
        let pool = Pool::new(4);
        let f = |s: &mut u64, start: usize, out: &mut [f64]| {
            for (off, v) in out.iter_mut().enumerate() {
                *s += 1; // scratch is per-worker; value independence matters
                let i = start + off;
                *v = (i as f64).sin() * (i as f64 + 0.5).sqrt();
            }
        };
        let mut serial = vec![0.0; 1023];
        pool.chunks_mut_scratch(&mut serial, 64, 1, |_| 0u64, f);
        for threads in [2, 3, 8] {
            let mut par = vec![0.0; 1023];
            pool.chunks_mut_scratch(&mut par, 64, threads, |_| 0u64, f);
            assert!(
                serial.iter().zip(par.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed results"
            );
        }
    }

    #[test]
    fn every_element_visited_exactly_once() {
        let pool = Pool::new(5);
        let mut counts = vec![0u32; 509];
        pool.chunks_mut(&mut counts, 7, 5, |_, out| {
            for v in out.iter_mut() {
                *v += 1;
            }
        });
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn paired_chunks_stay_aligned() {
        let pool = Pool::new(4);
        let n = 777;
        let p: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut x = vec![0.0f64; n];
        let mut r = vec![100.0f64; n];
        pool.chunks2_mut(&mut x, &mut r, 32, 4, |start, xs, rs| {
            for off in 0..xs.len() {
                xs[off] += 2.0 * p[start + off];
                rs[off] -= p[start + off];
            }
        });
        for i in 0..n {
            assert_eq!(x[i], 2.0 * i as f64);
            assert_eq!(r[i], 100.0 - i as f64);
        }
    }

    #[test]
    fn jobs_all_run_exactly_once_for_every_thread_count() {
        let pool = Pool::new(5);
        for threads in [1usize, 2, 5] {
            let mut out = vec![0u32; 100];
            let jobs: Vec<(usize, &mut u32)> = out.iter_mut().enumerate().collect();
            pool.jobs(jobs, threads, |(i, slot)| {
                *slot += 1 + i as u32;
            });
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, 1 + i as u32, "job {i} at {threads} threads");
            }
        }
        pool.jobs(Vec::<usize>::new(), 4, |_| panic!("no jobs expected"));
    }

    #[test]
    fn reduction_is_thread_count_invariant() {
        let pool = Pool::new(7);
        let body = |lo: usize, hi: usize| (lo..hi).map(|i| 1.0 / (1.0 + i as f64)).sum::<f64>();
        let base = pool.reduce_f64(10_000, 128, 1, body);
        for threads in [2, 4, 7] {
            let v = pool.reduce_f64(10_000, 128, threads, body);
            assert_eq!(base.to_bits(), v.to_bits());
        }
        // The global-pool free function agrees with the explicit pool.
        assert_eq!(base.to_bits(), par_reduce_f64(10_000, 128, 2, body).to_bits());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(4);
        let mut empty: Vec<f64> = vec![];
        pool.chunks_mut(&mut empty, 16, 4, |_, _| panic!("no chunks expected"));
        assert_eq!(pool.reduce_f64(0, 16, 4, |_, _| 1.0), 0.0);
        let mut one = vec![0.0f64];
        pool.chunks_mut(&mut one, 16, 4, |start, out| {
            assert_eq!(start, 0);
            out[0] = 42.0;
        });
        assert_eq!(one[0], 42.0);
    }

    #[test]
    fn free_functions_route_through_global_pool() {
        let mut out = vec![0usize; 300];
        par_chunks_mut(&mut out, 16, 4, |start, piece| {
            for (off, v) in piece.iter_mut().enumerate() {
                *v = start + off;
            }
        });
        assert!(out.iter().enumerate().all(|(i, &v)| v == i));
        // The global pool exists now and never spawned more than size-1.
        assert!(global_threads_spawned() <= global_pool_size().saturating_sub(1));
    }
}
