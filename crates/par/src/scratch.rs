//! Per-thread scratch cache: workspaces survive across parallel regions.
//!
//! Pool workers are persistent threads, so a worker that built a BFS
//! arena for one scoring region can hand the same allocation to the
//! next region instead of re-allocating — that is what makes the
//! `Fn(Option<S>) -> S` recycling factories of
//! [`crate::par_chunks_mut_scratch`] pay off. The cache is a plain
//! `thread_local`, which covers every participant uniformly: pool
//! workers, the region owner (which claims jobs like a worker), and the
//! serial path.
//!
//! One slot is kept per scratch **type** per thread. `take` removes the
//! slot (so a nested region of the same type on the same thread gets a
//! fresh build rather than an aliased one) and `store` puts the value
//! back when the claim loop exits. Cached values are *capacity donors
//! only*: the recycling factory owns validation (dimension checks,
//! stamp resets) and must return a scratch that satisfies its body's
//! preconditions regardless of what it was handed.

use std::any::{Any, TypeId};
use std::cell::RefCell;

thread_local! {
    /// Linear map from scratch type to its cached value. Call sites use
    /// a handful of distinct scratch types, so a `Vec` beats a hash map.
    static CACHE: RefCell<Vec<(TypeId, Box<dyn Any>)>> = const { RefCell::new(Vec::new()) };
}

/// Removes and returns this thread's cached scratch of type `S`, if any.
pub(crate) fn take<S: 'static>() -> Option<S> {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let id = TypeId::of::<S>();
        let pos = cache.iter().position(|(t, _)| *t == id)?;
        let (_, boxed) = cache.swap_remove(pos);
        boxed.downcast::<S>().ok().map(|b| *b)
    })
}

/// Caches `scratch` for this thread, replacing any previous value of the
/// same type.
pub(crate) fn store<S: 'static>(scratch: S) {
    CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let id = TypeId::of::<S>();
        if let Some(slot) = cache.iter_mut().find(|(t, _)| *t == id) {
            slot.1 = Box::new(scratch);
        } else {
            cache.push((id, Box::new(scratch)));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Marked(u32, Vec<f64>);

    #[test]
    fn take_returns_what_store_cached() {
        assert!(take::<Marked>().is_none());
        store(Marked(7, vec![1.0; 16]));
        let got = take::<Marked>().expect("cached value present");
        assert_eq!(got.0, 7);
        assert_eq!(got.1.len(), 16);
        assert!(take::<Marked>().is_none(), "take removes the slot");
    }

    #[test]
    fn store_replaces_same_type() {
        store(Marked(1, Vec::new()));
        store(Marked(2, Vec::new()));
        assert_eq!(take::<Marked>().expect("slot present").0, 2);
    }
}
