//! Anchor crate for the repository-root `tests/` directory; see the
//! `[[test]]` entries in `Cargo.toml`. Contains no library code.
