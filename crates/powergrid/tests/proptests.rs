//! Property-based tests for the power-grid substrate.

use proptest::prelude::*;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    dc_operating_point, probe_pair, simulate_direct, IntegrationScheme, TransientConfig,
};
use tracered_powergrid::waveform::{merged_time_grid, PulseWaveform};

fn arb_pulse() -> impl Strategy<Value = PulseWaveform> {
    (1u32..6, 1u32..4, 0u32..5, 1u32..4, 8u32..30, 0.0f64..0.01).prop_map(
        |(delay, rise, width, fall, period, amplitude)| {
            let q = 5e-11; // 50 ps lattice
            let rise = rise as f64 * q;
            let width = width as f64 * q;
            let fall = fall as f64 * q;
            let period = (period as f64 * q).max(rise + width + fall + q);
            PulseWaveform { delay: delay as f64 * q, rise, width, fall, period, amplitude }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pulse_value_is_bounded_and_periodic(w in arb_pulse(), t in 0.0f64..5e-9) {
        let v = w.value(t);
        prop_assert!((0.0..=w.amplitude + 1e-15).contains(&v));
        if t >= w.delay {
            prop_assert!((w.value(t) - w.value(t + w.period)).abs() < 1e-12 * w.amplitude.max(1e-12));
        }
    }

    #[test]
    fn pulse_is_zero_exactly_at_cycle_boundaries(w in arb_pulse()) {
        prop_assert_eq!(w.value(w.delay), 0.0);
        let active = w.rise + w.width + w.fall;
        if active < w.period {
            prop_assert!(w.value(w.delay + active + 1e-15).abs() < 1e-9 * w.amplitude.max(1e-12));
        }
    }

    #[test]
    fn merged_grid_contains_all_breakpoints(
        ws in proptest::collection::vec(arb_pulse(), 1..5),
        max_step in 1e-10f64..5e-10,
    ) {
        let t_end = 3e-9;
        let grid = merged_time_grid(&ws, t_end, max_step);
        prop_assert_eq!(grid[0], 0.0);
        prop_assert!((grid.last().unwrap() - t_end).abs() < 1e-18);
        let tol = 1e-12 * t_end;
        for w in &ws {
            for bp in w.breakpoints(t_end) {
                prop_assert!(
                    grid.iter().any(|&t| (t - bp).abs() <= tol),
                    "missing breakpoint {bp}"
                );
            }
        }
        for pair in grid.windows(2) {
            prop_assert!(pair[1] > pair[0]);
            prop_assert!(pair[1] - pair[0] <= max_step + 1e-18);
        }
    }

    #[test]
    fn dc_voltages_bounded_by_vdd(seed in 0u64..50) {
        let pg = synthesize(&SynthConfig { mesh: 8, seed, ..Default::default() });
        let v = dc_operating_point(&pg).unwrap();
        for &x in &v {
            prop_assert!(x > 0.0 && x <= pg.vdd() + 1e-9);
        }
    }

    #[test]
    fn transient_conserves_physicality_for_both_schemes(seed in 0u64..12) {
        let pg = synthesize(&SynthConfig { mesh: 7, seed, source_fraction: 0.3, ..Default::default() });
        let (near, far) = probe_pair(&pg);
        for scheme in [IntegrationScheme::BackwardEuler, IntegrationScheme::Trapezoidal] {
            let out = simulate_direct(
                &pg,
                &TransientConfig {
                    t_end: 5e-10,
                    fixed_step: Some(2.5e-11),
                    scheme,
                    ..Default::default()
                },
                &[near, far],
            )
            .unwrap();
            for trace in &out.probes {
                for &v in trace {
                    // Passive RC network fed by VDD and current sinks:
                    // voltages stay in (0, VDD] up to small numerical slack.
                    prop_assert!(v > 0.0 && v <= pg.vdd() * 1.001, "{scheme:?}: voltage {v}");
                }
            }
        }
    }
}
