//! N-1/N-k contingency screening over incremental factor updates.
//!
//! The canonical production workload of the paper's solver: given a DC
//! operating grid, sweep a list of [`Outage`] perturbations — line
//! removals, conductance reweights, load steps — and report the
//! post-contingency voltage profile of each. Every line outage or
//! reweight is a *rank-1* perturbation of the conductance Laplacian
//! (`G' = G + Δw (e_u − e_v)(e_u − e_v)ᵀ`), so
//! [`simulate_contingency_batch`] screens it by updating one shared
//! Cholesky factor in place ([`tracered_sparse::update`]) instead of
//! refactorizing per outage, and reverts bit-exactly through the
//! factor's undo journal before moving to the next outage. Load steps
//! leave `G` untouched and are batched through the blocked multi-RHS
//! machinery (direct substitution or `block_pcg`, per
//! [`ContingencyMethod`]).
//!
//! Failure is data, not control flow: a disconnecting outage (removing
//! a bridge into a pad-free region makes `G'` singular) is classified
//! as [`OutageFailureKind::SingularPerturbation`] — detected either by
//! the downdate's typed loss-of-positive-definiteness error or by the
//! post-solve residual gate after the regularized-refactorization
//! fallback — and the sweep continues; survivors are solved against the
//! bit-identical base factor. [`simulate_contingency_refactor`] is the
//! naive refactor-per-outage reference loop that the equivalence suite
//! (and the `contingency_scaling --check` bench gate) holds the batch
//! path to, outage for outage.
//!
//! An optional [`EpochHook`] observes every applied/reverted
//! matrix-level perturbation so the service layer can bump its epoch
//! and invalidate cached factors while a perturbation is in force.

use std::time::Instant;

use tracered_solver::precond::CholPreconditioner;
use tracered_solver::{block_pcg, PcgOptions, TerminationReason};
use tracered_sparse::order::Ordering;
use tracered_sparse::{
    factorize_regularized_kernel, BoostSchedule, CholeskyFactor, CscMatrix, KernelVariant,
    MultiVec, SparseError,
};

use crate::netlist::PowerGrid;

/// One contingency to screen.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outage {
    /// Remove mesh edge `edge` entirely (the N-1 line outage).
    LineOutage {
        /// Mesh edge id in [`crate::PowerGrid::graph`].
        edge: usize,
    },
    /// Change mesh edge `edge`'s conductance to `new_weight` siemens.
    Reweight {
        /// Mesh edge id.
        edge: usize,
        /// The new conductance (must be finite and non-negative).
        new_weight: f64,
    },
    /// Additional current draw at `node` (amps, positive = more load).
    /// Perturbs only the right-hand side, not the matrix.
    LoadStep {
        /// Grid node index.
        node: usize,
        /// Extra drawn current (must be finite).
        extra_current: f64,
    },
}

/// Why an outage was rejected before any numeric work.
///
/// Deliberately integer-only (no float payloads): failure
/// classifications compare bitwise between the batch and the
/// refactor-reference paths, and a NaN payload would break `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InvalidOutageKind {
    /// Edge id past the mesh edge count.
    EdgeOutOfBounds {
        /// The offending edge id.
        edge: usize,
        /// Edges in the mesh.
        num_edges: usize,
    },
    /// Reweight target is NaN or infinite.
    NonFiniteWeight {
        /// The offending edge id.
        edge: usize,
    },
    /// Reweight target is negative (a negative conductance).
    NegativeWeight {
        /// The offending edge id.
        edge: usize,
    },
    /// Node id past the grid node count.
    NodeOutOfBounds {
        /// The offending node id.
        node: usize,
        /// Nodes in the grid.
        num_nodes: usize,
    },
    /// Load-step current is NaN or infinite.
    NonFiniteCurrent {
        /// The offending node id.
        node: usize,
    },
}

/// Why one outage failed. The downdate-refused, refactorization-refused
/// and residual-rejected routes to a singular perturbation all collapse
/// into [`OutageFailureKind::SingularPerturbation`]: *which mechanism*
/// detected it depends on rounding, *that the outage disconnects the
/// grid* does not, and only the latter is part of the classification
/// contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum OutageFailureKind {
    /// Rejected by validation before any numerics.
    Invalid(InvalidOutageKind),
    /// The perturbed conductance matrix is not positive definite (e.g.
    /// the outage disconnects a pad-free region), or its solves fail
    /// the residual gate.
    SingularPerturbation,
    /// The iterative solver for a load-step column broke down.
    SolverBreakdown {
        /// The solver's termination classification.
        reason: TerminationReason,
    },
    /// A non-finite voltage appeared in an otherwise successful solve.
    NonFiniteState,
}

/// One failed outage: which, and why.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageFailure {
    /// Index into the sweep's outage list.
    pub outage: usize,
    /// The classification.
    pub kind: OutageFailureKind,
}

/// The post-contingency solve of one surviving outage.
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSolve {
    /// Index into the sweep's outage list.
    pub outage: usize,
    /// Post-contingency voltages at the requested probe nodes.
    pub probes: Vec<f64>,
    /// Smallest post-contingency node voltage (droop worst case).
    pub min_voltage: f64,
    /// Largest post-contingency node voltage.
    pub max_voltage: f64,
    /// Relative residual of the solve against the *true* perturbed
    /// system (the classification gate this solve passed).
    pub rel_residual: f64,
    /// PCG iterations (0 for direct substitution).
    pub iterations: usize,
    /// Whether the batch path had to fall back from an incremental
    /// update to a regularized refactorization for this outage.
    pub used_fallback: bool,
    /// Diagonal boost the fallback factorization applied (0 when
    /// unboosted or no fallback was taken).
    pub applied_shift: f64,
}

/// Per-outage verdict: a solve or a classified failure — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum OutageOutcome {
    /// The outage was screened successfully.
    Completed(OutageSolve),
    /// The outage failed with a typed classification.
    Failed(OutageFailure),
}

impl OutageOutcome {
    /// `true` for [`OutageOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, OutageOutcome::Completed(_))
    }

    /// The solve, if completed.
    pub fn result(&self) -> Option<&OutageSolve> {
        match self {
            OutageOutcome::Completed(s) => Some(s),
            OutageOutcome::Failed(_) => None,
        }
    }

    /// The failure, if failed.
    pub fn failure(&self) -> Option<&OutageFailure> {
        match self {
            OutageOutcome::Completed(_) => None,
            OutageOutcome::Failed(f) => Some(f),
        }
    }
}

/// One applied or reverted matrix-level perturbation, as seen by an
/// [`EpochHook`].
#[derive(Debug, Clone, Copy)]
pub struct OutageEvent {
    /// Index into the sweep's outage list.
    pub outage: usize,
    /// The sweep-local epoch after this transition (monotonically
    /// increasing from [`ContingencyConfig::epoch_base`]).
    pub epoch: u64,
    /// Whether the perturbation was realized by a refactorization
    /// fallback instead of an in-place factor update.
    pub used_fallback: bool,
}

/// Observer of the sweep's epoch transitions. The service layer
/// implements this to bump its published epoch whenever a perturbation
/// is in force, so requests pinned to the pre-outage topology are
/// rejected as stale instead of silently answered from an invalidated
/// factor. Load steps never fire it — they do not touch the matrix.
pub trait EpochHook {
    /// A matrix-level perturbation took effect.
    fn outage_applied(&self, event: &OutageEvent);
    /// The perturbation was reverted; the base topology is current
    /// again (bit-identical to before the outage).
    fn outage_reverted(&self, event: &OutageEvent);
}

/// How load-step (RHS-only) outages are solved. Matrix-perturbing
/// outages always solve directly through the updated factor — it *is*
/// an exact factorization of the perturbed system — so the method
/// choice only steers the batched load-step group.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ContingencyMethod {
    /// Blocked triangular substitution against the base factor.
    Direct,
    /// Blocked PCG ([`tracered_solver::block_pcg`]) preconditioned by
    /// the base factor.
    Pcg {
        /// Relative residual target per column.
        rel_tolerance: f64,
        /// Iteration cap per column.
        max_iterations: usize,
    },
}

/// Tuning knobs of a contingency sweep.
#[derive(Debug, Clone)]
pub struct ContingencyConfig {
    /// Solver for the load-step group (see [`ContingencyMethod`]).
    pub method: ContingencyMethod,
    /// Worker threads for factorizations (base and fallback). The
    /// factor kernels are bit-identical at every count.
    pub factor_threads: usize,
    /// Worker threads for the PCG kernels of the load-step group.
    pub solver_threads: usize,
    /// Boost ladder for the refactorization fallback.
    pub boost: BoostSchedule,
    /// Relative-residual gate separating a usable post-contingency
    /// solve from the garbage a boosted factorization of a singular
    /// perturbation produces.
    pub residual_tol: f64,
    /// Starting epoch reported through the [`EpochHook`].
    pub epoch_base: u64,
    /// Numeric Cholesky kernel for every factorization in the sweep
    /// (base factor, fallbacks, and the refactor reference).
    pub kernel: KernelVariant,
}

impl Default for ContingencyConfig {
    fn default() -> Self {
        ContingencyConfig {
            method: ContingencyMethod::Direct,
            factor_threads: 1,
            solver_threads: 1,
            boost: BoostSchedule::default(),
            residual_tol: 1e-8,
            epoch_base: 0,
            kernel: KernelVariant::Scalar,
        }
    }
}

/// Bookkeeping of one sweep, mirroring the PR 6 `degraded_fallbacks`
/// convention: every degradation is counted, none is silent.
#[derive(Debug, Clone, Copy, Default)]
pub struct ContingencyReport {
    /// Outages requested.
    pub outages: usize,
    /// Matrix perturbations realized by an in-place rank-1
    /// update/downdate.
    pub applied_updates: usize,
    /// Matrix perturbations that fell back from an update to a
    /// regularized refactorization (update refused the perturbation).
    pub update_fallbacks: usize,
    /// Full factorizations performed after the base factor (fallbacks
    /// here; every matrix outage in the refactor reference).
    pub refactorizations: usize,
    /// RHS-only outages (load steps) served by the blocked group solve.
    pub rhs_only: usize,
    /// Outages screened successfully.
    pub completed: usize,
    /// Outages that failed with a typed classification.
    pub failures: usize,
    /// Epoch counter after the sweep (== `epoch_base` iff no matrix
    /// perturbation was applied).
    pub final_epoch: u64,
    /// Seconds spent factorizing the base conductance matrix.
    pub base_factor_seconds: f64,
    /// Seconds spent sweeping (everything after the base factor).
    pub sweep_seconds: f64,
}

/// Result of a contingency sweep: one [`OutageOutcome`] per requested
/// outage, in request order, plus the sweep accounting.
#[derive(Debug, Clone)]
pub struct ContingencySweep {
    /// Per-outage verdicts, index-aligned with the request list.
    pub outcomes: Vec<OutageOutcome>,
    /// Sweep accounting.
    pub report: ContingencyReport,
}

/// A validated outage, reduced to its numeric effect.
enum Perturb {
    /// `G' = G + dw (e_u − e_v)(e_u − e_v)ᵀ`.
    Matrix { u: usize, v: usize, dw: f64 },
    /// `b' = b − extra · e_node` (more drawn current lowers the RHS).
    Rhs { node: usize, extra: f64 },
}

fn validate(pg: &PowerGrid, outage: &Outage) -> Result<Perturb, InvalidOutageKind> {
    let g = pg.graph();
    match *outage {
        Outage::LineOutage { edge } => {
            if edge >= g.num_edges() {
                return Err(InvalidOutageKind::EdgeOutOfBounds { edge, num_edges: g.num_edges() });
            }
            let e = g.edge(edge);
            Ok(Perturb::Matrix { u: e.u, v: e.v, dw: -e.weight })
        }
        Outage::Reweight { edge, new_weight } => {
            if edge >= g.num_edges() {
                return Err(InvalidOutageKind::EdgeOutOfBounds { edge, num_edges: g.num_edges() });
            }
            if !new_weight.is_finite() {
                return Err(InvalidOutageKind::NonFiniteWeight { edge });
            }
            if new_weight < 0.0 {
                return Err(InvalidOutageKind::NegativeWeight { edge });
            }
            let e = g.edge(edge);
            Ok(Perturb::Matrix { u: e.u, v: e.v, dw: new_weight - e.weight })
        }
        Outage::LoadStep { node, extra_current } => {
            if node >= pg.num_nodes() {
                return Err(InvalidOutageKind::NodeOutOfBounds { node, num_nodes: pg.num_nodes() });
            }
            if !extra_current.is_finite() {
                return Err(InvalidOutageKind::NonFiniteCurrent { node });
            }
            Ok(Perturb::Rhs { node, extra: extra_current })
        }
    }
}

/// `G + dw (e_u − e_v)(e_u − e_v)ᵀ` assembled by adjusting the four
/// affected entries (all present in a mesh Laplacian's pattern).
fn perturbed_matrix(g: &CscMatrix, u: usize, v: usize, dw: f64) -> CscMatrix {
    let mut gp = g.clone();
    for (r, c, delta) in [(u, u, dw), (v, v, dw), (u, v, -dw), (v, u, -dw)] {
        let idx = {
            let (rows, _) = gp.col(c);
            gp.colptr()[c] + rows.binary_search(&r).expect("mesh edge entry present in G")
        };
        gp.values_mut()[idx] += delta;
    }
    gp
}

/// Relative residual of `x` against the rank-1-perturbed system
/// `(G + dw b bᵀ) x = rhs` without assembling the perturbed matrix: one
/// base SpMV plus an `O(1)` correction.
fn perturbed_rel_residual(
    g: &CscMatrix,
    u: usize,
    v: usize,
    dw: f64,
    x: &[f64],
    rhs: &[f64],
    rhs_inf: f64,
) -> f64 {
    let mut r = g.matvec(x);
    let flow = dw * (x[u] - x[v]);
    r[u] += flow;
    r[v] -= flow;
    let mut worst = 0.0f64;
    for (ri, bi) in r.iter().zip(rhs) {
        worst = worst.max((ri - bi).abs());
    }
    worst / rhs_inf
}

/// Classifies a completed direct solve: non-finite state, then the
/// residual gate, then success. Shared verbatim by the batch and
/// refactor-reference paths so their classifications agree bitwise.
#[allow(clippy::too_many_arguments)]
fn classify_solve(
    outage: usize,
    x: Vec<f64>,
    rel_residual: f64,
    residual_tol: f64,
    probes: &[usize],
    iterations: usize,
    used_fallback: bool,
    applied_shift: f64,
) -> OutageOutcome {
    if x.iter().any(|v| !v.is_finite()) {
        return OutageOutcome::Failed(OutageFailure {
            outage,
            kind: OutageFailureKind::NonFiniteState,
        });
    }
    // NaN residuals fail the gate too.
    if rel_residual.is_nan() || rel_residual > residual_tol {
        return OutageOutcome::Failed(OutageFailure {
            outage,
            kind: OutageFailureKind::SingularPerturbation,
        });
    }
    let mut min_v = f64::INFINITY;
    let mut max_v = f64::NEG_INFINITY;
    for &vi in &x {
        min_v = min_v.min(vi);
        max_v = max_v.max(vi);
    }
    OutageOutcome::Completed(OutageSolve {
        outage,
        probes: probes.iter().map(|&p| x[p]).collect(),
        min_voltage: min_v,
        max_voltage: max_v,
        rel_residual,
        iterations,
        used_fallback,
        applied_shift,
    })
}

/// The regularized-refactorization route for one matrix outage: used as
/// the batch path's fallback when the incremental update refuses the
/// perturbation, and for every matrix outage of the refactor reference.
#[allow(clippy::too_many_arguments)]
fn solve_by_refactor(
    i: usize,
    g: &CscMatrix,
    u: usize,
    v: usize,
    dw: f64,
    rhs: &[f64],
    rhs_inf: f64,
    probes: &[usize],
    cfg: &ContingencyConfig,
    used_fallback: bool,
    report: &mut ContingencyReport,
) -> Result<OutageOutcome, SparseError> {
    let gp = perturbed_matrix(g, u, v, dw);
    report.refactorizations += 1;
    match factorize_regularized_kernel(
        &gp,
        Ordering::MinDegree,
        cfg.kernel,
        cfg.factor_threads,
        &cfg.boost,
    ) {
        Ok(reg) => {
            let x = reg.factor.solve(rhs);
            let rel = gp.residual_inf_norm(&x, rhs) / rhs_inf;
            Ok(classify_solve(
                i,
                x,
                rel,
                cfg.residual_tol,
                probes,
                0,
                used_fallback,
                reg.applied_shift,
            ))
        }
        Err(SparseError::NotPositiveDefinite { .. }) => Ok(OutageOutcome::Failed(OutageFailure {
            outage: i,
            kind: OutageFailureKind::SingularPerturbation,
        })),
        Err(e) => Err(e),
    }
}

/// Screens `outages` against `pg`'s DC operating point by incremental
/// factor update/downdate, reverting each matrix perturbation bit-
/// exactly before the next. Load steps are batched through one blocked
/// multi-RHS solve. `probes` selects the nodes whose post-contingency
/// voltages each [`OutageSolve`] carries.
///
/// Individual outages never abort the sweep: a disconnecting outage, a
/// breakdown, or an out-of-bounds request is a classified
/// [`OutageOutcome::Failed`] and the remaining outages are screened
/// against the unperturbed base factor, bit-identical to a sweep
/// without the failure.
///
/// # Errors
///
/// [`SparseError`] only for sweep-level failures: the *base*
/// conductance matrix does not factorize (the grid itself is broken).
///
/// # Panics
///
/// Panics if a probe node is out of bounds (caller contract, as in the
/// transient engines).
///
/// # Example
///
/// ```
/// use tracered_powergrid::contingency::{
///     simulate_contingency_batch, ContingencyConfig, Outage,
/// };
/// use tracered_powergrid::synth::{synthesize, SynthConfig};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
/// let outages = vec![
///     Outage::LineOutage { edge: 0 },
///     Outage::Reweight { edge: 3, new_weight: 0.5 },
///     Outage::LoadStep { node: 10, extra_current: 1e-3 },
/// ];
/// let sweep = simulate_contingency_batch(
///     &pg,
///     &outages,
///     &[0],
///     &ContingencyConfig::default(),
///     None,
/// )?;
/// assert_eq!(sweep.outcomes.len(), 3);
/// assert!(sweep.outcomes.iter().all(|o| o.is_completed()));
/// # Ok(())
/// # }
/// ```
pub fn simulate_contingency_batch(
    pg: &PowerGrid,
    outages: &[Outage],
    probes: &[usize],
    cfg: &ContingencyConfig,
    hook: Option<&dyn EpochHook>,
) -> Result<ContingencySweep, SparseError> {
    let n = pg.num_nodes();
    for &p in probes {
        assert!(p < n, "probe node {p} out of bounds for {n} nodes");
    }
    let mut span = tracered_obs::span!("contingency.sweep", { n: n, outages: outages.len() });
    let g = pg.conductance_shared();
    let rhs = pg.dc_rhs();
    let rhs_inf = rhs.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(f64::MIN_POSITIVE);

    let mut report = ContingencyReport {
        outages: outages.len(),
        final_epoch: cfg.epoch_base,
        ..Default::default()
    };
    let t0 = Instant::now();
    let mut factor = CholeskyFactor::factorize_kernel(
        &g,
        Ordering::MinDegree,
        cfg.kernel,
        cfg.factor_threads.max(1),
    )?;
    report.base_factor_seconds = t0.elapsed().as_secs_f64();

    let sweep_t = Instant::now();
    let mut outcomes: Vec<Option<OutageOutcome>> = vec![None; outages.len()];
    let mut matrix_group: Vec<(usize, usize, usize, f64)> = Vec::new();
    let mut rhs_group: Vec<(usize, usize, f64)> = Vec::new();
    for (i, outage) in outages.iter().enumerate() {
        match validate(pg, outage) {
            Ok(Perturb::Matrix { u, v, dw }) => matrix_group.push((i, u, v, dw)),
            Ok(Perturb::Rhs { node, extra }) => rhs_group.push((i, node, extra)),
            Err(kind) => {
                outcomes[i] = Some(OutageOutcome::Failed(OutageFailure {
                    outage: i,
                    kind: OutageFailureKind::Invalid(kind),
                }));
            }
        }
    }

    // Load-step group: one blocked solve against the (pristine) base
    // factor — the matrix is untouched, so every column shares it.
    if !rhs_group.is_empty() {
        report.rhs_only = rhs_group.len();
        let _rhs_span = tracered_obs::span!("contingency.rhs_batch", { width: rhs_group.len() });
        let mut b = MultiVec::zeros(n, rhs_group.len());
        for (j, &(_, node, extra)) in rhs_group.iter().enumerate() {
            let col = b.col_mut(j);
            col.copy_from_slice(&rhs);
            col[node] -= extra;
        }
        match cfg.method {
            ContingencyMethod::Direct => {
                let x = factor.solve_multi(&b);
                for (j, &(i, _, _)) in rhs_group.iter().enumerate() {
                    let xj = x.col(j).to_vec();
                    let rel = g.residual_inf_norm(&xj, b.col(j)) / rhs_inf;
                    outcomes[i] =
                        Some(classify_solve(i, xj, rel, cfg.residual_tol, probes, 0, false, 0.0));
                }
            }
            ContingencyMethod::Pcg { rel_tolerance, max_iterations } => {
                let pre = CholPreconditioner::from_factor(factor.clone());
                let opts = PcgOptions {
                    rel_tolerance,
                    max_iterations,
                    threads: cfg.solver_threads.max(1),
                };
                let sol = block_pcg(&g, &b, &pre, &opts);
                for (j, &(i, _, _)) in rhs_group.iter().enumerate() {
                    if !sol.converged[j] {
                        outcomes[i] = Some(OutageOutcome::Failed(OutageFailure {
                            outage: i,
                            kind: OutageFailureKind::SolverBreakdown { reason: sol.reasons[j] },
                        }));
                        continue;
                    }
                    let xj = sol.x.col(j).to_vec();
                    let rel = g.residual_inf_norm(&xj, b.col(j)) / rhs_inf;
                    outcomes[i] = Some(classify_solve(
                        i,
                        xj,
                        rel,
                        cfg.residual_tol,
                        probes,
                        sol.iterations[j],
                        false,
                        0.0,
                    ));
                }
            }
        }
    }

    // Matrix-perturbing outages: apply → solve → classify → revert,
    // sequentially against the one shared factor.
    let mut epoch = cfg.epoch_base;
    for &(i, u, v, dw) in &matrix_group {
        let _outage_span = tracered_obs::span!("contingency.outage", { outage: i });
        if dw == 0.0 {
            // A no-op reweight: the base operating point is the answer.
            let x = factor.solve(&rhs);
            let rel = g.residual_inf_norm(&x, &rhs) / rhs_inf;
            outcomes[i] = Some(classify_solve(i, x, rel, cfg.residual_tol, probes, 0, false, 0.0));
            continue;
        }
        let s = dw.abs().sqrt();
        let mut w = vec![0.0; n];
        w[u] = s;
        w[v] = -s;
        let applied = if dw > 0.0 { factor.update(&w) } else { factor.downdate(&w) };
        match applied {
            Ok(_) => {
                report.applied_updates += 1;
                epoch += 1;
                let event = OutageEvent { outage: i, epoch, used_fallback: false };
                if let Some(h) = hook {
                    h.outage_applied(&event);
                }
                let x = factor.solve(&rhs);
                let rel = perturbed_rel_residual(&g, u, v, dw, &x, &rhs, rhs_inf);
                outcomes[i] =
                    Some(classify_solve(i, x, rel, cfg.residual_tol, probes, 0, false, 0.0));
                // Bit-exact revert through the factor's undo journal.
                let reverted = if dw > 0.0 { factor.downdate(&w) } else { factor.update(&w) };
                if reverted.is_err() {
                    // Defensive only — the journal guarantees the
                    // inverse of the op just applied. Rebuild rather
                    // than continue on a perturbed factor.
                    factor = CholeskyFactor::factorize_kernel(
                        &g,
                        Ordering::MinDegree,
                        cfg.kernel,
                        cfg.factor_threads.max(1),
                    )?;
                }
                epoch += 1;
                let event = OutageEvent { outage: i, epoch, used_fallback: false };
                if let Some(h) = hook {
                    h.outage_reverted(&event);
                }
            }
            Err(SparseError::NotPositiveDefinite { .. }) => {
                // The incremental path refused the perturbation (factor
                // left bit-identical). Escalate through the regularized
                // refactorization ladder on the assembled G'.
                report.update_fallbacks += 1;
                epoch += 1;
                let event = OutageEvent { outage: i, epoch, used_fallback: true };
                if let Some(h) = hook {
                    h.outage_applied(&event);
                }
                outcomes[i] = Some(solve_by_refactor(
                    i,
                    &g,
                    u,
                    v,
                    dw,
                    &rhs,
                    rhs_inf,
                    probes,
                    cfg,
                    true,
                    &mut report,
                )?);
                epoch += 1;
                let event = OutageEvent { outage: i, epoch, used_fallback: true };
                if let Some(h) = hook {
                    h.outage_reverted(&event);
                }
            }
            Err(e) => return Err(e),
        }
    }
    report.final_epoch = epoch;

    for (i, slot) in outcomes.iter().enumerate() {
        debug_assert!(slot.is_some(), "outage {i} left unclassified");
    }
    let outcomes: Vec<OutageOutcome> =
        outcomes.into_iter().map(|o| o.expect("classified")).collect();
    report.completed = outcomes.iter().filter(|o| o.is_completed()).count();
    report.failures = outcomes.len() - report.completed;
    report.sweep_seconds = sweep_t.elapsed().as_secs_f64();
    if let Some(s) = span.as_mut() {
        s.arg("failures", report.failures as f64);
        s.arg("fallbacks", report.update_fallbacks as f64);
    }
    Ok(ContingencySweep { outcomes, report })
}

/// The naive reference: every matrix outage re-assembles the perturbed
/// conductance matrix and refactorizes from scratch (through the same
/// regularization ladder and residual gate as the batch fallback);
/// every load step refactorizes the base matrix and solves alone. Same
/// classification code as [`simulate_contingency_batch`], outage for
/// outage — the equivalence oracle for the update path, and the cost
/// baseline the `contingency_scaling` bench beats.
///
/// # Errors
///
/// As for [`simulate_contingency_batch`].
///
/// # Panics
///
/// As for [`simulate_contingency_batch`].
pub fn simulate_contingency_refactor(
    pg: &PowerGrid,
    outages: &[Outage],
    probes: &[usize],
    cfg: &ContingencyConfig,
) -> Result<ContingencySweep, SparseError> {
    let n = pg.num_nodes();
    for &p in probes {
        assert!(p < n, "probe node {p} out of bounds for {n} nodes");
    }
    let g = pg.conductance_shared();
    let rhs = pg.dc_rhs();
    let rhs_inf = rhs.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(f64::MIN_POSITIVE);

    let mut report = ContingencyReport {
        outages: outages.len(),
        final_epoch: cfg.epoch_base,
        ..Default::default()
    };
    let t0 = Instant::now();
    // The reference still needs one base factor for dw == 0 no-ops.
    let base = CholeskyFactor::factorize_kernel(
        &g,
        Ordering::MinDegree,
        cfg.kernel,
        cfg.factor_threads.max(1),
    )?;
    report.base_factor_seconds = t0.elapsed().as_secs_f64();

    let sweep_t = Instant::now();
    let mut outcomes = Vec::with_capacity(outages.len());
    for (i, outage) in outages.iter().enumerate() {
        let outcome = match validate(pg, outage) {
            Err(kind) => OutageOutcome::Failed(OutageFailure {
                outage: i,
                kind: OutageFailureKind::Invalid(kind),
            }),
            Ok(Perturb::Matrix { u, v, dw }) => {
                if dw == 0.0 {
                    let x = base.solve(&rhs);
                    let rel = g.residual_inf_norm(&x, &rhs) / rhs_inf;
                    classify_solve(i, x, rel, cfg.residual_tol, probes, 0, false, 0.0)
                } else {
                    solve_by_refactor(
                        i,
                        &g,
                        u,
                        v,
                        dw,
                        &rhs,
                        rhs_inf,
                        probes,
                        cfg,
                        false,
                        &mut report,
                    )?
                }
            }
            Ok(Perturb::Rhs { node, extra }) => {
                report.rhs_only += 1;
                // Refactor-per-outage: the reference pays a fresh
                // factorization even for an unchanged matrix.
                report.refactorizations += 1;
                let f = CholeskyFactor::factorize_kernel(
                    &g,
                    Ordering::MinDegree,
                    cfg.kernel,
                    cfg.factor_threads.max(1),
                )?;
                let mut b = rhs.clone();
                b[node] -= extra;
                let x = f.solve(&b);
                let rel = g.residual_inf_norm(&x, &b) / rhs_inf;
                classify_solve(i, x, rel, cfg.residual_tol, probes, 0, false, 0.0)
            }
        };
        outcomes.push(outcome);
    }
    report.completed = outcomes.iter().filter(|o| o.is_completed()).count();
    report.failures = outcomes.len() - report.completed;
    report.sweep_seconds = sweep_t.elapsed().as_secs_f64();
    Ok(ContingencySweep { outcomes, report })
}
