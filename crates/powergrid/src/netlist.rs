//! The power-grid circuit model and its MNA matrices.

use std::sync::{Arc, OnceLock};

use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_graph::Graph;
use tracered_sparse::CscMatrix;

use crate::waveform::PulseWaveform;

/// A pulse current source attached to a grid node (a switching block
/// drawing current from the rail).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentSource {
    /// Node the block draws current from.
    pub node: usize,
    /// The draw waveform.
    pub waveform: PulseWaveform,
}

/// A VDD power-distribution network: mesh resistors, C4 pad conductances
/// to the ideal supply, node decoupling capacitances and switching
/// current sources.
#[derive(Debug, Clone)]
pub struct PowerGrid {
    graph: Graph,
    pad_conductance: Vec<f64>,
    capacitance: Vec<f64>,
    sources: Vec<CurrentSource>,
    vdd: f64,
    /// Lazily assembled `G`, shared by every engine that borrows the
    /// grid — the batch transient loops used to reassemble (and then
    /// deep-clone) it on every call.
    conductance: OnceLock<Arc<CscMatrix>>,
}

// Shared-handle audit: the service layer publishes `Arc<PowerGrid>` to
// concurrent request handlers; the memoized matrix must not cost `Sync`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PowerGrid>();
};

impl PowerGrid {
    /// Assembles a power grid.
    ///
    /// # Panics
    ///
    /// Panics if vector lengths disagree with the node count, a source
    /// node is out of bounds, or any pad conductance / capacitance is
    /// negative or non-finite.
    pub fn new(
        graph: Graph,
        pad_conductance: Vec<f64>,
        capacitance: Vec<f64>,
        sources: Vec<CurrentSource>,
        vdd: f64,
    ) -> Self {
        let n = graph.num_nodes();
        assert_eq!(pad_conductance.len(), n, "one pad conductance per node");
        assert_eq!(capacitance.len(), n, "one capacitance per node");
        assert!(
            pad_conductance.iter().all(|&g| g.is_finite() && g >= 0.0),
            "pad conductances must be finite and non-negative"
        );
        assert!(
            capacitance.iter().all(|&c| c.is_finite() && c >= 0.0),
            "capacitances must be finite and non-negative"
        );
        assert!(sources.iter().all(|s| s.node < n), "source nodes must be in bounds");
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        PowerGrid {
            graph,
            pad_conductance,
            capacitance,
            sources,
            vdd,
            conductance: OnceLock::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// The resistor mesh as a graph (conductances as edge weights).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Per-node pad conductances (zero away from C4 pads).
    pub fn pad_conductance(&self) -> &[f64] {
        &self.pad_conductance
    }

    /// Per-node capacitances (farads).
    pub fn capacitance(&self) -> &[f64] {
        &self.capacitance
    }

    /// The switching current sources.
    pub fn sources(&self) -> &[CurrentSource] {
        &self.sources
    }

    /// Ideal supply voltage.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// The conductance matrix `G`: mesh Laplacian plus pad conductances on
    /// the diagonal. This is the SDD system of DC analysis, and the matrix
    /// the graph sparsifier approximates.
    pub fn conductance_matrix(&self) -> CscMatrix {
        (*self.conductance_shared()).clone()
    }

    /// The conductance matrix as a shared immutable handle, assembled on
    /// first use and memoized. The transient engines and the service
    /// layer borrow this instead of reassembling `G` per call; the
    /// assembly is deterministic, so the cached matrix is bit-identical
    /// to what [`PowerGrid::conductance_matrix`] used to rebuild.
    pub fn conductance_shared(&self) -> Arc<CscMatrix> {
        Arc::clone(
            self.conductance.get_or_init(|| {
                Arc::new(laplacian_with_shifts(&self.graph, &self.pad_conductance))
            }),
        )
    }

    /// The backward-Euler system matrix `G + C/h` for step size `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h <= 0`.
    pub fn transient_matrix(&self, h: f64) -> CscMatrix {
        assert!(h > 0.0, "time step must be positive");
        let shifts: Vec<f64> = self
            .pad_conductance
            .iter()
            .zip(self.capacitance.iter())
            .map(|(&g, &c)| g + c / h)
            .collect();
        laplacian_with_shifts(&self.graph, &shifts)
    }

    /// Total current drawn by all sources at time `t`.
    pub fn total_draw(&self, t: f64) -> f64 {
        self.sources.iter().map(|s| s.waveform.value(t)).sum()
    }

    /// Backward-Euler right-hand side at time `t_next`:
    /// `b = (C/h)·v_prev + G_pad·VDD − I(t_next)`.
    ///
    /// # Panics
    ///
    /// Panics if `v_prev.len()` differs from the node count or `h <= 0`.
    pub fn transient_rhs(&self, t_next: f64, h: f64, v_prev: &[f64], out: &mut [f64]) {
        self.transient_rhs_scaled(t_next, h, v_prev, None, out);
    }

    /// [`PowerGrid::transient_rhs`] with per-source amplitude scaling —
    /// the batch transient engine's per-scenario right-hand side.
    /// `source_scale[i]` multiplies source `i`'s draw; `None` means the
    /// nominal ensemble (every scale `1.0`, bit-identical to the unscaled
    /// path).
    ///
    /// # Panics
    ///
    /// Panics on the [`PowerGrid::transient_rhs`] conditions, or if a
    /// scale slice's length differs from the source count.
    pub fn transient_rhs_scaled(
        &self,
        t_next: f64,
        h: f64,
        v_prev: &[f64],
        source_scale: Option<&[f64]>,
        out: &mut [f64],
    ) {
        let n = self.num_nodes();
        assert_eq!(v_prev.len(), n, "previous state length must equal node count");
        assert_eq!(out.len(), n, "output length must equal node count");
        assert!(h > 0.0, "time step must be positive");
        if let Some(scale) = source_scale {
            assert_eq!(scale.len(), self.sources.len(), "one scale per source");
        }
        for i in 0..n {
            out[i] = self.capacitance[i] / h * v_prev[i] + self.pad_conductance[i] * self.vdd;
        }
        for (k, s) in self.sources.iter().enumerate() {
            let scale = source_scale.map_or(1.0, |sc| sc[k]);
            out[s.node] -= scale * s.waveform.value(t_next);
        }
    }

    /// DC right-hand side: `b = G_pad·VDD − I(0)`.
    pub fn dc_rhs(&self) -> Vec<f64> {
        self.dc_rhs_scaled(None)
    }

    /// [`PowerGrid::dc_rhs`] with per-source amplitude scaling (`None`
    /// means nominal, scale `1.0` everywhere).
    ///
    /// # Panics
    ///
    /// Panics if a scale slice's length differs from the source count.
    pub fn dc_rhs_scaled(&self, source_scale: Option<&[f64]>) -> Vec<f64> {
        if let Some(scale) = source_scale {
            assert_eq!(scale.len(), self.sources.len(), "one scale per source");
        }
        let mut b: Vec<f64> = self.pad_conductance.iter().map(|&g| g * self.vdd).collect();
        for (k, s) in self.sources.iter().enumerate() {
            let scale = source_scale.map_or(1.0, |sc| sc[k]);
            b[s.node] -= scale * s.waveform.value(0.0);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waveform::PulseWaveform;

    fn tiny() -> PowerGrid {
        // 3-node chain, pad at node 0.
        let graph = Graph::from_edges(3, &[(0, 1, 10.0), (1, 2, 10.0)]).unwrap();
        let wave = PulseWaveform {
            delay: 0.0,
            rise: 1e-10,
            width: 1e-10,
            fall: 1e-10,
            period: 1e-9,
            amplitude: 0.001,
        };
        PowerGrid::new(
            graph,
            vec![100.0, 0.0, 0.0],
            vec![1e-12, 2e-12, 3e-12],
            vec![CurrentSource { node: 2, waveform: wave }],
            1.8,
        )
    }

    #[test]
    fn conductance_matrix_is_spd() {
        let pg = tiny();
        let g = pg.conductance_matrix();
        assert!(g.is_symmetric());
        assert!(g.to_dense().cholesky().is_ok());
        assert_eq!(g.get(0, 0), 110.0);
    }

    #[test]
    fn transient_matrix_adds_c_over_h() {
        let pg = tiny();
        let h = 1e-11;
        let m = pg.transient_matrix(h);
        let g = pg.conductance_matrix();
        assert!((m.get(1, 1) - (g.get(1, 1) + 2e-12 / h)).abs() < 1e-9);
        assert_eq!(m.get(0, 1), g.get(0, 1));
    }

    #[test]
    fn dc_rhs_balances_pads_and_sources() {
        let pg = tiny();
        let b = pg.dc_rhs();
        assert!((b[0] - 180.0).abs() < 1e-12);
        assert_eq!(b[1], 0.0);
        assert_eq!(b[2], 0.0); // pulse value at t = 0 is 0 (start of rise)
    }

    #[test]
    fn transient_rhs_combines_history_pads_and_draw() {
        let pg = tiny();
        let h = 1e-10;
        let v_prev = vec![1.8, 1.7, 1.6];
        let mut b = vec![0.0; 3];
        // At t = 1.5e-10 the pulse is on its plateau: draw = 1 mA.
        pg.transient_rhs(1.5e-10, h, &v_prev, &mut b);
        assert!((b[0] - (1e-12 / h * 1.8 + 180.0)).abs() < 1e-9);
        assert!((b[1] - 2e-12 / h * 1.7).abs() < 1e-12);
        assert!((b[2] - (3e-12 / h * 1.6 - 0.001)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "pad conductances")]
    fn negative_pad_is_rejected() {
        let graph = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        PowerGrid::new(graph, vec![-1.0, 0.0], vec![0.0, 0.0], vec![], 1.8);
    }

    #[test]
    #[should_panic(expected = "source nodes")]
    fn out_of_bounds_source_is_rejected() {
        let graph = Graph::from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let wave = PulseWaveform {
            delay: 0.0,
            rise: 1e-10,
            width: 0.0,
            fall: 1e-10,
            period: 1e-9,
            amplitude: 1.0,
        };
        PowerGrid::new(
            graph,
            vec![1.0, 0.0],
            vec![0.0, 0.0],
            vec![CurrentSource { node: 9, waveform: wave }],
            1.8,
        );
    }
}
