//! Backward-Euler transient engines (paper §4.2).
//!
//! Two solver strategies reproduce the paper's comparison:
//!
//! - **Direct, fixed step**: factorize `G + C/h` once and advance with
//!   substitutions. The step `h` must resolve the smallest breakpoint
//!   spacing of the current sources (the paper uses 10 ps), so this path
//!   takes many steps — its strength is the ultra-cheap per-step cost,
//!   its weakness the big factorization and memory footprint.
//! - **Iterative, variable step**: place time points only at source
//!   breakpoints (capped at `max_step`, paper: 200 ps) and solve each
//!   step with PCG, preconditioned once by the Cholesky factor of the
//!   *sparsified* conductance matrix from DC analysis, warm-started from
//!   the previous voltage vector.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tracered_solver::block::block_pcg_with_guess;
use tracered_solver::pcg::PcgOptions;
use tracered_solver::precond::{CholPreconditioner, Preconditioner};
use tracered_solver::{DirectSolver, TerminationReason};
use tracered_sparse::{KernelVariant, MultiVec, SparseError};

use crate::netlist::PowerGrid;
use crate::waveform::merged_time_grid;

/// Time-integration scheme for the DAE `C dv/dt + G v = u(t)`.
///
/// The paper (§4.2) mentions both: "with time integration schemes like
/// backward Euler scheme or trapezoidal scheme, the DAEs are converted to
/// a set of linear equation systems".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum IntegrationScheme {
    /// Backward Euler: `(G + C/h) v₁ = (C/h) v₀ + u(t₁)`. First order,
    /// L-stable (damps numerical ringing) — the paper's choice.
    #[default]
    BackwardEuler,
    /// Trapezoidal: `(G/2 + C/h) v₁ = (C/h − G/2) v₀ + (u₀ + u₁)/2`.
    /// Second order, A-stable.
    Trapezoidal,
}

/// Transient-analysis options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientConfig {
    /// Simulation horizon in seconds (paper: 5 ns).
    pub t_end: f64,
    /// Maximum variable step (paper: 200 ps).
    pub max_step: f64,
    /// Fixed step for the direct engine; `None` derives it from the
    /// smallest source breakpoint gap (the paper's constraint).
    pub fixed_step: Option<f64>,
    /// PCG relative tolerance (paper: 1e-6).
    pub pcg_tol: f64,
    /// Time-integration scheme (paper default: backward Euler).
    pub scheme: IntegrationScheme,
    /// Worker threads for the PCG kernels (SpMV/SpMM, reductions, fused
    /// vector updates). `1` preserves the exact serial arithmetic; larger
    /// values route through the parallel kernels of `tracered_sparse`.
    pub threads: usize,
    /// Worker threads for the direct engine's matrix factorizations
    /// (`G + C/h` and the DC operating point): independent
    /// elimination-tree subtrees factor concurrently
    /// ([`tracered_sparse::CholeskyFactor::factorize_threads`]). The
    /// factor is bit-identical to serial at every count, so waveforms
    /// are unchanged — only `factor_time` shrinks. This is the knob that
    /// attacks the varied-step direct engine's dominant cost (one
    /// refactorization per step-size change).
    pub factor_threads: usize,
    /// Numeric Cholesky kernel for the direct engine's factorizations
    /// ([`KernelVariant::Supernodal`] runs blocked panel updates).
    /// Bit-identity across thread counts holds *within* a kernel; the
    /// two kernels agree only to rounding.
    pub kernel: KernelVariant,
}

impl Default for TransientConfig {
    fn default() -> Self {
        TransientConfig {
            t_end: 5e-9,
            max_step: 2e-10,
            fixed_step: None,
            pcg_tol: 1e-6,
            scheme: IntegrationScheme::BackwardEuler,
            threads: 1,
            factor_threads: 1,
            kernel: KernelVariant::Scalar,
        }
    }
}

/// One member of a batch transient ensemble: a per-source modulation of
/// the switching-current amplitudes. Scenarios share the grid, the
/// matrices and the time grid — only the right-hand sides differ, which
/// is exactly the shape the blocked multi-RHS kernels amortize.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceScenario {
    /// Per-source amplitude multipliers (`len == pg.sources().len()`), or
    /// `None` for the nominal ensemble (every scale `1.0`).
    pub source_scale: Option<Vec<f64>>,
}

impl SourceScenario {
    /// The nominal ensemble: every source at its configured amplitude.
    pub fn nominal() -> Self {
        SourceScenario { source_scale: None }
    }

    /// Scales every source by the same factor (a global activity corner).
    pub fn uniform(scale: f64, num_sources: usize) -> Self {
        SourceScenario { source_scale: Some(vec![scale; num_sources]) }
    }

    /// Per-source scale factors (per-block activity patterns).
    pub fn per_source(scales: Vec<f64>) -> Self {
        SourceScenario { source_scale: Some(scales) }
    }

    fn scales(&self) -> Option<&[f64]> {
        self.source_scale.as_deref()
    }
}

/// Cost accounting for a transient run.
#[derive(Debug, Clone, PartialEq)]
pub struct TransientStats {
    /// Number of time steps taken.
    pub steps: usize,
    /// Time spent in factorization (direct) or preconditioner reuse
    /// (iterative; zero — the preconditioner is built by the caller
    /// during DC analysis).
    pub factor_time: Duration,
    /// Time spent advancing time steps (substitutions or PCG).
    pub solve_time: Duration,
    /// Total PCG iterations across all steps (0 for the direct engine).
    pub total_pcg_iterations: usize,
    /// Average PCG iterations per step (the paper's `N_e`).
    pub avg_pcg_iterations: f64,
    /// Memory footprint of the factor used (bytes) — the paper's `Mem`.
    pub memory_bytes: usize,
    /// Number of matrix factorizations performed (1 for fixed-step direct;
    /// one per step-size change for varied-step direct; 0 for PCG).
    pub factorizations: usize,
}

/// Result of a transient run: probe waveforms over the time grid.
#[derive(Debug, Clone)]
pub struct TransientResult {
    /// Time points (seconds), strictly increasing, starting at 0.
    pub times: Vec<f64>,
    /// One voltage trace per requested probe node.
    pub probes: Vec<Vec<f64>>,
    /// Cost accounting.
    pub stats: TransientStats,
}

impl TransientResult {
    /// Linearly interpolates probe `idx` at time `t` (clamped to the
    /// simulated range).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds.
    pub fn sample(&self, idx: usize, t: f64) -> f64 {
        let trace = &self.probes[idx];
        let times = &self.times;
        if t <= times[0] {
            return trace[0];
        }
        let t_last = *times.last().expect("a transient result has at least the initial time");
        if t >= t_last {
            return *trace.last().expect("probe traces track the time grid");
        }
        let k = times.partition_point(|&x| x <= t) - 1;
        let (t0, t1) = (times[k], times[k + 1]);
        let w = (t - t0) / (t1 - t0);
        trace[k] * (1.0 - w) + trace[k + 1] * w
    }

    /// Maximum absolute difference between probe `idx` of two runs,
    /// sampled at `samples` uniform points (the paper reports < 16 mV
    /// between direct and iterative solutions).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of bounds for either run or `samples == 0`.
    pub fn max_probe_difference(&self, other: &TransientResult, idx: usize, samples: usize) -> f64 {
        assert!(samples > 0, "at least one sample is required");
        let t_end =
            self.times.last().expect("a transient result has at least the initial time").min(
                *other.times.last().expect("a transient result has at least the initial time"),
            );
        (0..=samples)
            .map(|k| {
                let t = t_end * k as f64 / samples as f64;
                (self.sample(idx, t) - other.sample(idx, t)).abs()
            })
            .fold(0.0, f64::max)
    }
}

/// Solves the DC operating point `G v = b_dc` directly.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] if the grid has no pads
/// (floating network).
pub fn dc_operating_point(pg: &PowerGrid) -> Result<Vec<f64>, SparseError> {
    let g = pg.conductance_shared();
    let solver = DirectSolver::new(&g)?;
    Ok(solver.solve(&pg.dc_rhs()))
}

/// [`dc_operating_points_batch`] with the factorization of `G` split
/// across pool workers — the engines route their initial-condition
/// solves through this with [`TransientConfig::factor_threads`].
fn dc_points_batch_threads(
    pg: &PowerGrid,
    scenarios: &[SourceScenario],
    kernel: KernelVariant,
    threads: usize,
) -> Result<MultiVec, SparseError> {
    let n = pg.num_nodes();
    let g = pg.conductance_shared();
    let solver = DirectSolver::new_kernel(&g, kernel, threads)?;
    let mut b = MultiVec::zeros(n, scenarios.len());
    for (col, sc) in b.cols_mut().zip(scenarios.iter()) {
        col.copy_from_slice(&pg.dc_rhs_scaled(sc.scales()));
    }
    Ok(solver.factor().solve_multi(&b))
}

/// Solves the DC operating points of a whole scenario ensemble with one
/// factorization of `G` and one blocked multi-column substitution.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] if the grid has no pads.
///
/// # Panics
///
/// Panics if a scenario's scale length disagrees with the source count.
pub fn dc_operating_points_batch(
    pg: &PowerGrid,
    scenarios: &[SourceScenario],
) -> Result<MultiVec, SparseError> {
    dc_points_batch_threads(pg, scenarios, KernelVariant::Scalar, 1)
}

/// Builds the step system matrix for a scheme:
/// `G + C/h` (backward Euler) or `G/2 + C/h` (trapezoidal).
fn system_matrix(pg: &PowerGrid, h: f64, scheme: IntegrationScheme) -> tracered_sparse::CscMatrix {
    match scheme {
        IntegrationScheme::BackwardEuler => pg.transient_matrix(h),
        IntegrationScheme::Trapezoidal => {
            let mut half_g = pg.conductance_matrix();
            for v in half_g.values_mut() {
                *v *= 0.5;
            }
            let shifts: Vec<f64> = pg.capacitance().iter().map(|&c| c / h).collect();
            half_g.add_diagonal(&shifts).expect("conductance matrix is square")
        }
    }
}

/// Builds the step right-hand side for a scheme and one scenario. For the
/// trapezoidal rule `g_matrix` must be the full conductance matrix (used
/// for `G v₀`); `gv_buf` is scratch of length n. `source_scale` of `None`
/// is the nominal ensemble.
#[allow(clippy::too_many_arguments)]
fn step_rhs(
    pg: &PowerGrid,
    scheme: IntegrationScheme,
    t0: f64,
    t1: f64,
    h: f64,
    v_prev: &[f64],
    source_scale: Option<&[f64]>,
    g_matrix: &tracered_sparse::CscMatrix,
    gv_buf: &mut [f64],
    out: &mut [f64],
) {
    match scheme {
        IntegrationScheme::BackwardEuler => {
            pg.transient_rhs_scaled(t1, h, v_prev, source_scale, out);
        }
        IntegrationScheme::Trapezoidal => {
            // b = (C/h) v₀ − ½ G v₀ + ½ (u(t₀) + u(t₁)),
            // u(t) = G_pad·VDD − I(t).
            g_matrix.matvec_into(v_prev, gv_buf);
            let cap = pg.capacitance();
            let pad = pg.pad_conductance();
            let vdd = pg.vdd();
            for i in 0..out.len() {
                out[i] = cap[i] / h * v_prev[i] - 0.5 * gv_buf[i] + pad[i] * vdd;
            }
            for (k, s) in pg.sources().iter().enumerate() {
                let scale = source_scale.map_or(1.0, |sc| sc[k]);
                out[s.node] -= scale * (0.5 * (s.waveform.value(t0) + s.waveform.value(t1)));
            }
        }
    }
}

/// Fixed-step transient with a direct solver (factor once, substitute per
/// step). Batch-of-1 wrapper over [`simulate_direct_batch`].
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] when `G + C/h` cannot be
/// factorized (floating grid).
///
/// # Panics
///
/// Panics if a probe node is out of bounds.
pub fn simulate_direct(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    probe_nodes: &[usize],
) -> Result<TransientResult, SparseError> {
    let mut out = simulate_direct_batch(pg, cfg, probe_nodes, &[SourceScenario::nominal()])?;
    Ok(out.pop().expect("batch of one yields one result"))
}

/// Fixed-step transient of a whole scenario ensemble with one shared
/// direct solver: `G + C/h` is factorized once and every step advances
/// all `k` scenarios through one blocked multi-column substitution
/// (`solve_multi`), streaming the factor once per step instead of once
/// per scenario.
///
/// Returns one [`TransientResult`] per scenario, in order. Shared-cost
/// accounting: `factor_time`, `memory_bytes` and `factorizations` report
/// the shared factorization in every result (the work exists once, not
/// `k` times); `solve_time` is the batch stepping time divided by `k` —
/// the amortized per-scenario cost that the multi-RHS batching buys.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] when `G + C/h` cannot be
/// factorized (floating grid).
///
/// # Panics
///
/// Panics if a probe node is out of bounds, `scenarios` is empty, or a
/// scenario's scale length disagrees with the source count.
pub fn simulate_direct_batch(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    probe_nodes: &[usize],
    scenarios: &[SourceScenario],
) -> Result<Vec<TransientResult>, SparseError> {
    let n = pg.num_nodes();
    let k = scenarios.len();
    assert!(probe_nodes.iter().all(|&p| p < n), "probe nodes must be in bounds");
    assert!(k > 0, "at least one scenario is required");
    let mut span = tracered_obs::span!("transient.run", { n: n, scenarios: k });
    let h = cfg.fixed_step.unwrap_or_else(|| {
        pg.sources().iter().map(|s| s.waveform.min_breakpoint_gap()).fold(cfg.max_step, f64::min)
    });
    let t_factor = Instant::now();
    let a = system_matrix(pg, h, cfg.scheme);
    let solver = DirectSolver::new_kernel(&a, cfg.kernel, cfg.factor_threads.max(1))?;
    let factor_time = t_factor.elapsed();
    let g_matrix = pg.conductance_shared();

    let mut v = dc_points_batch_threads(pg, scenarios, cfg.kernel, cfg.factor_threads.max(1))?;
    let mut rhs = MultiVec::zeros(n, k);
    let mut vnext = MultiVec::zeros(n, k);
    let mut gv = vec![0.0; n];
    let mut times = vec![0.0];
    let mut probes: Vec<Vec<Vec<f64>>> = scenarios
        .iter()
        .enumerate()
        .map(|(s, _)| probe_nodes.iter().map(|&p| vec![v.col(s)[p]]).collect())
        .collect();
    let t_solve = Instant::now();
    let mut steps = 0usize;
    let mut t = 0.0;
    while t < cfg.t_end - 1e-18 {
        let _step = tracered_obs::span!("transient.step", { step: steps, width: k });
        let t_next = (t + h).min(cfg.t_end);
        for (s, sc) in scenarios.iter().enumerate() {
            step_rhs(
                pg,
                cfg.scheme,
                t,
                t_next,
                h,
                v.col(s),
                sc.scales(),
                &g_matrix,
                &mut gv,
                rhs.col_mut(s),
            );
        }
        solver.factor().solve_multi_into(&rhs, &mut vnext);
        std::mem::swap(&mut v, &mut vnext);
        t = t_next;
        steps += 1;
        times.push(t);
        for (s, scenario_probes) in probes.iter_mut().enumerate() {
            for (trace, &p) in scenario_probes.iter_mut().zip(probe_nodes.iter()) {
                trace.push(v.col(s)[p]);
            }
        }
    }
    let solve_time = t_solve.elapsed() / k as u32;
    if let Some(g) = span.as_mut() {
        g.arg("steps", steps as f64);
    }
    Ok(probes
        .into_iter()
        .map(|scenario_probes| TransientResult {
            times: times.clone(),
            probes: scenario_probes,
            stats: TransientStats {
                steps,
                factor_time,
                solve_time,
                total_pcg_iterations: 0,
                avg_pcg_iterations: 0.0,
                memory_bytes: solver.memory_bytes(),
                factorizations: 1,
            },
        })
        .collect())
}

/// Variable-step transient with a **direct** solver: the configuration
/// the paper argues against ("the direct solver can be extremely
/// time-consuming due to the expensive matrix factorizations performed
/// whenever the time step changes"). Walks the same breakpoint-driven
/// grid as [`simulate_pcg`] but must refactorize `G + C/h` at every
/// step-size change.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] when a step matrix cannot
/// be factorized.
///
/// # Panics
///
/// Panics if a probe node is out of bounds.
pub fn simulate_direct_varied(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    probe_nodes: &[usize],
) -> Result<TransientResult, SparseError> {
    let n = pg.num_nodes();
    assert!(probe_nodes.iter().all(|&p| p < n), "probe nodes must be in bounds");
    let waveforms: Vec<_> = pg.sources().iter().map(|s| s.waveform).collect();
    let grid = merged_time_grid(&waveforms, cfg.t_end, cfg.max_step);
    let g_matrix = pg.conductance_shared();

    let mut v = dc_operating_point(pg)?;
    let mut rhs = vec![0.0; n];
    let mut gv = vec![0.0; n];
    let mut vnext = vec![0.0; n];
    let mut times = vec![grid[0]];
    let mut probes: Vec<Vec<f64>> = probe_nodes.iter().map(|&p| vec![v[p]]).collect();
    let mut factor_time = Duration::ZERO;
    let mut factorizations = 0usize;
    let mut memory = 0usize;
    let mut cached: Option<(f64, DirectSolver)> = None;
    let t_solve = Instant::now();
    let mut steps = 0usize;
    for w in grid.windows(2) {
        let (t0, t1) = (w[0], w[1]);
        let h = t1 - t0;
        let stale = match &cached {
            Some((hc, _)) => (hc - h).abs() > 1e-12 * h,
            None => true,
        };
        if stale {
            let tf = Instant::now();
            let a = system_matrix(pg, h, cfg.scheme);
            let solver = DirectSolver::new_kernel(&a, cfg.kernel, cfg.factor_threads.max(1))?;
            factor_time += tf.elapsed();
            factorizations += 1;
            memory = memory.max(solver.memory_bytes());
            cached = Some((h, solver));
        }
        let solver = &cached.as_ref().expect("just populated").1;
        step_rhs(pg, cfg.scheme, t0, t1, h, &v, None, &g_matrix, &mut gv, &mut rhs);
        solver.solve_into(&rhs, &mut vnext);
        std::mem::swap(&mut v, &mut vnext);
        steps += 1;
        times.push(t1);
        for (trace, &p) in probes.iter_mut().zip(probe_nodes.iter()) {
            trace.push(v[p]);
        }
    }
    let solve_time = t_solve.elapsed() - factor_time;
    Ok(TransientResult {
        times,
        probes,
        stats: TransientStats {
            steps,
            factor_time,
            solve_time,
            total_pcg_iterations: 0,
            avg_pcg_iterations: 0.0,
            memory_bytes: memory,
            factorizations,
        },
    })
}

/// Variable-step transient with sparsifier-preconditioned PCG.
/// Batch-of-1 wrapper over [`simulate_pcg_batch`].
///
/// `preconditioner` should be the Cholesky factor of the *sparsified*
/// conductance matrix (built once during DC analysis, per the paper); it
/// is reused unchanged for every step and every step size.
/// `cfg.threads` selects the parallel PCG kernels.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] if the DC system cannot be
/// factorized for the initial condition.
///
/// # Panics
///
/// Panics if a probe node is out of bounds.
pub fn simulate_pcg(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    preconditioner: &CholPreconditioner,
    probe_nodes: &[usize],
) -> Result<TransientResult, SparseError> {
    let mut out =
        simulate_pcg_batch(pg, cfg, preconditioner, probe_nodes, &[SourceScenario::nominal()])?;
    Ok(out.pop().expect("batch of one yields one result"))
}

/// Variable-step transient of a whole scenario ensemble with blocked
/// sparsifier-preconditioned PCG: every timestep assembles one
/// right-hand-side block (one column per scenario) and advances all of
/// them through a single [`block_pcg_with_guess`] solve — one SpMM and
/// one multi-column preconditioner apply per iteration, warm-started
/// from each scenario's previous voltages, with converged scenarios
/// deflating out of the iteration.
///
/// Column `j` of the batch performs exactly the arithmetic of a
/// standalone [`simulate_pcg`] run on scenario `j` (see
/// [`tracered_solver::block`] for the equivalence contract), so batch
/// results match independent runs to the sign of exact zeros.
///
/// Returns one [`TransientResult`] per scenario, in order; all share the
/// breakpoint-driven time grid (source scaling moves no breakpoints).
/// `solve_time` is the batch stepping time divided by `k` (amortized
/// per-scenario cost); `total_pcg_iterations` is per scenario.
///
/// ```
/// use tracered_core::{Method, SparsifyConfig};
/// use tracered_graph::laplacian::ShiftPolicy;
/// use tracered_powergrid::synth::{synthesize, SynthConfig};
/// use tracered_powergrid::transient::{simulate_pcg_batch, SourceScenario, TransientConfig};
/// use tracered_solver::precond::CholPreconditioner;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
/// // Sparsify the conductance graph once (grounded by the pad
/// // conductances), precondition every scenario and timestep with it.
/// let cfg = SparsifyConfig::new(Method::TraceReduction)
///     .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
/// let sp = tracered_core::sparsify(pg.graph(), &cfg)?;
/// let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph()))?;
/// let scenarios =
///     vec![SourceScenario::nominal(), SourceScenario::uniform(0.5, pg.sources().len())];
/// let tcfg = TransientConfig { t_end: 1e-9, ..Default::default() };
/// let results = simulate_pcg_batch(&pg, &tcfg, &pre, &[0], &scenarios)?;
/// assert_eq!(results.len(), 2);
/// assert_eq!(results[0].times, results[1].times); // shared time grid
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] if the DC system cannot be
/// factorized for the initial conditions.
///
/// # Panics
///
/// Panics if a probe node is out of bounds, `scenarios` is empty, or a
/// scenario's scale length disagrees with the source count.
pub fn simulate_pcg_batch(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    preconditioner: &CholPreconditioner,
    probe_nodes: &[usize],
    scenarios: &[SourceScenario],
) -> Result<Vec<TransientResult>, SparseError> {
    let n = pg.num_nodes();
    let k = scenarios.len();
    assert!(probe_nodes.iter().all(|&p| p < n), "probe nodes must be in bounds");
    assert!(k > 0, "at least one scenario is required");
    let mut span = tracered_obs::span!("transient.run", { n: n, scenarios: k });
    let waveforms: Vec<_> = pg.sources().iter().map(|s| s.waveform).collect();
    let grid = merged_time_grid(&waveforms, cfg.t_end, cfg.max_step);

    let mut v = dc_points_batch_threads(pg, scenarios, cfg.kernel, cfg.factor_threads.max(1))?;
    let mut rhs = MultiVec::zeros(n, k);
    let mut times = vec![grid[0]];
    let mut probes: Vec<Vec<Vec<f64>>> = scenarios
        .iter()
        .enumerate()
        .map(|(s, _)| probe_nodes.iter().map(|&p| vec![v.col(s)[p]]).collect())
        .collect();
    let opts = PcgOptions {
        rel_tolerance: cfg.pcg_tol,
        max_iterations: 10_000,
        threads: cfg.threads.max(1),
    };
    let g_matrix = pg.conductance_shared();
    // For the trapezoidal rule the step matrix is G/2 + C/h; backward
    // Euler shares the memoized G outright instead of deep-cloning it.
    let g_for_system = match cfg.scheme {
        IntegrationScheme::BackwardEuler => Arc::clone(&g_matrix),
        IntegrationScheme::Trapezoidal => {
            let mut half = (*g_matrix).clone();
            for val in half.values_mut() {
                *val *= 0.5;
            }
            Arc::new(half)
        }
    };
    let cap = pg.capacitance();
    let mut gv = vec![0.0; n];
    let t_solve = Instant::now();
    let mut total_iters = vec![0usize; k];
    let mut steps = 0usize;
    for w in grid.windows(2) {
        let _step = tracered_obs::span!("transient.step", { step: steps, width: k });
        let (t0, t1) = (w[0], w[1]);
        let h = t1 - t0;
        // A = G + C/h (or G/2 + C/h), a diagonal update of the cached G.
        let shifts: Vec<f64> = cap.iter().map(|&c| c / h).collect();
        let a = g_for_system
            .add_diagonal(&shifts)
            .expect("conductance matrix is square by construction");
        for (s, sc) in scenarios.iter().enumerate() {
            step_rhs(
                pg,
                cfg.scheme,
                t0,
                t1,
                h,
                v.col(s),
                sc.scales(),
                &g_matrix,
                &mut gv,
                rhs.col_mut(s),
            );
        }
        let sol = block_pcg_with_guess(&a, &rhs, Some(&v), preconditioner, &opts);
        for (total, its) in total_iters.iter_mut().zip(sol.iterations.iter()) {
            *total += its;
        }
        v = sol.x;
        steps += 1;
        times.push(t1);
        for (s, scenario_probes) in probes.iter_mut().enumerate() {
            for (trace, &p) in scenario_probes.iter_mut().zip(probe_nodes.iter()) {
                trace.push(v.col(s)[p]);
            }
        }
    }
    let solve_time = t_solve.elapsed() / k as u32;
    if let Some(g) = span.as_mut() {
        g.arg("steps", steps as f64);
        g.arg("pcg_iterations", total_iters.iter().sum::<usize>() as f64);
    }
    Ok(probes
        .into_iter()
        .zip(total_iters)
        .map(|(scenario_probes, iters)| TransientResult {
            times: times.clone(),
            probes: scenario_probes,
            stats: TransientStats {
                steps,
                factor_time: Duration::ZERO,
                solve_time,
                total_pcg_iterations: iters,
                avg_pcg_iterations: if steps > 0 { iters as f64 / steps as f64 } else { 0.0 },
                memory_bytes: preconditioner.memory_bytes(),
                factorizations: 0,
            },
        })
        .collect())
}

/// Why one scenario of a batch transient run was abandoned while the rest
/// of the ensemble kept integrating.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum ScenarioFailureKind {
    /// A source-scale multiplier was non-finite.
    InvalidScale {
        /// Index of the offending multiplier within the scale vector.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// The scale vector length disagrees with the grid's source count.
    ScaleLength {
        /// Number of sources in the grid.
        expected: usize,
        /// Length of the scenario's scale vector.
        found: usize,
    },
    /// The blocked PCG solve classified this scenario's column as a
    /// breakdown (see [`TerminationReason::is_breakdown`]).
    SolverBreakdown {
        /// The classified termination reason.
        reason: TerminationReason,
    },
    /// The advanced voltage state contained a non-finite value.
    NonFiniteState,
}

impl std::fmt::Display for ScenarioFailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioFailureKind::InvalidScale { index, value } => {
                write!(f, "non-finite source scale {value} at index {index}")
            }
            ScenarioFailureKind::ScaleLength { expected, found } => {
                write!(f, "scale vector has {found} entries, grid has {expected} sources")
            }
            ScenarioFailureKind::SolverBreakdown { reason } => {
                write!(f, "solver breakdown: {reason}")
            }
            ScenarioFailureKind::NonFiniteState => write!(f, "non-finite voltage state"),
        }
    }
}

/// A recorded per-scenario failure: which ensemble member, at which time
/// step (`0` = input validation / initial condition), and why.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioFailure {
    /// Index of the scenario within the submitted ensemble.
    pub scenario: usize,
    /// Time-step index at which the scenario was abandoned (`0` before
    /// the first step: scale validation or a bad DC operating point).
    pub step: usize,
    /// What went wrong.
    pub kind: ScenarioFailureKind,
}

impl std::fmt::Display for ScenarioFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "scenario {} failed at step {}: {}", self.scenario, self.step, self.kind)
    }
}

/// Per-scenario outcome of a fault-tolerant batch transient run.
#[derive(Debug, Clone)]
pub enum ScenarioOutcome {
    /// The scenario integrated to `t_end`; its full result.
    Completed(TransientResult),
    /// The scenario was abandoned; the rest of the batch continued.
    Failed(ScenarioFailure),
}

impl ScenarioOutcome {
    /// The completed result, if the scenario survived.
    pub fn result(&self) -> Option<&TransientResult> {
        match self {
            ScenarioOutcome::Completed(r) => Some(r),
            ScenarioOutcome::Failed(_) => None,
        }
    }

    /// The recorded failure, if the scenario was abandoned.
    pub fn failure(&self) -> Option<&ScenarioFailure> {
        match self {
            ScenarioOutcome::Completed(_) => None,
            ScenarioOutcome::Failed(fail) => Some(fail),
        }
    }

    /// Whether the scenario completed.
    pub fn is_completed(&self) -> bool {
        matches!(self, ScenarioOutcome::Completed(_))
    }
}

/// Checks one scenario's scale vector before any arithmetic runs.
fn validate_scenario(sc: &SourceScenario, num_sources: usize) -> Option<ScenarioFailureKind> {
    let scales = sc.scales()?;
    if scales.len() != num_sources {
        return Some(ScenarioFailureKind::ScaleLength {
            expected: num_sources,
            found: scales.len(),
        });
    }
    scales
        .iter()
        .position(|s| !s.is_finite())
        .map(|index| ScenarioFailureKind::InvalidScale { index, value: scales[index] })
}

/// Copies the selected columns of `src` into a fresh, narrower block.
fn keep_columns(src: &MultiVec, keep: &[usize]) -> MultiVec {
    let mut out = MultiVec::zeros(src.nrows(), keep.len());
    for (dst, &j) in keep.iter().enumerate() {
        out.col_mut(dst).copy_from_slice(src.col(j));
    }
    out
}

/// Fault-tolerant variant of [`simulate_pcg_batch`]: instead of aborting
/// the whole ensemble on the first bad scenario, returns one
/// [`ScenarioOutcome`] per input, in order.
///
/// A scenario is abandoned (and the batch narrowed) when
///
/// - its scale vector is malformed (wrong length or non-finite entries —
///   caught before any arithmetic runs, `step == 0`),
/// - its DC operating point or advanced voltage state goes non-finite, or
/// - the blocked PCG classifies its column as a breakdown
///   ([`TerminationReason::is_breakdown`]; plain `MaxIterations` is *not*
///   a breakdown, matching [`simulate_pcg_batch`]'s tolerance of
///   unconverged steps).
///
/// The block-PCG column recurrences are independent (see
/// [`tracered_solver::block`]), so dropping a failed column leaves every
/// surviving scenario's arithmetic — and therefore its waveforms —
/// bit-identical to a run that never contained the bad scenario.
/// `solve_time` in surviving results is the batch stepping time amortized
/// over the survivors.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] only for *shared* failures
/// that doom every scenario alike (the DC factorization of `G`).
///
/// # Panics
///
/// Panics if a probe node is out of bounds or `scenarios` is empty.
pub fn simulate_pcg_batch_outcomes(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    preconditioner: &CholPreconditioner,
    probe_nodes: &[usize],
    scenarios: &[SourceScenario],
) -> Result<Vec<ScenarioOutcome>, SparseError> {
    let n = pg.num_nodes();
    assert!(probe_nodes.iter().all(|&p| p < n), "probe nodes must be in bounds");
    assert!(!scenarios.is_empty(), "at least one scenario is required");
    let mut span = tracered_obs::span!("transient.run", { n: n, scenarios: scenarios.len() });
    let num_sources = pg.sources().len();

    let mut failures: Vec<Option<ScenarioFailure>> = vec![None; scenarios.len()];
    // `active[i]` is the original scenario index behind batch column `i`.
    let mut active: Vec<usize> = Vec::new();
    for (s, sc) in scenarios.iter().enumerate() {
        match validate_scenario(sc, num_sources) {
            Some(kind) => failures[s] = Some(ScenarioFailure { scenario: s, step: 0, kind }),
            None => active.push(s),
        }
    }

    let waveforms: Vec<_> = pg.sources().iter().map(|s| s.waveform).collect();
    let grid = merged_time_grid(&waveforms, cfg.t_end, cfg.max_step);
    let mut times = vec![grid[0]];
    let mut v = MultiVec::zeros(n, active.len());
    let mut probes: Vec<Vec<Vec<f64>>> = Vec::new();
    let mut total_iters: Vec<usize> = vec![0; active.len()];

    if !active.is_empty() {
        let active_scenarios: Vec<SourceScenario> =
            active.iter().map(|&s| scenarios[s].clone()).collect();
        v = dc_points_batch_threads(pg, &active_scenarios, cfg.kernel, cfg.factor_threads.max(1))?;
        // A bad DC column (from a pathological but finite scale) fails
        // just that scenario.
        let keep: Vec<usize> = (0..active.len())
            .filter(|&i| {
                let ok = v.col(i).iter().all(|x| x.is_finite());
                if !ok {
                    failures[active[i]] = Some(ScenarioFailure {
                        scenario: active[i],
                        step: 0,
                        kind: ScenarioFailureKind::NonFiniteState,
                    });
                }
                ok
            })
            .collect();
        if keep.len() != active.len() {
            v = keep_columns(&v, &keep);
            active = keep.iter().map(|&i| active[i]).collect();
            total_iters.truncate(active.len());
        }
        probes = active
            .iter()
            .enumerate()
            .map(|(i, _)| probe_nodes.iter().map(|&p| vec![v.col(i)[p]]).collect())
            .collect();
    }

    let opts = PcgOptions {
        rel_tolerance: cfg.pcg_tol,
        max_iterations: 10_000,
        threads: cfg.threads.max(1),
    };
    let g_matrix = pg.conductance_shared();
    let g_for_system = match cfg.scheme {
        IntegrationScheme::BackwardEuler => Arc::clone(&g_matrix),
        IntegrationScheme::Trapezoidal => {
            let mut half = (*g_matrix).clone();
            for val in half.values_mut() {
                *val *= 0.5;
            }
            Arc::new(half)
        }
    };
    let cap = pg.capacitance();
    let mut gv = vec![0.0; n];
    let t_solve = Instant::now();
    let mut steps = 0usize;
    for w in grid.windows(2) {
        if active.is_empty() {
            break;
        }
        let _step = tracered_obs::span!("transient.step", { step: steps, width: active.len() });
        let (t0, t1) = (w[0], w[1]);
        let h = t1 - t0;
        let shifts: Vec<f64> = cap.iter().map(|&c| c / h).collect();
        let a = g_for_system
            .add_diagonal(&shifts)
            .expect("conductance matrix is square by construction");
        let mut rhs = MultiVec::zeros(n, active.len());
        for (i, &s) in active.iter().enumerate() {
            step_rhs(
                pg,
                cfg.scheme,
                t0,
                t1,
                h,
                v.col(i),
                scenarios[s].scales(),
                &g_matrix,
                &mut gv,
                rhs.col_mut(i),
            );
        }
        let sol = block_pcg_with_guess(&a, &rhs, Some(&v), preconditioner, &opts);
        v = sol.x;
        steps += 1;
        times.push(t1);
        for (total, its) in total_iters.iter_mut().zip(sol.iterations.iter()) {
            *total += its;
        }
        // Classify this step's columns; survivors keep their slots, failed
        // columns drop out of the recurrence entirely.
        let mut keep: Vec<usize> = Vec::with_capacity(active.len());
        for i in 0..active.len() {
            let kind = if sol.reasons[i].is_breakdown() {
                Some(ScenarioFailureKind::SolverBreakdown { reason: sol.reasons[i] })
            } else if v.col(i).iter().any(|x| !x.is_finite()) {
                Some(ScenarioFailureKind::NonFiniteState)
            } else {
                None
            };
            match kind {
                Some(kind) => {
                    failures[active[i]] =
                        Some(ScenarioFailure { scenario: active[i], step: steps, kind });
                }
                None => keep.push(i),
            }
        }
        if keep.len() != active.len() {
            v = keep_columns(&v, &keep);
            total_iters = keep.iter().map(|&i| total_iters[i]).collect();
            probes = keep.iter().map(|&i| std::mem::take(&mut probes[i])).collect();
            active = keep.iter().map(|&i| active[i]).collect();
        }
        for (i, scenario_probes) in probes.iter_mut().enumerate() {
            for (trace, &p) in scenario_probes.iter_mut().zip(probe_nodes.iter()) {
                trace.push(v.col(i)[p]);
            }
        }
    }

    let survivors = active.len();
    let solve_time =
        if survivors > 0 { t_solve.elapsed() / survivors as u32 } else { Duration::ZERO };
    if let Some(g) = span.as_mut() {
        g.arg("steps", steps as f64);
        g.arg("survivors", survivors as f64);
    }
    let mut results: Vec<Option<TransientResult>> = vec![None; scenarios.len()];
    for ((s, scenario_probes), iters) in active.iter().zip(probes).zip(total_iters) {
        results[*s] = Some(TransientResult {
            times: times.clone(),
            probes: scenario_probes,
            stats: TransientStats {
                steps,
                factor_time: Duration::ZERO,
                solve_time,
                total_pcg_iterations: iters,
                avg_pcg_iterations: if steps > 0 { iters as f64 / steps as f64 } else { 0.0 },
                memory_bytes: preconditioner.memory_bytes(),
                factorizations: 0,
            },
        });
    }

    Ok(scenarios
        .iter()
        .enumerate()
        .map(|(s, _)| match failures[s].take() {
            Some(fail) => ScenarioOutcome::Failed(fail),
            None => ScenarioOutcome::Completed(
                results[s].take().expect("non-failed scenario has a result"),
            ),
        })
        .collect())
}

/// Fault-tolerant variant of [`simulate_direct_batch`]: malformed
/// scenarios become [`ScenarioOutcome::Failed`] entries instead of
/// panics, and the remaining ensemble runs through the shared direct
/// solver unchanged.
///
/// The direct engine advances every scenario with the same factorized
/// operator, so per-scenario numerical divergence can only enter through
/// the right-hand sides; a scenario whose waveforms go non-finite is
/// reported as [`ScenarioFailureKind::NonFiniteState`] with the step at
/// which its probe traces first left the finite range.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] when `G + C/h` cannot be
/// factorized — a shared failure that dooms every scenario alike.
///
/// # Panics
///
/// Panics if a probe node is out of bounds or `scenarios` is empty.
pub fn simulate_direct_batch_outcomes(
    pg: &PowerGrid,
    cfg: &TransientConfig,
    probe_nodes: &[usize],
    scenarios: &[SourceScenario],
) -> Result<Vec<ScenarioOutcome>, SparseError> {
    assert!(!scenarios.is_empty(), "at least one scenario is required");
    let num_sources = pg.sources().len();
    let mut failures: Vec<Option<ScenarioFailure>> = vec![None; scenarios.len()];
    let mut active: Vec<usize> = Vec::new();
    for (s, sc) in scenarios.iter().enumerate() {
        match validate_scenario(sc, num_sources) {
            Some(kind) => failures[s] = Some(ScenarioFailure { scenario: s, step: 0, kind }),
            None => active.push(s),
        }
    }
    let mut results: Vec<Option<TransientResult>> = vec![None; scenarios.len()];
    if !active.is_empty() {
        let active_scenarios: Vec<SourceScenario> =
            active.iter().map(|&s| scenarios[s].clone()).collect();
        let batch = simulate_direct_batch(pg, cfg, probe_nodes, &active_scenarios)?;
        for (&s, result) in active.iter().zip(batch) {
            let bad_step = result
                .probes
                .iter()
                .filter_map(|trace| trace.iter().position(|x| !x.is_finite()))
                .min();
            match bad_step {
                Some(step) => {
                    failures[s] = Some(ScenarioFailure {
                        scenario: s,
                        step,
                        kind: ScenarioFailureKind::NonFiniteState,
                    });
                }
                None => results[s] = Some(result),
            }
        }
    }
    Ok(scenarios
        .iter()
        .enumerate()
        .map(|(s, _)| match failures[s].take() {
            Some(fail) => ScenarioOutcome::Failed(fail),
            None => ScenarioOutcome::Completed(
                results[s].take().expect("non-failed scenario has a result"),
            ),
        })
        .collect())
}

/// Picks two interesting probe nodes: one next to a pad (stiff, near-VDD)
/// and one at maximum BFS distance from every pad (worst droop). These
/// play the role of the paper's Fig. 1 "VDD node" and worst-case node.
pub fn probe_pair(pg: &PowerGrid) -> (usize, usize) {
    let n = pg.num_nodes();
    // Multi-source BFS from all pads.
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    let mut near_pad = 0;
    for (i, &g) in pg.pad_conductance().iter().enumerate() {
        if g > 0.0 {
            dist[i] = 0;
            queue.push_back(i);
            near_pad = i;
        }
    }
    let mut far = near_pad;
    while let Some(x) = queue.pop_front() {
        if dist[x] > dist[far] {
            far = x;
        }
        for &(nbr, _) in pg.graph().neighbors(x) {
            if dist[nbr] == usize::MAX {
                dist[nbr] = dist[x] + 1;
                queue.push_back(nbr);
            }
        }
    }
    (near_pad, far)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::synth::{synthesize, SynthConfig};

    fn small_grid() -> PowerGrid {
        synthesize(&SynthConfig { mesh: 10, source_fraction: 0.2, ..Default::default() })
    }

    fn quick_cfg() -> TransientConfig {
        TransientConfig {
            t_end: 1e-9,
            fixed_step: Some(2.5e-11),
            pcg_tol: 1e-8,
            ..Default::default()
        }
    }

    #[test]
    fn direct_transient_stays_physical() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let out = simulate_direct(&pg, &quick_cfg(), &[near, far]).unwrap();
        assert_eq!(out.times.len(), out.probes[0].len());
        for trace in &out.probes {
            for &v in trace {
                assert!(v > 0.0 && v <= pg.vdd() + 1e-9, "voltage {v} out of range");
            }
        }
        assert!(out.stats.steps >= 40);
        assert!(out.stats.memory_bytes > 0);
    }

    #[test]
    fn pcg_transient_matches_direct() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let cfg = quick_cfg();
        let direct = simulate_direct(&pg, &cfg, &[near, far]).unwrap();
        // Exact (unsparsified) preconditioner → every step converges fast
        // and the two engines must agree closely despite different grids.
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let iter = simulate_pcg(&pg, &cfg, &pre, &[near, far]).unwrap();
        for idx in 0..2 {
            let d = direct.max_probe_difference(&iter, idx, 200);
            assert!(d < 0.016, "probe {idx} differs by {d} V (> 16 mV)");
        }
        assert!(iter.stats.steps < direct.stats.steps, "variable stepping must take fewer steps");
        assert!(iter.stats.total_pcg_iterations > 0);
    }

    #[test]
    fn sparsifier_preconditioner_converges_with_more_iterations() {
        let pg = small_grid();
        let cfg = quick_cfg();
        let (near, _) = probe_pair(&pg);
        let exact = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let run_exact = simulate_pcg(&pg, &cfg, &exact, &[near]).unwrap();
        // Sparsified preconditioner from DC analysis.
        let sp = tracered_core::sparsify(
            pg.graph(),
            &tracered_core::SparsifyConfig::default().shift(
                tracered_graph::laplacian::ShiftPolicy::PerNode(pg.pad_conductance().to_vec()),
            ),
        )
        .unwrap();
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).unwrap();
        let run_sp = simulate_pcg(&pg, &cfg, &pre, &[near]).unwrap();
        assert!(run_sp.stats.avg_pcg_iterations >= run_exact.stats.avg_pcg_iterations);
        let d = run_exact.max_probe_difference(&run_sp, 0, 200);
        assert!(d < 1e-3, "solutions must agree regardless of preconditioner, diff {d}");
        assert!(
            run_sp.stats.memory_bytes < run_exact.stats.memory_bytes,
            "sparsifier factor must be smaller"
        );
    }

    #[test]
    fn dc_point_is_fixed_point_without_sources() {
        let mut cfg = SynthConfig { mesh: 6, source_fraction: 0.0, ..Default::default() };
        cfg.peak_current = 0.0;
        let pg = synthesize(&cfg);
        let (near, far) = probe_pair(&pg);
        let out = simulate_direct(
            &pg,
            &TransientConfig { t_end: 5e-10, fixed_step: Some(5e-11), ..Default::default() },
            &[near, far],
        )
        .unwrap();
        // With zero draw everything stays at VDD.
        for trace in &out.probes {
            for &v in trace {
                assert!((v - pg.vdd()).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn trapezoidal_matches_backward_euler_closely() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let be = simulate_direct(&pg, &quick_cfg(), &probes).unwrap();
        let trap = simulate_direct(
            &pg,
            &TransientConfig { scheme: IntegrationScheme::Trapezoidal, ..quick_cfg() },
            &probes,
        )
        .unwrap();
        // Both schemes are consistent discretizations of the same DAE, so
        // at these small steps they must agree to within a few mV.
        for idx in 0..2 {
            let d = be.max_probe_difference(&trap, idx, 200);
            assert!(d < 5e-3, "probe {idx}: BE vs trapezoidal differ by {d} V");
        }
    }

    #[test]
    fn trapezoidal_pcg_agrees_with_trapezoidal_direct() {
        let pg = small_grid();
        let (near, _) = probe_pair(&pg);
        let cfg = TransientConfig {
            t_end: 1e-9,
            scheme: IntegrationScheme::Trapezoidal,
            pcg_tol: 1e-9,
            ..Default::default()
        };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let direct = simulate_direct_varied(&pg, &cfg, &[near]).unwrap();
        let iter = simulate_pcg(&pg, &cfg, &pre, &[near]).unwrap();
        // Same scheme on the same time grid: agreement to solver tolerance.
        assert_eq!(direct.times.len(), iter.times.len());
        let d = direct.max_probe_difference(&iter, 0, 300);
        assert!(d < 1e-5, "trapezoidal direct vs PCG differ by {d} V");
    }

    #[test]
    fn varied_direct_matches_pcg_and_counts_factorizations() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = TransientConfig { t_end: 2e-9, pcg_tol: 1e-9, ..Default::default() };
        let varied = simulate_direct_varied(&pg, &cfg, &probes).unwrap();
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let iter = simulate_pcg(&pg, &cfg, &pre, &probes).unwrap();
        // Identical time grid and scheme: solutions agree to PCG tolerance.
        assert_eq!(varied.times, iter.times);
        for idx in 0..2 {
            let d = varied.max_probe_difference(&iter, idx, 300);
            assert!(d < 1e-5, "probe {idx} differs by {d} V");
        }
        // The paper's complaint: varied steps force refactorizations
        // (several even on this small lattice-aligned case), while PCG
        // never refactorizes.
        assert!(
            varied.stats.factorizations > 1,
            "breakpoint-driven stepping must change h, got {}",
            varied.stats.factorizations
        );
        assert_eq!(iter.stats.factorizations, 0);
    }

    /// Deterministic scenario ensemble: the nominal corner plus per-source
    /// activity patterns.
    fn scenario_ensemble(pg: &PowerGrid, k: usize) -> Vec<SourceScenario> {
        let m = pg.sources().len();
        (0..k)
            .map(|i| {
                if i == 0 {
                    SourceScenario::nominal()
                } else {
                    SourceScenario::per_source(
                        (0..m).map(|j| 0.25 + ((i * 7 + j * 3) % 10) as f64 * 0.15).collect(),
                    )
                }
            })
            .collect()
    }

    /// Largest pointwise gap between two runs' probe traces (same grid).
    fn max_trace_gap(a: &TransientResult, b: &TransientResult) -> f64 {
        assert_eq!(a.times, b.times);
        a.probes
            .iter()
            .zip(b.probes.iter())
            .flat_map(|(ta, tb)| ta.iter().zip(tb.iter()).map(|(x, y)| (x - y).abs()))
            .fold(0.0, f64::max)
    }

    #[test]
    fn pcg_batch_matches_independent_runs_per_scenario() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = TransientConfig { t_end: 1e-9, pcg_tol: 1e-8, ..Default::default() };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let scenarios = scenario_ensemble(&pg, 8);
        let batch = simulate_pcg_batch(&pg, &cfg, &pre, &probes, &scenarios).unwrap();
        assert_eq!(batch.len(), 8);
        for (s, sc) in scenarios.iter().enumerate() {
            let single = simulate_pcg_batch(&pg, &cfg, &pre, &probes, std::slice::from_ref(sc))
                .unwrap()
                .pop()
                .unwrap();
            // Column recurrences are independent, so the batch must match
            // an isolated run essentially exactly (signed zeros aside).
            let gap = max_trace_gap(&batch[s], &single);
            assert!(gap < 1e-12, "scenario {s} diverged by {gap} V");
            assert_eq!(
                batch[s].stats.total_pcg_iterations, single.stats.total_pcg_iterations,
                "scenario {s} iteration accounting changed under batching"
            );
        }
        // The nominal scenario must also match the public single-RHS API.
        let nominal = simulate_pcg(&pg, &cfg, &pre, &probes).unwrap();
        assert!(max_trace_gap(&batch[0], &nominal) == 0.0);
        // Scaled scenarios genuinely differ from nominal.
        assert!(max_trace_gap(&batch[0], &batch[3]) > 1e-6);
    }

    #[test]
    fn direct_batch_matches_independent_runs_per_scenario() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = quick_cfg();
        let scenarios = scenario_ensemble(&pg, 3);
        let batch = simulate_direct_batch(&pg, &cfg, &probes, &scenarios).unwrap();
        for (s, sc) in scenarios.iter().enumerate() {
            let single = simulate_direct_batch(&pg, &cfg, &probes, std::slice::from_ref(sc))
                .unwrap()
                .pop()
                .unwrap();
            let gap = max_trace_gap(&batch[s], &single);
            assert!(gap < 1e-12, "scenario {s} diverged by {gap} V");
        }
        let nominal = simulate_direct(&pg, &cfg, &probes).unwrap();
        assert!(max_trace_gap(&batch[0], &nominal) == 0.0);
        assert_eq!(batch[0].stats.factorizations, 1);
    }

    #[test]
    fn batch_dc_points_match_single_dc_solves() {
        let pg = small_grid();
        let scenarios = scenario_ensemble(&pg, 4);
        let v = dc_operating_points_batch(&pg, &scenarios).unwrap();
        let g = pg.conductance_matrix();
        for (s, sc) in scenarios.iter().enumerate() {
            let b = pg.dc_rhs_scaled(sc.source_scale.as_deref());
            assert!(g.residual_inf_norm(v.col(s), &b) < 1e-8, "scenario {s}");
        }
        // Nominal column agrees with the single-RHS entry point.
        let single = dc_operating_point(&pg).unwrap();
        for (a, b) in v.col(0).iter().zip(single.iter()) {
            assert!((a - b).abs() == 0.0);
        }
    }

    #[test]
    fn threads_knob_reaches_parallel_kernels_and_preserves_solutions() {
        let pg = small_grid();
        let (near, _) = probe_pair(&pg);
        let cfg = TransientConfig { t_end: 5e-10, pcg_tol: 1e-9, ..Default::default() };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let serial = simulate_pcg(&pg, &cfg, &pre, &[near]).unwrap();
        for threads in [2usize, 4] {
            let par =
                simulate_pcg(&pg, &TransientConfig { threads, ..cfg }, &pre, &[near]).unwrap();
            // Chunked reductions only change rounding: solutions agree to
            // solver tolerance and iteration counts stay close.
            let gap = serial.max_probe_difference(&par, 0, 200);
            assert!(gap < 1e-6, "threads {threads}: waveforms diverged by {gap} V");
            let (a, b) = (serial.stats.total_pcg_iterations, par.stats.total_pcg_iterations);
            assert!(
                a.abs_diff(b) <= serial.stats.steps * 2 + 4,
                "threads {threads}: iterations moved from {a} to {b}"
            );
        }
    }

    #[test]
    fn pcg_outcomes_match_batch_when_everything_is_healthy() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = TransientConfig { t_end: 1e-9, pcg_tol: 1e-8, ..Default::default() };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let scenarios = scenario_ensemble(&pg, 4);
        let batch = simulate_pcg_batch(&pg, &cfg, &pre, &probes, &scenarios).unwrap();
        let outcomes = simulate_pcg_batch_outcomes(&pg, &cfg, &pre, &probes, &scenarios).unwrap();
        assert_eq!(outcomes.len(), 4);
        for (s, out) in outcomes.iter().enumerate() {
            let r = out.result().expect("healthy scenario must complete");
            assert_eq!(max_trace_gap(r, &batch[s]), 0.0, "scenario {s}");
            assert_eq!(r.stats.total_pcg_iterations, batch[s].stats.total_pcg_iterations);
        }
    }

    #[test]
    fn pcg_outcomes_isolate_a_poisoned_scenario() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = TransientConfig { t_end: 1e-9, pcg_tol: 1e-8, ..Default::default() };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let mut scenarios = scenario_ensemble(&pg, 4);
        // Poison scenario 2 with a NaN scale; the rest must be unaffected.
        let m = pg.sources().len();
        let mut bad = vec![1.0; m];
        bad[0] = f64::NAN;
        scenarios[2] = SourceScenario::per_source(bad);
        let clean: Vec<SourceScenario> =
            [0usize, 1, 3].iter().map(|&s| scenarios[s].clone()).collect();
        let reference = simulate_pcg_batch(&pg, &cfg, &pre, &probes, &clean).unwrap();
        let outcomes = simulate_pcg_batch_outcomes(&pg, &cfg, &pre, &probes, &scenarios).unwrap();
        let fail = outcomes[2].failure().expect("poisoned scenario must fail");
        assert_eq!(fail.scenario, 2);
        assert_eq!(fail.step, 0);
        assert!(matches!(fail.kind, ScenarioFailureKind::InvalidScale { index: 0, .. }));
        assert!(fail.to_string().contains("scenario 2"));
        for (r, &s) in reference.iter().zip([0usize, 1, 3].iter()) {
            let out = outcomes[s].result().expect("clean scenario must survive");
            // Column independence: survivors are bit-identical to a batch
            // that never contained the poisoned member.
            assert_eq!(max_trace_gap(out, r), 0.0, "scenario {s}");
        }
    }

    #[test]
    fn pcg_outcomes_flag_wrong_scale_length() {
        let pg = small_grid();
        let cfg = TransientConfig { t_end: 2e-10, ..Default::default() };
        let pre = CholPreconditioner::from_matrix(&pg.conductance_matrix()).unwrap();
        let scenarios = vec![SourceScenario::nominal(), SourceScenario::per_source(vec![1.0, 2.0])];
        let outcomes = simulate_pcg_batch_outcomes(&pg, &cfg, &pre, &[0], &scenarios).unwrap();
        assert!(outcomes[0].is_completed());
        assert!(matches!(
            outcomes[1].failure().unwrap().kind,
            ScenarioFailureKind::ScaleLength { found: 2, .. }
        ));
    }

    #[test]
    fn direct_outcomes_isolate_malformed_scenarios() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        let probes = [near, far];
        let cfg = quick_cfg();
        let m = pg.sources().len();
        let mut bad = vec![1.0; m];
        bad[1] = f64::INFINITY;
        let scenarios = vec![
            SourceScenario::nominal(),
            SourceScenario::per_source(bad),
            SourceScenario::uniform(0.5, m),
        ];
        let outcomes = simulate_direct_batch_outcomes(&pg, &cfg, &probes, &scenarios).unwrap();
        assert!(outcomes[0].is_completed());
        assert!(matches!(
            outcomes[1].failure().unwrap().kind,
            ScenarioFailureKind::InvalidScale { index: 1, .. }
        ));
        assert!(outcomes[2].is_completed());
        // Survivors match a clean batch exactly (shared factor, per-column
        // substitutions).
        let clean = simulate_direct_batch(
            &pg,
            &cfg,
            &probes,
            &[scenarios[0].clone(), scenarios[2].clone()],
        )
        .unwrap();
        assert_eq!(max_trace_gap(outcomes[0].result().unwrap(), &clean[0]), 0.0);
        assert_eq!(max_trace_gap(outcomes[2].result().unwrap(), &clean[1]), 0.0);
    }

    #[test]
    fn probe_pair_separates_pad_and_droop_nodes() {
        let pg = small_grid();
        let (near, far) = probe_pair(&pg);
        assert!(pg.pad_conductance()[near] > 0.0);
        assert_eq!(pg.pad_conductance()[far], 0.0);
        assert_ne!(near, far);
    }

    #[test]
    fn sample_interpolates_linearly() {
        let r = TransientResult {
            times: vec![0.0, 1.0, 2.0],
            probes: vec![vec![0.0, 10.0, 0.0]],
            stats: TransientStats {
                steps: 2,
                factor_time: Duration::ZERO,
                solve_time: Duration::ZERO,
                total_pcg_iterations: 0,
                avg_pcg_iterations: 0.0,
                memory_bytes: 0,
                factorizations: 0,
            },
        };
        assert_eq!(r.sample(0, 0.5), 5.0);
        assert_eq!(r.sample(0, 1.5), 5.0);
        assert_eq!(r.sample(0, -1.0), 0.0);
        assert_eq!(r.sample(0, 99.0), 0.0);
    }
}
