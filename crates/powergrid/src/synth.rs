//! Synthetic power-grid benchmark generation.
//!
//! The IBM [Nassif 2008] and THU [Yang & Li 2012] grids the paper uses
//! are not redistributable here, so this module generates grids with the
//! same physics, following the paper's own augmentation recipe: to the
//! resistive mesh it adds "capacitances with values randomly ranging from
//! 1 pF to 10 pF … and periodic pulse currents … at each current source".
//! Mesh conductances, pad placement and source placement are randomized
//! but seeded, so every benchmark case is reproducible.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use tracered_graph::gen::{grid2d, WeightProfile};

use crate::netlist::{CurrentSource, PowerGrid};
use crate::waveform::PulseWaveform;

/// Parameters of the synthetic grid generator.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthConfig {
    /// Mesh is `mesh × mesh` nodes.
    pub mesh: usize,
    /// Mesh conductances are log-uniform in `[g_lo, g_hi]` siemens.
    pub g_lo: f64,
    /// Upper conductance bound.
    pub g_hi: f64,
    /// One C4 pad every `pad_pitch` nodes in each direction.
    pub pad_pitch: usize,
    /// Pad conductance to the ideal supply (siemens).
    pub pad_conductance: f64,
    /// Node capacitances are uniform in `[c_lo, c_hi]` farads
    /// (paper: 1–10 pF).
    pub c_lo: f64,
    /// Upper capacitance bound.
    pub c_hi: f64,
    /// Fraction of nodes carrying a switching current source.
    pub source_fraction: f64,
    /// Peak source current (amperes); amplitudes are uniform in
    /// `[0, peak]`.
    pub peak_current: f64,
    /// Supply voltage.
    pub vdd: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            mesh: 32,
            g_lo: 1.0,
            g_hi: 10.0,
            pad_pitch: 8,
            pad_conductance: 50.0,
            c_lo: 1e-12,
            c_hi: 10e-12,
            source_fraction: 0.1,
            peak_current: 5e-3,
            vdd: 1.8,
            seed: 0xcafe,
        }
    }
}

/// Generates a synthetic power grid.
///
/// # Panics
///
/// Panics if `mesh == 0` or `pad_pitch == 0`.
pub fn synthesize(cfg: &SynthConfig) -> PowerGrid {
    assert!(cfg.mesh > 0, "mesh must be positive");
    assert!(cfg.pad_pitch > 0, "pad pitch must be positive");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let k = cfg.mesh;
    let n = k * k;
    let graph = grid2d(k, k, WeightProfile::LogUniform { lo: cfg.g_lo, hi: cfg.g_hi }, cfg.seed);
    // Pads on a coarse sub-grid (offset to avoid the boundary).
    let mut pad = vec![0.0; n];
    let off = cfg.pad_pitch / 2;
    let mut r = off;
    while r < k {
        let mut c = off;
        while c < k {
            pad[r * k + c] = cfg.pad_conductance;
            c += cfg.pad_pitch;
        }
        r += cfg.pad_pitch;
    }
    // Guarantee at least one pad.
    if pad.iter().all(|&g| g == 0.0) {
        pad[0] = cfg.pad_conductance;
    }
    // Capacitances 1–10 pF (paper's augmentation of the THU grids).
    let cap: Vec<f64> = (0..n).map(|_| rng.random_range(cfg.c_lo..cfg.c_hi)).collect();
    // Periodic pulse sources at a random subset of non-pad nodes.
    let mut sources = Vec::new();
    let mut async_budget = 2usize;
    for node in 0..n {
        if pad[node] > 0.0 || rng.random::<f64>() >= cfg.source_fraction {
            continue;
        }
        // Pulse timing quantised to a 50 ps lattice so breakpoints align
        // across sources (mirrors clocked switching activity); periods
        // 0.5–2 ns, edges 50–200 ps. A handful of sources switches
        // asynchronously (continuous delays) — enough to force a
        // varied-step direct solver to refactorize (paper §4.2) without
        // shattering the breakpoint grid.
        let lattice = 5e-11;
        // Deterministic sprinkling: the 8th and 37th sources (when they
        // exist) switch asynchronously.
        let is_async = async_budget > 0 && (sources.len() == 7 || sources.len() == 36);
        let delay = if is_async {
            async_budget -= 1;
            rng.random_range(0.0..8.0 * lattice)
        } else {
            rng.random_range(0..8) as f64 * lattice
        };
        let rise = rng.random_range(1..4) as f64 * lattice;
        let width = rng.random_range(0..6) as f64 * lattice;
        let fall = rng.random_range(1..4) as f64 * lattice;
        let min_period = delay.max(rise + width + fall) + lattice;
        // Asynchronous blocks switch slowly: they disturb the step grid
        // enough to force direct-solver refactorizations without
        // shattering it.
        let period_range = if is_async { 30..40 } else { 10..40 };
        let period = (rng.random_range(period_range) as f64 * lattice).max(min_period);
        sources.push(CurrentSource {
            node,
            waveform: PulseWaveform {
                delay,
                rise,
                width,
                fall,
                period,
                amplitude: rng.random_range(0.0..cfg.peak_current),
            },
        });
    }
    // Guarantee at least one source so transients are non-trivial.
    if sources.is_empty() {
        sources.push(CurrentSource {
            node: n / 2,
            waveform: PulseWaveform {
                delay: 5e-11,
                rise: 5e-11,
                width: 1e-10,
                fall: 5e-11,
                period: 1e-9,
                amplitude: cfg.peak_current,
            },
        });
    }
    PowerGrid::new(graph, pad, cap, sources, cfg.vdd)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_grid_is_well_formed() {
        let pg = synthesize(&SynthConfig::default());
        assert_eq!(pg.num_nodes(), 32 * 32);
        assert!(pg.graph().is_connected());
        assert!(pg.pad_conductance().iter().any(|&g| g > 0.0));
        assert!(!pg.sources().is_empty());
        assert!(pg.capacitance().iter().all(|&c| (1e-12..10e-12).contains(&c)));
    }

    #[test]
    fn deterministic_in_seed() {
        let a = synthesize(&SynthConfig::default());
        let b = synthesize(&SynthConfig::default());
        assert_eq!(a.graph(), b.graph());
        assert_eq!(a.pad_conductance(), b.pad_conductance());
        assert_eq!(a.sources().len(), b.sources().len());
        let c = synthesize(&SynthConfig { seed: 1, ..Default::default() });
        assert_ne!(a.graph(), c.graph());
    }

    #[test]
    fn small_mesh_still_gets_pad_and_source() {
        let pg = synthesize(&SynthConfig { mesh: 3, pad_pitch: 50, ..Default::default() });
        assert!(pg.pad_conductance().iter().any(|&g| g > 0.0));
        assert!(!pg.sources().is_empty());
    }

    #[test]
    fn dc_analysis_is_solvable_and_near_vdd() {
        let pg = synthesize(&SynthConfig { mesh: 12, ..Default::default() });
        let g = pg.conductance_matrix();
        let solver = tracered_solver::DirectSolver::new(&g).unwrap();
        let v = solver.solve(&pg.dc_rhs());
        for &vi in &v {
            assert!(vi > 0.5 * pg.vdd() && vi <= pg.vdd() + 1e-9, "node voltage {vi}");
        }
    }

    #[test]
    fn source_waveforms_have_positive_periods() {
        let pg = synthesize(&SynthConfig { mesh: 16, source_fraction: 0.5, ..Default::default() });
        for s in pg.sources() {
            let w = s.waveform;
            assert!(w.period > 0.0);
            assert!(w.period >= w.rise + w.width + w.fall);
            assert!(w.min_breakpoint_gap() > 0.0);
        }
    }
}
