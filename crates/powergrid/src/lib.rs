//! Power-grid transient simulation (paper §4.2).
//!
//! The paper evaluates its sparsifiers on IBM/THU power-grid benchmarks:
//! transient analysis `(G + C/h) v(t+h) = (C/h) v(t) + u(t+h)` under
//! backward Euler, where `G` is the conductance Laplacian (mesh resistors
//! plus pad conductances on the diagonal) and `C` the node capacitances.
//! Those benchmark files are not redistributable, so [`synth`] generates
//! grids following the paper's own recipe for augmenting [Yang & Li
//! 2012]: mesh resistors, C4 pads, 1–10 pF node capacitances and periodic
//! pulse current sources.
//!
//! Two transient engines reproduce the paper's trade-off:
//!
//! - [`transient::simulate_direct`] — fixed time step (limited by the
//!   smallest breakpoint distance of the sources), one factorization of
//!   `G + C/h`, substitutions per step;
//! - [`transient::simulate_pcg`] — breakpoint-driven *variable* steps,
//!   PCG per step, preconditioned once from the DC-analysis sparsifier.
//!
//! # Example
//!
//! ```
//! use tracered_powergrid::synth::{synthesize, SynthConfig};
//! use tracered_powergrid::transient::{simulate_direct, TransientConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pg = synthesize(&SynthConfig { mesh: 8, ..Default::default() });
//! let cfg = TransientConfig { t_end: 1e-9, fixed_step: Some(1e-11), ..Default::default() };
//! let out = simulate_direct(&pg, &cfg, &[0])?;
//! assert_eq!(out.probes.len(), 1);
//! assert!(out.stats.steps > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// MNA assembly walks parallel per-node arrays by position; index loops
// are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

#[warn(clippy::unwrap_used)]
pub mod contingency;
pub mod netlist;
pub mod synth;
#[warn(clippy::unwrap_used)]
pub mod transient;
#[warn(clippy::unwrap_used)]
pub mod waveform;

pub use contingency::{
    simulate_contingency_batch, simulate_contingency_refactor, ContingencyConfig,
    ContingencyMethod, ContingencySweep, EpochHook, Outage, OutageEvent, OutageFailure,
    OutageFailureKind, OutageOutcome, OutageSolve,
};
pub use netlist::{CurrentSource, PowerGrid};
pub use transient::{
    simulate_direct_batch_outcomes, simulate_pcg_batch_outcomes, ScenarioFailure,
    ScenarioFailureKind, ScenarioOutcome,
};
pub use waveform::PulseWaveform;
