//! Periodic pulse current waveforms with breakpoint enumeration.
//!
//! Variable-step transient integration must place time points at the
//! waveform *breakpoints* (slope discontinuities of the piecewise-linear
//! pulse) or it smears the transitions; between breakpoints the paper
//! caps the step at 200 ps for error control. The fixed-step direct
//! baseline must instead resolve the **smallest breakpoint spacing**,
//! which is what makes it expensive.

/// A periodic trapezoidal current pulse (SPICE `PULSE`-style).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulseWaveform {
    /// Time of the first rising edge start (seconds).
    pub delay: f64,
    /// Rise time (seconds, > 0).
    pub rise: f64,
    /// Plateau width at full amplitude (seconds).
    pub width: f64,
    /// Fall time (seconds, > 0).
    pub fall: f64,
    /// Pulse period (seconds, ≥ delay-free pulse length).
    pub period: f64,
    /// Peak current draw (amperes).
    pub amplitude: f64,
}

impl PulseWaveform {
    /// Current drawn at time `t` (amperes, ≥ 0).
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn value(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "time must be non-negative");
        if t < self.delay {
            return 0.0;
        }
        let tau = (t - self.delay) % self.period;
        if tau < self.rise {
            self.amplitude * tau / self.rise
        } else if tau < self.rise + self.width {
            self.amplitude
        } else if tau < self.rise + self.width + self.fall {
            self.amplitude * (1.0 - (tau - self.rise - self.width) / self.fall)
        } else {
            0.0
        }
    }

    /// All breakpoints (slope discontinuities) in `[0, t_end]`.
    pub fn breakpoints(&self, t_end: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut cycle_start = self.delay;
        if cycle_start <= t_end {
            out.push(0.0);
        }
        while cycle_start <= t_end {
            for offset in
                [0.0, self.rise, self.rise + self.width, self.rise + self.width + self.fall]
            {
                let t = cycle_start + offset;
                if t <= t_end {
                    out.push(t);
                }
            }
            cycle_start += self.period;
        }
        out
    }

    /// Smallest spacing between consecutive breakpoints — the paper's
    /// constraint on the fixed-step direct solver.
    pub fn min_breakpoint_gap(&self) -> f64 {
        let tail = self.period - self.rise - self.width - self.fall;
        let mut gap = self.rise.min(self.fall);
        if self.width > 0.0 {
            gap = gap.min(self.width);
        }
        if tail > 0.0 {
            gap = gap.min(tail);
        }
        gap
    }
}

/// Merges the breakpoints of many waveforms over `[0, t_end]`, inserting
/// intermediate points so no interval exceeds `max_step`, and deduplicating
/// near-coincident points (relative tolerance `1e-12·t_end`).
pub fn merged_time_grid(waveforms: &[PulseWaveform], t_end: f64, max_step: f64) -> Vec<f64> {
    let mut pts: Vec<f64> = vec![0.0, t_end];
    for w in waveforms {
        pts.extend(w.breakpoints(t_end));
    }
    // total_cmp: NaN-safe — a corrupted breakpoint must not panic the
    // sort (it sorts last and the caller's non-finite checks catch it).
    pts.sort_by(f64::total_cmp);
    let tol = 1e-12 * t_end.max(1e-30);
    pts.dedup_by(|a, b| (*a - *b).abs() <= tol);
    // Subdivide long gaps.
    let mut grid = Vec::with_capacity(pts.len() * 2);
    grid.push(pts[0]);
    for w in pts.windows(2) {
        let (a, b) = (w[0], w[1]);
        let gap = b - a;
        if gap > max_step {
            let pieces = (gap / max_step).ceil() as usize;
            for k in 1..pieces {
                grid.push(a + gap * k as f64 / pieces as f64);
            }
        }
        grid.push(b);
    }
    grid
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn pulse() -> PulseWaveform {
        PulseWaveform {
            delay: 1e-10,
            rise: 5e-11,
            width: 2e-10,
            fall: 5e-11,
            period: 1e-9,
            amplitude: 0.01,
        }
    }

    #[test]
    fn value_traces_the_trapezoid() {
        let p = pulse();
        assert_eq!(p.value(0.0), 0.0);
        assert_eq!(p.value(5e-11), 0.0); // before delay
        assert!((p.value(1.25e-10) - 0.005).abs() < 1e-12); // mid-rise
        assert_eq!(p.value(2e-10), 0.01); // plateau
        assert!((p.value(3.75e-10) - 0.005).abs() < 1e-12); // mid-fall
        assert_eq!(p.value(6e-10), 0.0); // tail
    }

    #[test]
    fn periodicity() {
        let p = pulse();
        for t in [1.2e-10, 2.5e-10, 4e-10] {
            assert!((p.value(t) - p.value(t + 1e-9)).abs() < 1e-15);
            assert!((p.value(t) - p.value(t + 3e-9)).abs() < 1e-15);
        }
    }

    #[test]
    fn breakpoints_cover_transitions() {
        let p = pulse();
        let bps = p.breakpoints(1e-9);
        for expect in [1e-10, 1.5e-10, 3.5e-10, 4e-10] {
            assert!(bps.iter().any(|&b| (b - expect).abs() < 1e-16), "missing breakpoint {expect}");
        }
    }

    #[test]
    fn min_gap_is_smallest_segment() {
        let p = pulse();
        assert!((p.min_breakpoint_gap() - 5e-11).abs() < 1e-20);
    }

    #[test]
    fn merged_grid_is_sorted_unique_and_bounded() {
        let p1 = pulse();
        let mut p2 = pulse();
        p2.delay = 3e-10;
        p2.period = 7e-10;
        let grid = merged_time_grid(&[p1, p2], 2e-9, 2e-10);
        assert_eq!(grid[0], 0.0);
        assert!((grid.last().unwrap() - 2e-9).abs() < 1e-18);
        for w in grid.windows(2) {
            assert!(w[1] > w[0], "grid must be strictly increasing");
            assert!(w[1] - w[0] <= 2e-10 + 1e-18, "gap exceeds max step");
        }
    }

    #[test]
    fn zero_amplitude_is_flat() {
        let mut p = pulse();
        p.amplitude = 0.0;
        for k in 0..20 {
            assert_eq!(p.value(k as f64 * 1e-10), 0.0);
        }
    }
}
