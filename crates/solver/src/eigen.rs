//! Inverse power iteration for the Fiedler vector.
//!
//! Spectral graph partitioning (paper §4.3) needs the eigenvector of the
//! smallest nonzero Laplacian eigenvalue. With a *uniform* diagonal shift
//! `s`, `L + sI` keeps the eigenvectors of `L` and moves the spectrum to
//! `{s, s+λ₂, …}`, so inverse power iteration on the shifted matrix —
//! with the all-ones eigenvector deflated — converges to the Fiedler
//! vector. Each step solves one linear system with the graph Laplacian,
//! which is where the sparsifier-preconditioned PCG (or the direct
//! solver) plugs in.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of [`fiedler_vector`].
#[derive(Debug, Clone)]
pub struct FiedlerResult {
    /// Unit-norm Fiedler vector estimate (orthogonal to the constant
    /// vector).
    pub vector: Vec<f64>,
    /// Rayleigh estimate of the *shifted* eigenvalue `s + λ₂`; subtract
    /// the uniform shift to recover `λ₂`.
    pub shifted_eigenvalue: f64,
    /// Number of inverse-power steps performed.
    pub steps: usize,
    /// Total inner iterations reported by the solver across all steps
    /// (0 for direct solvers; the paper's `N_e × steps` for PCG).
    pub total_inner_iterations: usize,
}

/// Runs `steps` inverse power iterations on a shifted Laplacian whose
/// solves are provided by `solve` (returning the solution and the inner
/// iteration count of that solve).
///
/// The iterate is re-orthogonalized against the constant vector and
/// normalized every step, making the procedure immune to the dominant
/// `s`-eigenpair `(s, 1)`.
///
/// # Panics
///
/// Panics if `n == 0` or `steps == 0`.
pub fn fiedler_vector<F>(n: usize, mut solve: F, steps: usize, seed: u64) -> FiedlerResult
where
    F: FnMut(&[f64]) -> (Vec<f64>, usize),
{
    assert!(n > 0, "graph must be non-empty");
    assert!(steps > 0, "at least one inverse-power step is required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x: Vec<f64> = (0..n).map(|_| rng.random::<f64>() - 0.5).collect();
    deflate_and_normalize(&mut x);
    let mut total_inner = 0usize;
    let mut shifted_eigenvalue = 0.0f64;
    for _ in 0..steps {
        let (y, inner) = solve(&x);
        total_inner += inner;
        // Rayleigh estimate of the shifted eigenvalue: x ≈ λ_shift · y
        // after the solve, so λ ≈ (xᵀx)/(xᵀy) with ‖x‖ = 1.
        let xy: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
        if xy != 0.0 {
            shifted_eigenvalue = 1.0 / xy;
        }
        x = y;
        deflate_and_normalize(&mut x);
    }
    FiedlerResult { vector: x, shifted_eigenvalue, steps, total_inner_iterations: total_inner }
}

/// Removes the component along the constant vector and normalizes.
fn deflate_and_normalize(x: &mut [f64]) {
    let n = x.len() as f64;
    let mean: f64 = x.iter().sum::<f64>() / n;
    for xi in x.iter_mut() {
        *xi -= mean;
    }
    let norm: f64 = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectSolver;
    use crate::pcg::{pcg, PcgOptions};
    use crate::precond::CholPreconditioner;
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;
    use tracered_graph::Graph;

    #[test]
    fn path_graph_fiedler_is_monotone_cosine() {
        // The Fiedler vector of a path is cos(π k (i + 1/2) / n) with
        // k = 1: strictly monotone along the path, one sign change.
        let n = 20;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let shift = 0.01;
        let l = laplacian_with_shifts(&g, &vec![shift; n]);
        let solver = DirectSolver::new(&l).unwrap();
        let res = fiedler_vector(n, |b| (solver.solve(b), 0), 30, 1);
        let v = &res.vector;
        let increasing = v.windows(2).all(|w| w[1] >= w[0] - 1e-9);
        let decreasing = v.windows(2).all(|w| w[1] <= w[0] + 1e-9);
        assert!(increasing || decreasing, "path Fiedler vector must be monotone: {v:?}");
        // Eigenvalue: λ₂(path_n) = 2 − 2 cos(π/n) = 4 sin²(π/2n).
        let expect = 4.0 * (std::f64::consts::PI / (2.0 * n as f64)).sin().powi(2);
        let lam = res.shifted_eigenvalue - shift;
        assert!((lam - expect).abs() < 1e-6, "λ₂ {lam} vs expected {expect}");
    }

    #[test]
    fn two_cluster_graph_is_separated_by_sign() {
        // Two dense clusters joined by one weak edge.
        let mut edges = Vec::new();
        for a in 0..6 {
            for b in (a + 1)..6 {
                edges.push((a, b, 1.0));
                edges.push((a + 6, b + 6, 1.0));
            }
        }
        edges.push((0, 6, 0.01));
        let g = Graph::from_edges(12, &edges).unwrap();
        let l = laplacian_with_shifts(&g, &[0.005; 12]);
        let solver = DirectSolver::new(&l).unwrap();
        let res = fiedler_vector(12, |b| (solver.solve(b), 0), 40, 3);
        let v = &res.vector;
        let s0 = v[0].signum();
        assert!((0..6).all(|i| v[i].signum() == s0));
        assert!((6..12).all(|i| v[i].signum() == -s0));
    }

    #[test]
    fn pcg_and_direct_agree_on_fiedler_direction() {
        let g = grid2d(8, 8, WeightProfile::Unit, 3);
        let n = 64;
        let l = laplacian_with_shifts(&g, &vec![0.01; n]);
        let direct = DirectSolver::new(&l).unwrap();
        let rd = fiedler_vector(n, |b| (direct.solve(b), 0), 25, 5);
        let pre = CholPreconditioner::from_matrix(&l).unwrap();
        let opts = PcgOptions::with_tolerance(1e-10);
        let rp = fiedler_vector(
            n,
            |b| {
                let s = pcg(&l, b, &pre, &opts);
                (s.x, s.iterations)
            },
            25,
            5,
        );
        let dot: f64 =
            rd.vector.iter().zip(rp.vector.iter()).map(|(a, b)| a * b).sum::<f64>().abs();
        assert!(dot > 0.999, "directions disagree: |cos| = {dot}");
        assert!(rp.total_inner_iterations > 0);
        assert_eq!(rd.total_inner_iterations, 0);
    }

    #[test]
    fn vector_is_unit_norm_and_mean_free() {
        let g = grid2d(6, 6, WeightProfile::Unit, 9);
        let l = laplacian_with_shifts(&g, &vec![0.02; 36]);
        let solver = DirectSolver::new(&l).unwrap();
        let res = fiedler_vector(36, |b| (solver.solve(b), 0), 10, 2);
        let norm: f64 = res.vector.iter().map(|v| v * v).sum::<f64>();
        let mean: f64 = res.vector.iter().sum::<f64>() / 36.0;
        assert!((norm - 1.0).abs() < 1e-9);
        assert!(mean.abs() < 1e-9);
    }
}
