//! Direct sparse solver — the "Direct" baseline of the paper's Tables 2–3.
//!
//! In the paper this role is played by CHOLMOD \[Chen et al. 2008\]: factor
//! the SDD matrix once, then answer every right-hand side with forward and
//! backward substitutions. The trade-off it represents is central to the
//! evaluation: factorization of the *full* matrix is expensive in time and
//! memory, but each subsequent solve is cheap — until the matrix changes
//! (e.g. a new transient time step size), which forces a refactorization.

use std::time::{Duration, Instant};

use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, CscMatrix, KernelVariant, SparseError};

/// A factor-once / solve-many direct solver.
///
/// # Example
///
/// ```
/// use tracered_graph::gen::{grid2d, WeightProfile};
/// use tracered_graph::laplacian::laplacian_with_shifts;
/// use tracered_solver::DirectSolver;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let g = grid2d(8, 8, WeightProfile::Unit, 0);
/// let a = laplacian_with_shifts(&g, &vec![0.1; 64]);
/// let solver = DirectSolver::new(&a)?;
/// let x = solver.solve(&vec![1.0; 64]);
/// assert!(a.residual_inf_norm(&x, &vec![1.0; 64]) < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DirectSolver {
    factor: CholeskyFactor,
    factor_time: Duration,
}

impl DirectSolver {
    /// Factorizes `a`, auto-selecting between the min-degree and
    /// nested-dissection orderings by symbolic fill — the cheap analysis
    /// CHOLMOD performs before committing to a factorization.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] for singular or
    /// indefinite input.
    pub fn new(a: &CscMatrix) -> Result<Self, SparseError> {
        Self::new_threads(a, 1)
    }

    /// [`DirectSolver::new`] with the numeric factorization running on up
    /// to `threads` workers of the global pool: independent
    /// elimination-tree subtrees factor concurrently
    /// ([`CholeskyFactor::factorize_threads`]), bit-identical to the
    /// serial factor at every thread count — only `factor_time` changes.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DirectSolver::new`].
    pub fn new_threads(a: &CscMatrix, threads: usize) -> Result<Self, SparseError> {
        Self::new_kernel(a, KernelVariant::Scalar, threads)
    }

    /// [`DirectSolver::new_threads`] with an explicit numeric kernel
    /// ([`KernelVariant::Supernodal`] runs blocked panel updates instead
    /// of the scalar up-looking sweep; same ordering auto-selection).
    ///
    /// # Errors
    ///
    /// Same conditions as [`DirectSolver::new`].
    pub fn new_kernel(
        a: &CscMatrix,
        kernel: KernelVariant,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let t = Instant::now();
        let (_, perm, _) = tracered_sparse::order::select_ordering(
            a,
            &[Ordering::MinDegree, Ordering::NestedDissection],
        )?;
        let factor = CholeskyFactor::factorize_with_perm_kernel(a, perm, kernel, threads)?;
        Ok(DirectSolver { factor, factor_time: t.elapsed() })
    }

    /// Factorizes with an explicit ordering choice.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DirectSolver::new`].
    pub fn with_ordering(a: &CscMatrix, ordering: Ordering) -> Result<Self, SparseError> {
        Self::with_ordering_threads(a, ordering, 1)
    }

    /// [`DirectSolver::with_ordering`] with the parallel numeric phase of
    /// [`DirectSolver::new_threads`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`DirectSolver::new`].
    pub fn with_ordering_threads(
        a: &CscMatrix,
        ordering: Ordering,
        threads: usize,
    ) -> Result<Self, SparseError> {
        Self::with_ordering_kernel(a, ordering, KernelVariant::Scalar, threads)
    }

    /// [`DirectSolver::with_ordering_threads`] with an explicit numeric
    /// kernel.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DirectSolver::new`].
    pub fn with_ordering_kernel(
        a: &CscMatrix,
        ordering: Ordering,
        kernel: KernelVariant,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let t = Instant::now();
        let factor = CholeskyFactor::factorize_kernel(a, ordering, kernel, threads)?;
        Ok(DirectSolver { factor, factor_time: t.elapsed() })
    }

    /// Solves `A x = b` by substitutions.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.factor.solve(b)
    }

    /// Solves into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        self.factor.solve_into(b, x);
    }

    /// Wall-clock time of the factorization.
    pub fn factor_time(&self) -> Duration {
        self.factor_time
    }

    /// Nonzeros in the factor.
    pub fn factor_nnz(&self) -> usize {
        self.factor.nnz()
    }

    /// Estimated memory footprint of the factor in bytes (the paper's
    /// `Mem` columns).
    pub fn memory_bytes(&self) -> usize {
        self.factor.memory_bytes()
    }

    /// The underlying factorization.
    pub fn factor(&self) -> &CholeskyFactor {
        &self.factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_graph::gen::{tri_mesh, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;

    #[test]
    fn many_rhs_share_one_factorization() {
        let g = tri_mesh(9, 9, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 4);
        let a = laplacian_with_shifts(&g, &vec![0.02; 81]);
        let solver = DirectSolver::new(&a).unwrap();
        for k in 0..5 {
            let b: Vec<f64> = (0..81).map(|i| ((i + k) as f64).sin()).collect();
            let x = solver.solve(&b);
            assert!(a.residual_inf_norm(&x, &b) < 1e-9);
        }
        assert!(solver.factor_nnz() >= 81);
        assert!(solver.memory_bytes() > 0);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let g = tri_mesh(4, 4, WeightProfile::Unit, 0);
        let a = laplacian_with_shifts(&g, &[0.0; 16]);
        assert!(matches!(DirectSolver::new(&a), Err(SparseError::NotPositiveDefinite { .. })));
    }

    #[test]
    fn orderings_agree() {
        let g = tri_mesh(7, 7, WeightProfile::Unit, 1);
        let a = laplacian_with_shifts(&g, &vec![0.5; 49]);
        let b: Vec<f64> = (0..49).map(|i| (i as f64) * 0.01).collect();
        let x1 = DirectSolver::with_ordering(&a, Ordering::Natural).unwrap().solve(&b);
        let x2 = DirectSolver::with_ordering(&a, Ordering::Rcm).unwrap().solve(&b);
        let x3 = DirectSolver::with_ordering(&a, Ordering::MinDegree).unwrap().solve(&b);
        for i in 0..49 {
            assert!((x1[i] - x2[i]).abs() < 1e-9);
            assert!((x1[i] - x3[i]).abs() < 1e-9);
        }
    }
}
