//! Preconditioned conjugate gradient for SPD systems.

use tracered_sparse::{par_dot, par_xpby, CscMatrix};

use crate::precond::Preconditioner;
use crate::termination::{TerminationReason, STAGNATION_WINDOW};

/// Options for [`pcg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PcgOptions {
    /// Convergence threshold on the relative residual `‖r‖₂ / ‖b‖₂`
    /// (the paper uses `1e-3` for sparsification experiments and `1e-6`
    /// for power-grid transient steps).
    pub rel_tolerance: f64,
    /// Iteration cap.
    pub max_iterations: usize,
    /// Worker threads for the SpMV and vector kernels. `1` (the
    /// default) preserves the exact serial arithmetic; larger values
    /// use the parallel symmetric matvec and chunked reductions of
    /// [`tracered_sparse`] — deterministic per thread-count-independent
    /// chunking, but rounded differently than the serial fold, so
    /// iteration counts may shift by a step.
    pub threads: usize,
}

impl Default for PcgOptions {
    fn default() -> Self {
        PcgOptions { rel_tolerance: 1e-3, max_iterations: 10_000, threads: 1 }
    }
}

impl PcgOptions {
    /// Options with a given relative tolerance and the default iteration
    /// cap.
    pub fn with_tolerance(rel_tolerance: f64) -> Self {
        PcgOptions { rel_tolerance, ..Default::default() }
    }

    /// Sets the worker-thread count for SpMV and vector kernels.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }
}

/// Result of a PCG solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PcgSolution {
    /// The computed solution.
    pub x: Vec<f64>,
    /// Number of iterations performed (the paper's `N_i`).
    pub iterations: usize,
    /// Final relative residual.
    pub rel_residual: f64,
    /// Whether the tolerance was met within the iteration cap.
    pub converged: bool,
    /// Why the iteration stopped — breakdowns that used to exit
    /// silently ([`TerminationReason::IndefiniteOperator`],
    /// [`TerminationReason::NonFinite`], …) are now classified here.
    pub reason: TerminationReason,
}

/// Solves `A x = b` by preconditioned conjugate gradient from a zero
/// initial guess.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn pcg<P: Preconditioner>(
    a: &CscMatrix,
    b: &[f64],
    preconditioner: &P,
    options: &PcgOptions,
) -> PcgSolution {
    pcg_with_guess(a, b, None, preconditioner, options)
}

/// Solves `A x = b` starting from an optional initial guess `x0` — warm
/// starts matter in transient simulation, where consecutive time steps
/// have nearby solutions.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn pcg_with_guess<P: Preconditioner>(
    a: &CscMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    preconditioner: &P,
    options: &PcgOptions,
) -> PcgSolution {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must equal n");
    let mut span = tracered_obs::span!("pcg.solve", { n: n, tol: options.rel_tolerance });
    let t = options.threads.max(1);
    // The parallel SpMV reads the matrix row-wise, which computes Aᵀx —
    // wrong for asymmetric input. PCG requires symmetry on every path
    // (the serial method also silently misbehaves without it), so this
    // is a debug-build aid, checked once per solve with a value
    // tolerance rather than bit equality (assembly order may differ
    // across the two triangles by an ulp).
    debug_assert!(
        t <= 1 || a.is_symmetric_within(1e-9 * matrix_scale(a)),
        "parallel PCG requires a symmetric matrix"
    );
    // Kernel dispatch: t == 1 reproduces the historical serial arithmetic
    // exactly; t > 1 routes through the parallel symmetric SpMV (PCG
    // already requires a symmetric matrix) and chunked vector kernels.
    let spmv = |v: &[f64], out: &mut [f64]| {
        if t <= 1 {
            a.matvec_into(v, out);
        } else {
            a.sym_matvec_into_threads(v, out, t);
        }
    };
    let dot_t = |u: &[f64], v: &[f64]| if t <= 1 { dot(u, v) } else { par_dot(u, v, t) };
    let norm_t = |v: &[f64]| dot_t(v, v).sqrt();

    let bnorm = norm_t(b);
    if bnorm == 0.0 {
        return PcgSolution {
            x: vec![0.0; n],
            iterations: 0,
            rel_residual: 0.0,
            converged: true,
            reason: TerminationReason::Converged,
        };
    }
    let mut x = match x0 {
        Some(v) => {
            assert_eq!(v.len(), n, "guess length must equal n");
            v.to_vec()
        }
        None => vec![0.0; n],
    };
    // r = b − A x
    let mut r = vec![0.0; n];
    spmv(&x, &mut r);
    for (ri, &bi) in r.iter_mut().zip(b.iter()) {
        *ri = bi - *ri;
    }
    let mut z = vec![0.0; n];
    preconditioner.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz: f64 = dot_t(&r, &z);
    let mut ap = vec![0.0; n];
    let mut rel = norm_t(&r) / bnorm;
    let mut iterations = 0;
    let mut reason = TerminationReason::MaxIterations;
    // Stagnation detection: a breakdown that manifests as a residual
    // that never improves (e.g. a preconditioner that keeps cancelling
    // the step) rather than as a sign or NaN anomaly.
    let mut best_rel = rel;
    let mut since_improve = 0usize;
    while rel > options.rel_tolerance && iterations < options.max_iterations {
        spmv(&p, &mut ap);
        let pap = dot_t(&p, &ap);
        if !pap.is_finite() {
            reason = TerminationReason::NonFinite;
            break; // bail out with best iterate
        }
        if pap <= 0.0 {
            reason = TerminationReason::IndefiniteOperator;
            break; // matrix not SPD along p; bail out with best iterate
        }
        let alpha = rz / pap;
        if t <= 1 {
            for ((xi, &pi), (ri, &api)) in
                x.iter_mut().zip(p.iter()).zip(r.iter_mut().zip(ap.iter()))
            {
                *xi += alpha * pi;
                *ri -= alpha * api;
            }
        } else {
            // Fused update: one parallel region and one memory pass
            // over both vectors instead of two axpy rounds.
            let chunk = tracered_par::chunk_size(n, t, 4096);
            tracered_par::par_chunks2_mut(&mut x, &mut r, chunk, t, |start, xs, rs| {
                for off in 0..xs.len() {
                    xs[off] += alpha * p[start + off];
                    rs[off] -= alpha * ap[start + off];
                }
            });
        }
        iterations += 1;
        rel = norm_t(&r) / bnorm;
        // Optional convergence trace: one instant event per iteration,
        // gated behind the separate high-volume flag so default traces
        // of long solves stay small.
        if tracered_obs::iter_events_enabled() {
            tracered_obs::event!("pcg.iter", { iter: iterations, rel: rel });
        }
        if !rel.is_finite() {
            reason = TerminationReason::NonFinite;
            break;
        }
        if rel <= options.rel_tolerance {
            break; // classified Converged below
        }
        if rel < best_rel {
            best_rel = rel;
            since_improve = 0;
        } else {
            since_improve += 1;
            if since_improve >= STAGNATION_WINDOW {
                reason = TerminationReason::Stagnation;
                break;
            }
        }
        preconditioner.apply(&r, &mut z);
        let rz_next = dot_t(&r, &z);
        if !rz_next.is_finite() {
            reason = TerminationReason::NonFinite;
            break;
        }
        if rz_next <= 0.0 {
            reason = TerminationReason::IndefinitePreconditioner;
            break;
        }
        let beta = rz_next / rz;
        rz = rz_next;
        if t <= 1 {
            for (pi, &zi) in p.iter_mut().zip(z.iter()) {
                *pi = zi + beta * *pi;
            }
        } else {
            par_xpby(&mut p, beta, &z, t);
        }
    }
    let converged = rel <= options.rel_tolerance;
    if converged {
        // Covers both the in-loop tolerance break and a warm start that
        // was already converged at entry.
        reason = TerminationReason::Converged;
    } else if !rel.is_finite() {
        // A NaN rhs or guess poisons `rel` before the first iteration;
        // the NaN comparison then skips the loop entirely.
        reason = TerminationReason::NonFinite;
    }
    if let Some(g) = span.as_mut() {
        g.arg("iterations", iterations as f64);
        g.arg("rel_residual", rel);
        g.arg("reason", f64::from(reason.code()));
    }
    PcgSolution { x, iterations, rel_residual: rel, converged, reason }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Largest absolute stored value — the natural scale for the relative
/// symmetry tolerance in the debug-build check above.
fn matrix_scale(a: &CscMatrix) -> f64 {
    a.values().iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::precond::{CholPreconditioner, IdentityPreconditioner, JacobiPreconditioner};
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;

    fn system() -> (CscMatrix, Vec<f64>) {
        let g = grid2d(10, 10, WeightProfile::Unit, 2);
        let a = laplacian_with_shifts(&g, &vec![0.05; 100]);
        let b: Vec<f64> = (0..100).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        (a, b)
    }

    #[test]
    fn cg_converges_on_spd_system() {
        let (a, b) = system();
        let sol = pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::with_tolerance(1e-8));
        assert!(sol.converged);
        assert!(a.residual_inf_norm(&sol.x, &b) < 1e-5);
    }

    #[test]
    fn jacobi_never_worse_than_plain_cg_here() {
        let (a, b) = system();
        let opts = PcgOptions::with_tolerance(1e-8);
        let plain = pcg(&a, &b, &IdentityPreconditioner, &opts);
        let jacobi = pcg(&a, &b, &JacobiPreconditioner::from_matrix(&a).unwrap(), &opts);
        assert!(jacobi.converged);
        // Uniform diagonal ⇒ Jacobi ≈ identity; allow small slack.
        assert!(jacobi.iterations <= plain.iterations + 2);
    }

    #[test]
    fn exact_preconditioner_converges_immediately() {
        let (a, b) = system();
        let pre = CholPreconditioner::from_matrix(&a).unwrap();
        let sol = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-10));
        assert!(sol.converged);
        assert!(sol.iterations <= 2, "exact preconditioner took {}", sol.iterations);
    }

    #[test]
    fn zero_rhs_returns_zero() {
        let (a, _) = system();
        let sol = pcg(&a, &vec![0.0; 100], &IdentityPreconditioner, &PcgOptions::default());
        assert!(sol.converged);
        assert_eq!(sol.iterations, 0);
        assert!(sol.x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let (a, b) = system();
        let opts = PcgOptions::with_tolerance(1e-8);
        let cold = pcg(&a, &b, &IdentityPreconditioner, &opts);
        // Start from the (almost) exact solution.
        let warm = pcg_with_guess(&a, &b, Some(&cold.x), &IdentityPreconditioner, &opts);
        assert!(warm.iterations <= 2);
    }

    #[test]
    fn iteration_cap_is_respected() {
        let (a, b) = system();
        let opts = PcgOptions { rel_tolerance: 1e-14, max_iterations: 3, ..Default::default() };
        let sol = pcg(&a, &b, &IdentityPreconditioner, &opts);
        assert!(!sol.converged);
        assert_eq!(sol.iterations, 3);
        assert_eq!(sol.reason, TerminationReason::MaxIterations);
    }

    #[test]
    fn converged_solves_report_converged() {
        let (a, b) = system();
        let sol = pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::with_tolerance(1e-8));
        assert_eq!(sol.reason, TerminationReason::Converged);
        // A warm start from the solution converges at entry.
        let warm =
            pcg_with_guess(&a, &b, Some(&sol.x), &IdentityPreconditioner, &PcgOptions::default());
        assert_eq!(warm.reason, TerminationReason::Converged);
        assert!(warm.converged);
        // Zero rhs is trivially converged.
        let zero = pcg(&a, &vec![0.0; 100], &IdentityPreconditioner, &PcgOptions::default());
        assert_eq!(zero.reason, TerminationReason::Converged);
    }

    #[test]
    fn indefinite_operator_is_classified() {
        use tracered_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csc();
        // p₀ = b = (1, 1): pᵀAp = 0 — breakdown on the first iteration.
        let sol = pcg(&a, &[1.0, 1.0], &IdentityPreconditioner, &PcgOptions::default());
        assert!(!sol.converged);
        assert_eq!(sol.reason, TerminationReason::IndefiniteOperator);
        assert!(sol.reason.is_breakdown());
    }

    #[test]
    fn non_finite_rhs_is_classified() {
        let (a, mut b) = system();
        b[7] = f64::NAN;
        let sol = pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::default());
        assert!(!sol.converged);
        assert_eq!(sol.reason, TerminationReason::NonFinite);
    }

    #[test]
    fn reports_relative_residual() {
        let (a, b) = system();
        let sol = pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::with_tolerance(1e-6));
        let r = {
            let ax = a.matvec(&sol.x);
            let diff: Vec<f64> = ax.iter().zip(b.iter()).map(|(x, y)| x - y).collect();
            norm2(&diff) / norm2(&b)
        };
        assert!((r - sol.rel_residual).abs() < 1e-10);
    }
}
