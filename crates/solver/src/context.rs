//! Shared, immutable solver contexts: the ownership layer under the
//! solver service.
//!
//! Historically every entry point in this workspace threaded matrices and
//! factors **by value or fresh reference** through free functions —
//! [`crate::robust::robust_solve`] refactorized the preconditioner matrix
//! on every call, and each batch engine rebuilt its own operators. That is
//! fine for one-shot batch programs and wrong for a long-running service,
//! where thousands of requests share one topology and the factorization
//! must be paid once.
//!
//! [`SolverContext`] bundles the immutable pieces of a solve — system
//! matrix, preconditioner matrix, and the factorized preconditioner —
//! behind `Arc`s, so concurrent request handlers share them at pointer
//! cost. The context is strictly read-only after construction (the lazily
//! built direct factor is memoized through a [`OnceLock`], preserving
//! `Sync`), and a compile-time assertion pins the `Send + Sync` audit.
//!
//! [`robust_solve_shared`] is the context-reusing twin of
//! [`crate::robust::robust_solve`]: stage 1 runs against the prebuilt
//! preconditioner instead of refactorizing, and performs exactly the same
//! arithmetic — both entry points drive one shared escalation core.

use std::sync::{Arc, OnceLock};

use tracered_sparse::order::Ordering;
use tracered_sparse::regularize::{factorize_regularized_kernel, scan_non_finite};
use tracered_sparse::{BoostSchedule, CholeskyFactor, CscMatrix, KernelVariant, SparseError};

use crate::precond::{CholPreconditioner, Preconditioner};
use crate::robust::{robust_core, RobustSolution, RobustSolveConfig};

/// An immutable, `Arc`-shared bundle of everything a solve needs besides
/// the right-hand side: the system matrix, the preconditioner matrix it
/// was built from, and the factorized preconditioner.
///
/// Cloning a `SolverContext` (or wrapping it in another `Arc`) is cheap:
/// all heavy state is behind shared pointers. Contexts are the unit the
/// service layer caches and publishes per epoch.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use tracered_graph::gen::{grid2d, WeightProfile};
/// use tracered_graph::laplacian::laplacian_with_shifts;
/// use tracered_solver::context::{robust_solve_shared, SolverContext};
/// use tracered_solver::RobustSolveConfig;
/// use tracered_sparse::BoostSchedule;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let g = grid2d(8, 8, WeightProfile::Unit, 3);
/// let a = Arc::new(laplacian_with_shifts(&g, &vec![0.05; 64]));
/// let ctx = SolverContext::build(Arc::clone(&a), a, &BoostSchedule::default(), 1)?;
/// // The factorization above is paid once; every request reuses it.
/// let cfg = RobustSolveConfig::default();
/// for seed in 0..3u64 {
///     let b: Vec<f64> = (0..64).map(|i| ((i as u64 * 7 + seed) % 5) as f64 - 2.0).collect();
///     assert!(robust_solve_shared(&ctx, &b, &cfg)?.converged());
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct SolverContext {
    system: Arc<CscMatrix>,
    precond_matrix: Arc<CscMatrix>,
    preconditioner: Arc<CholPreconditioner>,
    applied_shift: f64,
    boost: BoostSchedule,
    factor_threads: usize,
    ordering: Ordering,
    kernel: KernelVariant,
    /// Direct factorization of the system matrix, built on first use by
    /// [`SolverContext::direct_factor`] and shared afterwards.
    direct: Arc<OnceLock<Result<Arc<CholeskyFactor>, SparseError>>>,
}

// Shared-handle audit: request handlers on arbitrary threads hold these.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SolverContext>();
    assert_send_sync::<CholPreconditioner>();
};

impl SolverContext {
    /// Builds a context by factorizing `precond_matrix` through the
    /// boosted ladder of [`tracered_sparse::regularize`] — the same
    /// factorization `robust_solve`'s stage 1 would perform per call,
    /// paid once here.
    ///
    /// # Errors
    ///
    /// - [`SparseError::NotSquare`] / [`SparseError::DimensionMismatch`]
    ///   on shape mismatches;
    /// - [`SparseError::NonFiniteValue`] for NaN/Inf matrix entries,
    ///   [`SparseError::InvalidValue`] for an invalid ladder;
    /// - the factorization error when every rung of the ladder fails on
    ///   the preconditioner matrix (unlike `robust_solve`, a context
    ///   build is strict: a service must not publish a context whose
    ///   preconditioner does not exist).
    pub fn build(
        system: Arc<CscMatrix>,
        precond_matrix: Arc<CscMatrix>,
        boost: &BoostSchedule,
        factor_threads: usize,
    ) -> Result<Self, SparseError> {
        Self::build_with(
            system,
            precond_matrix,
            boost,
            factor_threads,
            Ordering::MinDegree,
            KernelVariant::Scalar,
        )
    }

    /// [`SolverContext::build`] with explicit factorization knobs: the
    /// fill-reducing `ordering` and numeric `kernel` are used for the
    /// preconditioner factorization here *and* remembered for the lazy
    /// [`SolverContext::direct_factor`] — earlier revisions hardcoded
    /// min-degree in both places, ignoring the caller's configuration.
    ///
    /// # Errors
    ///
    /// Same contract as [`SolverContext::build`].
    pub fn build_with(
        system: Arc<CscMatrix>,
        precond_matrix: Arc<CscMatrix>,
        boost: &BoostSchedule,
        factor_threads: usize,
        ordering: Ordering,
        kernel: KernelVariant,
    ) -> Result<Self, SparseError> {
        let n = system.ncols();
        if system.nrows() != n {
            return Err(SparseError::NotSquare { nrows: system.nrows(), ncols: n });
        }
        if precond_matrix.nrows() != n || precond_matrix.ncols() != n {
            return Err(SparseError::DimensionMismatch {
                expected: n,
                found: precond_matrix.ncols(),
            });
        }
        boost.validate()?;
        scan_non_finite(&system)?;
        scan_non_finite(&precond_matrix)?;
        let ft = factor_threads.max(1);
        let rf = factorize_regularized_kernel(&precond_matrix, ordering, kernel, ft, boost)?;
        Ok(SolverContext::from_parts(
            system,
            precond_matrix,
            Arc::new(CholPreconditioner::from_factor(rf.factor)),
            rf.applied_shift,
            *boost,
            ft,
        )
        .with_factor_opts(ordering, kernel))
    }

    /// Assembles a context from an already-factorized preconditioner —
    /// for callers that built one through another path (e.g. a
    /// sparsifier pipeline) and want to share it without refactorizing.
    /// `applied_shift` is the diagonal boost baked into the factor
    /// (`0.0` when none was needed); `boost` and `factor_threads` govern
    /// the escalation-stage factorizations.
    pub fn from_parts(
        system: Arc<CscMatrix>,
        precond_matrix: Arc<CscMatrix>,
        preconditioner: Arc<CholPreconditioner>,
        applied_shift: f64,
        boost: BoostSchedule,
        factor_threads: usize,
    ) -> Self {
        SolverContext {
            system,
            precond_matrix,
            preconditioner,
            applied_shift,
            boost,
            factor_threads: factor_threads.max(1),
            ordering: Ordering::MinDegree,
            kernel: KernelVariant::Scalar,
            direct: Arc::new(OnceLock::new()),
        }
    }

    /// Sets the ordering and kernel used by factorizations this context
    /// performs later (the lazy direct factor). Call before the first
    /// [`SolverContext::direct_factor`]; the memoized factor is not
    /// rebuilt.
    #[must_use]
    pub fn with_factor_opts(mut self, ordering: Ordering, kernel: KernelVariant) -> Self {
        self.ordering = ordering;
        self.kernel = kernel;
        self
    }

    /// Problem dimension `n`.
    pub fn dimension(&self) -> usize {
        self.system.ncols()
    }

    /// The system matrix.
    pub fn system(&self) -> &CscMatrix {
        &self.system
    }

    /// The system matrix as a shared handle.
    pub fn system_shared(&self) -> Arc<CscMatrix> {
        Arc::clone(&self.system)
    }

    /// The matrix the preconditioner was factorized from.
    pub fn precond_matrix(&self) -> &CscMatrix {
        &self.precond_matrix
    }

    /// The factorized preconditioner.
    pub fn preconditioner(&self) -> &CholPreconditioner {
        &self.preconditioner
    }

    /// The factorized preconditioner as a shared handle — what the batch
    /// transient engines ([`simulate_pcg_batch`] and friends) borrow.
    ///
    /// [`simulate_pcg_batch`]: https://docs.rs/tracered-powergrid
    pub fn preconditioner_shared(&self) -> Arc<CholPreconditioner> {
        Arc::clone(&self.preconditioner)
    }

    /// Diagonal shift the boost ladder applied to the preconditioner
    /// matrix (`0.0` when it factorized cleanly).
    pub fn applied_shift(&self) -> f64 {
        self.applied_shift
    }

    /// The boost ladder used for escalation-stage factorizations.
    pub fn boost(&self) -> &BoostSchedule {
        &self.boost
    }

    /// Worker threads for factorizations performed through this context.
    pub fn factor_threads(&self) -> usize {
        self.factor_threads
    }

    /// Fill-reducing ordering for factorizations through this context.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// Numeric Cholesky kernel for factorizations through this context.
    pub fn kernel(&self) -> KernelVariant {
        self.kernel
    }

    /// A direct (boosted) factorization of the *system* matrix, built on
    /// first call and memoized — the multi-RHS direct engine of the
    /// service layer. Concurrent first calls may race to factorize; one
    /// result wins and the rest are dropped, so the cached factor is
    /// deterministic (the kernel is bit-identical at every thread count).
    ///
    /// # Errors
    ///
    /// The factorization error when every rung of the ladder fails on the
    /// system matrix; the failure is memoized like a success.
    pub fn direct_factor(&self) -> Result<Arc<CholeskyFactor>, SparseError> {
        self.direct
            .get_or_init(|| {
                factorize_regularized_kernel(
                    &self.system,
                    self.ordering,
                    self.kernel,
                    self.factor_threads,
                    &self.boost,
                )
                .map(|rf| Arc::new(rf.factor))
            })
            .clone()
    }

    /// Estimated resident footprint: matrices plus preconditioner factor
    /// (the lazy direct factor is counted once built).
    pub fn memory_bytes(&self) -> usize {
        let direct = match self.direct.get() {
            Some(Ok(f)) => f.memory_bytes(),
            _ => 0,
        };
        self.system.memory_bytes()
            + self.precond_matrix.memory_bytes()
            + self.preconditioner.memory_bytes()
            + direct
    }
}

/// [`crate::robust::robust_solve`] against a prebuilt [`SolverContext`]:
/// identical escalation chain and arithmetic, but stage 1 reuses the
/// context's factorized preconditioner instead of refactorizing the
/// preconditioner matrix per call. This is the entry point the service
/// layer drives — under request aggregation the stage-1 factorization
/// would otherwise dominate every solve.
///
/// # Errors
///
/// [`SparseError::DimensionMismatch`] / [`SparseError::InvalidValue`] for
/// a malformed right-hand side or ladder, plus the direct stage's
/// factorization error when the entire ladder fails on the system matrix.
pub fn robust_solve_shared(
    ctx: &SolverContext,
    b: &[f64],
    cfg: &RobustSolveConfig,
) -> Result<RobustSolution, SparseError> {
    let n = ctx.dimension();
    if b.len() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: b.len() });
    }
    cfg.boost.validate()?;
    if let Some(i) = b.iter().position(|v| !v.is_finite()) {
        return Err(SparseError::InvalidValue {
            what: format!("non-finite right-hand side entry at index {i}"),
        });
    }
    robust_core(
        ctx.system(),
        ctx.precond_matrix(),
        Some((ctx.preconditioner(), ctx.applied_shift())),
        b,
        cfg,
    )
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::robust::robust_solve;
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;

    fn system() -> (Arc<CscMatrix>, Arc<CscMatrix>, Vec<f64>) {
        let g = grid2d(10, 10, WeightProfile::Unit, 2);
        let a = Arc::new(laplacian_with_shifts(&g, &vec![0.05; 100]));
        let m = Arc::clone(&a);
        let b: Vec<f64> = (0..100).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        (a, m, b)
    }

    #[test]
    fn shared_solve_matches_by_value_solve_bitwise() {
        let (a, m, b) = system();
        let cfg = RobustSolveConfig::default();
        let ctx = SolverContext::build(Arc::clone(&a), Arc::clone(&m), &cfg.boost, 1).unwrap();
        let shared = robust_solve_shared(&ctx, &b, &cfg).unwrap();
        let owned = robust_solve(&a, &b, &m, &cfg).unwrap();
        assert_eq!(shared.strategy, owned.strategy);
        assert_eq!(shared.reason, owned.reason);
        assert_eq!(shared.attempts.len(), owned.attempts.len());
        for (s, o) in shared.x.iter().zip(owned.x.iter()) {
            assert!((s - o).abs() == 0.0, "shared context must not change the arithmetic");
        }
    }

    #[test]
    fn context_reuse_shares_one_factorization() {
        let (a, m, b) = system();
        let cfg = RobustSolveConfig::default();
        let ctx = SolverContext::build(a, m, &cfg.boost, 1).unwrap();
        let pre_before = Arc::as_ptr(&ctx.preconditioner_shared());
        for _ in 0..3 {
            assert!(robust_solve_shared(&ctx, &b, &cfg).unwrap().converged());
        }
        // The preconditioner handle is the same allocation across solves.
        assert_eq!(pre_before, Arc::as_ptr(&ctx.preconditioner_shared()));
    }

    #[test]
    fn direct_factor_is_memoized_and_solves() {
        let (a, m, b) = system();
        let ctx = SolverContext::build(Arc::clone(&a), m, &BoostSchedule::default(), 1).unwrap();
        let f1 = ctx.direct_factor().unwrap();
        let f2 = ctx.direct_factor().unwrap();
        assert_eq!(Arc::as_ptr(&f1), Arc::as_ptr(&f2), "second call must hit the memo");
        let x = f1.solve(&b);
        assert!(a.residual_inf_norm(&x, &b) < 1e-8);
    }

    #[test]
    fn build_rejects_malformed_inputs() {
        let (a, _, _) = system();
        let g = grid2d(3, 3, WeightProfile::Unit, 1);
        let small = Arc::new(laplacian_with_shifts(&g, &[0.1; 9]));
        assert!(matches!(
            SolverContext::build(Arc::clone(&a), small, &BoostSchedule::default(), 1),
            Err(SparseError::DimensionMismatch { .. })
        ));
        let mut bad = (*a).clone();
        bad.values_mut()[0] = f64::NAN;
        assert!(matches!(
            SolverContext::build(Arc::new(bad), a, &BoostSchedule::default(), 1),
            Err(SparseError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn shared_solve_validates_rhs() {
        let (a, m, b) = system();
        let cfg = RobustSolveConfig::default();
        let ctx = SolverContext::build(a, m, &cfg.boost, 1).unwrap();
        assert!(matches!(
            robust_solve_shared(&ctx, &b[..50], &cfg),
            Err(SparseError::DimensionMismatch { .. })
        ));
        let mut bad = b;
        bad[7] = f64::INFINITY;
        assert!(matches!(
            robust_solve_shared(&ctx, &bad, &cfg),
            Err(SparseError::InvalidValue { .. })
        ));
    }
}
