//! Escalating solve: PCG → refreshed/boosted preconditioner → direct
//! factorization, with per-attempt diagnostics.
//!
//! [`robust_solve`] is the resilience entry point the service layer sits
//! on: instead of handing the caller a bare `converged: false`, it
//! classifies the failure ([`TerminationReason`]), escalates through a
//! configurable chain ([`RobustSolveConfig`]), and reports every attempt
//! it made ([`SolveAttempt`]) so a failed solve is a diagnosis, not a
//! shrug. Inputs are validated up front (non-finite scan on matrix and
//! right-hand side) and preconditioner factorizations go through the
//! boosted ladder of [`tracered_sparse::regularize`], so a singular
//! sparsifier Laplacian degrades into a shifted preconditioner rather
//! than an error.

#![warn(clippy::unwrap_used)]

use tracered_sparse::order::Ordering;
use tracered_sparse::regularize::{
    factorize_regularized_kernel, scan_non_finite, BoostSchedule, RegularizedFactor,
};
use tracered_sparse::{CscMatrix, KernelVariant, SparseError};

use crate::pcg::{pcg_with_guess, PcgOptions, PcgSolution};
use crate::precond::CholPreconditioner;
use crate::termination::TerminationReason;

/// Configuration for [`robust_solve`]'s escalation chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RobustSolveConfig {
    /// Options for the iterative stages.
    pub pcg: PcgOptions,
    /// Shift ladder used whenever a factorization (preconditioner or
    /// direct) hits a non-positive pivot.
    pub boost: BoostSchedule,
    /// Worker threads for factorizations (independent of `pcg.threads`).
    pub factor_threads: usize,
    /// Fill-reducing ordering used by **every** factorization in the
    /// chain (stage-1/2 preconditioners and the stage-3 direct factor).
    /// Earlier revisions hardcoded [`Ordering::MinDegree`] here, silently
    /// ignoring the caller's configured ordering on escalation.
    pub ordering: Ordering,
    /// Numeric Cholesky kernel used by every factorization in the chain.
    pub kernel: KernelVariant,
    /// Enable stage 2: retry PCG with a harder-boosted preconditioner,
    /// warm-started from the best stage-1 iterate.
    pub refresh_preconditioner: bool,
    /// Enable stage 3: fall back to a (possibly boosted) direct
    /// factorization of the system matrix itself.
    pub allow_direct: bool,
}

impl Default for RobustSolveConfig {
    fn default() -> Self {
        RobustSolveConfig {
            pcg: PcgOptions::default(),
            boost: BoostSchedule::default(),
            factor_threads: 1,
            ordering: Ordering::MinDegree,
            kernel: KernelVariant::Scalar,
            refresh_preconditioner: true,
            allow_direct: true,
        }
    }
}

/// Which rung of the escalation chain produced a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveStrategy {
    /// Plain PCG with the caller's preconditioner matrix.
    Pcg,
    /// PCG with a re-boosted (refreshed) preconditioner, warm-started.
    RefreshedPcg,
    /// Direct factorization of the system matrix.
    Direct,
}

/// Diagnostics for one rung of the chain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveAttempt {
    /// The strategy this attempt used.
    pub strategy: SolveStrategy,
    /// Why it stopped.
    pub reason: TerminationReason,
    /// Iterations performed (0 for direct solves).
    pub iterations: usize,
    /// Relative residual it reached.
    pub rel_residual: f64,
    /// Diagonal shift applied to the factorized matrix (preconditioner
    /// matrix for the iterative stages, system matrix for the direct
    /// stage); `0.0` when no boost was needed.
    pub applied_shift: f64,
}

/// Result of [`robust_solve`]: the accepted solution plus the full
/// attempt trail.
#[derive(Debug, Clone)]
pub struct RobustSolution {
    /// The accepted solution (from the last attempt).
    pub x: Vec<f64>,
    /// Strategy that produced `x`.
    pub strategy: SolveStrategy,
    /// Relative residual of `x` against the *original* system.
    pub rel_residual: f64,
    /// Termination classification of the accepted attempt.
    pub reason: TerminationReason,
    /// Every attempt made, in escalation order.
    pub attempts: Vec<SolveAttempt>,
}

impl RobustSolution {
    /// `true` when the accepted solution met the tolerance.
    pub fn converged(&self) -> bool {
        self.reason == TerminationReason::Converged
    }
}

fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Relative residual `‖b − Ax‖₂ / ‖b‖₂` against the original system.
fn true_rel_residual(a: &CscMatrix, x: &[f64], b: &[f64]) -> f64 {
    let bnorm = norm2(b);
    if bnorm == 0.0 {
        return norm2(x);
    }
    let ax = a.matvec(x);
    let mut rr = 0.0;
    for (bi, axi) in b.iter().zip(ax.iter()) {
        rr += (bi - axi) * (bi - axi);
    }
    rr.sqrt() / bnorm
}

fn classify_residual(rel: f64, tol: f64) -> TerminationReason {
    if !rel.is_finite() {
        TerminationReason::NonFinite
    } else if rel <= tol {
        TerminationReason::Converged
    } else {
        TerminationReason::Stagnation
    }
}

fn attempt_of(strategy: SolveStrategy, sol: &PcgSolution, shift: f64) -> SolveAttempt {
    SolveAttempt {
        strategy,
        reason: sol.reason,
        iterations: sol.iterations,
        rel_residual: sol.rel_residual,
        applied_shift: shift,
    }
}

/// Solves `A x = b` with escalating robustness: PCG preconditioned by a
/// boosted factorization of `precond_matrix`, then (on failure) PCG with
/// a harder-boosted refreshed preconditioner warm-started from the best
/// iterate, then a boosted direct factorization of `A` itself.
///
/// Unlike [`crate::pcg::pcg`], a non-converged iterative stage is not the
/// end: it is classified, recorded in the attempt trail, and escalated.
/// Only structurally hopeless inputs (non-finite entries, dimension
/// mismatches, a system matrix the entire shift ladder cannot factor
/// with stage 3 enabled) surface as `Err`.
///
/// # Example
///
/// A singular preconditioner matrix (an unshifted Laplacian) would make
/// [`CholPreconditioner::from_matrix`] fail outright; `robust_solve`
/// boosts it and converges anyway, reporting the shift it applied:
///
/// ```
/// use tracered_solver::robust::{robust_solve, RobustSolveConfig};
/// use tracered_sparse::CooMatrix;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// // SPD system: shifted path Laplacian.
/// let mut sys = CooMatrix::new(3, 3);
/// sys.push(0, 0, 1.1)?; sys.push(1, 1, 2.1)?; sys.push(2, 2, 1.1)?;
/// sys.push_symmetric(0, 1, -1.0)?;
/// sys.push_symmetric(1, 2, -1.0)?;
/// let a = sys.to_csc();
/// // Preconditioner matrix: the *unshifted* (singular) Laplacian.
/// let mut pm = CooMatrix::new(3, 3);
/// pm.push(0, 0, 1.0)?; pm.push(1, 1, 2.0)?; pm.push(2, 2, 1.0)?;
/// pm.push_symmetric(0, 1, -1.0)?;
/// pm.push_symmetric(1, 2, -1.0)?;
/// let m = pm.to_csc();
///
/// let sol = robust_solve(&a, &[1.0, 0.0, -1.0], &m, &RobustSolveConfig::default())?;
/// assert!(sol.converged());
/// assert!(sol.attempts[0].applied_shift > 0.0, "the boost must be reported");
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// - [`SparseError::NotSquare`] / [`SparseError::DimensionMismatch`] on
///   shape mismatches;
/// - [`SparseError::NonFiniteValue`] for NaN/Inf entries in `a` or
///   `precond_matrix`, [`SparseError::InvalidValue`] for a non-finite
///   right-hand side or an invalid [`BoostSchedule`];
/// - the direct stage's factorization error when every rung of the
///   ladder fails on the system matrix itself.
pub fn robust_solve(
    a: &CscMatrix,
    b: &[f64],
    precond_matrix: &CscMatrix,
    cfg: &RobustSolveConfig,
) -> Result<RobustSolution, SparseError> {
    let n = a.ncols();
    if a.nrows() != n {
        return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: n });
    }
    if b.len() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: b.len() });
    }
    if precond_matrix.nrows() != n || precond_matrix.ncols() != n {
        return Err(SparseError::DimensionMismatch { expected: n, found: precond_matrix.ncols() });
    }
    cfg.boost.validate()?;
    scan_non_finite(a)?;
    scan_non_finite(precond_matrix)?;
    if let Some(i) = b.iter().position(|v| !v.is_finite()) {
        return Err(SparseError::InvalidValue {
            what: format!("non-finite right-hand side entry at index {i}"),
        });
    }
    let ft = cfg.factor_threads.max(1);

    // Stage-1 factorization of the caller's preconditioner matrix. An
    // unfactorizable preconditioner is not fatal — the chain continues
    // without it. Callers holding a `SolverContext` skip this per-call
    // cost entirely via `robust_solve_shared`.
    let stage1_factor =
        factorize_regularized_kernel(precond_matrix, cfg.ordering, cfg.kernel, ft, &cfg.boost);
    let stage1 = stage1_factor.ok().map(|RegularizedFactor { factor, applied_shift, .. }| {
        (CholPreconditioner::from_factor(factor), applied_shift)
    });
    robust_core(a, precond_matrix, stage1.as_ref().map(|(p, s)| (p, *s)), b, cfg)
}

/// The escalation chain shared by [`robust_solve`] (which factorizes the
/// preconditioner per call) and
/// [`crate::context::robust_solve_shared`] (which reuses a prebuilt
/// [`crate::context::SolverContext`]). Inputs are assumed validated;
/// `stage1` carries the factorized preconditioner and its applied shift,
/// or `None` when no preconditioner could be built.
pub(crate) fn robust_core(
    a: &CscMatrix,
    precond_matrix: &CscMatrix,
    stage1: Option<(&CholPreconditioner, f64)>,
    b: &[f64],
    cfg: &RobustSolveConfig,
) -> Result<RobustSolution, SparseError> {
    let n = a.ncols();
    let ft = cfg.factor_threads.max(1);
    let tol = cfg.pcg.rel_tolerance;
    let mut attempts: Vec<SolveAttempt> = Vec::new();

    // Stage 1: PCG with the (boosted if necessary) preconditioner.
    let mut best_x: Option<Vec<f64>> = None;
    let mut stage1_shift = 0.0;
    if let Some((pre, applied_shift)) = stage1 {
        stage1_shift = applied_shift;
        let sol = pcg_with_guess(a, b, None, pre, &cfg.pcg);
        attempts.push(attempt_of(SolveStrategy::Pcg, &sol, applied_shift));
        if sol.converged {
            return Ok(RobustSolution {
                rel_residual: sol.rel_residual,
                reason: sol.reason,
                x: sol.x,
                strategy: SolveStrategy::Pcg,
                attempts,
            });
        }
        best_x = Some(sol.x);
    }

    // Stage 2: refresh the preconditioner one rung harder than whatever
    // stage 1 used and warm-start from its best iterate. Skipped when
    // stage 1 never produced a preconditioner — more of the same ladder
    // would fail identically.
    if cfg.refresh_preconditioner {
        if let Some(guess) = best_x.as_deref() {
            let bump = if stage1_shift > 0.0 {
                stage1_shift * cfg.boost.growth
            } else {
                cfg.boost.shift_at(0, diagonal_scale(precond_matrix))
            };
            let bumped = precond_matrix.add_diagonal(&vec![bump; n])?;
            if let Ok(RegularizedFactor { factor, applied_shift, .. }) =
                factorize_regularized_kernel(&bumped, cfg.ordering, cfg.kernel, ft, &cfg.boost)
            {
                let total_shift = bump + applied_shift;
                let pre = CholPreconditioner::from_factor(factor);
                let sol = pcg_with_guess(a, b, Some(guess), &pre, &cfg.pcg);
                attempts.push(attempt_of(SolveStrategy::RefreshedPcg, &sol, total_shift));
                if sol.converged {
                    return Ok(RobustSolution {
                        rel_residual: sol.rel_residual,
                        reason: sol.reason,
                        x: sol.x,
                        strategy: SolveStrategy::RefreshedPcg,
                        attempts,
                    });
                }
                best_x = Some(sol.x);
            }
        }
    }

    // Stage 3: boosted direct factorization of the system matrix. The
    // residual is measured against the *original* matrix, so a shifted
    // factorization of a genuinely singular system honestly reports the
    // perturbation error instead of claiming convergence.
    if cfg.allow_direct {
        let rf = factorize_regularized_kernel(a, cfg.ordering, cfg.kernel, ft, &cfg.boost)?;
        let x = rf.factor.solve(b);
        let rel = true_rel_residual(a, &x, b);
        let reason = classify_residual(rel, tol);
        attempts.push(SolveAttempt {
            strategy: SolveStrategy::Direct,
            reason,
            iterations: 0,
            rel_residual: rel,
            applied_shift: rf.applied_shift,
        });
        return Ok(RobustSolution {
            x,
            strategy: SolveStrategy::Direct,
            rel_residual: rel,
            reason,
            attempts,
        });
    }

    // Every enabled stage failed to converge: hand back the best iterate
    // with its classification rather than erroring — callers distinguish
    // "no answer" from "answer below tolerance" via `converged()`.
    let x = best_x.unwrap_or_else(|| vec![0.0; n]);
    let rel = true_rel_residual(a, &x, b);
    let (strategy, reason) = match attempts.last() {
        Some(last) => (last.strategy, last.reason),
        None => (SolveStrategy::Pcg, TerminationReason::Stagnation),
    };
    Ok(RobustSolution { x, strategy, rel_residual: rel, reason, attempts })
}

/// Mean absolute diagonal — mirrors the scale used by the boost ladder.
fn diagonal_scale(a: &CscMatrix) -> f64 {
    let d = a.diagonal();
    if d.is_empty() {
        return 1.0;
    }
    let mean = d.iter().map(|v| v.abs()).sum::<f64>() / d.len() as f64;
    if mean.is_finite() && mean > 0.0 {
        mean
    } else {
        1.0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::{laplacian, laplacian_with_shifts, ShiftPolicy};

    fn system() -> (CscMatrix, CscMatrix, Vec<f64>) {
        let g = grid2d(10, 10, WeightProfile::Unit, 2);
        let a = laplacian_with_shifts(&g, &vec![0.05; 100]);
        let m = a.clone();
        let b: Vec<f64> = (0..100).map(|i| ((i * 31 % 17) as f64) - 8.0).collect();
        (a, m, b)
    }

    /// The diagonal of `a` as a matrix — a Jacobi-grade preconditioner
    /// that cannot converge a grid Laplacian in one iteration.
    fn weak_precond(a: &CscMatrix) -> CscMatrix {
        let mut coo = tracered_sparse::CooMatrix::new(a.nrows(), a.ncols());
        for (i, &d) in a.diagonal().iter().enumerate() {
            coo.push(i, i, d).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn healthy_system_stops_at_stage_one() {
        let (a, m, b) = system();
        let sol = robust_solve(&a, &b, &m, &RobustSolveConfig::default()).unwrap();
        assert!(sol.converged());
        assert_eq!(sol.strategy, SolveStrategy::Pcg);
        assert_eq!(sol.attempts.len(), 1);
        assert_eq!(sol.attempts[0].applied_shift, 0.0);
        assert!(a.residual_inf_norm(&sol.x, &b) < 1e-2);
    }

    #[test]
    fn singular_preconditioner_matrix_is_boosted_not_fatal() {
        let g = grid2d(10, 10, WeightProfile::Unit, 2);
        let a = laplacian_with_shifts(&g, &vec![0.05; 100]);
        let m = laplacian(&g, ShiftPolicy::None).unwrap(); // unshifted: singular
        let b: Vec<f64> = (0..100).map(|i| ((i * 13 % 11) as f64) - 5.0).collect();
        let sol = robust_solve(&a, &b, &m, &RobustSolveConfig::default()).unwrap();
        assert!(sol.converged());
        assert!(sol.attempts[0].applied_shift > 0.0, "shift must be reported");
    }

    #[test]
    fn failed_pcg_escalates_to_direct() {
        let (a, _, b) = system();
        let m = weak_precond(&a);
        let cfg = RobustSolveConfig {
            pcg: PcgOptions { rel_tolerance: 1e-12, max_iterations: 1, ..Default::default() },
            ..Default::default()
        };
        let sol = robust_solve(&a, &b, &m, &cfg).unwrap();
        assert!(sol.converged());
        assert_eq!(sol.strategy, SolveStrategy::Direct);
        assert_eq!(sol.attempts.len(), 3, "all three rungs must be recorded");
        assert_eq!(sol.attempts[0].strategy, SolveStrategy::Pcg);
        assert_eq!(sol.attempts[0].reason, TerminationReason::MaxIterations);
        assert_eq!(sol.attempts[1].strategy, SolveStrategy::RefreshedPcg);
        assert_eq!(sol.attempts[2].strategy, SolveStrategy::Direct);
        assert!(sol.rel_residual <= 1e-12);
    }

    #[test]
    fn chain_without_direct_returns_best_iterate() {
        let (a, _, b) = system();
        let m = weak_precond(&a);
        let cfg = RobustSolveConfig {
            pcg: PcgOptions { rel_tolerance: 1e-12, max_iterations: 1, ..Default::default() },
            allow_direct: false,
            ..Default::default()
        };
        let sol = robust_solve(&a, &b, &m, &cfg).unwrap();
        assert!(!sol.converged());
        assert_eq!(sol.reason, TerminationReason::MaxIterations);
        assert_eq!(sol.attempts.len(), 2);
        assert!(sol.x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn non_finite_inputs_are_typed_errors() {
        let (a, m, b) = system();
        let mut bad_a = a.clone();
        bad_a.values_mut()[0] = f64::NAN;
        assert!(matches!(
            robust_solve(&bad_a, &b, &m, &RobustSolveConfig::default()),
            Err(SparseError::NonFiniteValue { .. })
        ));
        let mut bad_b = b.clone();
        bad_b[42] = f64::INFINITY;
        assert!(matches!(
            robust_solve(&a, &bad_b, &m, &RobustSolveConfig::default()),
            Err(SparseError::InvalidValue { .. })
        ));
        let mut bad_m = m.clone();
        bad_m.values_mut()[7] = f64::NEG_INFINITY;
        assert!(matches!(
            robust_solve(&a, &b, &bad_m, &RobustSolveConfig::default()),
            Err(SparseError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn shape_mismatches_are_typed_errors() {
        let (a, m, b) = system();
        assert!(matches!(
            robust_solve(&a, &b[..50], &m, &RobustSolveConfig::default()),
            Err(SparseError::DimensionMismatch { .. })
        ));
        let small = {
            let g = grid2d(3, 3, WeightProfile::Unit, 1);
            laplacian_with_shifts(&g, &[0.1; 9])
        };
        assert!(matches!(
            robust_solve(&a, &b, &small, &RobustSolveConfig::default()),
            Err(SparseError::DimensionMismatch { .. })
        ));
    }
}
