//! Blocked preconditioned conjugate gradient for batches of right-hand
//! sides sharing one SPD matrix.
//!
//! Power-grid transient analysis solves `A x = b` against many right-hand
//! sides per timestep (one per source scenario). [`block_pcg`] advances
//! all of them together: every iteration performs **one** SpMM
//! ([`CscMatrix::mul_multi_into`]) and **one** multi-column preconditioner
//! apply ([`Preconditioner::apply_multi`]) instead of `k` separate SpMVs
//! and triangular-solve rounds, so the sparse operands are streamed once
//! per batch.
//!
//! # Equivalence contract
//!
//! Columns do **not** share Krylov information: each carries its own
//! `α`/`β`/residual recurrence, so column `j` of a batch solve performs
//! exactly the arithmetic of [`crate::pcg::pcg_with_guess`] on
//! `b.col(j)` at the same thread count — results match column for column
//! (up to the sign of exact zeros, inherited from the blocked triangular
//! solves). The win is kernel fusion and factor-stream amortization, not
//! a different Krylov method; a true shared-subspace block-Krylov variant
//! is future work (see ROADMAP).
//!
//! # Deflation
//!
//! Converged (or broken-down) columns are *deflated*: swapped to the back
//! of the working blocks and truncated away in `O(1)`, so late iterations
//! only pay for the columns still converging. Deflation never changes the
//! arithmetic of surviving columns — per-column recurrences are
//! independent by construction.

use tracered_sparse::{par_dot, par_xpby, CscMatrix, MultiVec};

use crate::pcg::PcgOptions;
use crate::precond::Preconditioner;
use crate::termination::{TerminationReason, STAGNATION_WINDOW};

/// Result of a [`block_pcg`] solve. Per-column diagnostics are indexed by
/// the original right-hand-side column, regardless of deflation order.
#[derive(Debug, Clone)]
pub struct BlockPcgSolution {
    /// Solution block: column `j` solves `A x = b.col(j)`.
    pub x: MultiVec,
    /// Iterations each column performed before converging (or stopping).
    pub iterations: Vec<usize>,
    /// Final relative residual per column.
    pub rel_residual: Vec<f64>,
    /// Whether each column met the tolerance.
    pub converged: Vec<bool>,
    /// Why each column stopped — the same classification as the
    /// single-RHS [`crate::PcgSolution`], per column.
    pub reasons: Vec<TerminationReason>,
    /// Block iterations executed (the maximum over column iterations).
    pub sweeps: usize,
}

impl BlockPcgSolution {
    /// `true` when every column converged.
    pub fn all_converged(&self) -> bool {
        self.converged.iter().all(|&c| c)
    }

    /// Total PCG iterations summed over columns (the batch analog of the
    /// paper's `N_i` accounting).
    pub fn total_iterations(&self) -> usize {
        self.iterations.iter().sum()
    }

    /// Original column indices that stopped on a numerical breakdown
    /// (not converged, not merely capped).
    pub fn breakdown_columns(&self) -> Vec<usize> {
        self.reasons.iter().enumerate().filter(|(_, r)| r.is_breakdown()).map(|(c, _)| c).collect()
    }
}

/// Solves `A X = B` by blocked preconditioned conjugate gradient from
/// zero initial guesses.
///
/// ```
/// use tracered_core::{sparsify, SparsifyConfig};
/// use tracered_graph::gen::{grid2d, WeightProfile};
/// use tracered_solver::pcg::PcgOptions;
/// use tracered_solver::precond::CholPreconditioner;
/// use tracered_solver::block_pcg;
/// use tracered_sparse::MultiVec;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = grid2d(12, 12, WeightProfile::Unit, 1);
/// let sp = sparsify(&g, &SparsifyConfig::default())?;
/// let lg = sp.graph_laplacian(&g);
/// let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g))?;
/// // Four right-hand sides advance together: one SpMM and one blocked
/// // preconditioner apply per iteration instead of four of each.
/// let b = MultiVec::broadcast(&vec![1.0; g.num_nodes()], 4);
/// let sol = block_pcg(&lg, &b, &pre, &PcgOptions::default());
/// assert!(sol.all_converged());
/// assert_eq!(sol.x.ncols(), 4);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn block_pcg<P: Preconditioner>(
    a: &CscMatrix,
    b: &MultiVec,
    preconditioner: &P,
    options: &PcgOptions,
) -> BlockPcgSolution {
    block_pcg_with_guess(a, b, None, preconditioner, options)
}

/// Solves `A X = B` starting from an optional block of initial guesses —
/// the batch transient engine warm-starts every column from the
/// scenario's previous voltage vector.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn block_pcg_with_guess<P: Preconditioner>(
    a: &CscMatrix,
    b: &MultiVec,
    x0: Option<&MultiVec>,
    preconditioner: &P,
    options: &PcgOptions,
) -> BlockPcgSolution {
    let n = a.ncols();
    assert_eq!(a.nrows(), n, "matrix must be square");
    assert_eq!(b.nrows(), n, "rhs rows must equal n");
    let k = b.ncols();
    let mut span = tracered_obs::span!("block_pcg.solve", { n: n, width: k });
    let t = options.threads.max(1);
    debug_assert!(
        t <= 1 || a.is_symmetric_within(1e-9 * matrix_scale(a)),
        "parallel block PCG requires a symmetric matrix"
    );
    let dot_t = |u: &[f64], v: &[f64]| if t <= 1 { dot(u, v) } else { par_dot(u, v, t) };
    let norm_t = |v: &[f64]| dot_t(v, v).sqrt();

    let mut x = match x0 {
        Some(g) => {
            assert_eq!(g.nrows(), n, "guess rows must equal n");
            assert_eq!(g.ncols(), k, "guess width must match rhs width");
            g.clone()
        }
        None => MultiVec::zeros(n, k),
    };
    let mut iterations = vec![0usize; k];
    let mut rel_residual = vec![0.0f64; k];
    let mut converged = vec![false; k];
    let mut reasons = vec![TerminationReason::MaxIterations; k];
    // Per-column stagnation trackers, indexed by original column like the
    // other diagnostics (deflation reorders slots, not columns).
    let mut best_rel = vec![f64::INFINITY; k];
    let mut since_improve = vec![0usize; k];

    // Zero right-hand sides are answered with zero columns immediately,
    // like the single-RHS path; everything else enters the active set.
    let mut slot2col: Vec<usize> = Vec::with_capacity(k);
    let mut bnorms: Vec<f64> = Vec::with_capacity(k);
    for (col, conv) in converged.iter_mut().enumerate() {
        let bnorm = norm_t(b.col(col));
        if bnorm == 0.0 {
            x.col_mut(col).fill(0.0);
            *conv = true;
            reasons[col] = TerminationReason::Converged;
        } else {
            slot2col.push(col);
            bnorms.push(bnorm);
        }
    }
    let m0 = slot2col.len();

    // Working blocks hold only active columns; `slot2col` maps their
    // slots back to original column indices.
    let mut p_blk = MultiVec::zeros(n, m0);
    for (s, &col) in slot2col.iter().enumerate() {
        p_blk.col_mut(s).copy_from_slice(x.col(col));
    }
    let mut ap_blk = MultiVec::zeros(n, m0);
    let spmm = |v: &MultiVec, out: &mut MultiVec| {
        if t <= 1 {
            a.mul_multi_into(v, out);
        } else {
            a.sym_mul_multi_into_threads(v, out, t);
        }
    };
    spmm(&p_blk, &mut ap_blk);
    let mut r_blk = MultiVec::zeros(n, m0);
    for (s, &col) in slot2col.iter().enumerate() {
        let bc = b.col(col);
        let axc = ap_blk.col(s);
        for (i, ri) in r_blk.col_mut(s).iter_mut().enumerate() {
            *ri = bc[i] - axc[i];
        }
    }
    let mut z_blk = MultiVec::zeros(n, m0);
    preconditioner.apply_multi(&r_blk, &mut z_blk);
    let mut rzs: Vec<f64> = Vec::with_capacity(m0);
    for s in 0..m0 {
        p_blk.col_mut(s).copy_from_slice(z_blk.col(s));
        rzs.push(dot_t(r_blk.col(s), z_blk.col(s)));
        let rel = norm_t(r_blk.col(s)) / bnorms[s];
        rel_residual[slot2col[s]] = rel;
        best_rel[slot2col[s]] = rel;
    }

    #[allow(clippy::too_many_arguments)]
    fn deflate(
        s: usize,
        r: &mut MultiVec,
        z: &mut MultiVec,
        p: &mut MultiVec,
        ap: &mut MultiVec,
        rzs: &mut Vec<f64>,
        bnorms: &mut Vec<f64>,
        slot2col: &mut Vec<usize>,
    ) {
        let last = slot2col.len() - 1;
        for blk in [r, z, p, ap] {
            blk.swap_cols(s, last);
            blk.truncate_cols(last);
        }
        rzs.swap_remove(s);
        bnorms.swap_remove(s);
        slot2col.swap_remove(s);
    }

    // Columns already at tolerance converge with zero iterations; a NaN
    // rhs or guess poisons the entry residual and is classified before
    // any work, like the single-RHS path's skipped loop.
    for s in (0..slot2col.len()).rev() {
        let rel = rel_residual[slot2col[s]];
        let done = if rel <= options.rel_tolerance {
            converged[slot2col[s]] = true;
            reasons[slot2col[s]] = TerminationReason::Converged;
            true
        } else if !rel.is_finite() {
            reasons[slot2col[s]] = TerminationReason::NonFinite;
            true
        } else {
            false
        };
        if done {
            deflate(
                s,
                &mut r_blk,
                &mut z_blk,
                &mut p_blk,
                &mut ap_blk,
                &mut rzs,
                &mut bnorms,
                &mut slot2col,
            );
        }
    }

    let mut sweeps = 0usize;
    while !slot2col.is_empty() && sweeps < options.max_iterations {
        spmm(&p_blk, &mut ap_blk);
        // Per-column curvature check; broken-down columns deflate before
        // the solution update, keeping their best iterate (as the
        // single-RHS path's `break` does).
        let mut paps: Vec<f64> = Vec::with_capacity(slot2col.len());
        for s in 0..slot2col.len() {
            paps.push(dot_t(p_blk.col(s), ap_blk.col(s)));
        }
        for s in (0..slot2col.len()).rev() {
            if paps[s] <= 0.0 || !paps[s].is_finite() {
                reasons[slot2col[s]] = if !paps[s].is_finite() {
                    TerminationReason::NonFinite
                } else {
                    TerminationReason::IndefiniteOperator
                };
                paps.swap_remove(s);
                deflate(
                    s,
                    &mut r_blk,
                    &mut z_blk,
                    &mut p_blk,
                    &mut ap_blk,
                    &mut rzs,
                    &mut bnorms,
                    &mut slot2col,
                );
            }
        }
        if slot2col.is_empty() {
            break;
        }
        // x ← x + α p, r ← r − α Ap, fused per column.
        for s in 0..slot2col.len() {
            let alpha = rzs[s] / paps[s];
            let xc = x.col_mut(slot2col[s]);
            let rc = r_blk.col_mut(s);
            let pc = p_blk.col(s);
            let apc = ap_blk.col(s);
            if t <= 1 {
                for ((xi, &pi), (ri, &api)) in
                    xc.iter_mut().zip(pc.iter()).zip(rc.iter_mut().zip(apc.iter()))
                {
                    *xi += alpha * pi;
                    *ri -= alpha * api;
                }
            } else {
                let chunk = tracered_par::chunk_size(n, t, 4096);
                tracered_par::par_chunks2_mut(xc, rc, chunk, t, |start, xs, rs| {
                    for off in 0..xs.len() {
                        xs[off] += alpha * pc[start + off];
                        rs[off] -= alpha * apc[start + off];
                    }
                });
            }
        }
        sweeps += 1;
        for s in (0..slot2col.len()).rev() {
            let col = slot2col[s];
            iterations[col] += 1;
            let rel = norm_t(r_blk.col(s)) / bnorms[s];
            rel_residual[col] = rel;
            // Same classification order as the single-RHS loop: a
            // non-finite residual, then the tolerance, then stagnation.
            let done = if !rel.is_finite() {
                reasons[col] = TerminationReason::NonFinite;
                true
            } else if rel <= options.rel_tolerance {
                converged[col] = true;
                reasons[col] = TerminationReason::Converged;
                true
            } else if rel < best_rel[col] {
                best_rel[col] = rel;
                since_improve[col] = 0;
                false
            } else {
                since_improve[col] += 1;
                if since_improve[col] >= STAGNATION_WINDOW {
                    reasons[col] = TerminationReason::Stagnation;
                    true
                } else {
                    false
                }
            };
            if done {
                deflate(
                    s,
                    &mut r_blk,
                    &mut z_blk,
                    &mut p_blk,
                    &mut ap_blk,
                    &mut rzs,
                    &mut bnorms,
                    &mut slot2col,
                );
            }
        }
        if tracered_obs::iter_events_enabled() {
            tracered_obs::event!("block_pcg.iter", { iter: sweeps, active: slot2col.len() });
        }
        if slot2col.is_empty() || sweeps >= options.max_iterations {
            break;
        }
        preconditioner.apply_multi(&r_blk, &mut z_blk);
        // Preconditioner curvature check mirrors the single-RHS path:
        // compute every rᵀz first, deflate broken columns (keeping their
        // best iterate), then advance the survivors' recurrences — the
        // survivor arithmetic is untouched by the deflations.
        let mut rz_nexts: Vec<f64> = Vec::with_capacity(slot2col.len());
        for s in 0..slot2col.len() {
            rz_nexts.push(dot_t(r_blk.col(s), z_blk.col(s)));
        }
        for s in (0..slot2col.len()).rev() {
            if rz_nexts[s] <= 0.0 || !rz_nexts[s].is_finite() {
                reasons[slot2col[s]] = if !rz_nexts[s].is_finite() {
                    TerminationReason::NonFinite
                } else {
                    TerminationReason::IndefinitePreconditioner
                };
                rz_nexts.swap_remove(s);
                deflate(
                    s,
                    &mut r_blk,
                    &mut z_blk,
                    &mut p_blk,
                    &mut ap_blk,
                    &mut rzs,
                    &mut bnorms,
                    &mut slot2col,
                );
            }
        }
        for (s, rz) in rzs.iter_mut().enumerate() {
            let rz_next = rz_nexts[s];
            let beta = rz_next / *rz;
            *rz = rz_next;
            let zc = z_blk.col(s);
            let pc = p_blk.col_mut(s);
            if t <= 1 {
                for (pi, &zi) in pc.iter_mut().zip(zc.iter()) {
                    *pi = zi + beta * *pi;
                }
            } else {
                par_xpby(pc, beta, zc, t);
            }
        }
    }
    if let Some(g) = span.as_mut() {
        g.arg("sweeps", sweeps as f64);
        g.arg("total_iterations", iterations.iter().sum::<usize>() as f64);
        g.arg("converged_cols", converged.iter().filter(|&&c| c).count() as f64);
    }
    BlockPcgSolution { x, iterations, rel_residual, converged, reasons, sweeps }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Largest absolute stored value, the scale for the debug symmetry check.
fn matrix_scale(a: &CscMatrix) -> f64 {
    a.values().iter().fold(0.0f64, |m, &v| m.max(v.abs())).max(f64::MIN_POSITIVE)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pcg::{pcg, pcg_with_guess};
    use crate::precond::{CholPreconditioner, IdentityPreconditioner, JacobiPreconditioner};
    use tracered_graph::gen::{grid2d, WeightProfile};
    use tracered_graph::laplacian::laplacian_with_shifts;

    fn system() -> (CscMatrix, MultiVec) {
        let g = grid2d(9, 11, WeightProfile::LogUniform { lo: 0.4, hi: 3.0 }, 5);
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.05; n]);
        let cols: Vec<Vec<f64>> = (0..4)
            .map(|c| (0..n).map(|i| ((i * 29 + c * 7) % 23) as f64 - 11.0).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        (a, MultiVec::from_columns(&refs).unwrap())
    }

    #[test]
    fn block_solve_matches_independent_single_solves() {
        let (a, b) = system();
        let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
        let opts = PcgOptions::with_tolerance(1e-9);
        let block = block_pcg(&a, &b, &pre, &opts);
        assert!(block.all_converged());
        for c in 0..b.ncols() {
            let single = pcg(&a, b.col(c), &pre, &opts);
            assert_eq!(single.iterations, block.iterations[c], "column {c} iteration count");
            assert_eq!(single.converged, block.converged[c]);
            for (s, m) in single.x.iter().zip(block.x.col(c).iter()) {
                assert!((s - m).abs() == 0.0, "column {c} solutions diverged");
            }
        }
        assert_eq!(block.sweeps, *block.iterations.iter().max().unwrap());
        assert!(block.total_iterations() >= block.sweeps);
    }

    #[test]
    fn warm_started_block_matches_warm_started_singles() {
        let (a, b) = system();
        let pre = CholPreconditioner::from_matrix(&a).unwrap();
        let opts = PcgOptions::with_tolerance(1e-10);
        let cold = block_pcg(&a, &b, &pre, &opts);
        let warm = block_pcg_with_guess(&a, &b, Some(&cold.x), &pre, &opts);
        for c in 0..b.ncols() {
            let single = pcg_with_guess(&a, b.col(c), Some(cold.x.col(c)), &pre, &opts);
            assert_eq!(single.iterations, warm.iterations[c]);
            assert!(warm.iterations[c] <= 2, "warm start must converge fast");
        }
    }

    #[test]
    fn zero_columns_deflate_immediately() {
        let (a, b) = system();
        let n = a.ncols();
        let zero = vec![0.0; n];
        let cols = [b.col(0), &zero[..], b.col(1)];
        let mixed = MultiVec::from_columns(&cols).unwrap();
        let sol = block_pcg(&a, &mixed, &IdentityPreconditioner, &PcgOptions::with_tolerance(1e-8));
        assert!(sol.converged[1]);
        assert_eq!(sol.iterations[1], 0);
        assert!(sol.x.col(1).iter().all(|&v| v == 0.0));
        assert!(sol.converged[0] && sol.converged[2]);
        assert!(a.residual_inf_norm(sol.x.col(0), b.col(0)) < 1e-4);
    }

    #[test]
    fn iteration_cap_applies_per_column() {
        let (a, b) = system();
        let opts = PcgOptions { rel_tolerance: 1e-14, max_iterations: 3, ..Default::default() };
        let sol = block_pcg(&a, &b, &IdentityPreconditioner, &opts);
        assert_eq!(sol.sweeps, 3);
        for c in 0..b.ncols() {
            assert!(!sol.converged[c]);
            assert_eq!(sol.iterations[c], 3);
        }
    }

    #[test]
    fn deflation_keeps_survivor_columns_exact() {
        // Mix a trivially easy column (preconditioned exactly) with hard
        // ones: the easy column deflates after the first sweeps and the
        // others must still match their single-RHS runs bit for bit.
        let (a, b) = system();
        let pre = CholPreconditioner::from_matrix(&a).unwrap();
        let opts = PcgOptions::with_tolerance(1e-12);
        let block = block_pcg(&a, &b, &pre, &opts);
        for c in 0..b.ncols() {
            let single = pcg(&a, b.col(c), &pre, &opts);
            assert_eq!(single.iterations, block.iterations[c]);
            for (s, m) in single.x.iter().zip(block.x.col(c).iter()) {
                assert!((s - m).abs() == 0.0, "column {c} diverged after deflation");
            }
        }
    }

    #[test]
    fn parallel_block_matches_parallel_singles() {
        let (a, b) = system();
        let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
        for threads in [2usize, 4] {
            let opts = PcgOptions::with_tolerance(1e-9).threads(threads);
            let block = block_pcg(&a, &b, &pre, &opts);
            assert!(block.all_converged());
            for c in 0..b.ncols() {
                let single = pcg(&a, b.col(c), &pre, &opts);
                assert_eq!(
                    single.iterations, block.iterations[c],
                    "column {c} at {threads} threads"
                );
                for (s, m) in single.x.iter().zip(block.x.col(c).iter()) {
                    assert!((s - m).abs() == 0.0, "column {c} diverged at {threads} threads");
                }
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let (a, _) = system();
        let b = MultiVec::zeros(a.ncols(), 0);
        let sol = block_pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::default());
        assert_eq!(sol.x.ncols(), 0);
        assert!(sol.iterations.is_empty());
        assert!(sol.reasons.is_empty());
        assert_eq!(sol.sweeps, 0);
    }

    #[test]
    fn reasons_match_single_rhs_classification() {
        use crate::termination::TerminationReason;
        let (a, b) = system();
        let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
        for opts in [
            PcgOptions::with_tolerance(1e-9),
            PcgOptions { rel_tolerance: 1e-14, max_iterations: 3, ..Default::default() },
        ] {
            let block = block_pcg(&a, &b, &pre, &opts);
            for c in 0..b.ncols() {
                let single = pcg(&a, b.col(c), &pre, &opts);
                assert_eq!(single.reason, block.reasons[c], "column {c}");
            }
        }
        // Zero columns are classified converged.
        let zero = MultiVec::zeros(a.ncols(), 2);
        let sol = block_pcg(&a, &zero, &pre, &PcgOptions::default());
        assert!(sol.reasons.iter().all(|&r| r == TerminationReason::Converged));
        assert!(sol.breakdown_columns().is_empty());
    }

    #[test]
    fn per_column_breakdowns_leave_survivors_untouched() {
        use crate::termination::TerminationReason;
        use tracered_sparse::CooMatrix;
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csc();
        // Column 0 hits pᵀAp = 0 immediately; column 1 never touches the
        // indefinite coordinate and converges exactly.
        let cols = [&[1.0, 1.0][..], &[1.0, 0.0][..]];
        let b = MultiVec::from_columns(&cols).unwrap();
        let sol = block_pcg(&a, &b, &IdentityPreconditioner, &PcgOptions::default());
        assert_eq!(sol.reasons[0], TerminationReason::IndefiniteOperator);
        assert!(!sol.converged[0]);
        assert_eq!(sol.reasons[1], TerminationReason::Converged);
        assert!(sol.converged[1]);
        assert_eq!(sol.breakdown_columns(), vec![0]);
        // The survivor matches its single-RHS run bit for bit.
        let single = pcg(&a, b.col(1), &IdentityPreconditioner, &PcgOptions::default());
        assert_eq!(single.iterations, sol.iterations[1]);
        for (s, m) in single.x.iter().zip(sol.x.col(1).iter()) {
            assert!((s - m).abs() == 0.0);
        }
    }

    #[test]
    fn non_finite_column_is_classified_without_poisoning_batch() {
        use crate::termination::TerminationReason;
        let (a, b) = system();
        let n = a.ncols();
        let mut bad = vec![1.0; n];
        bad[3] = f64::NAN;
        let cols = [b.col(0), &bad[..]];
        let mixed = MultiVec::from_columns(&cols).unwrap();
        let sol = block_pcg(&a, &mixed, &IdentityPreconditioner, &PcgOptions::with_tolerance(1e-8));
        assert_eq!(sol.reasons[1], TerminationReason::NonFinite);
        assert!(!sol.converged[1]);
        assert_eq!(sol.iterations[1], 0, "poisoned column must be dropped before any work");
        assert!(sol.converged[0]);
        assert!(a.residual_inf_norm(sol.x.col(0), b.col(0)) < 1e-4);
    }
}
