//! Iterative and direct solvers for SDD systems, built around the
//! `tracered` sparsifiers.
//!
//! - [`mod@pcg`]: preconditioned conjugate gradient with pluggable
//!   preconditioners — the paper evaluates its sparsifiers by the PCG
//!   iteration counts and runtimes they produce;
//! - [`block`]: blocked PCG over batches of right-hand sides — one SpMM
//!   and one multi-column preconditioner apply per iteration, with
//!   per-column convergence tracking and deflation of converged columns;
//! - [`precond`]: identity / Jacobi / Cholesky-of-sparsifier
//!   preconditioners;
//! - [`direct`]: a convenience direct solver (ordering + factorization +
//!   substitutions), the "Direct" baseline of the paper's Tables 2–3;
//! - [`eigen`]: inverse power iteration for the Fiedler vector (spectral
//!   partitioning, Table 3);
//! - [`termination`]: the classified [`TerminationReason`] taxonomy every
//!   iterative solve reports instead of silently breaking down;
//! - [`robust`]: the [`robust_solve`] escalation chain — PCG → refreshed
//!   boosted preconditioner → direct solve, with per-attempt diagnostics;
//! - [`context`]: `Arc`-shared immutable solver contexts
//!   ([`SolverContext`]) and the context-reusing [`robust_solve_shared`]
//!   — factorize once, serve many; the ownership layer under
//!   `tracered-service`.
//!
//! # Example
//!
//! ```
//! use tracered_core::{sparsify, SparsifyConfig};
//! use tracered_graph::gen::{grid2d, WeightProfile};
//! use tracered_solver::pcg::{pcg, PcgOptions};
//! use tracered_solver::precond::CholPreconditioner;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = grid2d(12, 12, WeightProfile::Unit, 1);
//! let sp = sparsify(&g, &SparsifyConfig::default())?;
//! let lg = sp.graph_laplacian(&g);
//! let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g))?;
//! let b = vec![1.0; g.num_nodes()];
//! let sol = pcg(&lg, &b, &pre, &PcgOptions::default());
//! assert!(sol.converged);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

#[warn(clippy::unwrap_used)]
pub mod block;
#[warn(clippy::unwrap_used)]
pub mod context;
pub mod direct;
pub mod eigen;
#[warn(clippy::unwrap_used)]
pub mod pcg;
pub mod precond;
pub mod robust;
#[warn(clippy::unwrap_used)]
pub mod termination;

pub use block::{block_pcg, block_pcg_with_guess, BlockPcgSolution};
pub use context::{robust_solve_shared, SolverContext};
pub use direct::DirectSolver;
pub use pcg::{pcg, PcgOptions, PcgSolution};
pub use precond::{
    CholPreconditioner, IcPreconditioner, IdentityPreconditioner, JacobiPreconditioner,
    Preconditioner,
};
pub use robust::{robust_solve, RobustSolution, RobustSolveConfig, SolveAttempt, SolveStrategy};
pub use termination::TerminationReason;
