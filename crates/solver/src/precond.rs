//! Preconditioners for the conjugate-gradient solver.

use tracered_sparse::ichol::IncompleteCholesky;
use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, CscMatrix, MultiVec, SparseError};

/// Application of a symmetric positive definite preconditioner `M⁻¹`.
pub trait Preconditioner {
    /// Computes `z = M⁻¹ r`, overwriting `z`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `r.len() != z.len()` or the lengths
    /// disagree with the preconditioner dimension.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Computes `Z = M⁻¹ R` column by column, overwriting `z` — the
    /// multi-RHS form used by the block-PCG solver.
    ///
    /// The default delegates to [`Preconditioner::apply`] per column;
    /// implementations with a blocked kernel (notably
    /// [`CholPreconditioner`], whose batched triangular solves stream the
    /// factor once for all columns) override it. Overrides must keep the
    /// per-column arithmetic of `apply` (signed zeros excepted) so block
    /// PCG stays column-for-column equivalent to single-RHS PCG.
    ///
    /// # Panics
    ///
    /// Implementations may panic when the shapes of `r` and `z` disagree
    /// with each other or the preconditioner dimension.
    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        assert_eq!(r.ncols(), z.ncols(), "input and output widths must match");
        for (rc, zc) in r.cols().zip(z.cols_mut()) {
            self.apply(rc, zc);
        }
    }

    /// Estimated memory footprint of the preconditioner in bytes.
    fn memory_bytes(&self) -> usize {
        0
    }
}

/// The identity preconditioner (plain CG).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityPreconditioner;

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
}

/// Diagonal (Jacobi) preconditioner.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from a matrix's diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidValue`] when a diagonal entry is not
    /// strictly positive.
    pub fn from_matrix(a: &CscMatrix) -> Result<Self, SparseError> {
        let diag = a.diagonal();
        let mut inv_diag = Vec::with_capacity(diag.len());
        for (i, &d) in diag.iter().enumerate() {
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::InvalidValue {
                    what: format!("non-positive diagonal {d} at {i}"),
                });
            }
            inv_diag.push(1.0 / d);
        }
        Ok(JacobiPreconditioner { inv_diag })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r.iter()).zip(self.inv_diag.iter()) {
            *zi = ri * di;
        }
    }

    fn memory_bytes(&self) -> usize {
        self.inv_diag.len() * std::mem::size_of::<f64>()
    }
}

/// Cholesky preconditioner: `M = L_P` for a sparsifier Laplacian `L_P`,
/// applied through sparse triangular solves. This is the paper's
/// evaluation vehicle: factor the sparsifier once (with CHOLMOD in the
/// paper, with [`CholeskyFactor`] here) and reuse it across all PCG
/// solves.
#[derive(Debug, Clone)]
pub struct CholPreconditioner {
    factor: CholeskyFactor,
}

impl CholPreconditioner {
    /// Factorizes `m` (e.g. a shifted sparsifier Laplacian) with the
    /// min-degree ordering.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when `m` is singular or
    /// indefinite.
    pub fn from_matrix(m: &CscMatrix) -> Result<Self, SparseError> {
        Self::from_matrix_threads(m, 1)
    }

    /// [`CholPreconditioner::from_matrix`] with the numeric factorization
    /// split across up to `threads` pool workers
    /// ([`CholeskyFactor::factorize_threads`]). The factor — and hence
    /// every PCG iterate preconditioned by it — is bit-identical to the
    /// serial build at every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] when `m` is singular or
    /// indefinite.
    pub fn from_matrix_threads(m: &CscMatrix, threads: usize) -> Result<Self, SparseError> {
        Ok(CholPreconditioner {
            factor: CholeskyFactor::factorize_threads(m, Ordering::MinDegree, threads)?,
        })
    }

    /// Wraps an existing factorization.
    pub fn from_factor(factor: CholeskyFactor) -> Self {
        CholPreconditioner { factor }
    }

    /// The underlying factorization.
    pub fn factor(&self) -> &CholeskyFactor {
        &self.factor
    }
}

impl Preconditioner for CholPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        self.factor.solve_into(r, z);
    }

    fn apply_multi(&self, r: &MultiVec, z: &mut MultiVec) {
        self.factor.solve_multi_into(r, z);
    }

    fn memory_bytes(&self) -> usize {
        self.factor.memory_bytes()
    }
}

/// Zero-fill incomplete Cholesky preconditioner, the conventional
/// baseline the paper's sparsifier preconditioners are an alternative
/// to: same memory order as the matrix itself, but iteration counts that
/// grow with problem size where the sparsifier's stay nearly flat.
#[derive(Debug, Clone)]
pub struct IcPreconditioner {
    ic: IncompleteCholesky,
}

impl IcPreconditioner {
    /// Computes IC(0) of `m` (see
    /// [`tracered_sparse::ichol::IncompleteCholesky`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotPositiveDefinite`] for matrices where the
    /// restricted pivots break down.
    pub fn from_matrix(m: &CscMatrix) -> Result<Self, SparseError> {
        Ok(IcPreconditioner { ic: IncompleteCholesky::factorize(m)? })
    }
}

impl Preconditioner for IcPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
        self.ic.apply_in_place(z);
    }

    fn memory_bytes(&self) -> usize {
        self.ic.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_sparse::CooMatrix;

    fn spd() -> CscMatrix {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(0, 0, 4.0).unwrap();
        coo.push(1, 1, 5.0).unwrap();
        coo.push(2, 2, 6.0).unwrap();
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.to_csc()
    }

    #[test]
    fn identity_copies() {
        let mut z = vec![0.0; 3];
        IdentityPreconditioner.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn jacobi_scales_by_inverse_diagonal() {
        let p = JacobiPreconditioner::from_matrix(&spd()).unwrap();
        let mut z = vec![0.0; 3];
        p.apply(&[4.0, 10.0, 12.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 2.0]);
        assert!(p.memory_bytes() > 0);
    }

    #[test]
    fn jacobi_rejects_nonpositive_diagonal() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        let a = coo.to_csc();
        assert!(JacobiPreconditioner::from_matrix(&a).is_err());
    }

    #[test]
    fn ic_preconditioner_applies_and_reports_memory() {
        let a = spd();
        let p = IcPreconditioner::from_matrix(&a).unwrap();
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
        assert!(p.memory_bytes() > 0);
        // spd() has an arrow-free pattern (only (0,1) off-diagonal), so
        // IC(0) is exact here.
        assert!(a.residual_inf_norm(&z, &[1.0, 2.0, 3.0]) < 1e-12);
    }

    #[test]
    fn apply_multi_matches_apply_per_column() {
        let a = spd();
        let cols = [vec![1.0, 2.0, 3.0], vec![-4.0, 0.0, 2.5]];
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let r = MultiVec::from_columns(&refs).unwrap();
        let chol = CholPreconditioner::from_matrix(&a).unwrap();
        let jacobi = JacobiPreconditioner::from_matrix(&a).unwrap();
        let pres: [&dyn Preconditioner; 3] = [&chol, &jacobi, &IdentityPreconditioner];
        for pre in pres {
            let mut z = MultiVec::zeros(3, 2);
            pre.apply_multi(&r, &mut z);
            for (c, col) in cols.iter().enumerate() {
                let mut single = vec![0.0; 3];
                pre.apply(col, &mut single);
                for (s, m) in single.iter().zip(z.col(c).iter()) {
                    assert!((s - m).abs() == 0.0, "column {c}");
                }
            }
        }
    }

    #[test]
    fn cholesky_preconditioner_is_exact_solve() {
        let a = spd();
        let p = CholPreconditioner::from_matrix(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let mut z = vec![0.0; 3];
        p.apply(&b, &mut z);
        assert!(a.residual_inf_norm(&z, &b) < 1e-12);
        assert!(p.memory_bytes() > 0);
    }
}
