//! Classified termination of iterative solves — the PETSc-style
//! "diverged reason" taxonomy that replaces silent breakdown exits.
//!
//! Before this module, a PCG breakdown (`pᵀAp ≤ 0`, a NaN residual, a
//! stalled iteration) just `break`-ed out of the loop and reported
//! `converged: false`, indistinguishable from an honest iteration-cap
//! hit. Every solve now carries a [`TerminationReason`] so callers — in
//! particular the escalation chain of [`crate::robust::robust_solve`] —
//! can pick the right recovery: a breakdown warrants a refreshed or
//! boosted preconditioner, a cap hit warrants more iterations or a
//! direct solve, and a non-finite value warrants input validation.

use std::fmt;

/// How many consecutive non-improving iterations (relative residual not
/// strictly below the best seen) PCG tolerates before classifying the
/// solve as [`TerminationReason::Stagnation`]. Large enough that the
/// non-monotone residual plateaus of healthy CG runs never trip it.
pub const STAGNATION_WINDOW: usize = 128;

/// Why an iterative solve stopped.
///
/// Recorded in [`crate::PcgSolution`] and (per column) in
/// [`crate::BlockPcgSolution`]; the breakdown variants drive the
/// escalation chain in [`crate::robust::robust_solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum TerminationReason {
    /// The relative residual met the tolerance.
    Converged,
    /// The iteration cap was reached with the tolerance unmet (and no
    /// breakdown observed) — the honest "needs more work" outcome.
    MaxIterations,
    /// `pᵀAp ≤ 0`: the operator is not positive definite along the
    /// current search direction.
    IndefiniteOperator,
    /// `rᵀz ≤ 0` after applying the preconditioner: the preconditioner
    /// is not positive definite (e.g. a stale or over-dropped
    /// incomplete factor).
    IndefinitePreconditioner,
    /// A NaN or infinity appeared in the iteration (operator product,
    /// preconditioned residual, or residual norm).
    NonFinite,
    /// The relative residual failed to improve for
    /// [`STAGNATION_WINDOW`] consecutive iterations.
    Stagnation,
}

impl TerminationReason {
    /// `true` for the numerical-breakdown variants — the ones where
    /// retrying with the same operator and preconditioner cannot help
    /// ([`IndefiniteOperator`](Self::IndefiniteOperator),
    /// [`IndefinitePreconditioner`](Self::IndefinitePreconditioner),
    /// [`NonFinite`](Self::NonFinite),
    /// [`Stagnation`](Self::Stagnation)).
    pub fn is_breakdown(self) -> bool {
        !matches!(self, TerminationReason::Converged | TerminationReason::MaxIterations)
    }

    /// A stable small integer for this reason, used as a numeric span
    /// argument in convergence traces (trace args are `f64`-valued):
    /// 0 converged, 1 max-iterations, 2 indefinite operator,
    /// 3 indefinite preconditioner, 4 non-finite, 5 stagnation.
    pub fn code(self) -> u32 {
        match self {
            TerminationReason::Converged => 0,
            TerminationReason::MaxIterations => 1,
            TerminationReason::IndefiniteOperator => 2,
            TerminationReason::IndefinitePreconditioner => 3,
            TerminationReason::NonFinite => 4,
            TerminationReason::Stagnation => 5,
        }
    }
}

impl fmt::Display for TerminationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            TerminationReason::Converged => "converged",
            TerminationReason::MaxIterations => "iteration cap reached",
            TerminationReason::IndefiniteOperator => "operator indefinite along search direction",
            TerminationReason::IndefinitePreconditioner => "preconditioner not positive definite",
            TerminationReason::NonFinite => "non-finite value in iteration",
            TerminationReason::Stagnation => "residual stagnated",
        };
        f.write_str(msg)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_classification() {
        assert!(!TerminationReason::Converged.is_breakdown());
        assert!(!TerminationReason::MaxIterations.is_breakdown());
        assert!(TerminationReason::IndefiniteOperator.is_breakdown());
        assert!(TerminationReason::IndefinitePreconditioner.is_breakdown());
        assert!(TerminationReason::NonFinite.is_breakdown());
        assert!(TerminationReason::Stagnation.is_breakdown());
    }

    #[test]
    fn display_is_nonempty_and_lowercase() {
        for r in [
            TerminationReason::Converged,
            TerminationReason::MaxIterations,
            TerminationReason::IndefiniteOperator,
            TerminationReason::IndefinitePreconditioner,
            TerminationReason::NonFinite,
            TerminationReason::Stagnation,
        ] {
            let msg = r.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }
}
