//! Integration tests: sparsifier-preconditioned PCG behaves as the paper
//! describes — fewer iterations than generic preconditioners, and better
//! sparsifiers (lower κ) give fewer iterations.

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_graph::Graph;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::{CholPreconditioner, JacobiPreconditioner};

fn pcg_iterations(g: &Graph, method: Method) -> (usize, f64) {
    let sp = sparsify(g, &SparsifyConfig::new(method)).unwrap();
    let lg = sp.graph_laplacian(g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g)).unwrap();
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i * 37 % 23) as f64) - 11.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    assert!(sol.converged, "PCG must converge with a sparsifier preconditioner");
    assert!(lg.residual_inf_norm(&sol.x, &b) < 1e-3);
    let kappa = tracered_core::metrics::relative_condition_number(&lg, pre.factor(), 60, 13);
    (sol.iterations, kappa)
}

#[test]
fn sparsifier_preconditioner_beats_jacobi() {
    let g = tri_mesh(20, 20, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 21);
    let sp = sparsify(&g, &SparsifyConfig::default()).unwrap();
    let lg = sp.graph_laplacian(&g);
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| (i as f64).cos()).collect();
    let opts = PcgOptions::with_tolerance(1e-6);
    let jacobi = pcg(&lg, &b, &JacobiPreconditioner::from_matrix(&lg).unwrap(), &opts);
    let chol = pcg(&lg, &b, &CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap(), &opts);
    assert!(chol.converged);
    assert!(
        chol.iterations * 2 < jacobi.iterations.max(1),
        "sparsifier PCG ({}) must be far faster than Jacobi ({})",
        chol.iterations,
        jacobi.iterations
    );
}

#[test]
fn lower_kappa_means_fewer_pcg_iterations() {
    // The paper's core evaluation logic: trace reduction → lower κ →
    // fewer PCG iterations than the baselines at equal edge count.
    let g = tri_mesh(22, 22, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 8);
    let (it_tr, k_tr) = pcg_iterations(&g, Method::TraceReduction);
    let (it_er, k_er) = pcg_iterations(&g, Method::EffectiveResistance);
    // Shape check, with slack for small-problem noise: trace reduction
    // should not be meaningfully worse on either metric.
    assert!(k_tr <= k_er * 1.25, "κ: trace reduction {k_tr} vs effective resistance {k_er}");
    assert!(
        it_tr <= it_er + 3,
        "iterations: trace reduction {it_tr} vs effective resistance {it_er}"
    );
}

#[test]
fn tree_preconditioner_converges_but_slowly() {
    let g = tri_mesh(15, 15, WeightProfile::Unit, 2);
    let tree = sparsify(&g, &SparsifyConfig::default().edge_fraction(0.0)).unwrap();
    let full = sparsify(&g, &SparsifyConfig::default()).unwrap();
    let lg = full.graph_laplacian(&g);
    let b: Vec<f64> = (0..g.num_nodes()).map(|i| ((i % 11) as f64) - 5.0).collect();
    let opts = PcgOptions::with_tolerance(1e-6);
    let with_tree =
        pcg(&lg, &b, &CholPreconditioner::from_matrix(&tree.laplacian(&g)).unwrap(), &opts);
    let with_full =
        pcg(&lg, &b, &CholPreconditioner::from_matrix(&full.laplacian(&g)).unwrap(), &opts);
    assert!(with_tree.converged && with_full.converged);
    assert!(
        with_full.iterations < with_tree.iterations,
        "recovered edges must reduce iterations: {} vs {}",
        with_full.iterations,
        with_tree.iterations
    );
}
