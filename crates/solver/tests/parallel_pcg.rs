//! Regression tests for PCG running on the parallel SpMV / vector
//! kernels: convergence must be preserved, solutions must agree with the
//! serial path to solver tolerance, and iteration counts must not blow
//! up (the chunked reductions only change rounding).

use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::{CholPreconditioner, JacobiPreconditioner};

fn rhs(n: usize) -> Vec<f64> {
    (0..n).map(|i| ((i * 31 % 17) as f64) - 8.0).collect()
}

#[test]
fn parallel_pcg_converges_with_jacobi() {
    let g = grid2d(40, 40, WeightProfile::Unit, 2);
    let n = g.num_nodes();
    let a = laplacian_with_shifts(&g, &vec![0.05; n]);
    let b = rhs(n);
    let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
    let serial = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-8));
    assert!(serial.converged);
    for threads in [2usize, 4, 8] {
        let par = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-8).threads(threads));
        assert!(par.converged, "{threads}-thread PCG failed to converge");
        assert!(a.residual_inf_norm(&par.x, &b) < 1e-5, "{threads}-thread PCG residual too large");
        // Chunked reductions only change rounding: iteration counts must
        // stay within a couple of steps of the serial path.
        let diff = par.iterations.abs_diff(serial.iterations);
        assert!(
            diff <= 3,
            "iteration count moved from {} to {} at {threads} threads",
            serial.iterations,
            par.iterations
        );
        // Solutions agree to solver tolerance.
        let max_diff =
            serial.x.iter().zip(par.x.iter()).map(|(s, p)| (s - p).abs()).fold(0.0f64, f64::max);
        assert!(max_diff < 1e-5, "solutions diverged by {max_diff} at {threads} threads");
    }
}

#[test]
fn parallel_pcg_with_sparsifier_preconditioner_matches_serial_iterations() {
    // The paper's end use: sparsifier-preconditioned PCG on a mesh.
    let g = tri_mesh(24, 24, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 7);
    let sp = sparsify(&g, &SparsifyConfig::new(Method::TraceReduction)).unwrap();
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
    let b = rhs(g.num_nodes());
    let serial = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    assert!(serial.converged && serial.iterations > 0);
    let par = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6).threads(4));
    assert!(par.converged);
    assert!(par.iterations.abs_diff(serial.iterations) <= 2);
    assert!(lg.residual_inf_norm(&par.x, &b) < 1e-4);
}

#[test]
fn threads_builder_floors_at_one() {
    let opts = PcgOptions::default().threads(0);
    assert_eq!(opts.threads, 1);
    // threads = 1 through the builder is the exact serial path.
    let g = grid2d(10, 10, WeightProfile::Unit, 1);
    let a = laplacian_with_shifts(&g, &vec![0.05; 100]);
    let b = rhs(100);
    let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
    let s1 = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-9));
    let s2 = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-9).threads(1));
    assert_eq!(s1.iterations, s2.iterations);
    assert!(s1.x.iter().zip(s2.x.iter()).all(|(a, b)| a.to_bits() == b.to_bits()));
}

#[test]
fn block_pcg_columns_match_single_rhs_across_thread_counts() {
    // The batched subsystem's equivalence contract at integration scale:
    // a width-k block solve is column-for-column identical to k
    // independent single-RHS solves, at every thread count.
    use tracered_solver::block::block_pcg;
    use tracered_sparse::MultiVec;

    let g = tri_mesh(20, 20, WeightProfile::LogUniform { lo: 0.3, hi: 3.0 }, 9);
    let sp = sparsify(&g, &SparsifyConfig::new(Method::TraceReduction)).unwrap();
    let lg = sp.graph_laplacian(&g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
    let n = g.num_nodes();
    let cols: Vec<Vec<f64>> =
        (0..6).map(|c| (0..n).map(|i| ((i * 17 + c * 29) % 31) as f64 - 15.0).collect()).collect();
    let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
    let b = MultiVec::from_columns(&refs).unwrap();
    for threads in [1usize, 2, 4] {
        let opts = PcgOptions::with_tolerance(1e-8).threads(threads);
        let block = block_pcg(&lg, &b, &pre, &opts);
        assert!(block.all_converged(), "{threads}-thread block PCG failed to converge");
        for (c, col) in cols.iter().enumerate() {
            let single = pcg(&lg, col, &pre, &opts);
            assert_eq!(
                single.iterations, block.iterations[c],
                "column {c} iteration count at {threads} threads"
            );
            for (s, m) in single.x.iter().zip(block.x.col(c).iter()) {
                assert!(
                    (s - m).abs() == 0.0,
                    "column {c} diverged from single-RHS PCG at {threads} threads"
                );
            }
        }
    }
}
