//! Property-based tests for the solver crate.

use proptest::prelude::*;
use tracered_graph::gen::{random_connected, WeightProfile};
use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_graph::Graph;
use tracered_solver::pcg::{pcg, pcg_with_guess, PcgOptions};
use tracered_solver::precond::{
    CholPreconditioner, IcPreconditioner, IdentityPreconditioner, JacobiPreconditioner,
};
use tracered_solver::DirectSolver;

fn arb_system() -> impl Strategy<Value = (Graph, Vec<f64>)> {
    (5usize..40, 0usize..40, 0u64..500).prop_map(|(n, extra, seed)| {
        let g = random_connected(n, extra, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, seed);
        let b: Vec<f64> = (0..n).map(|i| (((i * 17 + seed as usize) % 13) as f64) - 6.0).collect();
        (g, b)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_preconditioners_reach_the_same_solution((g, b) in arb_system()) {
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.05; n]);
        let opts = PcgOptions { rel_tolerance: 1e-10, max_iterations: 10_000, ..Default::default() };
        let reference = DirectSolver::new(&a).unwrap().solve(&b);
        let x_id = pcg(&a, &b, &IdentityPreconditioner, &opts).x;
        let x_ja = pcg(&a, &b, &JacobiPreconditioner::from_matrix(&a).unwrap(), &opts).x;
        let x_ic = pcg(&a, &b, &IcPreconditioner::from_matrix(&a).unwrap(), &opts).x;
        let x_ch = pcg(&a, &b, &CholPreconditioner::from_matrix(&a).unwrap(), &opts).x;
        let scale = reference.iter().map(|v| v.abs()).fold(1.0, f64::max);
        for x in [&x_id, &x_ja, &x_ic, &x_ch] {
            for (xi, ri) in x.iter().zip(reference.iter()) {
                prop_assert!((xi - ri).abs() < 1e-6 * scale);
            }
        }
    }

    #[test]
    fn ic0_never_needs_more_iterations_than_plain_cg((g, b) in arb_system()) {
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.02; n]);
        let opts = PcgOptions { rel_tolerance: 1e-8, max_iterations: 10_000, ..Default::default() };
        let plain = pcg(&a, &b, &IdentityPreconditioner, &opts);
        let ic = pcg(&a, &b, &IcPreconditioner::from_matrix(&a).unwrap(), &opts);
        prop_assert!(ic.converged);
        // IC(0) on an M-matrix is a genuine improvement; allow tiny slack
        // for degenerate cases.
        prop_assert!(ic.iterations <= plain.iterations + 2,
            "IC(0) {} vs plain {}", ic.iterations, plain.iterations);
    }

    #[test]
    fn warm_start_from_exact_solution_is_free((g, b) in arb_system()) {
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.05; n]);
        let opts = PcgOptions { rel_tolerance: 1e-9, max_iterations: 10_000, ..Default::default() };
        let x = DirectSolver::new(&a).unwrap().solve(&b);
        let warm = pcg_with_guess(&a, &b, Some(&x), &IdentityPreconditioner, &opts);
        prop_assert!(warm.iterations <= 1);
        prop_assert!(warm.converged);
    }

    #[test]
    fn pcg_monotone_in_tolerance((g, b) in arb_system()) {
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.05; n]);
        let pre = JacobiPreconditioner::from_matrix(&a).unwrap();
        let loose = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-3));
        let tight = pcg(&a, &b, &pre, &PcgOptions::with_tolerance(1e-9));
        prop_assert!(loose.iterations <= tight.iterations);
        prop_assert!(loose.rel_residual <= 1e-3 + 1e-15);
        prop_assert!(tight.rel_residual <= 1e-9 + 1e-15);
    }

    #[test]
    fn direct_solver_residual_is_tiny((g, b) in arb_system()) {
        let n = g.num_nodes();
        let a = laplacian_with_shifts(&g, &vec![0.01; n]);
        let x = DirectSolver::new(&a).unwrap().solve(&b);
        let bnorm = b.iter().map(|v| v.abs()).fold(1.0, f64::max);
        prop_assert!(a.residual_inf_norm(&x, &b) < 1e-9 * bnorm);
    }
}
