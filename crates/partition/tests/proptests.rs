//! Property-based tests for recursive spectral bisection.
//!
//! Rectangular grids are used throughout: their Fiedler value λ₂ is
//! simple at every recursion level (square grids have a degenerate
//! Fiedler pair, making the cut direction depend on the random start),
//! so the partition is a permutation-invariant function of the seed —
//! different seeds may label the parts differently but must induce the
//! same set partition of the nodes.

use proptest::prelude::*;
use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_partition::recursive_bisection;

/// Grid shapes whose recursive halves stay rectangular (simple λ₂ at
/// every level for k ∈ {2, 4}), paired with a part count.
fn arb_case() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..4, 0usize..2).prop_map(|(shape, ki)| {
        let (rows, cols) = [(12, 10), (10, 8), (14, 6), (12, 5)][shape];
        (rows, cols, [2, 4][ki])
    })
}

/// Shapes for the seed-invariance property: every recursion level must
/// cut across an *even* axis, otherwise the middle row/column of an odd
/// axis has tied Fiedler values at the median and the tie-break genuinely
/// depends on the random start. (12,10) cuts 12→6×10 then 10→6×5;
/// (10,8) cuts 10→5×8 then 8→5×4; (16,6) and (12,5) cut their even axis.
fn arb_unambiguous_case() -> impl Strategy<Value = (usize, usize, usize)> {
    (0usize..6)
        .prop_map(|i| [(12, 10, 2), (12, 10, 4), (10, 8, 2), (10, 8, 4), (16, 6, 2), (12, 5, 4)][i])
}

/// Canonical form of a set partition: each node labelled by the smallest
/// node id sharing its part. Equal canonical forms ⇔ equal partitions up
/// to label permutation.
fn canonical(assignment: &[usize], parts: usize) -> Vec<usize> {
    let mut first = vec![usize::MAX; parts];
    for (v, &p) in assignment.iter().enumerate() {
        if first[p] == usize::MAX {
            first[p] = v;
        }
    }
    assignment.iter().map(|&p| first[p]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parts_are_nonempty_and_balanced((case, seed) in (arb_case(), 0u64..10_000)) {
        let (rows, cols, k) = case;
        let g = grid2d(rows, cols, WeightProfile::Unit, 1);
        let n = g.num_nodes();
        let p = recursive_bisection(&g, k, 8, seed).unwrap();
        prop_assert_eq!(p.parts, k);
        let sizes = p.part_sizes();
        prop_assert_eq!(sizes.iter().sum::<usize>(), n);
        let ideal = n as f64 / k as f64;
        for (part, &s) in sizes.iter().enumerate() {
            prop_assert!(s > 0, "part {} of {} is empty (seed {})", part, k, seed);
            prop_assert!(
                (s as f64 - ideal).abs() <= ideal * 0.15 + 1.0,
                "part {} has {} nodes, ideal {} (seed {})", part, s, ideal, seed
            );
        }
        prop_assert!(p.balance_ratio() < 1.2, "balance ratio {}", p.balance_ratio());
        prop_assert!(p.cut_weight > 0.0, "a k >= 2 partition of a grid must cut edges");
    }

    #[test]
    fn labels_are_a_permutation_invariant_function_of_the_seed(
        (case, seed_a, seed_b) in (arb_unambiguous_case(), 0u64..10_000, 0u64..10_000)
    ) {
        let (rows, cols, k) = case;
        let g = grid2d(rows, cols, WeightProfile::Unit, 1);
        // Same seed twice: bit-identical labels (full determinism).
        let p1 = recursive_bisection(&g, k, 16, seed_a).unwrap();
        let p2 = recursive_bisection(&g, k, 16, seed_a).unwrap();
        prop_assert_eq!(&p1.assignment, &p2.assignment);
        // Different seeds: the same set partition up to relabeling —
        // rectangular grids have a simple λ₂ at every recursion level,
        // so every random start converges to the same cut. 16 inverse
        // power steps are needed: at 8 steps a slow λ₂/λ₃ ratio can
        // leave enough λ₃ mixture to flip nodes near the cut.
        let p3 = recursive_bisection(&g, k, 16, seed_b).unwrap();
        let ca = canonical(&p1.assignment, p1.parts);
        let cb = canonical(&p3.assignment, p3.parts);
        let diff = ca.iter().zip(cb.iter()).filter(|(a, b)| a != b).count();
        prop_assert!(
            diff == 0,
            "seeds {} and {} disagree on {}/{} nodes ({}x{} grid, k={})",
            seed_a, seed_b, diff, g.num_nodes(), rows, cols, k
        );
        prop_assert!((p1.cut_weight - p3.cut_weight).abs() < 1e-9);
    }
}
