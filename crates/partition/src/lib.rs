//! Spectral graph partitioning (paper §4.3).
//!
//! The Fiedler vector — the eigenvector of the smallest nonzero Laplacian
//! eigenvalue — orders the nodes along the graph's "softest" direction;
//! splitting at the median yields the classic spectral bisection of
//! Spielman & Teng. Computing it requires repeated Laplacian solves
//! (inverse power iteration), which is exactly where the paper plugs in
//! its sparsifier-preconditioned PCG and measures speedups over the
//! direct solver at matching partition quality (`RelErr`).
//!
//! # Example
//!
//! ```
//! use tracered_graph::gen::{grid2d, WeightProfile};
//! use tracered_partition::{bisect_direct, relative_error};
//!
//! # fn main() -> Result<(), tracered_sparse::SparseError> {
//! // A rectangular grid: λ₂ is simple (a square grid's is degenerate),
//! // so every random start converges to the same partition.
//! let g = grid2d(12, 5, WeightProfile::Unit, 1);
//! let a = bisect_direct(&g, 8, 1)?;
//! let b = bisect_direct(&g, 8, 2)?;
//! // Different random starts, same partition (up to side swap).
//! assert!(relative_error(&a.side, &b.side) < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_graph::Graph;
use tracered_solver::eigen::fiedler_vector;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_solver::DirectSolver;
use tracered_sparse::{CscMatrix, SparseError};

/// A two-way partition of a graph's nodes.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Side assignment per node (`true` = upper-median Fiedler half).
    pub side: Vec<bool>,
    /// The Fiedler vector estimate used for the split.
    pub fiedler: Vec<f64>,
    /// Total weight of edges crossing the cut.
    pub cut_weight: f64,
    /// `|side_true| / n` — 0.5 for a perfectly balanced split.
    pub balance: f64,
    /// Total inner solver iterations (0 for direct solves; the paper's
    /// `N_e` aggregated over the 5 inverse-power steps for PCG).
    pub inner_iterations: usize,
}

/// Shift used to keep the Laplacian invertible while preserving its
/// eigenvectors: a uniform fraction of the mean weighted degree.
fn uniform_shift(g: &Graph) -> f64 {
    let n = g.num_nodes().max(1);
    1e-3 * 2.0 * g.total_weight() / n as f64
}

/// Builds the uniformly-shifted Laplacian used by both solver paths.
fn shifted_laplacian(g: &Graph) -> (CscMatrix, f64) {
    let s = uniform_shift(g);
    (laplacian_with_shifts(g, &vec![s; g.num_nodes()]), s)
}

/// Splits at the median of a Fiedler vector and computes quality metrics.
fn split(g: &Graph, fiedler: Vec<f64>, inner_iterations: usize) -> Bisection {
    let n = g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    order
        .sort_by(|&a, &b| fiedler[a].partial_cmp(&fiedler[b]).unwrap_or(std::cmp::Ordering::Equal));
    let mut side = vec![false; n];
    for &i in order.iter().skip(n / 2) {
        side[i] = true;
    }
    let cut_weight = g.edges().iter().filter(|e| side[e.u] != side[e.v]).map(|e| e.weight).sum();
    let balance = side.iter().filter(|&&s| s).count() as f64 / n.max(1) as f64;
    Bisection { side, fiedler, cut_weight, balance, inner_iterations }
}

/// Spectral bisection with a direct solver for the inverse-power steps
/// (the paper's "Direct" column in Table 3).
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
pub fn bisect_direct(g: &Graph, steps: usize, seed: u64) -> Result<Bisection, SparseError> {
    let (l, _) = shifted_laplacian(g);
    let solver = DirectSolver::new(&l)?;
    let res = fiedler_vector(g.num_nodes(), |b| (solver.solve(b), 0), steps, seed);
    Ok(split(g, res.vector, 0))
}

/// Spectral bisection with sparsifier-preconditioned PCG for the
/// inverse-power steps. `precond` must be built from a sparsifier of `g`
/// sharing the same uniform shift (see [`partition_shift`]).
///
/// # Errors
///
/// Currently infallible once the preconditioner exists, but returns
/// `Result` for interface symmetry with [`bisect_direct`].
pub fn bisect_pcg(
    g: &Graph,
    precond: &CholPreconditioner,
    steps: usize,
    seed: u64,
    tol: f64,
) -> Result<Bisection, SparseError> {
    let (l, _) = shifted_laplacian(g);
    let opts = PcgOptions::with_tolerance(tol);
    let res = fiedler_vector(
        g.num_nodes(),
        |b| {
            let s = pcg(&l, b, precond, &opts);
            (s.x, s.iterations)
        },
        steps,
        seed,
    );
    Ok(split(g, res.vector, res.total_inner_iterations))
}

/// The uniform diagonal shift [`bisect_direct`] / [`bisect_pcg`] apply —
/// build sparsifier preconditioners under the same shift so the
/// preconditioned operator stays spectrally matched.
pub fn partition_shift(g: &Graph) -> f64 {
    uniform_shift(g)
}

/// A k-way partition produced by recursive spectral bisection.
#[derive(Debug, Clone)]
pub struct KWayPartition {
    /// Part index (`0..k`) per node.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
    /// Total weight of edges crossing between different parts.
    pub cut_weight: f64,
}

impl KWayPartition {
    /// Sizes of the parts.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }
}

/// Recursive spectral bisection into `k` parts (`k ≥ 1`), the standard
/// extension of Fiedler bisection used by spectral partitioners. Each
/// level splits the induced subgraph at a size-proportional quantile of
/// its Fiedler vector; disconnected pieces fall back to balanced
/// component packing.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty.
pub fn recursive_bisection(
    g: &Graph,
    k: usize,
    steps: usize,
    seed: u64,
) -> Result<KWayPartition, SparseError> {
    assert!(k > 0, "at least one part is required");
    assert!(g.num_nodes() > 0, "graph must be non-empty");
    let mut assignment = vec![0usize; g.num_nodes()];
    let all: Vec<usize> = (0..g.num_nodes()).collect();
    let mut next_part = 0usize;
    partition_rec(g, &all, k, steps, seed, &mut assignment, &mut next_part)?;
    let cut_weight =
        g.edges().iter().filter(|e| assignment[e.u] != assignment[e.v]).map(|e| e.weight).sum();
    Ok(KWayPartition { assignment, parts: next_part, cut_weight })
}

/// Recursive helper: partitions the node subset `nodes` into `k` parts,
/// writing final part ids through `assignment` / `next_part`.
fn partition_rec(
    g: &Graph,
    nodes: &[usize],
    k: usize,
    steps: usize,
    seed: u64,
    assignment: &mut [usize],
    next_part: &mut usize,
) -> Result<(), SparseError> {
    if k == 1 || nodes.len() <= 1 {
        let id = *next_part;
        *next_part += 1;
        for &v in nodes {
            assignment[v] = id;
        }
        return Ok(());
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    // Target size of the left side, proportional to its part count.
    let left_target = nodes.len() * k_left / k;
    let (sub, map) = g.induced_subgraph(nodes);
    let (left, right): (Vec<usize>, Vec<usize>) = if sub.is_connected() && sub.num_edges() > 0 {
        // Split at the size-proportional quantile of the Fiedler vector.
        let shift = 1e-3 * 2.0 * sub.total_weight() / sub.num_nodes().max(1) as f64;
        let l = laplacian_with_shifts(&sub, &vec![shift; sub.num_nodes()]);
        let solver = DirectSolver::new(&l)?;
        let res = fiedler_vector(sub.num_nodes(), |b| (solver.solve(b), 0), steps, seed);
        let mut order: Vec<usize> = (0..sub.num_nodes()).collect();
        order.sort_by(|&a, &b| {
            res.vector[a].partial_cmp(&res.vector[b]).unwrap_or(std::cmp::Ordering::Equal)
        });
        let left: Vec<usize> = order[..left_target].iter().map(|&i| map[i]).collect();
        let right: Vec<usize> = order[left_target..].iter().map(|&i| map[i]).collect();
        (left, right)
    } else {
        // Disconnected (or edgeless) piece: pack components greedily into
        // the smaller side first.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for comp in sub.components() {
            let target =
                if left.len() <= left_target.saturating_sub(1) { &mut left } else { &mut right };
            target.extend(comp.iter().map(|&i| map[i]));
        }
        if left.is_empty() {
            left.push(right.pop().expect("at least two nodes in this branch"));
        }
        (left, right)
    };
    partition_rec(g, &left, k_left, steps, seed.wrapping_add(1), assignment, next_part)?;
    partition_rec(g, &right, k_right, steps, seed.wrapping_add(2), assignment, next_part)
}

/// Fraction of nodes assigned to different sides, minimised over the
/// global side swap (partitions are defined up to relabeling). This is
/// the paper's `RelErr`.
///
/// # Panics
///
/// Panics if the two assignments have different lengths.
pub fn relative_error(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "assignments must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let diff = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
    let n = a.len();
    (diff.min(n - diff)) as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracered_core::{sparsify, SparsifyConfig};
    use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
    use tracered_graph::laplacian::ShiftPolicy;

    #[test]
    fn grid_bisection_is_balanced_contiguous_cut() {
        // Rectangular grid: λ₂ is simple (a square grid's Fiedler pair is
        // degenerate, making the cut direction depend on the random
        // start), so every seed converges to the across-the-short-axis cut.
        let g = grid2d(10, 9, WeightProfile::Unit, 1);
        let b = bisect_direct(&g, 8, 3).unwrap();
        assert!((b.balance - 0.5).abs() < 0.02);
        // Optimal cut of a 10×9 grid is 9; spectral should be close.
        assert!(b.cut_weight <= 12.0, "cut weight {}", b.cut_weight);
    }

    #[test]
    fn two_cluster_graph_is_split_on_the_weak_edge() {
        let mut edges = Vec::new();
        for a in 0..8 {
            for b in (a + 1)..8 {
                edges.push((a, b, 1.0));
                edges.push((a + 8, b + 8, 1.0));
            }
        }
        edges.push((0, 8, 0.01));
        let g = Graph::from_edges(16, &edges).unwrap();
        let b = bisect_direct(&g, 10, 1).unwrap();
        assert!((b.cut_weight - 0.01).abs() < 1e-9, "cut {}", b.cut_weight);
        assert_eq!(b.side[0..8].iter().filter(|&&s| s).count() % 8, 0);
    }

    #[test]
    fn pcg_bisection_matches_direct() {
        let g = tri_mesh(12, 12, WeightProfile::Unit, 5);
        let direct = bisect_direct(&g, 5, 7).unwrap();
        let s = partition_shift(&g);
        let sp = sparsify(&g, &SparsifyConfig::default().shift(ShiftPolicy::Uniform(s))).unwrap();
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        let iter = bisect_pcg(&g, &pre, 5, 7, 1e-3).unwrap();
        let err = relative_error(&direct.side, &iter.side);
        assert!(err < 0.05, "RelErr {err} too large");
        assert!(iter.inner_iterations > 0);
    }

    #[test]
    fn relative_error_handles_side_swap() {
        let a = vec![true, true, false, false];
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        assert_eq!(relative_error(&a, &b), 0.0);
        let c = vec![true, false, false, false];
        assert_eq!(relative_error(&a, &c), 0.25);
        assert_eq!(relative_error(&[], &[]), 0.0);
    }

    #[test]
    fn four_way_partition_of_grid_is_balanced_quadrants() {
        // Rectangular at every recursion level so each Fiedler problem has
        // a simple λ₂ (12×10 splits into 6×10 halves, then 6×5 quarters).
        let g = grid2d(12, 10, WeightProfile::Unit, 4);
        let p = recursive_bisection(&g, 4, 8, 1).unwrap();
        assert_eq!(p.parts, 4);
        assert_eq!(p.part_sizes(), vec![30; 4]);
        // Quadrant cut of a 12×10 grid costs 10 + 6 + 6 = 22; allow slack.
        assert!(p.cut_weight <= 32.0, "cut weight {}", p.cut_weight);
        // Every part must be contiguous-ish: its induced subgraph connected.
        for part in 0..4 {
            let nodes: Vec<usize> = (0..120).filter(|&v| p.assignment[v] == part).collect();
            let (sub, _) = g.induced_subgraph(&nodes);
            assert!(sub.is_connected(), "part {part} is disconnected");
        }
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_part() {
        let g = grid2d(4, 4, WeightProfile::Unit, 1);
        let p = recursive_bisection(&g, 1, 5, 0).unwrap();
        assert_eq!(p.parts, 1);
        assert_eq!(p.cut_weight, 0.0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn odd_k_produces_proportional_sizes() {
        let g = grid2d(9, 10, WeightProfile::Unit, 2);
        let p = recursive_bisection(&g, 3, 6, 3).unwrap();
        assert_eq!(p.parts, 3);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        for &s in &sizes {
            assert!((25..=35).contains(&s), "part sizes {sizes:?} unbalanced");
        }
    }

    #[test]
    fn k_exceeding_nodes_degenerates_gracefully() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let p = recursive_bisection(&g, 8, 3, 0).unwrap();
        assert!(p.parts <= 8);
        assert_eq!(p.assignment.len(), 3);
    }

    #[test]
    fn balance_is_exact_for_even_node_counts() {
        let g = grid2d(6, 6, WeightProfile::Unit, 2);
        let b = bisect_direct(&g, 6, 1).unwrap();
        assert_eq!(b.side.iter().filter(|&&s| s).count(), 18);
    }
}
