//! Spectral graph partitioning (paper §4.3).
//!
//! The Fiedler vector — the eigenvector of the smallest nonzero Laplacian
//! eigenvalue — orders the nodes along the graph's "softest" direction;
//! splitting at the median yields the classic spectral bisection of
//! Spielman & Teng. Computing it requires repeated Laplacian solves
//! (inverse power iteration), which is exactly where the paper plugs in
//! its sparsifier-preconditioned PCG and measures speedups over the
//! direct solver at matching partition quality (`RelErr`).
//!
//! # Example
//!
//! ```
//! use tracered_graph::gen::{grid2d, WeightProfile};
//! use tracered_partition::{bisect_direct, relative_error};
//!
//! # fn main() -> Result<(), tracered_sparse::SparseError> {
//! // A rectangular grid: λ₂ is simple (a square grid's is degenerate),
//! // so every random start converges to the same partition.
//! let g = grid2d(12, 5, WeightProfile::Unit, 1);
//! let a = bisect_direct(&g, 8, 1)?;
//! let b = bisect_direct(&g, 8, 2)?;
//! // Different random starts, same partition (up to side swap).
//! assert!(relative_error(&a.side, &b.side) < 0.1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used)]

use tracered_graph::laplacian::laplacian_with_shifts;
use tracered_graph::{Edge, Graph};
use tracered_solver::eigen::fiedler_vector;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_solver::DirectSolver;
use tracered_sparse::{CscMatrix, SparseError};

/// A two-way partition of a graph's nodes.
#[derive(Debug, Clone)]
pub struct Bisection {
    /// Side assignment per node (`true` = upper-median Fiedler half).
    pub side: Vec<bool>,
    /// The Fiedler vector estimate used for the split.
    pub fiedler: Vec<f64>,
    /// Total weight of edges crossing the cut.
    pub cut_weight: f64,
    /// `|side_true| / n` — 0.5 for a perfectly balanced split.
    pub balance: f64,
    /// Total inner solver iterations (0 for direct solves; the paper's
    /// `N_e` aggregated over the 5 inverse-power steps for PCG).
    pub inner_iterations: usize,
}

/// Shift used to keep the Laplacian invertible while preserving its
/// eigenvectors: a uniform fraction of the mean weighted degree.
fn uniform_shift(g: &Graph) -> f64 {
    let n = g.num_nodes().max(1);
    1e-3 * 2.0 * g.total_weight() / n as f64
}

/// Builds the uniformly-shifted Laplacian used by both solver paths.
fn shifted_laplacian(g: &Graph) -> (CscMatrix, f64) {
    let s = uniform_shift(g);
    (laplacian_with_shifts(g, &vec![s; g.num_nodes()]), s)
}

/// Splits at the median of a Fiedler vector and computes quality metrics.
fn split(g: &Graph, fiedler: Vec<f64>, inner_iterations: usize) -> Bisection {
    let n = g.num_nodes();
    let mut order: Vec<usize> = (0..n).collect();
    // total_cmp: a NaN entry (solver breakdown upstream) must not feed the
    // sort an inconsistent comparator — it sorts last instead.
    order.sort_by(|&a, &b| fiedler[a].total_cmp(&fiedler[b]));
    let mut side = vec![false; n];
    for &i in order.iter().skip(n / 2) {
        side[i] = true;
    }
    let cut_weight = g.edges().iter().filter(|e| side[e.u] != side[e.v]).map(|e| e.weight).sum();
    let balance = side.iter().filter(|&&s| s).count() as f64 / n.max(1) as f64;
    Bisection { side, fiedler, cut_weight, balance, inner_iterations }
}

/// Spectral bisection with a direct solver for the inverse-power steps
/// (the paper's "Direct" column in Table 3).
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
pub fn bisect_direct(g: &Graph, steps: usize, seed: u64) -> Result<Bisection, SparseError> {
    bisect_direct_threads(g, steps, seed, 1)
}

/// [`bisect_direct`] with the Laplacian factorization running on up to
/// `factor_threads` pool workers. The parallel factor is bit-identical
/// to the serial one, so the bisection is unchanged at every count.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
pub fn bisect_direct_threads(
    g: &Graph,
    steps: usize,
    seed: u64,
    factor_threads: usize,
) -> Result<Bisection, SparseError> {
    let (l, _) = shifted_laplacian(g);
    let solver = DirectSolver::new_threads(&l, factor_threads)?;
    let res = fiedler_vector(g.num_nodes(), |b| (solver.solve(b), 0), steps, seed);
    Ok(split(g, res.vector, 0))
}

/// Spectral bisection with sparsifier-preconditioned PCG for the
/// inverse-power steps. `precond` must be built from a sparsifier of `g`
/// sharing the same uniform shift (see [`partition_shift`]).
///
/// # Errors
///
/// Currently infallible once the preconditioner exists, but returns
/// `Result` for interface symmetry with [`bisect_direct`].
pub fn bisect_pcg(
    g: &Graph,
    precond: &CholPreconditioner,
    steps: usize,
    seed: u64,
    tol: f64,
) -> Result<Bisection, SparseError> {
    let (l, _) = shifted_laplacian(g);
    let opts = PcgOptions::with_tolerance(tol);
    let res = fiedler_vector(
        g.num_nodes(),
        |b| {
            let s = pcg(&l, b, precond, &opts);
            (s.x, s.iterations)
        },
        steps,
        seed,
    );
    Ok(split(g, res.vector, res.total_inner_iterations))
}

/// The uniform diagonal shift [`bisect_direct`] / [`bisect_pcg`] apply —
/// build sparsifier preconditioners under the same shift so the
/// preconditioned operator stays spectrally matched.
pub fn partition_shift(g: &Graph) -> f64 {
    uniform_shift(g)
}

/// A k-way partition produced by recursive spectral bisection.
#[derive(Debug, Clone)]
pub struct KWayPartition {
    /// Part index (`0..k`) per node.
    pub assignment: Vec<usize>,
    /// Number of parts.
    pub parts: usize,
    /// Total weight of edges crossing between different parts.
    pub cut_weight: f64,
}

/// Quality metrics of a partition's edge cut (see
/// [`KWayPartition::edge_cut`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeCut {
    /// Number of edges whose endpoints lie in different parts.
    pub count: usize,
    /// Total weight of those edges.
    pub weight: f64,
    /// `weight / total graph weight` (0 when the graph has no edges).
    pub fraction: f64,
}

/// One part's extracted subgraph with its local↔global index maps.
#[derive(Debug, Clone)]
pub struct PartitionPiece {
    /// Which part (`0..k`) this piece is.
    pub part: usize,
    /// The induced subgraph, nodes relabeled to `0..nodes.len()`.
    pub graph: Graph,
    /// `nodes[local] = global` node-id map.
    pub nodes: Vec<usize>,
    /// `edges[local] = global` edge-id map (strictly increasing).
    pub edges: Vec<usize>,
}

/// A full k-way decomposition: one [`PartitionPiece`] per part plus the
/// separator structure between them.
#[derive(Debug, Clone)]
pub struct PartitionSubgraphs {
    /// Extracted per-part subgraphs, in part order.
    pub pieces: Vec<PartitionPiece>,
    /// Global ids of the boundary edges (endpoints in different parts),
    /// in increasing id order.
    pub boundary_edges: Vec<usize>,
    /// Global ids of the separator nodes (incident to at least one
    /// boundary edge), in increasing id order.
    pub separator_nodes: Vec<usize>,
}

impl KWayPartition {
    /// Sizes of the parts.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.parts];
        for &p in &self.assignment {
            sizes[p] += 1;
        }
        sizes
    }

    /// Node ids of each part, in increasing id order per part.
    pub fn part_nodes(&self) -> Vec<Vec<usize>> {
        let mut nodes = vec![Vec::new(); self.parts];
        for (v, &p) in self.assignment.iter().enumerate() {
            nodes[p].push(v);
        }
        nodes
    }

    /// Cut metrics of this partition measured on `g`: how many edges
    /// (and how much conductance) the decomposition severs.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different node count than the partition.
    pub fn edge_cut(&self, g: &Graph) -> EdgeCut {
        assert_eq!(
            g.num_nodes(),
            self.assignment.len(),
            "partition and graph node counts must agree"
        );
        let mut count = 0usize;
        let mut weight = 0.0f64;
        for e in g.edges() {
            if self.assignment[e.u] != self.assignment[e.v] {
                count += 1;
                weight += e.weight;
            }
        }
        let total = g.total_weight();
        EdgeCut { count, weight, fraction: if total > 0.0 { weight / total } else { 0.0 } }
    }

    /// Load-balance ratio: largest part size over the ideal `n / k`
    /// (1.0 = perfectly balanced, 2.0 = one part twice the ideal size).
    ///
    /// Returns 1.0 for empty partitions.
    pub fn balance_ratio(&self) -> f64 {
        let n = self.assignment.len();
        if n == 0 || self.parts == 0 {
            return 1.0;
        }
        let max = self.part_sizes().into_iter().max().unwrap_or(0);
        max as f64 * self.parts as f64 / n as f64
    }

    /// Extracts every part's induced subgraph with local↔global node and
    /// edge maps, plus the boundary edges and separator nodes between
    /// parts — the decomposition the partition-parallel sparsifier
    /// densifies concurrently.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different node count than the partition.
    pub fn extract_subgraphs(&self, g: &Graph) -> PartitionSubgraphs {
        assert_eq!(
            g.num_nodes(),
            self.assignment.len(),
            "partition and graph node counts must agree"
        );
        // One pass over the nodes and one over the edges (parts have
        // disjoint node sets, so a single local-id array serves them all).
        let part_nodes = self.part_nodes();
        let mut local_id = vec![0usize; g.num_nodes()];
        for nodes in &part_nodes {
            for (li, &v) in nodes.iter().enumerate() {
                local_id[v] = li;
            }
        }
        let mut part_edges: Vec<Vec<Edge>> = vec![Vec::new(); self.parts];
        let mut part_edge_maps: Vec<Vec<usize>> = vec![Vec::new(); self.parts];
        let mut boundary_edges = Vec::new();
        let mut on_separator = vec![false; g.num_nodes()];
        for (id, e) in g.edges().iter().enumerate() {
            let (pu, pv) = (self.assignment[e.u], self.assignment[e.v]);
            if pu == pv {
                part_edges[pu].push(Edge::new(local_id[e.u], local_id[e.v], e.weight));
                part_edge_maps[pu].push(id);
            } else {
                boundary_edges.push(id);
                on_separator[e.u] = true;
                on_separator[e.v] = true;
            }
        }
        let pieces = part_nodes
            .into_iter()
            .zip(part_edges.into_iter().zip(part_edge_maps))
            .enumerate()
            .map(|(part, (nodes, (edges, edge_map)))| {
                let graph = Graph::from_edge_list(nodes.len(), edges)
                    .expect("relabeled edges of a valid graph are valid");
                PartitionPiece { part, graph, nodes, edges: edge_map }
            })
            .collect();
        let separator_nodes = (0..g.num_nodes()).filter(|&v| on_separator[v]).collect();
        PartitionSubgraphs { pieces, boundary_edges, separator_nodes }
    }
}

/// Recursive spectral bisection into `k` parts (`k ≥ 1`), the standard
/// extension of Fiedler bisection used by spectral partitioners. Each
/// level splits the induced subgraph at a size-proportional quantile of
/// its Fiedler vector; disconnected pieces fall back to balanced
/// component packing.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty.
pub fn recursive_bisection(
    g: &Graph,
    k: usize,
    steps: usize,
    seed: u64,
) -> Result<KWayPartition, SparseError> {
    recursive_bisection_threads(g, k, steps, seed, 1)
}

/// [`recursive_bisection`] with the per-level `DirectSolver`
/// factorizations running on up to `factor_threads` pool workers (see
/// [`DirectSolver::new_threads`]).
///
/// The partitioner's own full-size factorization dominates setup time on
/// one core, so this is where the parallel numeric Cholesky pays off
/// first. The parallel factor is bit-identical to the serial one, so the
/// resulting partition is **the same** at every thread count.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] for degenerate inputs.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is empty.
pub fn recursive_bisection_threads(
    g: &Graph,
    k: usize,
    steps: usize,
    seed: u64,
    factor_threads: usize,
) -> Result<KWayPartition, SparseError> {
    assert!(k > 0, "at least one part is required");
    assert!(g.num_nodes() > 0, "graph must be non-empty");
    let mut assignment = vec![0usize; g.num_nodes()];
    let all: Vec<usize> = (0..g.num_nodes()).collect();
    let mut next_part = 0usize;
    partition_rec(g, &all, k, steps, seed, factor_threads, &mut assignment, &mut next_part)?;
    let cut_weight =
        g.edges().iter().filter(|e| assignment[e.u] != assignment[e.v]).map(|e| e.weight).sum();
    Ok(KWayPartition { assignment, parts: next_part, cut_weight })
}

/// Recursive helper: partitions the node subset `nodes` into `k` parts,
/// writing final part ids through `assignment` / `next_part`.
#[allow(clippy::too_many_arguments)]
fn partition_rec(
    g: &Graph,
    nodes: &[usize],
    k: usize,
    steps: usize,
    seed: u64,
    factor_threads: usize,
    assignment: &mut [usize],
    next_part: &mut usize,
) -> Result<(), SparseError> {
    if k == 1 || nodes.len() <= 1 {
        let id = *next_part;
        *next_part += 1;
        for &v in nodes {
            assignment[v] = id;
        }
        return Ok(());
    }
    let k_left = k / 2;
    let k_right = k - k_left;
    // Target size of the left side, proportional to its part count.
    let left_target = nodes.len() * k_left / k;
    let (sub, map) = g.induced_subgraph(nodes);
    let (left, right): (Vec<usize>, Vec<usize>) = if sub.is_connected() && sub.num_edges() > 0 {
        // Split at the size-proportional quantile of the Fiedler vector.
        let shift = 1e-3 * 2.0 * sub.total_weight() / sub.num_nodes().max(1) as f64;
        let l = laplacian_with_shifts(&sub, &vec![shift; sub.num_nodes()]);
        let solver = DirectSolver::new_threads(&l, factor_threads)?;
        let res = fiedler_vector(sub.num_nodes(), |b| (solver.solve(b), 0), steps, seed);
        let mut order: Vec<usize> = (0..sub.num_nodes()).collect();
        order.sort_by(|&a, &b| res.vector[a].total_cmp(&res.vector[b]));
        let left: Vec<usize> = order[..left_target].iter().map(|&i| map[i]).collect();
        let right: Vec<usize> = order[left_target..].iter().map(|&i| map[i]).collect();
        (left, right)
    } else {
        // Disconnected (or edgeless) piece: pack components greedily into
        // the smaller side first.
        let mut left = Vec::new();
        let mut right = Vec::new();
        for comp in sub.components() {
            let target =
                if left.len() <= left_target.saturating_sub(1) { &mut left } else { &mut right };
            target.extend(comp.iter().map(|&i| map[i]));
        }
        if left.is_empty() {
            left.push(right.pop().expect("at least two nodes in this branch"));
        }
        (left, right)
    };
    partition_rec(
        g,
        &left,
        k_left,
        steps,
        seed.wrapping_add(1),
        factor_threads,
        assignment,
        next_part,
    )?;
    partition_rec(
        g,
        &right,
        k_right,
        steps,
        seed.wrapping_add(2),
        factor_threads,
        assignment,
        next_part,
    )
}

/// Fraction of nodes assigned to different sides, minimised over the
/// global side swap (partitions are defined up to relabeling). This is
/// the paper's `RelErr`.
///
/// # Panics
///
/// Panics if the two assignments have different lengths.
pub fn relative_error(a: &[bool], b: &[bool]) -> f64 {
    assert_eq!(a.len(), b.len(), "assignments must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let diff = a.iter().zip(b.iter()).filter(|(x, y)| x != y).count();
    let n = a.len();
    (diff.min(n - diff)) as f64 / n as f64
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use tracered_core::{sparsify, SparsifyConfig};
    use tracered_graph::gen::{grid2d, tri_mesh, WeightProfile};
    use tracered_graph::laplacian::ShiftPolicy;

    #[test]
    fn grid_bisection_is_balanced_contiguous_cut() {
        // Rectangular grid: λ₂ is simple (a square grid's Fiedler pair is
        // degenerate, making the cut direction depend on the random
        // start), so every seed converges to the across-the-short-axis cut.
        let g = grid2d(10, 9, WeightProfile::Unit, 1);
        let b = bisect_direct(&g, 8, 3).unwrap();
        assert!((b.balance - 0.5).abs() < 0.02);
        // Optimal cut of a 10×9 grid is 9; spectral should be close.
        assert!(b.cut_weight <= 12.0, "cut weight {}", b.cut_weight);
    }

    #[test]
    fn two_cluster_graph_is_split_on_the_weak_edge() {
        let mut edges = Vec::new();
        for a in 0..8 {
            for b in (a + 1)..8 {
                edges.push((a, b, 1.0));
                edges.push((a + 8, b + 8, 1.0));
            }
        }
        edges.push((0, 8, 0.01));
        let g = Graph::from_edges(16, &edges).unwrap();
        let b = bisect_direct(&g, 10, 1).unwrap();
        assert!((b.cut_weight - 0.01).abs() < 1e-9, "cut {}", b.cut_weight);
        assert_eq!(b.side[0..8].iter().filter(|&&s| s).count() % 8, 0);
    }

    #[test]
    fn pcg_bisection_matches_direct() {
        let g = tri_mesh(12, 12, WeightProfile::Unit, 5);
        let direct = bisect_direct(&g, 5, 7).unwrap();
        let s = partition_shift(&g);
        let sp = sparsify(&g, &SparsifyConfig::default().shift(ShiftPolicy::Uniform(s))).unwrap();
        let pre = CholPreconditioner::from_matrix(&sp.laplacian(&g)).unwrap();
        let iter = bisect_pcg(&g, &pre, 5, 7, 1e-3).unwrap();
        let err = relative_error(&direct.side, &iter.side);
        assert!(err < 0.05, "RelErr {err} too large");
        assert!(iter.inner_iterations > 0);
    }

    #[test]
    fn relative_error_handles_side_swap() {
        let a = vec![true, true, false, false];
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        assert_eq!(relative_error(&a, &b), 0.0);
        let c = vec![true, false, false, false];
        assert_eq!(relative_error(&a, &c), 0.25);
        assert_eq!(relative_error(&[], &[]), 0.0);
    }

    #[test]
    fn four_way_partition_of_grid_is_balanced_quadrants() {
        // Rectangular at every recursion level so each Fiedler problem has
        // a simple λ₂ (12×10 splits into 6×10 halves, then 6×5 quarters).
        let g = grid2d(12, 10, WeightProfile::Unit, 4);
        let p = recursive_bisection(&g, 4, 8, 1).unwrap();
        assert_eq!(p.parts, 4);
        assert_eq!(p.part_sizes(), vec![30; 4]);
        // Quadrant cut of a 12×10 grid costs 10 + 6 + 6 = 22; allow slack.
        assert!(p.cut_weight <= 32.0, "cut weight {}", p.cut_weight);
        // Every part must be contiguous-ish: its induced subgraph connected.
        for part in 0..4 {
            let nodes: Vec<usize> = (0..120).filter(|&v| p.assignment[v] == part).collect();
            let (sub, _) = g.induced_subgraph(&nodes);
            assert!(sub.is_connected(), "part {part} is disconnected");
        }
    }

    #[test]
    fn k_equals_one_puts_everything_in_one_part() {
        let g = grid2d(4, 4, WeightProfile::Unit, 1);
        let p = recursive_bisection(&g, 1, 5, 0).unwrap();
        assert_eq!(p.parts, 1);
        assert_eq!(p.cut_weight, 0.0);
        assert!(p.assignment.iter().all(|&a| a == 0));
    }

    #[test]
    fn odd_k_produces_proportional_sizes() {
        let g = grid2d(9, 10, WeightProfile::Unit, 2);
        let p = recursive_bisection(&g, 3, 6, 3).unwrap();
        assert_eq!(p.parts, 3);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 90);
        for &s in &sizes {
            assert!((25..=35).contains(&s), "part sizes {sizes:?} unbalanced");
        }
    }

    #[test]
    fn k_exceeding_nodes_degenerates_gracefully() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        let p = recursive_bisection(&g, 8, 3, 0).unwrap();
        assert!(p.parts <= 8);
        assert_eq!(p.assignment.len(), 3);
    }

    #[test]
    fn balance_is_exact_for_even_node_counts() {
        let g = grid2d(6, 6, WeightProfile::Unit, 2);
        let b = bisect_direct(&g, 6, 1).unwrap();
        assert_eq!(b.side.iter().filter(|&&s| s).count(), 18);
    }

    #[test]
    fn edge_cut_counts_and_weighs_crossing_edges() {
        // Path 0-1-2-3 with parts {0,1} and {2,3}: only edge (1,2) crosses.
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.5), (2, 3, 3.0)]).unwrap();
        let p = KWayPartition { assignment: vec![0, 0, 1, 1], parts: 2, cut_weight: 2.5 };
        let cut = p.edge_cut(&g);
        assert_eq!(cut.count, 1);
        assert!((cut.weight - 2.5).abs() < 1e-12);
        assert!((cut.fraction - 2.5 / 6.5).abs() < 1e-12);
        // The construction-time cut_weight field agrees with the metric.
        let rb = recursive_bisection(&g, 2, 5, 0).unwrap();
        assert!((rb.edge_cut(&g).weight - rb.cut_weight).abs() < 1e-12);
    }

    #[test]
    fn edge_cut_of_single_part_is_empty() {
        let g = grid2d(4, 4, WeightProfile::Unit, 1);
        let p = recursive_bisection(&g, 1, 5, 0).unwrap();
        let cut = p.edge_cut(&g);
        assert_eq!(cut.count, 0);
        assert_eq!(cut.weight, 0.0);
        assert_eq!(cut.fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "node counts must agree")]
    fn edge_cut_rejects_mismatched_graph() {
        let g = grid2d(4, 4, WeightProfile::Unit, 1);
        let p = KWayPartition { assignment: vec![0, 1], parts: 2, cut_weight: 0.0 };
        p.edge_cut(&g);
    }

    #[test]
    fn balance_ratio_measures_worst_part() {
        let balanced = KWayPartition { assignment: vec![0, 0, 1, 1], parts: 2, cut_weight: 0.0 };
        assert!((balanced.balance_ratio() - 1.0).abs() < 1e-12);
        let skewed = KWayPartition { assignment: vec![0, 0, 0, 1], parts: 2, cut_weight: 0.0 };
        assert!((skewed.balance_ratio() - 1.5).abs() < 1e-12);
        let quad = recursive_bisection(&grid2d(12, 10, WeightProfile::Unit, 4), 4, 8, 1).unwrap();
        assert!((quad.balance_ratio() - 1.0).abs() < 1e-12, "quadrants are exactly balanced");
    }

    #[test]
    fn extract_subgraphs_partitions_nodes_and_edges() {
        let g = grid2d(10, 8, WeightProfile::LogUniform { lo: 0.5, hi: 2.0 }, 6);
        let p = recursive_bisection(&g, 4, 8, 2).unwrap();
        let subs = p.extract_subgraphs(&g);
        assert_eq!(subs.pieces.len(), p.parts);
        // Node maps tile the node set exactly.
        let mut seen_nodes = vec![false; g.num_nodes()];
        for piece in &subs.pieces {
            assert_eq!(piece.graph.num_nodes(), piece.nodes.len());
            assert_eq!(piece.graph.num_edges(), piece.edges.len());
            for &v in &piece.nodes {
                assert_eq!(p.assignment[v], piece.part);
                assert!(!seen_nodes[v], "node {v} appears in two pieces");
                seen_nodes[v] = true;
            }
            // Edge maps translate endpoints and weights faithfully.
            for (local, &global) in piece.edges.iter().enumerate() {
                let le = piece.graph.edge(local);
                let ge = g.edge(global);
                assert_eq!(ge.weight, le.weight);
                assert_eq!((piece.nodes[le.u], piece.nodes[le.v]), (ge.u, ge.v));
            }
        }
        assert!(seen_nodes.iter().all(|&s| s));
        // Internal edges + boundary edges tile the edge set exactly.
        let internal: usize = subs.pieces.iter().map(|p| p.edges.len()).sum();
        assert_eq!(internal + subs.boundary_edges.len(), g.num_edges());
        assert_eq!(subs.boundary_edges.len(), p.edge_cut(&g).count);
        for &id in &subs.boundary_edges {
            let e = g.edge(id);
            assert_ne!(p.assignment[e.u], p.assignment[e.v]);
            assert!(subs.separator_nodes.binary_search(&e.u).is_ok());
            assert!(subs.separator_nodes.binary_search(&e.v).is_ok());
        }
        // Every separator node is incident to some boundary edge.
        for &v in &subs.separator_nodes {
            assert!(subs.boundary_edges.iter().any(|&id| {
                let e = g.edge(id);
                e.u == v || e.v == v
            }));
        }
    }

    #[test]
    fn part_nodes_matches_assignment() {
        let g = grid2d(9, 7, WeightProfile::Unit, 3);
        let p = recursive_bisection(&g, 3, 7, 5).unwrap();
        let nodes = p.part_nodes();
        assert_eq!(nodes.len(), p.parts);
        let sizes: Vec<usize> = nodes.iter().map(Vec::len).collect();
        assert_eq!(sizes, p.part_sizes());
        for (part, list) in nodes.iter().enumerate() {
            assert!(list.windows(2).all(|w| w[0] < w[1]), "part {part} nodes unsorted");
            assert!(list.iter().all(|&v| p.assignment[v] == part));
        }
    }
}
