//! Malformed Matrix Market corpus: every broken input must produce a
//! typed [`GraphError`] naming the offending line — never a panic and
//! never a silently wrong graph.

use tracered_graph::mmio::read_graph;
use tracered_graph::GraphError;

/// Runs the parser on an in-memory file and returns the error.
fn parse_err(content: &str) -> GraphError {
    read_graph(content.as_bytes()).expect_err("malformed input must be rejected")
}

fn assert_parse_error(content: &str, expect_line: usize, expect_substr: &str) {
    match parse_err(content) {
        GraphError::ParseError { line, what } => {
            assert_eq!(line, expect_line, "wrong line for {what:?}");
            assert!(
                what.contains(expect_substr),
                "error {what:?} should mention {expect_substr:?}"
            );
        }
        other => panic!("expected ParseError, got {other:?}"),
    }
}

#[test]
fn empty_file() {
    assert_parse_error("", 1, "empty file");
}

#[test]
fn truncated_header() {
    assert_parse_error("%%Matrix", 1, "missing %%MatrixMarket header");
    assert_parse_error("garbage first line\n1 1 0\n", 1, "missing %%MatrixMarket header");
}

#[test]
fn header_without_body() {
    assert_parse_error("%%MatrixMarket matrix coordinate real symmetric\n", 2, "missing size line");
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n% only comments\n%\n",
        4,
        "missing size line",
    );
}

#[test]
fn unsupported_formats() {
    assert_parse_error("%%MatrixMarket matrix array real general\n", 1, "coordinate");
    assert_parse_error(
        "%%MatrixMarket matrix coordinate complex hermitian\n",
        1,
        "complex matrices are not supported",
    );
}

#[test]
fn malformed_size_line() {
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n3 3\n",
        2,
        "size line must have 3 fields",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n3 x 4\n",
        2,
        "invalid integer 'x'",
    );
}

#[test]
fn nan_and_inf_values_are_rejected() {
    // `"nan".parse::<f64>()` succeeds, so the finite check must catch it.
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 nan\n",
        3,
        "non-finite value",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n2 1 inf\n",
        3,
        "non-finite value",
    );
}

#[test]
fn out_of_bounds_indices() {
    // One-based indexing: 0 is out of bounds, as is anything > n.
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n0 1 1.0\n",
        3,
        "out of bounds",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 3 1.0\n",
        3,
        "out of bounds",
    );
}

#[test]
fn unparsable_indices_and_values() {
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\nx 1 1.0\n",
        3,
        "invalid row index",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 y 1.0\n",
        3,
        "invalid column index",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2 abc\n",
        3,
        "invalid value",
    );
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n1 2\n",
        3,
        "entry line must have 3 fields",
    );
}

#[test]
fn entry_count_mismatch() {
    // Truncated body: fewer entries than the size line promised.
    assert_parse_error(
        "%%MatrixMarket matrix coordinate real symmetric\n3 3 4\n1 2 1.0\n2 3 1.0\n",
        2,
        "expected 4 entries, found 2",
    );
}

#[test]
fn negative_off_diagonals_are_valid_sdd_input() {
    // SDD convention: off-diagonal a_ij = -w_ij. The magnitude becomes
    // the edge weight — this is the normal encoding, not an error.
    let mm = read_graph(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 3\n1 1 1.5\n2 2 1.0\n2 1 -1.0\n"
            .as_bytes(),
    )
    .expect("valid SDD matrix");
    assert_eq!(mm.graph.num_edges(), 1);
    assert_eq!(mm.graph.edge(0).weight, 1.0);
    // Diagonal slack = 1.5 − 1.0 on node 0.
    assert!((mm.diag_slack[0] - 0.5).abs() < 1e-12);
}

#[test]
fn disconnected_or_empty_graphs_fail_downstream_with_typed_errors() {
    // A parseable file whose graph is edgeless: the parser accepts it,
    // and the Laplacian path must reject it with a typed error rather
    // than panic when a pipeline consumes it.
    let mm = read_graph(
        "%%MatrixMarket matrix coordinate real symmetric\n2 2 2\n1 1 1.0\n2 2 1.0\n".as_bytes(),
    )
    .expect("diagonal-only matrix parses");
    assert_eq!(mm.graph.num_edges(), 0);
    assert!(!mm.graph.is_connected());
}
