//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use tracered_graph::gen::{random_connected, WeightProfile};
use tracered_graph::laplacian::{laplacian, ShiftPolicy};
use tracered_graph::lca::{offline_lca, tree_resistances};
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::{Graph, RootedTree};

/// Random connected graph sized for property tests.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (3usize..20, 0usize..25, 0u64..1000).prop_map(|(n, extra, seed)| {
        random_connected(n, extra, WeightProfile::LogUniform { lo: 0.1, hi: 10.0 }, seed)
    })
}

/// Exact effective resistance across (p, q) in a graph, by grounding node 0
/// and solving densely.
fn dense_resistance(g: &Graph, p: usize, q: usize) -> f64 {
    let n = g.num_nodes();
    let l = laplacian(g, ShiftPolicy::None).unwrap().to_dense();
    // Reduced system without row/col 0.
    let mut red = tracered_sparse::DenseMatrix::zeros(n - 1, n - 1);
    for r in 1..n {
        for c in 1..n {
            red[(r - 1, c - 1)] = l[(r, c)];
        }
    }
    let mut b = vec![0.0; n - 1];
    if p != 0 {
        b[p - 1] += 1.0;
    }
    if q != 0 {
        b[q - 1] -= 1.0;
    }
    let x = red.cholesky().unwrap().solve(&b);
    let xp = if p == 0 { 0.0 } else { x[p - 1] };
    let xq = if q == 0 { 0.0 } else { x[q - 1] };
    xp - xq
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spanning_tree_partitions_edges(g in arb_graph()) {
        for kind in [TreeKind::MaxWeight, TreeKind::MaxEffectiveWeight] {
            let st = spanning_tree(&g, kind).unwrap();
            prop_assert_eq!(st.tree_edges.len(), g.num_nodes() - 1);
            prop_assert_eq!(
                st.tree_edges.len() + st.off_tree_edges.len(),
                g.num_edges()
            );
            let t = g.edge_subgraph(&st.tree_edges);
            prop_assert!(t.is_connected());
        }
    }

    #[test]
    fn offline_lca_matches_climbing(g in arb_graph()) {
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let tree = RootedTree::build(&g, &st.tree_edges, 0).unwrap();
        let n = g.num_nodes();
        let queries: Vec<(usize, usize)> =
            (0..n).flat_map(|a| (0..n).map(move |b| (a, b))).collect();
        let fast = offline_lca(&tree, &queries);
        for (k, &(a, b)) in queries.iter().enumerate() {
            prop_assert_eq!(fast[k], tree.lca_by_climbing(a, b));
        }
    }

    #[test]
    fn tree_resistance_equals_electrical_resistance_on_trees(g in arb_graph()) {
        // Restrict the graph to its spanning tree; on a tree, the path
        // resistance *is* the effective resistance of the network.
        let st = spanning_tree(&g, TreeKind::MaxWeight).unwrap();
        let tree_graph = g.edge_subgraph(&st.tree_edges);
        let ids: Vec<usize> = (0..tree_graph.num_edges()).collect();
        let tree = RootedTree::build(&tree_graph, &ids, 0).unwrap();
        let n = g.num_nodes();
        let pairs: Vec<(usize, usize)> = (1..n).map(|v| (0, v)).collect();
        let rs = tree_resistances(&tree, &pairs);
        for (k, &(p, q)) in pairs.iter().enumerate() {
            let exact = dense_resistance(&tree_graph, p, q);
            prop_assert!(
                (rs[k] - exact).abs() < 1e-8 * (1.0 + exact.abs()),
                "pair ({p},{q}): lca-based {} vs dense {exact}", rs[k]
            );
        }
    }

    #[test]
    fn laplacian_is_psd_and_has_zero_row_sums(g in arb_graph()) {
        let l = laplacian(&g, ShiftPolicy::None).unwrap();
        let n = g.num_nodes();
        let ones = vec![1.0; n];
        for v in l.matvec(&ones) {
            prop_assert!(v.abs() < 1e-9);
        }
        // Quadratic form equals the weighted sum of squared differences.
        let x: Vec<f64> = (0..n).map(|i| ((i * 13 % 7) as f64) - 3.0).collect();
        let lx = l.matvec(&x);
        let quad: f64 = x.iter().zip(lx.iter()).map(|(a, b)| a * b).sum();
        let manual: f64 = g
            .edges()
            .iter()
            .map(|e| e.weight * (x[e.u] - x[e.v]).powi(2))
            .sum();
        prop_assert!((quad - manual).abs() < 1e-8 * (1.0 + manual.abs()));
        prop_assert!(quad >= -1e-9);
    }

    #[test]
    fn max_weight_tree_dominates_effective_weight_tree_in_raw_weight(g in arb_graph()) {
        let mw = spanning_tree(&g, TreeKind::MaxWeight).unwrap();
        let ew = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let weight = |ids: &[usize]| -> f64 { ids.iter().map(|&i| g.edge(i).weight).sum() };
        prop_assert!(weight(&mw.tree_edges) >= weight(&ew.tree_edges) - 1e-9);
    }

    #[test]
    fn mmio_roundtrip(g in arb_graph()) {
        let slack: Vec<f64> = (0..g.num_nodes()).map(|i| (i % 3) as f64 * 0.25).collect();
        let mut buf = Vec::new();
        tracered_graph::mmio::write_laplacian(&mut buf, &g, &slack).unwrap();
        let mm = tracered_graph::mmio::read_graph(buf.as_slice()).unwrap();
        prop_assert_eq!(mm.graph.num_nodes(), g.num_nodes());
        // Edge multiset must match (up to parallel-edge merging: the
        // generator can produce parallel edges, which the Laplacian merges).
        let mut orig: std::collections::HashMap<(usize, usize), f64> = Default::default();
        for e in g.edges() {
            *orig.entry((e.u, e.v)).or_insert(0.0) += e.weight;
        }
        prop_assert_eq!(mm.graph.num_edges(), orig.len());
        for e in mm.graph.edges() {
            let w = orig[&(e.u, e.v)];
            prop_assert!((e.weight - w).abs() < 1e-9 * (1.0 + w));
        }
        for (a, b) in mm.diag_slack.iter().zip(slack.iter()) {
            prop_assert!((a - b).abs() < 1e-9);
        }
    }
}
