//! Tarjan's offline lowest-common-ancestor algorithm.
//!
//! The paper (§3.2) runs "Tarjan's offline LCA algorithm \[9\]" once over all
//! off-tree edges to obtain every tree effective resistance
//! `R_T(p, q) = r(p) + r(q) − 2·r(lca(p, q))` in near-linear time. This
//! module implements the classic union-find formulation **iteratively**
//! (explicit DFS stack), so million-node path-shaped trees cannot overflow
//! the call stack.

use crate::tree::{RootedTree, NO_NODE};
use crate::unionfind::UnionFind;

/// Answers a batch of LCA queries on a rooted tree.
///
/// Returns one LCA per query, in query order.
///
/// # Panics
///
/// Panics if a query references a node outside the tree.
///
/// # Example
///
/// ```
/// use tracered_graph::{Graph, RootedTree};
/// use tracered_graph::lca::offline_lca;
///
/// # fn main() -> Result<(), tracered_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (0, 2, 1.0), (2, 3, 1.0)])?;
/// let t = RootedTree::build(&g, &[0, 1, 2], 0)?;
/// let lcas = offline_lca(&t, &[(1, 3), (2, 3), (1, 1)]);
/// assert_eq!(lcas, vec![0, 2, 1]);
/// # Ok(())
/// # }
/// ```
pub fn offline_lca(tree: &RootedTree, queries: &[(usize, usize)]) -> Vec<usize> {
    let n = tree.num_nodes();
    // Bucket queries by endpoint.
    let mut qheads = vec![usize::MAX; n];
    // (other endpoint, query index, next pointer)
    let mut qlist: Vec<(usize, usize, usize)> = Vec::with_capacity(2 * queries.len());
    for (qi, &(a, b)) in queries.iter().enumerate() {
        assert!(a < n && b < n, "query ({a}, {b}) out of bounds");
        qlist.push((b, qi, qheads[a]));
        qheads[a] = qlist.len() - 1;
        qlist.push((a, qi, qheads[b]));
        qheads[b] = qlist.len() - 1;
    }
    let mut answers = vec![usize::MAX; queries.len()];
    let mut uf = UnionFind::new(n);
    let mut black = vec![false; n];
    // Iterative DFS: (node, next child index).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    stack.push((tree.root(), 0));
    uf.set_label(tree.root(), tree.root());
    while let Some(&mut (v, ref mut ci)) = stack.last_mut() {
        let kids = tree.children(v);
        if *ci < kids.len() {
            let child = kids[*ci];
            *ci += 1;
            uf.set_label(child, child);
            stack.push((child, 0));
            continue;
        }
        // Post-order processing of v: answer queries against black nodes.
        let mut qp = qheads[v];
        while qp != usize::MAX {
            let (other, qi, next) = qlist[qp];
            if other == v {
                answers[qi] = v;
            } else if black[other] {
                answers[qi] = uf.label_of(other);
            }
            qp = next;
        }
        black[v] = true;
        stack.pop();
        // Merge v into its parent's set, keeping the parent as the label.
        let p = tree.parent(v);
        if p != NO_NODE {
            uf.union(p, v);
            uf.set_label(p, p);
        }
    }
    answers
}

/// Computes tree effective resistances for a batch of node pairs using
/// [`offline_lca`]: `R_T(p, q) = r(p) + r(q) − 2 r(lca)`.
pub fn tree_resistances(tree: &RootedTree, pairs: &[(usize, usize)]) -> Vec<f64> {
    let lcas = offline_lca(tree, pairs);
    pairs.iter().zip(lcas.iter()).map(|(&(p, q), &l)| tree.resistance_between(p, q, l)).collect()
}

/// [`tree_resistances`] with the query batch chunked over `threads`
/// workers.
///
/// Each chunk runs its own [`offline_lca`] pass (private union-find and
/// DFS stack) over the whole tree; per-query answers are independent of
/// how the batch is split, so results are bit-identical to the serial
/// path. Chunks are kept large — an LCA pass costs `O(n)` regardless of
/// batch size, so splitting only pays off when the batch dwarfs the
/// per-pass overhead.
pub fn tree_resistances_threads(
    tree: &RootedTree,
    pairs: &[(usize, usize)],
    threads: usize,
) -> Vec<f64> {
    // Below this many queries per worker, the O(n) tree sweep per chunk
    // dominates; fall back to one serial pass.
    let min_chunk = (tree.num_nodes() / 4).max(1024);
    if threads <= 1 || pairs.len() <= min_chunk {
        return tree_resistances(tree, pairs);
    }
    let mut out = vec![0.0f64; pairs.len()];
    let chunk = tracered_par::chunk_size(pairs.len(), threads, min_chunk);
    tracered_par::par_chunks_mut(&mut out, chunk, threads, |start, slice| {
        let sub = &pairs[start..start + slice.len()];
        let lcas = offline_lca(tree, sub);
        for ((slot, &(p, q)), &l) in slice.iter_mut().zip(sub.iter()).zip(lcas.iter()) {
            *slot = tree.resistance_between(p, q, l);
        }
    });
    out
}

/// Total *stretch* of a spanning tree of `g`: `Σ_e w_e · R_T(e)` over all
/// graph edges. The classical quality measure of low-stretch spanning
/// trees — the trace `Tr(L_T⁻¹ L_G)` of an (unshifted) tree preconditioner
/// equals `stretch + (n − m_tree terms)`, so lower stretch means a better
/// starting point for edge recovery.
///
/// Tree edges contribute exactly 1 each (their tree path is themselves).
pub fn total_stretch(g: &crate::graph::Graph, tree: &RootedTree) -> f64 {
    let pairs: Vec<(usize, usize)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
    let rs = tree_resistances(tree, &pairs);
    g.edges().iter().zip(rs.iter()).map(|(e, &r)| e.weight * r).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// A balanced-ish tree:
    /// ```text
    ///        0
    ///       / \
    ///      1   2
    ///     / \   \
    ///    3   4   5
    ///   /
    ///  6
    /// ```
    fn sample() -> (Graph, RootedTree) {
        let g = Graph::from_edges(
            7,
            &[(0, 1, 1.0), (0, 2, 1.0), (1, 3, 1.0), (1, 4, 1.0), (2, 5, 1.0), (3, 6, 1.0)],
        )
        .unwrap();
        let t = RootedTree::build(&g, &[0, 1, 2, 3, 4, 5], 0).unwrap();
        (g, t)
    }

    #[test]
    fn matches_climbing_lca_on_all_pairs() {
        let (_, t) = sample();
        let mut queries = Vec::new();
        for a in 0..7 {
            for b in 0..7 {
                queries.push((a, b));
            }
        }
        let fast = offline_lca(&t, &queries);
        for (qi, &(a, b)) in queries.iter().enumerate() {
            assert_eq!(fast[qi], t.lca_by_climbing(a, b), "lca({a},{b})");
        }
    }

    #[test]
    fn handles_empty_query_set() {
        let (_, t) = sample();
        assert!(offline_lca(&t, &[]).is_empty());
    }

    #[test]
    fn self_queries_return_self() {
        let (_, t) = sample();
        let ans = offline_lca(&t, &[(4, 4), (0, 0)]);
        assert_eq!(ans, vec![4, 0]);
    }

    #[test]
    fn resistances_match_path_sums() {
        let (g, t) = sample();
        let pairs = [(6, 5), (3, 4), (6, 4)];
        let rs = tree_resistances(&t, &pairs);
        for (k, &(p, q)) in pairs.iter().enumerate() {
            let manual: f64 = t.path_edges(p, q).iter().map(|&id| 1.0 / g.edge(id).weight).sum();
            assert!((rs[k] - manual).abs() < 1e-12, "pair ({p},{q})");
        }
    }

    #[test]
    fn deep_path_tree_does_not_overflow() {
        // A 200k-node path exercises the iterative DFS.
        let n = 200_000;
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let ids: Vec<usize> = (0..n - 1).collect();
        let t = RootedTree::build(&g, &ids, 0).unwrap();
        let ans = offline_lca(&t, &[(0, n - 1), (n / 2, n - 1)]);
        assert_eq!(ans, vec![0, n / 2]);
    }

    #[test]
    fn stretch_of_tree_itself_is_edge_count() {
        // Restricting a graph to its own spanning tree, every edge has
        // stretch w · (1/w) = 1.
        let (g, t) = sample();
        let tree_graph = g.edge_subgraph(&[0, 1, 2, 3, 4, 5]);
        let s = total_stretch(&tree_graph, &t);
        assert!((s - 6.0).abs() < 1e-12);
    }

    #[test]
    fn stretch_counts_off_tree_paths() {
        // Cycle 0-1-2-0 with unit weights, tree = {(0,1), (1,2)}:
        // stretch = 1 + 1 + 1·(R_T(0,2) = 2) = 4.
        let g =
            crate::graph::Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]).unwrap();
        let t = RootedTree::build(&g, &[0, 1], 0).unwrap();
        assert!((total_stretch(&g, &t) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_queries_answered_independently() {
        let (_, t) = sample();
        let ans = offline_lca(&t, &[(6, 5), (6, 5), (6, 5)]);
        assert_eq!(ans, vec![0, 0, 0]);
    }

    #[test]
    fn chunked_resistances_match_serial_for_all_thread_counts() {
        // Tree big enough to clear the chunking threshold, queries
        // spanning distant subtrees.
        let n = 5_000;
        let edges: Vec<(usize, usize, f64)> =
            (1..n).map(|i| (i / 2, i, 1.0 + (i % 9) as f64 * 0.3)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        let ids: Vec<usize> = (0..n - 1).collect();
        let t = RootedTree::build(&g, &ids, 0).unwrap();
        let pairs: Vec<(usize, usize)> =
            (0..20_000).map(|k| ((k * 37) % n, (k * 101 + 13) % n)).collect();
        let serial = tree_resistances(&t, &pairs);
        for threads in [1usize, 2, 4, 8] {
            let par = tree_resistances_threads(&t, &pairs, threads);
            assert_eq!(serial.len(), par.len());
            assert!(
                serial.iter().zip(par.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "thread count {threads} changed resistances"
            );
        }
    }
}
