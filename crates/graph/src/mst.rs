//! Spanning-tree extraction, including feGRASS's **maximum effective
//! weight spanning tree** (MEWST) used as Step 1 of the paper's
//! Algorithm 2.
//!
//! feGRASS [Liu, Yu, Feng 2021] ranks edges by an *effective weight* that
//! blends the edge's conductance with an estimate of its effective
//! resistance, so the tree preferentially captures edges that carry the
//! most spectral mass. The exact formula is not reproduced in the DAC'22
//! text; we use the standard degree-based leverage surrogate
//! `ŵ(u,v) = w_uv · (1/d_w(u) + 1/d_w(v))` (an upper-bound proxy of
//! `w_uv · R_eff(u,v)`), which preserves the behaviour that matters here:
//! heavy edges between lightly-connected regions enter the tree first.
//! Plain maximum-weight Kruskal is provided for ablation.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::unionfind::UnionFind;

/// How candidate edges are ranked when growing the spanning tree.
///
/// Deliberately **not** `#[non_exhaustive]`: downstream config
/// fingerprints match on this exhaustively so that adding a variant is a
/// compile error at every tag site instead of a silent cache collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TreeKind {
    /// feGRASS-style maximum *effective* weight spanning tree (default).
    #[default]
    MaxEffectiveWeight,
    /// Plain maximum-weight spanning tree (ablation baseline).
    MaxWeight,
}

/// Result of spanning-tree extraction: the partition of edge ids into
/// tree and off-tree sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanningTree {
    /// Edge ids (into the parent graph) forming the spanning tree, in the
    /// order Kruskal accepted them.
    pub tree_edges: Vec<usize>,
    /// All remaining edge ids.
    pub off_tree_edges: Vec<usize>,
}

/// Extracts a spanning tree of a connected graph.
///
/// # Errors
///
/// Returns [`GraphError::EmptyGraph`] for empty graphs and
/// [`GraphError::Disconnected`] when no spanning tree exists.
pub fn spanning_tree(g: &Graph, kind: TreeKind) -> Result<SpanningTree, GraphError> {
    if g.num_nodes() == 0 {
        return Err(GraphError::EmptyGraph);
    }
    let scores: Vec<f64> = match kind {
        TreeKind::MaxWeight => g.edges().iter().map(|e| e.weight).collect(),
        TreeKind::MaxEffectiveWeight => {
            let deg = g.weighted_degrees();
            g.edges().iter().map(|e| e.weight * (1.0 / deg[e.u] + 1.0 / deg[e.v])).collect()
        }
    };
    let mut order: Vec<usize> = (0..g.num_edges()).collect();
    // Sort by descending score; ties broken by heavier raw weight, then id
    // for determinism.
    // total_cmp: scores from a degraded upstream solve may contain NaN; a
    // non-total comparator is a reachable sort panic, total_cmp is not.
    order.sort_unstable_by(|&a, &b| {
        scores[b]
            .total_cmp(&scores[a])
            .then_with(|| g.edge(b).weight.total_cmp(&g.edge(a).weight))
            .then_with(|| a.cmp(&b))
    });
    let mut uf = UnionFind::new(g.num_nodes());
    let mut tree_edges = Vec::with_capacity(g.num_nodes().saturating_sub(1));
    let mut off_tree_edges = Vec::with_capacity((g.num_edges() + 1).saturating_sub(g.num_nodes()));
    for id in order {
        let e = g.edge(id);
        if uf.union(e.u, e.v) {
            tree_edges.push(id);
        } else {
            off_tree_edges.push(id);
        }
    }
    if uf.num_sets() != 1 {
        return Err(GraphError::Disconnected { components: uf.num_sets() });
    }
    Ok(SpanningTree { tree_edges, off_tree_edges })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle(n: usize) -> Graph {
        let mut edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        edges.push((n - 1, 0, 1.0));
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn tree_has_n_minus_1_edges() {
        let g = cycle(6);
        for kind in [TreeKind::MaxWeight, TreeKind::MaxEffectiveWeight] {
            let st = spanning_tree(&g, kind).unwrap();
            assert_eq!(st.tree_edges.len(), 5);
            assert_eq!(st.off_tree_edges.len(), 1);
        }
    }

    #[test]
    fn tree_spans_graph() {
        let g = cycle(8);
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let t = g.edge_subgraph(&st.tree_edges);
        assert!(t.is_connected());
    }

    #[test]
    fn max_weight_prefers_heavy_edges() {
        // Triangle with one light edge: the light edge must be off-tree.
        let g = Graph::from_edges(3, &[(0, 1, 10.0), (1, 2, 10.0), (0, 2, 0.1)]).unwrap();
        let st = spanning_tree(&g, TreeKind::MaxWeight).unwrap();
        assert_eq!(st.off_tree_edges, vec![2]);
    }

    #[test]
    fn effective_weight_prefers_bridging_edges() {
        // Two hubs with many mutual connections plus one bridge between
        // low-degree satellites: the bridge has high effective weight even
        // with moderate raw weight.
        let mut edges = vec![];
        // Hub cliques around nodes 0 and 5.
        for i in 1..5 {
            edges.push((0, i, 10.0));
        }
        for i in 6..10 {
            edges.push((5, i, 10.0));
        }
        edges.push((4, 6, 1.0)); // the bridge
        edges.push((0, 5, 1.0)); // hub-to-hub alternative
        let g = Graph::from_edges(10, &edges).unwrap();
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let bridge_id = 8; // (4, 6, 1.0)
        assert!(
            st.tree_edges.contains(&bridge_id),
            "bridge between low-degree nodes should be ranked into the tree"
        );
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(matches!(
            spanning_tree(&g, TreeKind::MaxWeight),
            Err(GraphError::Disconnected { components: 2 })
        ));
    }

    #[test]
    fn empty_graph_is_rejected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(matches!(spanning_tree(&g, TreeKind::MaxWeight), Err(GraphError::EmptyGraph)));
    }

    #[test]
    fn single_node_graph_has_empty_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        assert!(st.tree_edges.is_empty());
        assert!(st.off_tree_edges.is_empty());
    }

    #[test]
    fn deterministic_output() {
        let g = cycle(10);
        let a = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        let b = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
        assert_eq!(a, b);
    }
}
