//! Graph Laplacian assembly.
//!
//! The paper works with Laplacians made invertible by adding "small values
//! to the diagonal" (its §2), chosen identically for the graph `G` and any
//! subgraph `S` so that `L_G ⪰ L_S` and the smallest generalized eigenvalue
//! of `(L_G, L_S)` is 1. [`ShiftPolicy`] captures the choices used across
//! the workspace.

use tracered_sparse::{CooMatrix, CscMatrix};

use crate::error::GraphError;
use crate::graph::Graph;

/// How the positive diagonal shift is chosen.
///
/// Deliberately **not** `#[non_exhaustive]`: downstream config
/// fingerprints match on this exhaustively so that adding a policy is a
/// compile error at every tag site instead of a silent cache collision.
#[derive(Debug, Clone, PartialEq)]
pub enum ShiftPolicy {
    /// No shift: the exact (singular) Laplacian. Useful for assembling
    /// `L_G` when the caller adds physical ground conductances later.
    None,
    /// The same constant added to every diagonal entry.
    Uniform(f64),
    /// `factor · (mean weighted degree)` added to every diagonal entry —
    /// a scale-free default (`factor = 1e-6` reproduces the paper's
    /// "small values" at any weight scale).
    RelativeMeanDegree(f64),
    /// An explicit per-node shift, e.g. pad or capacitor conductances in a
    /// power grid.
    PerNode(Vec<f64>),
}

impl ShiftPolicy {
    /// Materialises the per-node shift vector for graph `g`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`] if a [`ShiftPolicy::PerNode`]
    /// vector has the wrong length, and [`GraphError::InvalidWeight`] if any
    /// shift is negative or non-finite.
    pub fn shifts(&self, g: &Graph) -> Result<Vec<f64>, GraphError> {
        let n = g.num_nodes();
        let v = match self {
            ShiftPolicy::None => vec![0.0; n],
            ShiftPolicy::Uniform(s) => vec![*s; n],
            ShiftPolicy::RelativeMeanDegree(factor) => {
                let mean = if n == 0 { 0.0 } else { 2.0 * g.total_weight() / n as f64 };
                vec![factor * mean; n]
            }
            ShiftPolicy::PerNode(v) => {
                if v.len() != n {
                    return Err(GraphError::NodeOutOfBounds { node: v.len(), num_nodes: n });
                }
                v.clone()
            }
        };
        for (i, &s) in v.iter().enumerate() {
            if !s.is_finite() || s < 0.0 {
                return Err(GraphError::InvalidWeight { edge: i, weight: s });
            }
        }
        Ok(v)
    }
}

/// Assembles the (shifted) Laplacian `L_G + diag(shift)` of a graph as a
/// symmetric CSC matrix.
///
/// # Errors
///
/// Propagates shift-policy validation errors; see [`ShiftPolicy::shifts`].
pub fn laplacian(g: &Graph, shift: ShiftPolicy) -> Result<CscMatrix, GraphError> {
    let shifts = shift.shifts(g)?;
    Ok(laplacian_with_shifts(g, &shifts))
}

/// Assembles `L_G + diag(shifts)` with an explicit, already-validated
/// shift vector.
///
/// # Panics
///
/// Panics if `shifts.len() != g.num_nodes()`.
pub fn laplacian_with_shifts(g: &Graph, shifts: &[f64]) -> CscMatrix {
    let n = g.num_nodes();
    assert_eq!(shifts.len(), n, "shift vector length must equal node count");
    let mut coo = CooMatrix::with_capacity(n, n, 2 * g.num_edges() + n);
    let mut diag = shifts.to_vec();
    for e in g.edges() {
        coo.push_symmetric(e.u, e.v, -e.weight)
            .expect("graph invariants guarantee valid Laplacian entries");
        diag[e.u] += e.weight;
        diag[e.v] += e.weight;
    }
    for (i, &d) in diag.iter().enumerate() {
        if d != 0.0 {
            coo.push(i, i, d).expect("diagonal entry in bounds");
        }
    }
    coo.to_csc()
}

/// Assembles the Laplacian of the subgraph given by `edge_ids`, using the
/// **same** shift vector as the parent graph — the construction that keeps
/// `L_G ⪰ L_S`.
///
/// # Panics
///
/// Panics if `shifts.len() != g.num_nodes()` or an edge id is out of
/// bounds.
pub fn subgraph_laplacian(g: &Graph, edge_ids: &[usize], shifts: &[f64]) -> CscMatrix {
    let n = g.num_nodes();
    assert_eq!(shifts.len(), n, "shift vector length must equal node count");
    let mut coo = CooMatrix::with_capacity(n, n, 2 * edge_ids.len() + n);
    let mut diag = shifts.to_vec();
    for &id in edge_ids {
        let e = g.edge(id);
        coo.push_symmetric(e.u, e.v, -e.weight)
            .expect("graph invariants guarantee valid Laplacian entries");
        diag[e.u] += e.weight;
        diag[e.v] += e.weight;
    }
    for (i, &d) in diag.iter().enumerate() {
        if d != 0.0 {
            coo.push(i, i, d).expect("diagonal entry in bounds");
        }
    }
    coo.to_csc()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)]).unwrap()
    }

    #[test]
    fn unshifted_laplacian_rows_sum_to_zero() {
        let l = laplacian(&triangle(), ShiftPolicy::None).unwrap();
        let ones = vec![1.0; 3];
        let y = l.matvec(&ones);
        for v in y {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn laplacian_entries() {
        let l = laplacian(&triangle(), ShiftPolicy::None).unwrap();
        assert_eq!(l.get(0, 0), 4.0);
        assert_eq!(l.get(1, 1), 3.0);
        assert_eq!(l.get(2, 2), 5.0);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.get(1, 2), -2.0);
        assert_eq!(l.get(0, 2), -3.0);
        assert!(l.is_symmetric());
    }

    #[test]
    fn uniform_shift_adds_to_diagonal() {
        let l = laplacian(&triangle(), ShiftPolicy::Uniform(0.5)).unwrap();
        assert_eq!(l.get(0, 0), 4.5);
        assert_eq!(l.get(0, 1), -1.0);
    }

    #[test]
    fn relative_shift_scales_with_weights() {
        let g = triangle();
        let mean_deg = 2.0 * g.total_weight() / 3.0;
        let l = laplacian(&g, ShiftPolicy::RelativeMeanDegree(0.1)).unwrap();
        assert!((l.get(0, 0) - (4.0 + 0.1 * mean_deg)).abs() < 1e-12);
    }

    #[test]
    fn per_node_shift_validates_length_and_sign() {
        let g = triangle();
        assert!(laplacian(&g, ShiftPolicy::PerNode(vec![0.1, 0.2])).is_err());
        assert!(laplacian(&g, ShiftPolicy::PerNode(vec![0.1, -0.2, 0.3])).is_err());
        let l = laplacian(&g, ShiftPolicy::PerNode(vec![0.1, 0.0, 0.3])).unwrap();
        assert!((l.get(0, 0) - 4.1).abs() < 1e-12);
        assert_eq!(l.get(1, 1), 3.0);
    }

    #[test]
    fn subgraph_laplacian_is_dominated_by_graph_laplacian() {
        // x^T (L_G - L_S) x >= 0 for a sample of vectors.
        let g = triangle();
        let shifts = vec![0.01; 3];
        let lg = laplacian_with_shifts(&g, &shifts);
        let ls = subgraph_laplacian(&g, &[0, 1], &shifts);
        for x in [[1.0, -1.0, 0.5], [0.3, 0.3, -0.9], [1.0, 0.0, 0.0]] {
            let gx = lg.matvec(&x);
            let sx = ls.matvec(&x);
            let qg: f64 = x.iter().zip(gx.iter()).map(|(a, b)| a * b).sum();
            let qs: f64 = x.iter().zip(sx.iter()).map(|(a, b)| a * b).sum();
            assert!(qg + 1e-12 >= qs, "quadratic forms must be ordered");
        }
    }

    #[test]
    fn laplacian_of_edgeless_graph_is_shift_only() {
        let g = Graph::from_edges(2, &[]).unwrap();
        let l = laplacian(&g, ShiftPolicy::Uniform(2.0)).unwrap();
        assert_eq!(l.get(0, 0), 2.0);
        assert_eq!(l.nnz(), 2);
    }
}
