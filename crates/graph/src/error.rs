//! Error type for graph construction and graph algorithms.

use std::error::Error;
use std::fmt;

/// Errors produced when building or processing graphs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint does not name a valid node.
    NodeOutOfBounds {
        /// Offending node id.
        node: usize,
        /// Number of nodes in the graph.
        num_nodes: usize,
    },
    /// Self-loops are not representable in a Laplacian and are rejected.
    SelfLoop {
        /// The node carrying the self-loop.
        node: usize,
    },
    /// Edge weights must be finite and strictly positive.
    InvalidWeight {
        /// Index of the edge in the input list.
        edge: usize,
        /// The offending weight.
        weight: f64,
    },
    /// The operation requires a connected graph.
    Disconnected {
        /// Number of connected components found.
        components: usize,
    },
    /// The operation requires a non-empty graph.
    EmptyGraph,
    /// A set of edges expected to form a spanning tree does not.
    NotATree {
        /// Human-readable description of the violation.
        what: String,
    },
    /// Malformed external data (e.g. a Matrix Market file).
    ParseError {
        /// Line number (1-based) where parsing failed, when known.
        line: usize,
        /// Description of the problem.
        what: String,
    },
    /// An I/O failure while reading or writing graph files.
    Io {
        /// Stringified I/O error (kept as a string so the error stays `Clone`).
        what: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfBounds { node, num_nodes } => {
                write!(f, "node {node} out of bounds for graph with {num_nodes} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::InvalidWeight { edge, weight } => {
                write!(f, "edge {edge} has invalid weight {weight} (must be finite and > 0)")
            }
            GraphError::Disconnected { components } => {
                write!(f, "graph is disconnected ({components} components)")
            }
            GraphError::EmptyGraph => write!(f, "graph has no nodes"),
            GraphError::NotATree { what } => write!(f, "edge set is not a spanning tree: {what}"),
            GraphError::ParseError { line, what } => {
                write!(f, "parse error at line {line}: {what}")
            }
            GraphError::Io { what } => write!(f, "i/o error: {what}"),
        }
    }
}

impl Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io { what: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(GraphError, &str)> = vec![
            (GraphError::NodeOutOfBounds { node: 7, num_nodes: 5 }, "7"),
            (GraphError::SelfLoop { node: 3 }, "3"),
            (GraphError::InvalidWeight { edge: 2, weight: -1.0 }, "-1"),
            (GraphError::Disconnected { components: 4 }, "4"),
            (GraphError::EmptyGraph, "no nodes"),
            (GraphError::NotATree { what: "cycle".into() }, "cycle"),
            (GraphError::ParseError { line: 9, what: "bad".into() }, "line 9"),
            (GraphError::Io { what: "gone".into() }, "gone"),
        ];
        for (e, needle) in cases {
            assert!(e.to_string().contains(needle), "{e}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
