//! Disjoint-set union with path compression and union by rank.
//!
//! Used by Kruskal's spanning-tree construction and by Tarjan's offline
//! LCA algorithm (which needs the `assign_name` variant where the root's
//! reported label differs from the structural root).

/// A union-find structure over `0..n`.
///
/// # Example
///
/// ```
/// use tracered_graph::UnionFind;
///
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0), "already joined");
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(0), uf.find(2));
/// ```
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Optional per-set label, settable independently of the structural
    /// root (Tarjan's LCA "ancestor" array).
    label: Vec<usize>,
    num_sets: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets, each labelled by itself.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
            rank: vec![0; n],
            label: (0..n).collect(),
            num_sets: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Returns `true` if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Finds the representative of `x`'s set (with path compression).
    ///
    /// # Panics
    ///
    /// Panics if `x >= self.len()`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Unions the sets of `a` and `b`. Returns `true` if they were
    /// previously disjoint.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.num_sets -= 1;
        match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => self.parent[ra] = rb,
            std::cmp::Ordering::Greater => self.parent[rb] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb] = ra;
                self.rank[ra] += 1;
            }
        }
        true
    }

    /// Returns `true` if `a` and `b` belong to the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// The label of `x`'s set (Tarjan LCA support).
    pub fn label_of(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.label[r]
    }

    /// Sets the label of `x`'s set.
    pub fn set_label(&mut self, x: usize, label: usize) {
        let r = self.find(x);
        self.label[r] = label;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disjoint() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.num_sets(), 3);
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn union_reduces_set_count() {
        let mut uf = UnionFind::new(5);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert_eq!(uf.num_sets(), 2);
        assert!(uf.same_set(1, 2));
        assert!(!uf.same_set(1, 4));
    }

    #[test]
    fn duplicate_union_is_noop() {
        let mut uf = UnionFind::new(3);
        assert!(uf.union(0, 1));
        assert!(!uf.union(0, 1));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn labels_track_sets() {
        let mut uf = UnionFind::new(4);
        uf.set_label(2, 99);
        assert_eq!(uf.label_of(2), 99);
        uf.union(2, 3);
        uf.set_label(3, 42);
        assert_eq!(uf.label_of(2), 42);
    }

    #[test]
    fn path_compression_preserves_find() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        let r = uf.find(0);
        for i in 0..100 {
            assert_eq!(uf.find(i), r);
        }
        assert_eq!(uf.num_sets(), 1);
    }
}
