//! β-layer breadth-first search neighbourhoods.
//!
//! The paper's truncated trace reduction (its Eq. 12) restricts the
//! summation to graph edges running between `Nbr(p, β)` and `Nbr(q, β)`,
//! the node sets found by β-layer BFS from the candidate edge's endpoints.
//! The BFS is performed **in the current subgraph** (where the electrical
//! model lives), while the edges that get summed come from the full graph.

use crate::graph::Graph;

/// A node discovered by [`bfs_layers`], with its BFS predecessor
/// information.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BfsNode {
    /// The discovered node.
    pub node: usize,
    /// BFS predecessor (`node` itself for the start node).
    pub pred: usize,
    /// Id of the edge from `pred` to `node` (`usize::MAX` for the start).
    pub pred_edge: usize,
    /// BFS depth (0 for the start node).
    pub depth: usize,
}

/// Reusable scratch space for repeated BFS traversals over the same node
/// set, avoiding an O(n) clear per call.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    mark: Vec<u64>,
    round: u64,
    queue: std::collections::VecDeque<(usize, usize)>,
}

impl BfsScratch {
    /// Creates scratch space for graphs with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch { mark: vec![0; n], round: 0, queue: std::collections::VecDeque::new() }
    }

    /// Dimension the scratch was created for.
    pub fn len(&self) -> usize {
        self.mark.len()
    }

    /// Returns `true` when created for an empty node set.
    pub fn is_empty(&self) -> bool {
        self.mark.is_empty()
    }
}

/// Collects the nodes within `layers` BFS layers of `start` in graph `g`,
/// in discovery order (the start node first, depth 0).
///
/// # Panics
///
/// Panics if `start` is out of bounds or `scratch` was created for a
/// different node count.
pub fn bfs_layers(
    g: &Graph,
    start: usize,
    layers: usize,
    scratch: &mut BfsScratch,
) -> Vec<BfsNode> {
    assert_eq!(scratch.len(), g.num_nodes(), "scratch sized for a different graph");
    assert!(start < g.num_nodes(), "start node out of bounds");
    scratch.round += 1;
    let round = scratch.round;
    let mut out = Vec::new();
    scratch.queue.clear();
    scratch.queue.push_back((start, 0));
    scratch.mark[start] = round;
    out.push(BfsNode { node: start, pred: start, pred_edge: usize::MAX, depth: 0 });
    while let Some((v, d)) = scratch.queue.pop_front() {
        if d == layers {
            continue;
        }
        for &(u, edge_id) in g.neighbors(v) {
            if scratch.mark[u] != round {
                scratch.mark[u] = round;
                out.push(BfsNode { node: u, pred: v, pred_edge: edge_id, depth: d + 1 });
                scratch.queue.push_back((u, d + 1));
            }
        }
    }
    out
}

/// Marks the nodes within `layers` BFS layers of `start` by setting
/// `marks[node] = stamp`. Returns the number of nodes marked.
///
/// This is the cheap variant used by the similarity-exclusion rule, where
/// only membership matters.
///
/// # Panics
///
/// Panics if `start` or `marks` are inconsistent with `g`.
pub fn mark_neighborhood(
    g: &Graph,
    start: usize,
    layers: usize,
    marks: &mut [u64],
    stamp: u64,
    queue: &mut std::collections::VecDeque<(usize, usize)>,
) -> usize {
    assert_eq!(marks.len(), g.num_nodes(), "marks sized for a different graph");
    let mut count = 0;
    queue.clear();
    if marks[start] != stamp {
        marks[start] = stamp;
        count += 1;
    }
    queue.push_back((start, 0));
    while let Some((v, d)) = queue.pop_front() {
        if d == layers {
            continue;
        }
        for &(u, _) in g.neighbors(v) {
            if marks[u] != stamp {
                marks[u] = stamp;
                count += 1;
                queue.push_back((u, d + 1));
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let edges: Vec<(usize, usize, f64)> = (0..n - 1).map(|i| (i, i + 1, 1.0)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn zero_layers_is_just_start() {
        let g = path(5);
        let mut scratch = BfsScratch::new(5);
        let nodes = bfs_layers(&g, 2, 0, &mut scratch);
        assert_eq!(nodes.len(), 1);
        assert_eq!(nodes[0].node, 2);
        assert_eq!(nodes[0].depth, 0);
    }

    #[test]
    fn layers_grow_along_path() {
        let g = path(7);
        let mut scratch = BfsScratch::new(7);
        let nodes = bfs_layers(&g, 3, 2, &mut scratch);
        let mut ids: Vec<usize> = nodes.iter().map(|b| b.node).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
        for b in &nodes {
            assert!(b.depth <= 2);
            if b.node != 3 {
                // Predecessor is one step closer to the start.
                let pd = nodes.iter().find(|x| x.node == b.pred).unwrap().depth;
                assert_eq!(pd + 1, b.depth);
            }
        }
    }

    #[test]
    fn pred_edges_reference_real_edges() {
        let g = path(6);
        let mut scratch = BfsScratch::new(6);
        for b in bfs_layers(&g, 0, 3, &mut scratch) {
            if b.node == 0 {
                assert_eq!(b.pred_edge, usize::MAX);
            } else {
                let e = g.edge(b.pred_edge);
                assert!(
                    (e.u == b.pred && e.v == b.node) || (e.v == b.pred && e.u == b.node),
                    "pred edge must connect pred and node"
                );
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let g = path(5);
        let mut scratch = BfsScratch::new(5);
        let a = bfs_layers(&g, 0, 1, &mut scratch);
        let b = bfs_layers(&g, 4, 1, &mut scratch);
        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 2);
        assert_eq!(b[0].node, 4);
    }

    #[test]
    fn mark_neighborhood_counts_nodes() {
        let g = path(9);
        let mut marks = vec![0u64; 9];
        let mut queue = std::collections::VecDeque::new();
        let count = mark_neighborhood(&g, 4, 2, &mut marks, 7, &mut queue);
        assert_eq!(count, 5);
        for (i, &m) in marks.iter().enumerate() {
            let expect = (2..=6).contains(&i);
            assert_eq!(m == 7, expect, "node {i}");
        }
        // Re-marking with the same stamp adds nothing.
        let count2 = mark_neighborhood(&g, 4, 2, &mut marks, 7, &mut queue);
        assert_eq!(count2, 0);
    }

    #[test]
    fn whole_graph_reached_with_large_layer_count() {
        let g = path(6);
        let mut scratch = BfsScratch::new(6);
        let nodes = bfs_layers(&g, 0, 100, &mut scratch);
        assert_eq!(nodes.len(), 6);
    }
}
