//! Graph substrate for the `tracered` workspace.
//!
//! Provides the weighted undirected [`Graph`] type and everything the
//! trace-reduction sparsifier needs around it:
//!
//! - Laplacian assembly with configurable diagonal shifts ([`laplacian`]);
//! - synthetic mesh generators standing in for the paper's SuiteSparse
//!   test matrices ([`gen`]);
//! - Matrix Market import/export ([`mmio`]);
//! - union-find ([`unionfind`]) and maximum effective-weight spanning
//!   trees ([`mst`], feGRASS's MEWST);
//! - rooted-tree utilities with effective resistances and tree paths
//!   ([`tree`]), plus Tarjan's offline LCA ([`lca`]);
//! - β-layer BFS neighbourhoods ([`bfs`]) used by the paper's truncated
//!   trace reduction.
//!
//! # Example
//!
//! ```
//! use tracered_graph::gen::{grid2d, WeightProfile};
//! use tracered_graph::laplacian::{laplacian, ShiftPolicy};
//!
//! let g = grid2d(4, 4, WeightProfile::Unit, 1);
//! assert_eq!(g.num_nodes(), 16);
//! assert_eq!(g.num_edges(), 24);
//! let l = laplacian(&g, ShiftPolicy::Uniform(1e-6)).unwrap();
//! assert_eq!(l.ncols(), 16);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod error;
pub mod gen;
pub mod graph;
pub mod laplacian;
pub mod lca;
pub mod mmio;
pub mod mst;
pub mod tree;
pub mod unionfind;

pub use error::GraphError;
pub use graph::{Edge, Graph};
pub use tree::RootedTree;
pub use unionfind::UnionFind;
