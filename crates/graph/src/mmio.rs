//! Matrix Market import/export for graphs.
//!
//! The paper's test matrices come from the SuiteSparse collection in
//! Matrix Market format. This module lets users drop real `.mtx` files
//! into the benchmark harness: an SDD matrix is interpreted as a graph
//! (off-diagonal `a_ij ≠ 0` becomes an edge of weight `|a_ij|`) plus a
//! per-node diagonal *slack* (the amount by which each diagonal entry
//! exceeds the node's weighted degree — physical ground conductance).

use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

use crate::error::GraphError;
use crate::graph::Graph;

/// A graph read from a Matrix Market file, with the diagonal slack needed
/// to reconstruct the original SDD matrix as `L_G + diag(slack)`.
#[derive(Debug, Clone)]
pub struct MmGraph {
    /// The graph (off-diagonal structure).
    pub graph: Graph,
    /// Per-node diagonal slack (zero when the file stores a pure
    /// Laplacian; clamped at zero if a diagonal is slightly deficient).
    pub diag_slack: Vec<f64>,
}

/// Reads a graph from a Matrix Market `coordinate` file.
///
/// Supported qualifiers: `real` / `integer` / `pattern`, `symmetric` /
/// `general`. For `general` files both `(i, j)` and `(j, i)` may appear;
/// duplicate off-diagonal entries are averaged.
///
/// # Errors
///
/// Returns [`GraphError::ParseError`] on malformed content and
/// [`GraphError::Io`] on read failure.
pub fn read_graph<R: Read>(reader: R) -> Result<MmGraph, GraphError> {
    let buf = BufReader::new(reader);
    let mut lines = buf.lines().enumerate();

    // Header.
    let (mut lineno, header) = match lines.next() {
        Some((i, l)) => (i + 1, l?),
        None => {
            return Err(GraphError::ParseError { line: 1, what: "empty file".into() });
        }
    };
    let header_lower = header.to_lowercase();
    if !header_lower.starts_with("%%matrixmarket") {
        return Err(GraphError::ParseError {
            line: 1,
            what: "missing %%MatrixMarket header".into(),
        });
    }
    if !header_lower.contains("coordinate") {
        return Err(GraphError::ParseError {
            line: 1,
            what: "only coordinate format is supported".into(),
        });
    }
    let pattern = header_lower.contains("pattern");
    let symmetric = header_lower.contains("symmetric");
    if header_lower.contains("complex") || header_lower.contains("hermitian") {
        return Err(GraphError::ParseError {
            line: 1,
            what: "complex matrices are not supported".into(),
        });
    }

    // Size line (skipping comments).
    let (n, _m, nnz) = loop {
        let (i, l) = lines
            .next()
            .ok_or(GraphError::ParseError { line: lineno + 1, what: "missing size line".into() })?;
        lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        if parts.len() != 3 {
            return Err(GraphError::ParseError {
                line: lineno,
                what: format!("size line must have 3 fields, found {}", parts.len()),
            });
        }
        let parse = |s: &str| -> Result<usize, GraphError> {
            s.parse().map_err(|_| GraphError::ParseError {
                line: lineno,
                what: format!("invalid integer '{s}'"),
            })
        };
        break (parse(parts[0])?, parse(parts[1])?, parse(parts[2])?);
    };

    let mut diag = vec![0.0f64; n];
    // Accumulate off-diagonal magnitudes keyed by (min, max) to merge
    // general-format mirror entries.
    let mut acc: std::collections::HashMap<(usize, usize), (f64, usize)> =
        std::collections::HashMap::with_capacity(nnz);
    let mut seen = 0usize;
    for (i, l) in lines {
        let lineno = i + 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let parts: Vec<&str> = t.split_whitespace().collect();
        let expect = if pattern { 2 } else { 3 };
        if parts.len() < expect {
            return Err(GraphError::ParseError {
                line: lineno,
                what: format!("entry line must have {expect} fields"),
            });
        }
        let r: usize = parts[0].parse().map_err(|_| GraphError::ParseError {
            line: lineno,
            what: format!("invalid row index '{}'", parts[0]),
        })?;
        let c: usize = parts[1].parse().map_err(|_| GraphError::ParseError {
            line: lineno,
            what: format!("invalid column index '{}'", parts[1]),
        })?;
        if r == 0 || c == 0 || r > n || c > n {
            return Err(GraphError::ParseError {
                line: lineno,
                what: format!("entry ({r}, {c}) out of bounds for size {n}"),
            });
        }
        let v: f64 = if pattern {
            1.0
        } else {
            parts[2].parse().map_err(|_| GraphError::ParseError {
                line: lineno,
                what: format!("invalid value '{}'", parts[2]),
            })?
        };
        if !v.is_finite() {
            return Err(GraphError::ParseError {
                line: lineno,
                what: format!("non-finite value {v}"),
            });
        }
        let (r, c) = (r - 1, c - 1);
        if r == c {
            diag[r] += v;
        } else {
            let key = (r.min(c), r.max(c));
            let e = acc.entry(key).or_insert((0.0, 0));
            e.0 += v.abs();
            e.1 += 1;
        }
        seen += 1;
    }
    if seen != nnz {
        return Err(GraphError::ParseError {
            line: lineno,
            what: format!("expected {nnz} entries, found {seen}"),
        });
    }
    let mut edges: Vec<(usize, usize, f64)> = acc
        .into_iter()
        .map(|((u, v), (sum, count))| {
            // Symmetric files store each edge once, so duplicates are
            // genuine parallel edges whose conductances add. General files
            // mirror every off-diagonal entry, so the pair averages back to
            // the single edge weight.
            let w = if symmetric { sum } else { sum / count as f64 };
            (u, v, w)
        })
        .filter(|&(_, _, w)| w > 0.0)
        .collect();
    edges.sort_unstable_by_key(|&(u, v, _)| (u, v));
    let graph = Graph::from_edges(n, &edges).map_err(|e| GraphError::ParseError {
        line: lineno,
        what: format!("invalid graph: {e}"),
    })?;
    // Diagonal slack = diagonal − weighted degree (clamped at 0).
    let deg = graph.weighted_degrees();
    let diag_slack: Vec<f64> = diag
        .iter()
        .zip(deg.iter())
        .map(|(&d, &wd)| if d == 0.0 { 0.0 } else { (d - wd).max(0.0) })
        .collect();
    Ok(MmGraph { graph, diag_slack })
}

/// Reads a graph from a Matrix Market file on disk.
///
/// # Errors
///
/// See [`read_graph`].
pub fn read_graph_path<P: AsRef<Path>>(path: P) -> Result<MmGraph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_graph(f)
}

/// Writes a graph as the Matrix Market file of its Laplacian
/// `L_G + diag(slack)` (coordinate, real, symmetric; lower triangle).
///
/// # Errors
///
/// Returns [`GraphError::Io`] on write failure and
/// [`GraphError::NodeOutOfBounds`] if `slack` has the wrong length.
pub fn write_laplacian<W: Write>(mut w: W, g: &Graph, slack: &[f64]) -> Result<(), GraphError> {
    if slack.len() != g.num_nodes() {
        return Err(GraphError::NodeOutOfBounds { node: slack.len(), num_nodes: g.num_nodes() });
    }
    let n = g.num_nodes();
    let nnz = n + g.num_edges();
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "% written by tracered-graph")?;
    writeln!(w, "{n} {n} {nnz}")?;
    let deg = g.weighted_degrees();
    for i in 0..n {
        writeln!(w, "{} {} {:.17e}", i + 1, i + 1, deg[i] + slack[i])?;
    }
    for e in g.edges() {
        // Lower triangle: row > column.
        writeln!(w, "{} {} {:.17e}", e.v + 1, e.u + 1, -e.weight)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_symmetric_laplacian() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    % comment\n\
                    3 3 5\n\
                    1 1 2.5\n\
                    2 2 3.0\n\
                    3 3 1.0\n\
                    2 1 -1.5\n\
                    3 2 -1.0\n";
        let mm = read_graph(text.as_bytes()).unwrap();
        assert_eq!(mm.graph.num_nodes(), 3);
        assert_eq!(mm.graph.num_edges(), 2);
        let e0 = mm.graph.edge(0);
        assert_eq!((e0.u, e0.v), (0, 1));
        assert!((e0.weight - 1.5).abs() < 1e-12);
        // Slack: node 0 has diag 2.5, degree 1.5 → slack 1.
        assert!((mm.diag_slack[0] - 1.0).abs() < 1e-12);
        assert!((mm.diag_slack[1] - 0.5).abs() < 1e-12);
        assert!((mm.diag_slack[2] - 0.0).abs() < 1e-12);
    }

    #[test]
    fn reads_pattern_matrix() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    3 3 2\n\
                    2 1\n\
                    3 1\n";
        let mm = read_graph(text.as_bytes()).unwrap();
        assert_eq!(mm.graph.num_edges(), 2);
        assert!(mm.graph.edges().iter().all(|e| e.weight == 1.0));
    }

    #[test]
    fn reads_general_with_mirrored_entries() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    2 2 2\n\
                    1 2 -2.0\n\
                    2 1 -2.0\n";
        let mm = read_graph(text.as_bytes()).unwrap();
        assert_eq!(mm.graph.num_edges(), 1);
        assert!((mm.graph.edge(0).weight - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(read_graph("".as_bytes()).is_err());
        assert!(read_graph("not a header\n1 1 0\n".as_bytes()).is_err());
        assert!(read_graph("%%MatrixMarket matrix array real general\n".as_bytes()).is_err());
        let bad_count = "%%MatrixMarket matrix coordinate real symmetric\n2 2 5\n1 1 1.0\n";
        assert!(read_graph(bad_count.as_bytes()).is_err());
        let oob = "%%MatrixMarket matrix coordinate real symmetric\n2 2 1\n5 1 1.0\n";
        assert!(read_graph(oob.as_bytes()).is_err());
    }

    #[test]
    fn roundtrip_write_read() {
        let g =
            crate::gen::grid2d(3, 3, crate::gen::WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 1);
        let slack: Vec<f64> = (0..9).map(|i| i as f64 * 0.1).collect();
        let mut buf = Vec::new();
        write_laplacian(&mut buf, &g, &slack).unwrap();
        let mm = read_graph(buf.as_slice()).unwrap();
        assert_eq!(mm.graph.num_nodes(), 9);
        assert_eq!(mm.graph.num_edges(), g.num_edges());
        for (a, b) in mm.diag_slack.iter().zip(slack.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
        // Edge weights survive.
        let mut orig: Vec<(usize, usize, f64)> =
            g.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        let mut back: Vec<(usize, usize, f64)> =
            mm.graph.edges().iter().map(|e| (e.u, e.v, e.weight)).collect();
        orig.sort_by(|a, b| a.partial_cmp(b).unwrap());
        back.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (o, b) in orig.iter().zip(back.iter()) {
            assert_eq!(o.0, b.0);
            assert_eq!(o.1, b.1);
            assert!((o.2 - b.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_valued_offdiagonals_are_dropped() {
        let text = "%%MatrixMarket matrix coordinate real symmetric\n\
                    2 2 2\n\
                    1 1 1.0\n\
                    2 1 0.0\n";
        let mm = read_graph(text.as_bytes()).unwrap();
        assert_eq!(mm.graph.num_edges(), 0);
    }
}
