//! Synthetic graph generators.
//!
//! The paper evaluates on SuiteSparse matrices (2-D/3-D meshes and
//! triangular FEM meshes: `ecology2`, `thermal2`, `parabolic_fem`,
//! `tmt_sym`, `G3_circuit`, `NACA0015`, `M6`, `333SP`, `AS365`, `NLR`).
//! Those files are not redistributable inside this workspace, so the
//! generators below produce structurally equivalent families at arbitrary
//! scale — 5-point 2-D grids, 7-point 3-D grids and 6-point triangulated
//! meshes — with configurable weight distributions. Real `.mtx` files can
//! still be used through [`crate::mmio`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::graph::Graph;

/// Distribution of edge weights used by the generators.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum WeightProfile {
    /// All weights 1 (pure topology).
    Unit,
    /// Uniform in `[lo, hi)`.
    Uniform {
        /// Lower bound (must be > 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Log-uniform in `[lo, hi)` — heavy-tailed conductances as seen in
    /// circuit matrices.
    LogUniform {
        /// Lower bound (must be > 0).
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
}

impl WeightProfile {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            WeightProfile::Unit => 1.0,
            WeightProfile::Uniform { lo, hi } => rng.random_range(lo..hi),
            WeightProfile::LogUniform { lo, hi } => {
                let (a, b) = (lo.ln(), hi.ln());
                rng.random_range(a..b).exp()
            }
        }
    }
}

/// 2-D grid graph (5-point stencil), `rows × cols` nodes.
///
/// Structural analog of `ecology2` / `tmt_sym` / `G3_circuit`.
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn grid2d(rows: usize, cols: usize, profile: WeightProfile, seed: u64) -> Graph {
    assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(2 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), profile.sample(&mut rng)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), profile.sample(&mut rng)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("generator produces valid edges")
}

/// 3-D grid graph (7-point stencil), `nx × ny × nz` nodes.
///
/// Structural analog of `thermal2` / `parabolic_fem`.
///
/// # Panics
///
/// Panics if any dimension is zero.
pub fn grid3d(nx: usize, ny: usize, nz: usize, profile: WeightProfile, seed: u64) -> Graph {
    assert!(nx > 0 && ny > 0 && nz > 0, "grid dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |x: usize, y: usize, z: usize| (z * ny + y) * nx + x;
    let mut edges = Vec::with_capacity(3 * nx * ny * nz);
    for z in 0..nz {
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((id(x, y, z), id(x + 1, y, z), profile.sample(&mut rng)));
                }
                if y + 1 < ny {
                    edges.push((id(x, y, z), id(x, y + 1, z), profile.sample(&mut rng)));
                }
                if z + 1 < nz {
                    edges.push((id(x, y, z), id(x, y, z + 1), profile.sample(&mut rng)));
                }
            }
        }
    }
    Graph::from_edges(nx * ny * nz, &edges).expect("generator produces valid edges")
}

/// Triangulated 2-D mesh (grid plus one diagonal per cell, 6-point interior
/// stencil) — the structural analog of the paper's 2-D finite-element
/// triangular meshes (`NACA0015`, `M6`, `AS365`, `NLR`, `333SP`).
///
/// # Panics
///
/// Panics if `rows == 0 || cols == 0`.
pub fn tri_mesh(rows: usize, cols: usize, profile: WeightProfile, seed: u64) -> Graph {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let id = |r: usize, c: usize| r * cols + c;
    let mut edges = Vec::with_capacity(3 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1), profile.sample(&mut rng)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c), profile.sample(&mut rng)));
            }
            if r + 1 < rows && c + 1 < cols {
                edges.push((id(r, c), id(r + 1, c + 1), profile.sample(&mut rng)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("generator produces valid edges")
}

/// Random connected graph: a random spanning tree plus `extra_edges`
/// uniform random chords. Used heavily by tests.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn random_connected(n: usize, extra_edges: usize, profile: WeightProfile, seed: u64) -> Graph {
    assert!(n > 0, "graph must have at least one node");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n - 1 + extra_edges);
    // Random attachment tree.
    for v in 1..n {
        let u = rng.random_range(0..v);
        edges.push((u, v, profile.sample(&mut rng)));
    }
    let mut added = 0;
    let mut guard = 0;
    while added < extra_edges && guard < 100 * extra_edges + 100 {
        guard += 1;
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        if u != v {
            edges.push((u, v, profile.sample(&mut rng)));
            added += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("generator produces valid edges")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid2d_counts() {
        let g = grid2d(3, 4, WeightProfile::Unit, 0);
        assert_eq!(g.num_nodes(), 12);
        // Horizontal: 3*3, vertical: 2*4.
        assert_eq!(g.num_edges(), 9 + 8);
        assert!(g.is_connected());
    }

    #[test]
    fn grid3d_counts() {
        let g = grid3d(2, 3, 4, WeightProfile::Unit, 0);
        assert_eq!(g.num_nodes(), 24);
        #[allow(clippy::identity_op)] // 1·3·4 mirrors the (dims−1)·… structure
        let expected = 1 * 3 * 4 + 2 * 2 * 4 + 2 * 3 * 3;
        assert_eq!(g.num_edges(), expected);
        assert!(g.is_connected());
    }

    #[test]
    fn tri_mesh_counts_and_interior_degree() {
        let g = tri_mesh(4, 4, WeightProfile::Unit, 0);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 12 + 12 + 9);
        // An interior node of a triangulated grid has degree 6.
        assert_eq!(g.degree(5), 6);
        assert!(g.is_connected());
    }

    #[test]
    fn random_connected_is_connected() {
        for seed in 0..5 {
            let g = random_connected(50, 30, WeightProfile::LogUniform { lo: 0.1, hi: 10.0 }, seed);
            assert!(g.is_connected());
            assert_eq!(g.num_edges(), 49 + 30);
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        let a = grid2d(5, 5, WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 42);
        let b = grid2d(5, 5, WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 42);
        assert_eq!(a, b);
        let c = grid2d(5, 5, WeightProfile::Uniform { lo: 0.5, hi: 2.0 }, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn weight_profiles_respect_bounds() {
        let g = grid2d(6, 6, WeightProfile::LogUniform { lo: 0.01, hi: 100.0 }, 7);
        for e in g.edges() {
            assert!(e.weight >= 0.01 && e.weight < 100.0);
        }
        let u = grid2d(6, 6, WeightProfile::Uniform { lo: 1.0, hi: 2.0 }, 7);
        for e in u.edges() {
            assert!(e.weight >= 1.0 && e.weight < 2.0);
        }
    }

    #[test]
    fn unit_profile_gives_unit_weights() {
        let g = tri_mesh(3, 3, WeightProfile::Unit, 0);
        assert!(g.edges().iter().all(|e| e.weight == 1.0));
    }
}
