//! Rooted spanning trees with electrical path utilities.
//!
//! The tree phase of the paper's algorithm treats the spanning tree as a
//! resistor network: the effective resistance between `p` and `q` is the
//! sum of `1/w` along the unique tree path, and the BFS voltage
//! propagation of its Eqs. 13–14 needs to test whether an edge lies on
//! that path. [`RootedTree`] precomputes parent pointers, depths and
//! resistance-to-root prefix sums to answer both in `O(path length)`.

use crate::error::GraphError;
use crate::graph::Graph;

/// Sentinel for "no parent" (the root) and "no edge".
pub const NO_NODE: usize = usize::MAX;

/// A spanning tree of a graph, rooted and preprocessed for path queries.
///
/// # Example
///
/// ```
/// use tracered_graph::{Graph, RootedTree};
///
/// # fn main() -> Result<(), tracered_graph::GraphError> {
/// let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 0.5), (2, 3, 1.0), (0, 3, 2.0)])?;
/// let tree = RootedTree::build(&g, &[0, 1, 2], 0)?;
/// // Path resistance 0→2 is 1/1 + 1/0.5 = 3.
/// let lca = tree.lca_by_climbing(0, 2);
/// assert!((tree.resistance_between(0, 2, lca) - 3.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct RootedTree {
    root: usize,
    parent: Vec<usize>,
    parent_edge: Vec<usize>,
    depth: Vec<usize>,
    /// Σ 1/w along the path to the root.
    resistance_to_root: Vec<f64>,
    /// Nodes in BFS order from the root (parents precede children).
    order: Vec<usize>,
    /// Children lists, needed by iterative DFS consumers (Tarjan LCA).
    child_offsets: Vec<usize>,
    children: Vec<usize>,
}

impl RootedTree {
    /// Builds a rooted tree from `n − 1` edge ids of `g` that must form a
    /// spanning tree.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NotATree`] if the edge count is wrong or the
    /// edges do not span all nodes, and [`GraphError::NodeOutOfBounds`]
    /// for an invalid root.
    pub fn build(g: &Graph, tree_edges: &[usize], root: usize) -> Result<Self, GraphError> {
        let n = g.num_nodes();
        if root >= n {
            return Err(GraphError::NodeOutOfBounds { node: root, num_nodes: n });
        }
        if tree_edges.len() + 1 != n {
            return Err(GraphError::NotATree {
                what: format!("{} edges for {} nodes", tree_edges.len(), n),
            });
        }
        // Adjacency restricted to the tree edges.
        let mut offsets = vec![0usize; n + 1];
        for &id in tree_edges {
            let e = g.edge(id);
            offsets[e.u + 1] += 1;
            offsets[e.v + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut next = offsets.clone();
        let mut adj = vec![(0usize, 0usize); 2 * tree_edges.len()];
        for &id in tree_edges {
            let e = g.edge(id);
            adj[next[e.u]] = (e.v, id);
            next[e.u] += 1;
            adj[next[e.v]] = (e.u, id);
            next[e.v] += 1;
        }
        // BFS from the root.
        let mut parent = vec![NO_NODE; n];
        let mut parent_edge = vec![NO_NODE; n];
        let mut depth = vec![0usize; n];
        let mut resistance_to_root = vec![0.0f64; n];
        let mut order = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::new();
        visited[root] = true;
        queue.push_back(root);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(u, id) in &adj[offsets[v]..offsets[v + 1]] {
                if !visited[u] {
                    visited[u] = true;
                    parent[u] = v;
                    parent_edge[u] = id;
                    depth[u] = depth[v] + 1;
                    resistance_to_root[u] = resistance_to_root[v] + 1.0 / g.edge(id).weight;
                    queue.push_back(u);
                }
            }
        }
        if order.len() != n {
            return Err(GraphError::NotATree {
                what: format!("edges span only {} of {} nodes", order.len(), n),
            });
        }
        // Children lists.
        let mut child_offsets = vec![0usize; n + 1];
        for v in 0..n {
            if parent[v] != NO_NODE {
                child_offsets[parent[v] + 1] += 1;
            }
        }
        for i in 0..n {
            child_offsets[i + 1] += child_offsets[i];
        }
        let mut cnext = child_offsets.clone();
        let mut children = vec![0usize; n - 1];
        for v in 0..n {
            if parent[v] != NO_NODE {
                children[cnext[parent[v]]] = v;
                cnext[parent[v]] += 1;
            }
        }
        Ok(RootedTree {
            root,
            parent,
            parent_edge,
            depth,
            resistance_to_root,
            order,
            child_offsets,
            children,
        })
    }

    /// The root node.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.parent.len()
    }

    /// Parent of `v` ([`NO_NODE`] for the root).
    pub fn parent(&self, v: usize) -> usize {
        self.parent[v]
    }

    /// Id (into the parent graph) of the edge between `v` and its parent
    /// ([`NO_NODE`] for the root).
    pub fn parent_edge(&self, v: usize) -> usize {
        self.parent_edge[v]
    }

    /// Depth of `v` (0 for the root).
    pub fn depth(&self, v: usize) -> usize {
        self.depth[v]
    }

    /// Resistance (Σ 1/w) of the path from `v` to the root.
    pub fn resistance_to_root(&self, v: usize) -> f64 {
        self.resistance_to_root[v]
    }

    /// Nodes in BFS order (parents before children).
    pub fn bfs_order(&self) -> &[usize] {
        &self.order
    }

    /// Children of `v`.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[self.child_offsets[v]..self.child_offsets[v + 1]]
    }

    /// Lowest common ancestor by depth climbing, `O(depth)`.
    ///
    /// For batch queries prefer [`crate::lca::offline_lca`].
    ///
    /// # Panics
    ///
    /// Panics if a node is out of bounds.
    pub fn lca_by_climbing(&self, mut a: usize, mut b: usize) -> usize {
        while self.depth[a] > self.depth[b] {
            a = self.parent[a];
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b];
        }
        while a != b {
            a = self.parent[a];
            b = self.parent[b];
        }
        a
    }

    /// Tree effective resistance between `p` and `q` given their LCA:
    /// `R(p, q) = r(p) + r(q) − 2 r(lca)`.
    pub fn resistance_between(&self, p: usize, q: usize, lca: usize) -> f64 {
        self.resistance_to_root[p] + self.resistance_to_root[q] - 2.0 * self.resistance_to_root[lca]
    }

    /// Edge ids of the unique tree path from `p` to `q` (in order from `p`
    /// up to the LCA, then down to `q`).
    ///
    /// # Panics
    ///
    /// Panics if a node is out of bounds.
    pub fn path_edges(&self, p: usize, q: usize) -> Vec<usize> {
        let lca = self.lca_by_climbing(p, q);
        let mut up = Vec::new();
        let mut v = p;
        while v != lca {
            up.push(self.parent_edge[v]);
            v = self.parent[v];
        }
        let mut down = Vec::new();
        let mut w = q;
        while w != lca {
            down.push(self.parent_edge[w]);
            w = self.parent[w];
        }
        down.reverse();
        up.extend(down);
        up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 0-1-2-3 path plus a 1-4 branch; extra non-tree edge (0, 3).
    fn sample() -> (Graph, RootedTree) {
        let g = Graph::from_edges(
            5,
            &[(0, 1, 1.0), (1, 2, 0.5), (2, 3, 0.25), (1, 4, 2.0), (0, 3, 1.0)],
        )
        .unwrap();
        let t = RootedTree::build(&g, &[0, 1, 2, 3], 0).unwrap();
        (g, t)
    }

    #[test]
    fn structure_is_correct() {
        let (_, t) = sample();
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), NO_NODE);
        assert_eq!(t.parent(1), 0);
        assert_eq!(t.parent(2), 1);
        assert_eq!(t.parent(4), 1);
        assert_eq!(t.depth(3), 3);
        let mut kids: Vec<usize> = t.children(1).to_vec();
        kids.sort_unstable();
        assert_eq!(kids, vec![2, 4]);
    }

    #[test]
    fn resistances_accumulate() {
        let (_, t) = sample();
        assert!((t.resistance_to_root(1) - 1.0).abs() < 1e-12);
        assert!((t.resistance_to_root(2) - 3.0).abs() < 1e-12);
        assert!((t.resistance_to_root(3) - 7.0).abs() < 1e-12);
        assert!((t.resistance_to_root(4) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn lca_and_between_resistance() {
        let (_, t) = sample();
        assert_eq!(t.lca_by_climbing(3, 4), 1);
        assert_eq!(t.lca_by_climbing(0, 3), 0);
        assert_eq!(t.lca_by_climbing(2, 2), 2);
        // R(3,4) = r3 + r4 - 2 r1 = 7 + 1.5 - 2 = 6.5
        assert!((t.resistance_between(3, 4, 1) - 6.5).abs() < 1e-12);
    }

    #[test]
    fn path_edges_connect_endpoints() {
        let (g, t) = sample();
        let path = t.path_edges(3, 4);
        assert_eq!(path.len(), 3); // 3→2, 2→1, 1→4
                                   // Walk the path and confirm it leads from 3 to 4.
        let mut cur = 3usize;
        for &eid in &path {
            cur = g.edge(eid).other(cur);
        }
        assert_eq!(cur, 4);
    }

    #[test]
    fn path_to_self_is_empty() {
        let (_, t) = sample();
        assert!(t.path_edges(2, 2).is_empty());
    }

    #[test]
    fn bfs_order_parents_first() {
        let (_, t) = sample();
        let pos: Vec<usize> = {
            let mut pos = vec![0; 5];
            for (i, &v) in t.bfs_order().iter().enumerate() {
                pos[v] = i;
            }
            pos
        };
        for v in 0..5 {
            if t.parent(v) != NO_NODE {
                assert!(pos[t.parent(v)] < pos[v]);
            }
        }
    }

    #[test]
    fn wrong_edge_count_rejected() {
        let (g, _) = sample();
        assert!(matches!(RootedTree::build(&g, &[0, 1], 0), Err(GraphError::NotATree { .. })));
    }

    #[test]
    fn non_spanning_edges_rejected() {
        // A cycle among nodes 0-1-2 leaves 3, 4 unreached.
        let g =
            Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (3, 4, 1.0)]).unwrap();
        assert!(matches!(
            RootedTree::build(&g, &[0, 1, 2, 3], 0),
            Err(GraphError::NotATree { .. })
        ));
    }

    #[test]
    fn invalid_root_rejected() {
        let (g, _) = sample();
        assert!(matches!(
            RootedTree::build(&g, &[0, 1, 2, 3], 99),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
    }
}
