//! The weighted undirected graph type.

use crate::error::GraphError;

/// A weighted undirected edge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// First endpoint (always `< v` after construction).
    pub u: usize,
    /// Second endpoint.
    pub v: usize,
    /// Positive finite weight (a conductance, in circuit terms).
    pub weight: f64,
}

impl Edge {
    /// Creates an edge, normalising the endpoint order so `u < v`.
    pub fn new(u: usize, v: usize, weight: f64) -> Self {
        if u <= v {
            Edge { u, v, weight }
        } else {
            Edge { u: v, v: u, weight }
        }
    }

    /// The endpoint opposite to `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not an endpoint of this edge.
    pub fn other(&self, node: usize) -> usize {
        if node == self.u {
            self.v
        } else {
            assert_eq!(node, self.v, "node {node} is not an endpoint");
            self.u
        }
    }
}

/// A weighted undirected graph with CSR-style adjacency.
///
/// Nodes are `0..num_nodes()`. Parallel edges are permitted (they simply
/// add conductance); self-loops and non-positive weights are rejected at
/// construction.
///
/// # Example
///
/// ```
/// use tracered_graph::Graph;
///
/// # fn main() -> Result<(), tracered_graph::GraphError> {
/// let g = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 2.0)])?;
/// assert_eq!(g.num_edges(), 2);
/// assert_eq!(g.degree(1), 2);
/// assert!((g.weighted_degree(1) - 3.0).abs() < 1e-12);
/// assert!(g.is_connected());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Graph {
    num_nodes: usize,
    edges: Vec<Edge>,
    /// CSR offsets into `adj`; length `num_nodes + 1`.
    adj_offsets: Vec<usize>,
    /// Flattened adjacency: `(neighbour, edge_id)` pairs.
    adj: Vec<(usize, usize)>,
}

impl Graph {
    /// Builds a graph from `(u, v, weight)` triples.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfBounds`], [`GraphError::SelfLoop`]
    /// or [`GraphError::InvalidWeight`] when the input is malformed.
    pub fn from_edges(num_nodes: usize, edges: &[(usize, usize, f64)]) -> Result<Self, GraphError> {
        let list: Vec<Edge> = edges.iter().map(|&(u, v, w)| Edge::new(u, v, w)).collect();
        Self::from_edge_list(num_nodes, list)
    }

    /// Builds a graph from an [`Edge`] list.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Graph::from_edges`].
    pub fn from_edge_list(num_nodes: usize, edges: Vec<Edge>) -> Result<Self, GraphError> {
        for (idx, e) in edges.iter().enumerate() {
            if e.u >= num_nodes || e.v >= num_nodes {
                return Err(GraphError::NodeOutOfBounds { node: e.u.max(e.v), num_nodes });
            }
            if e.u == e.v {
                return Err(GraphError::SelfLoop { node: e.u });
            }
            if !e.weight.is_finite() || e.weight <= 0.0 {
                return Err(GraphError::InvalidWeight { edge: idx, weight: e.weight });
            }
        }
        let mut adj_offsets = vec![0usize; num_nodes + 1];
        for e in &edges {
            adj_offsets[e.u + 1] += 1;
            adj_offsets[e.v + 1] += 1;
        }
        for i in 0..num_nodes {
            adj_offsets[i + 1] += adj_offsets[i];
        }
        let mut next = adj_offsets.clone();
        let mut adj = vec![(0usize, 0usize); 2 * edges.len()];
        for (id, e) in edges.iter().enumerate() {
            adj[next[e.u]] = (e.v, id);
            next[e.u] += 1;
            adj[next[e.v]] = (e.u, id);
            next[e.v] += 1;
        }
        Ok(Graph { num_nodes, edges, adj_offsets, adj })
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The edge list.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= self.num_edges()`.
    pub fn edge(&self, id: usize) -> Edge {
        self.edges[id]
    }

    /// Neighbours of `node` as `(neighbour, edge_id)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    pub fn neighbors(&self, node: usize) -> &[(usize, usize)] {
        &self.adj[self.adj_offsets[node]..self.adj_offsets[node + 1]]
    }

    /// Unweighted degree of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj_offsets[node + 1] - self.adj_offsets[node]
    }

    /// Weighted degree (total incident conductance) of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node >= self.num_nodes()`.
    pub fn weighted_degree(&self, node: usize) -> f64 {
        self.neighbors(node).iter().map(|&(_, id)| self.edges[id].weight).sum()
    }

    /// Weighted degrees of all nodes.
    pub fn weighted_degrees(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.num_nodes];
        for e in &self.edges {
            d[e.u] += e.weight;
            d[e.v] += e.weight;
        }
        d
    }

    /// Total edge weight.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Number of connected components (isolated nodes count as components).
    pub fn num_components(&self) -> usize {
        let mut visited = vec![false; self.num_nodes];
        let mut components = 0;
        let mut stack = Vec::new();
        for s in 0..self.num_nodes {
            if visited[s] {
                continue;
            }
            components += 1;
            visited[s] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &(u, _) in self.neighbors(v) {
                    if !visited[u] {
                        visited[u] = true;
                        stack.push(u);
                    }
                }
            }
        }
        components
    }

    /// Returns `true` if the graph is connected (and non-empty).
    pub fn is_connected(&self) -> bool {
        self.num_nodes > 0 && self.num_components() == 1
    }

    /// Builds the subgraph spanned by a set of edge ids, over the same
    /// node set.
    ///
    /// # Panics
    ///
    /// Panics if any edge id is out of bounds.
    pub fn edge_subgraph(&self, edge_ids: &[usize]) -> Graph {
        let edges: Vec<Edge> = edge_ids.iter().map(|&id| self.edges[id]).collect();
        Graph::from_edge_list(self.num_nodes, edges)
            .expect("edges of a valid graph form a valid subgraph")
    }

    /// Builds the subgraph induced by a node subset, relabeling nodes to
    /// `0..nodes.len()`. Returns the subgraph and the old-id vector
    /// (`mapping[new] = old`).
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-bounds ids.
    pub fn induced_subgraph(&self, nodes: &[usize]) -> (Graph, Vec<usize>) {
        let (sub, node_map, _) = self.induced_subgraph_with_edges(nodes);
        (sub, node_map)
    }

    /// Builds the subgraph induced by a node subset like
    /// [`Graph::induced_subgraph`], additionally returning the edge map
    /// (`edge_map[local_edge] = global_edge`) — the view partitioned
    /// pipelines need to translate locally-selected edges back to parent
    /// edge ids.
    ///
    /// Local edges appear in parent edge-id order, so the mapping is
    /// strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` contains duplicates or out-of-bounds ids.
    pub fn induced_subgraph_with_edges(&self, nodes: &[usize]) -> (Graph, Vec<usize>, Vec<usize>) {
        let mut old_to_new = vec![usize::MAX; self.num_nodes];
        for (new, &old) in nodes.iter().enumerate() {
            assert!(old < self.num_nodes, "node {old} out of bounds");
            assert_eq!(old_to_new[old], usize::MAX, "duplicate node {old}");
            old_to_new[old] = new;
        }
        let mut edges = Vec::new();
        let mut edge_map = Vec::new();
        for (id, e) in self.edges.iter().enumerate() {
            let (nu, nv) = (old_to_new[e.u], old_to_new[e.v]);
            if nu != usize::MAX && nv != usize::MAX {
                edges.push(Edge::new(nu, nv, e.weight));
                edge_map.push(id);
            }
        }
        let sub = Graph::from_edge_list(nodes.len(), edges)
            .expect("relabeled edges of a valid graph are valid");
        (sub, nodes.to_vec(), edge_map)
    }

    /// Node sets of the connected components, largest first.
    pub fn components(&self) -> Vec<Vec<usize>> {
        let mut visited = vec![false; self.num_nodes];
        let mut out = Vec::new();
        let mut stack = Vec::new();
        for s in 0..self.num_nodes {
            if visited[s] {
                continue;
            }
            let mut comp = vec![s];
            visited[s] = true;
            stack.push(s);
            while let Some(v) = stack.pop() {
                for &(u, _) in self.neighbors(v) {
                    if !visited[u] {
                        visited[u] = true;
                        comp.push(u);
                        stack.push(u);
                    }
                }
            }
            out.push(comp);
        }
        out.sort_by_key(|c| std::cmp::Reverse(c.len()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_normalises_order() {
        let e = Edge::new(5, 2, 1.0);
        assert_eq!((e.u, e.v), (2, 5));
        assert_eq!(e.other(2), 5);
        assert_eq!(e.other(5), 2);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn edge_other_panics_for_non_endpoint() {
        Edge::new(0, 1, 1.0).other(7);
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            Graph::from_edges(2, &[(0, 2, 1.0)]),
            Err(GraphError::NodeOutOfBounds { .. })
        ));
        assert!(matches!(Graph::from_edges(2, &[(1, 1, 1.0)]), Err(GraphError::SelfLoop { .. })));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, 0.0)]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, f64::NAN)]),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            Graph::from_edges(2, &[(0, 1, -3.0)]),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn adjacency_is_consistent() {
        let g =
            Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (0, 3, 4.0)]).unwrap();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        let n0: Vec<usize> = g.neighbors(0).iter().map(|&(v, _)| v).collect();
        assert!(n0.contains(&1) && n0.contains(&3));
        // Edge ids in the adjacency refer back to the right edges.
        for node in 0..4 {
            for &(nbr, id) in g.neighbors(node) {
                let e = g.edge(id);
                assert!(e.u == node && e.v == nbr || e.v == node && e.u == nbr);
            }
        }
    }

    #[test]
    fn weighted_degrees_sum_to_twice_total_weight() {
        let g = Graph::from_edges(4, &[(0, 1, 1.5), (1, 2, 2.5), (2, 3, 3.0)]).unwrap();
        let total: f64 = g.weighted_degrees().iter().sum();
        assert!((total - 2.0 * g.total_weight()).abs() < 1e-12);
        assert!((g.weighted_degree(1) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn connectivity_and_components() {
        let connected = Graph::from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap();
        assert!(connected.is_connected());
        let disconnected = Graph::from_edges(4, &[(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        assert!(!disconnected.is_connected());
        assert_eq!(disconnected.num_components(), 2);
        let isolated = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        assert_eq!(isolated.num_components(), 2);
    }

    #[test]
    fn empty_graph_is_not_connected() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.num_components(), 0);
    }

    #[test]
    fn parallel_edges_are_allowed() {
        let g = Graph::from_edges(2, &[(0, 1, 1.0), (0, 1, 2.0)]).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(0), 2);
        assert!((g.weighted_degree(0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn induced_subgraph_relabels_and_filters() {
        let g =
            Graph::from_edges(5, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0)]).unwrap();
        let (sub, map) = g.induced_subgraph(&[1, 2, 4]);
        assert_eq!(sub.num_nodes(), 3);
        // Only edge (1,2) survives; (3,4) loses node 3.
        assert_eq!(sub.num_edges(), 1);
        assert_eq!(sub.edge(0).weight, 2.0);
        assert_eq!(map, vec![1, 2, 4]);
        let (e0u, e0v) = (sub.edge(0).u, sub.edge(0).v);
        assert_eq!((map[e0u], map[e0v]), (1, 2));
    }

    #[test]
    fn induced_subgraph_with_edges_maps_back_to_parent_ids() {
        let g = Graph::from_edges(
            6,
            &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0), (3, 4, 4.0), (4, 5, 5.0), (1, 4, 6.0)],
        )
        .unwrap();
        let (sub, node_map, edge_map) = g.induced_subgraph_with_edges(&[1, 2, 4, 5]);
        assert_eq!(sub.num_nodes(), 4);
        // Surviving edges: (1,2)=id 1, (4,5)=id 4, (1,4)=id 5.
        assert_eq!(edge_map, vec![1, 4, 5]);
        assert_eq!(node_map, vec![1, 2, 4, 5]);
        for (local, &global) in edge_map.iter().enumerate() {
            let le = sub.edge(local);
            let ge = g.edge(global);
            assert_eq!(ge.weight, le.weight);
            assert_eq!((node_map[le.u], node_map[le.v]), (ge.u, ge.v));
        }
        // Edge map is strictly increasing (parent edge-id order).
        assert!(edge_map.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    #[should_panic(expected = "duplicate node")]
    fn induced_subgraph_rejects_duplicates() {
        let g = Graph::from_edges(3, &[(0, 1, 1.0)]).unwrap();
        g.induced_subgraph(&[0, 0]);
    }

    #[test]
    fn components_are_sorted_by_size() {
        let g = Graph::from_edges(6, &[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let comps = g.components();
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0].len(), 3);
        assert_eq!(comps[1].len(), 2);
        assert_eq!(comps[2], vec![5]);
    }

    #[test]
    fn edge_subgraph_selects_edges() {
        let g = Graph::from_edges(4, &[(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        let s = g.edge_subgraph(&[0, 2]);
        assert_eq!(s.num_nodes(), 4);
        assert_eq!(s.num_edges(), 2);
        assert_eq!(s.edge(1).weight, 3.0);
    }
}
