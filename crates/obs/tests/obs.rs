//! Unit suite for the observability crate: histogram quantile
//! exactness, chrome-trace well-formedness, the disabled-path contract,
//! and a generous-margin overhead smoke test.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use tracered_obs::{recorder, set_enabled, validate_json, Counter, Gauge, Histogram, Watermark};

/// Tests that toggle the global tracing flag or inspect trace contents
/// serialize through this lock so they never see each other's spans.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TRACE_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn histogram_quantiles_are_bucket_exact_on_uniform_grid() {
    let h = Histogram::new();
    // 1ms..=1000ms, one observation each: p50 = 500ms, p99 = 990ms,
    // both exact up to one bucket's relative width.
    for ms in 1..=1000u64 {
        h.record(ms as f64 / 1000.0);
    }
    assert_eq!(h.count(), 1000);
    let tol = Histogram::bucket_ratio(); // 2^(1/8) ≈ 1.09
    for (q, want) in [(0.50, 0.500), (0.90, 0.900), (0.99, 0.990)] {
        let got = h.quantile(q);
        let ratio = got / want;
        assert!(ratio < tol && ratio > 1.0 / tol, "q={q}: got {got}, want {want} within ×{tol}");
    }
    assert!((h.mean() - 0.5005).abs() < 1e-3, "mean {}", h.mean());
    assert_eq!(h.max_s(), 1.0);
    assert_eq!(h.min_s(), 0.001);
}

#[test]
fn histogram_quantiles_on_bimodal_distribution() {
    let h = Histogram::new();
    // 90 fast (10µs) + 10 slow (10ms): p50 must sit on the fast mode,
    // p99 on the slow mode.
    for _ in 0..90 {
        h.record(10e-6);
    }
    for _ in 0..10 {
        h.record(10e-3);
    }
    let tol = Histogram::bucket_ratio();
    let p50 = h.quantile(0.50);
    let p99 = h.quantile(0.99);
    assert!(p50 / 10e-6 < tol && p50 / 10e-6 > 1.0 / tol, "p50 {p50}");
    assert!(p99 / 10e-3 < tol && p99 / 10e-3 > 1.0 / tol, "p99 {p99}");
}

#[test]
fn histogram_edge_cases() {
    let h = Histogram::new();
    assert_eq!(h.quantile(0.5), 0.0);
    assert_eq!(h.mean(), 0.0);
    assert_eq!(h.summary().count, 0);
    // Degenerate and out-of-range observations neither panic nor skew
    // the regular buckets.
    h.record(0.0);
    h.record(-1.0);
    h.record(f64::NAN);
    h.record(1e9); // beyond the last bucket → overflow, reported as max
    assert_eq!(h.count(), 4);
    assert_eq!(h.quantile(1.0), 1e9);
    assert_eq!(h.quantile(0.25), 0.0);
    let buckets = h.nonzero_buckets();
    assert_eq!(buckets.iter().map(|&(_, c)| c).sum::<u64>(), 4);
}

#[test]
fn histogram_single_observation() {
    let h = Histogram::new();
    h.record_duration(Duration::from_micros(250));
    let tol = Histogram::bucket_ratio();
    for q in [0.0, 0.5, 0.99, 1.0] {
        let got = h.quantile(q);
        assert!(got / 250e-6 < tol && got / 250e-6 > 1.0 / tol, "q={q} got {got}");
    }
    let s = h.summary();
    assert_eq!(s.count, 1);
    assert_eq!(s.max_s, 250e-6);
}

#[test]
fn counter_gauge_watermark_basics() {
    let c = Counter::new();
    c.inc();
    c.add(4);
    assert_eq!(c.get(), 5);

    let g = Gauge::new();
    g.inc();
    g.inc();
    g.inc();
    g.dec();
    assert_eq!(g.get(), 2);
    assert_eq!(g.max_seen(), 3);
    g.set(10);
    assert_eq!(g.max_seen(), 10);

    let w = Watermark::new();
    w.observe(7);
    w.observe(3);
    assert_eq!(w.get(), 7);
}

#[test]
fn global_registry_returns_same_instrument() {
    let a = tracered_obs::counter("test.registry.counter");
    let b = tracered_obs::counter("test.registry.counter");
    a.inc();
    b.inc();
    assert_eq!(a.get() % 2, 0, "both handles hit the same counter");
}

#[test]
fn disabled_recorder_records_nothing() {
    let _l = locked();
    recorder().reset();
    set_enabled(false);
    {
        let _s = tracered_obs::span!("off.span", { n: 1 });
        tracered_obs::event!("off.event");
        assert!(_s.is_none(), "span! must be a no-op while disabled");
    }
    let trace = recorder().trace();
    assert!(!trace.has_span("off.span"));
    assert!(trace.events.iter().all(|e| e.name != "off.event"));
}

#[test]
fn span_args_are_not_evaluated_while_disabled() {
    let _l = locked();
    set_enabled(false);
    let evaluated = std::cell::Cell::new(false);
    let probe = || {
        evaluated.set(true);
        1usize
    };
    let _s = tracered_obs::span!("off.lazy", { n: probe() });
    assert!(!evaluated.get(), "argument expressions must stay unevaluated");
}

#[test]
fn spans_nest_and_aggregate_with_self_time() {
    let _l = locked();
    recorder().reset();
    set_enabled(true);
    {
        let _outer = tracered_obs::span!("agg.outer", { n: 8 });
        for i in 0..3 {
            let _inner = tracered_obs::span!("agg.inner", { i });
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    set_enabled(false);
    let trace = recorder().trace();
    assert_eq!(trace.span_count("agg.inner"), 3);
    assert_eq!(trace.span_count("agg.outer"), 1);
    let aggs = trace.aggregate();
    let outer = aggs.iter().find(|a| a.path == "agg.outer").expect("outer path");
    let inner = aggs.iter().find(|a| a.path == "agg.outer/agg.inner").expect("nested path");
    assert_eq!(inner.depth, 1);
    assert_eq!(inner.count, 3);
    assert!(outer.total >= inner.total, "parent covers children");
    assert!(outer.self_time <= outer.total - inner.total + Duration::from_millis(1));
    let report = recorder().report();
    assert!(report.contains("agg.outer"));
    assert!(report.contains("  agg.inner"), "report indents nested spans:\n{report}");
    recorder().reset();
}

#[test]
fn chrome_trace_json_is_well_formed() {
    let _l = locked();
    recorder().reset();
    set_enabled(true);
    {
        let _a = tracered_obs::span!("chrome.outer", { n: 4, nnz: 16 });
        let _b = tracered_obs::span!("chrome.inner");
        tracered_obs::event!("chrome.tick", { step: 2 });
    }
    set_enabled(false);
    let json = recorder().chrome_trace_json();
    validate_json(&json).expect("chrome trace must be valid JSON");
    assert!(json.trim_start().starts_with('['), "trace_event format is a JSON array");
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"ph\":\"i\""));
    assert!(json.contains("\"chrome.outer\""));
    assert!(json.contains("\"nnz\":16.0"));

    let snapshot = recorder().snapshot_json();
    validate_json(&snapshot).expect("snapshot must be valid JSON");
    assert!(snapshot.contains("\"spans\""));
    recorder().reset();
}

#[test]
fn json_validator_rejects_malformed_documents() {
    for bad in [
        "",
        "{",
        "[1,]",
        "{\"a\":}",
        "{\"a\" 1}",
        "[1 2]",
        "\"unterminated",
        "01",
        "1.e3",
        "nulll",
        "[1] trailing",
        "{\"bad escape\": \"\\q\"}",
    ] {
        assert!(validate_json(bad).is_err(), "accepted malformed JSON: {bad:?}");
    }
    for good in ["0", "-1.5e-3", "[]", "{}", "[[[]]]", "\"\\u00e9\"", "{\"k\":[true,false,null]}"] {
        assert!(validate_json(good).is_ok(), "rejected valid JSON: {good:?}");
    }
}

#[test]
fn cross_thread_spans_carry_their_own_thread_id() {
    let _l = locked();
    recorder().reset();
    set_enabled(true);
    {
        let _s = tracered_obs::span!("threads.main");
        std::thread::spawn(|| {
            let _w = tracered_obs::span!("threads.worker");
        })
        .join()
        .unwrap();
    }
    set_enabled(false);
    let trace = recorder().trace();
    let main = trace.spans.iter().find(|s| s.name == "threads.main").expect("main span");
    let worker = trace.spans.iter().find(|s| s.name == "threads.worker").expect("worker span");
    assert_ne!(main.thread, worker.thread, "each thread gets its own tid lane");
    recorder().reset();
}

/// Generous-margin overhead smoke: a loop of disabled `span!` sites
/// must not be dramatically slower than the bare loop. The margin is
/// wide (10×) because CI wall clocks are noisy — the real contract is
/// "one relaxed load", and the equivalence tests pin bit-identity.
#[test]
fn disabled_spans_add_no_measurable_cost() {
    let _l = locked();
    set_enabled(false);
    const N: usize = 200_000;

    let mut acc = 0u64;
    let t0 = Instant::now();
    for i in 0..N {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    let bare = t0.elapsed();
    std::hint::black_box(acc);

    let mut acc2 = 0u64;
    let t1 = Instant::now();
    for i in 0..N {
        let _s = tracered_obs::span!("overhead.site", { i });
        acc2 = acc2.wrapping_mul(6364136223846793005).wrapping_add(i as u64);
    }
    let instrumented = t1.elapsed();
    std::hint::black_box(acc2);

    assert_eq!(acc, acc2, "instrumentation must not perturb arithmetic");
    let floor = Duration::from_micros(500);
    assert!(
        instrumented < bare.max(floor) * 10,
        "disabled span! overhead out of bounds: bare {bare:?}, instrumented {instrumented:?}"
    );
}
