//! The global named-instrument registry.
//!
//! Subsystems that have no natural owner for an instrument (e.g. the
//! process-global worker pool's occupancy gauge) register it here by
//! name; [`crate::Recorder::snapshot_json`] exports every registered
//! instrument alongside the span aggregates. Instruments live for the
//! process lifetime (they are leaked once on first use).

use std::sync::{Mutex, OnceLock};

use crate::instrument::{Counter, Gauge, Histogram};

pub(crate) enum AnyInstrument {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<Vec<(&'static str, AnyInstrument)>> {
    static REGISTRY: OnceLock<Mutex<Vec<(&'static str, AnyInstrument)>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

pub(crate) fn for_each(mut f: impl FnMut(&'static str, &AnyInstrument)) {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (name, inst) in reg.iter() {
        f(name, inst);
    }
}

/// The globally registered counter named `name`, created on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument
/// kind.
pub fn counter(name: &'static str) -> &'static Counter {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (n, inst) in reg.iter() {
        if *n == name {
            match inst {
                AnyInstrument::Counter(c) => return c,
                _ => panic!("instrument '{name}' is registered with a different kind"),
            }
        }
    }
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    reg.push((name, AnyInstrument::Counter(c)));
    c
}

/// The globally registered gauge named `name`, created on first use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument
/// kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (n, inst) in reg.iter() {
        if *n == name {
            match inst {
                AnyInstrument::Gauge(g) => return g,
                _ => panic!("instrument '{name}' is registered with a different kind"),
            }
        }
    }
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    reg.push((name, AnyInstrument::Gauge(g)));
    g
}

/// The globally registered histogram named `name`, created on first
/// use.
///
/// # Panics
///
/// Panics if `name` is already registered as a different instrument
/// kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let mut reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    for (n, inst) in reg.iter() {
        if *n == name {
            match inst {
                AnyInstrument::Histogram(h) => return h,
                _ => panic!("instrument '{name}' is registered with a different kind"),
            }
        }
    }
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    reg.push((name, AnyInstrument::Histogram(h)));
    h
}
