//! A minimal JSON syntax checker.
//!
//! Exporters in this crate emit JSON by string assembly; this validator
//! is the independent witness that what they emit actually parses. It
//! checks syntax only (RFC 8259 grammar, including string escapes and
//! number forms) — no values are materialized, so it is cheap enough
//! for tests and CI smoke steps to run on multi-megabyte traces.

/// Validates that `s` is one well-formed JSON value.
///
/// # Errors
///
/// A human-readable description with a byte offset when the input is
/// not valid JSON.
///
/// # Example
///
/// ```
/// use tracered_obs::validate_json;
/// assert!(validate_json("{\"a\": [1, 2.5e-3, null, \"x\\n\"]}").is_ok());
/// assert!(validate_json("{\"a\": }").is_err());
/// ```
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing content at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at {}", *c as char, *pos)),
        None => Err(format!("unexpected end of input at byte {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("malformed literal at byte {pos} (expected '{word}')"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '"'
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                Some(b'u') => {
                    let hex = b.get(*pos + 2..*pos + 6).ok_or("truncated \\u escape")?;
                    if !hex.iter().all(u8::is_ascii_hexdigit) {
                        return Err(format!("bad \\u escape at byte {pos}"));
                    }
                    *pos += 6;
                }
                _ => return Err(format!("bad escape at byte {pos}")),
            },
            c if c < 0x20 => return Err(format!("raw control byte in string at {pos}")),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_start = *pos;
    let int_digits = eat_digits(b, pos);
    if int_digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    if int_digits > 1 && b[int_start] == b'0' {
        return Err(format!("leading zero in number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(b, pos) == 0 {
            return Err(format!("malformed number fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(b, pos) == 0 {
            return Err(format!("malformed number exponent at byte {start}"));
        }
    }
    Ok(())
}

fn eat_digits(b: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    *pos - start
}
