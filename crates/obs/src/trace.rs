//! Collected trace data and its views: chrome-trace JSON, per-path
//! aggregation, and the plain-text hierarchical report.

use std::collections::HashMap;
use std::time::Duration;

/// One completed span.
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// Span name (a `.`-separated taxonomy name, e.g. `chol.numeric`).
    pub name: &'static str,
    /// Start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Recorder-assigned id of the recording thread.
    pub thread: u32,
    /// Unique span id (nonzero).
    pub id: u64,
    /// Id of the enclosing span on the same thread, `0` for roots.
    pub parent: u64,
    /// Numeric key/value arguments captured at the call site.
    pub args: Vec<(&'static str, f64)>,
}

/// One zero-duration instant event (e.g. a solver iteration).
#[derive(Debug, Clone)]
pub struct InstantEvent {
    /// Event name.
    pub name: &'static str,
    /// Timestamp, nanoseconds since the process trace epoch.
    pub ts_ns: u64,
    /// Recorder-assigned id of the recording thread.
    pub thread: u32,
    /// Numeric key/value arguments.
    pub args: Vec<(&'static str, f64)>,
}

/// Aggregated statistics for one distinct span *path* (the chain of
/// span names from the root, joined with `/`).
#[derive(Debug, Clone)]
pub struct SpanAgg {
    /// Full path, e.g. `sparsify/sparsify.iter/chol.factorize`.
    pub path: String,
    /// Leaf span name.
    pub name: &'static str,
    /// Nesting depth (0 for roots).
    pub depth: usize,
    /// Number of spans on this path.
    pub count: u64,
    /// Summed wall time.
    pub total: Duration,
    /// Summed wall time minus time spent in recorded child spans.
    pub self_time: Duration,
}

/// A point-in-time copy of everything the recorder has buffered.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Completed spans, sorted by start time.
    pub spans: Vec<SpanEvent>,
    /// Instant events, sorted by timestamp.
    pub events: Vec<InstantEvent>,
}

impl Trace {
    /// Whether any span with this exact name was recorded.
    pub fn has_span(&self, name: &str) -> bool {
        self.spans.iter().any(|s| s.name == name)
    }

    /// Number of spans with this exact name.
    pub fn span_count(&self, name: &str) -> usize {
        self.spans.iter().filter(|s| s.name == name).count()
    }

    /// Summed duration of all spans with this exact name.
    pub fn span_total(&self, name: &str) -> Duration {
        Duration::from_nanos(self.spans.iter().filter(|s| s.name == name).map(|s| s.dur_ns).sum())
    }

    /// Per-path aggregates, sorted by path (parents sort before their
    /// children).
    pub fn aggregate(&self) -> Vec<SpanAgg> {
        // Rebuild each span's path by climbing parent links. A parent
        // recorded on another thread (or cleared by a reset) simply
        // roots the path at this span.
        let by_id: HashMap<u64, (&'static str, u64)> =
            self.spans.iter().map(|s| (s.id, (s.name, s.parent))).collect();
        let mut path_memo: HashMap<u64, String> = HashMap::new();
        fn path_of(
            id: u64,
            by_id: &HashMap<u64, (&'static str, u64)>,
            memo: &mut HashMap<u64, String>,
        ) -> String {
            if let Some(p) = memo.get(&id) {
                return p.clone();
            }
            let Some(&(name, parent)) = by_id.get(&id) else {
                return String::new();
            };
            let prefix = if parent == 0 { String::new() } else { path_of(parent, by_id, memo) };
            let path =
                if prefix.is_empty() { name.to_string() } else { format!("{prefix}/{name}") };
            memo.insert(id, path.clone());
            path
        }

        struct Acc {
            name: &'static str,
            count: u64,
            total_ns: u64,
        }
        let mut stats: HashMap<String, Acc> = HashMap::new();
        let mut child_ns: HashMap<String, u64> = HashMap::new();
        for s in &self.spans {
            let path = path_of(s.id, &by_id, &mut path_memo);
            if s.parent != 0 && by_id.contains_key(&s.parent) {
                let parent_path = path_of(s.parent, &by_id, &mut path_memo);
                *child_ns.entry(parent_path).or_insert(0) += s.dur_ns;
            }
            let acc = stats.entry(path).or_insert(Acc { name: s.name, count: 0, total_ns: 0 });
            acc.count += 1;
            acc.total_ns += s.dur_ns;
        }
        let mut out: Vec<SpanAgg> = stats
            .into_iter()
            .map(|(path, acc)| {
                let children = child_ns.get(&path).copied().unwrap_or(0);
                SpanAgg {
                    depth: path.matches('/').count(),
                    name: acc.name,
                    count: acc.count,
                    total: Duration::from_nanos(acc.total_ns),
                    self_time: Duration::from_nanos(acc.total_ns.saturating_sub(children)),
                    path,
                }
            })
            .collect();
        out.sort_by(|a, b| a.path.cmp(&b.path));
        out
    }

    /// Plain-text hierarchical summary: one row per distinct span path,
    /// indented by nesting depth, with call count, total and self time.
    pub fn report(&self) -> String {
        let aggs = self.aggregate();
        let mut out = String::new();
        out.push_str(&format!("{:<52} {:>8} {:>12} {:>12}\n", "span", "count", "total", "self"));
        for a in &aggs {
            let label = format!("{}{}", "  ".repeat(a.depth), a.name);
            out.push_str(&format!(
                "{:<52} {:>8} {:>12} {:>12}\n",
                label,
                a.count,
                fmt_duration(a.total),
                fmt_duration(a.self_time)
            ));
        }
        if !self.events.is_empty() {
            out.push_str(&format!("instant events: {}\n", self.events.len()));
        }
        out
    }

    /// The trace as a chrome://tracing `trace_event` JSON array.
    /// Spans become complete (`"ph":"X"`) events, instant events become
    /// `"ph":"i"` events; timestamps are microseconds since the process
    /// trace epoch and each recorder thread gets its own `tid` lane.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("[");
        let mut first = true;
        let mut sep = |out: &mut String| {
            if first {
                first = false;
                out.push('\n');
            } else {
                out.push_str(",\n");
            }
        };
        for s in &self.spans {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{}}}",
                escape(s.name),
                s.thread,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3,
                args_json(&s.args)
            ));
        }
        for e in &self.events {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                 \"tid\":{},\"ts\":{:.3},\"args\":{}}}",
                escape(e.name),
                e.thread,
                e.ts_ns as f64 / 1e3,
                args_json(&e.args)
            ));
        }
        out.push_str("\n]\n");
        out
    }
}

/// Serializes span arguments as a JSON object (non-finite values become
/// `null`, mirroring the bench JSON writer).
pub(crate) fn args_json(args: &[(&'static str, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{}", escape(k), num_json(*v)));
    }
    out.push('}');
    out
}

/// A finite `f64` as JSON, `null` otherwise.
pub(crate) fn num_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Human-friendly duration: picks ns/µs/ms/s by magnitude.
pub(crate) fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.3}s", ns as f64 / 1e9)
    }
}
