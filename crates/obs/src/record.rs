//! The global recorder: span guards, instant events, and per-thread
//! buffers.
//!
//! Mirrors the `tracered_par` per-worker scratch pattern: every thread
//! that records owns an `Arc`'d buffer registered once with the global
//! [`Recorder`]; the hot path pushes into its own buffer (one
//! uncontended mutex that only the owning thread and a draining
//! [`Recorder::trace`] ever touch), so recording never serializes
//! workers against each other.
//!
//! When tracing is disabled (the default) the entire span machinery
//! collapses to one relaxed `bool` load — no `Instant::now()`, no
//! allocation, no buffer touch — which is what keeps instrumented hot
//! paths bit-identical and effectively free.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::trace::{InstantEvent, SpanEvent, Trace};

static ENABLED: AtomicBool = AtomicBool::new(false);
static ITER_EVENTS: AtomicBool = AtomicBool::new(false);

/// Whether span recording is on. One relaxed load — this is the entire
/// cost of an instrumented code path while tracing is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns span recording on or off. Spans already entered keep recording
/// to completion; new [`crate::span!`] sites become no-ops immediately.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether high-volume per-iteration events (solver convergence traces)
/// should be emitted. Requires [`enabled`] too, so the default trace of
/// a long solve stays small.
#[inline]
pub fn iter_events_enabled() -> bool {
    ITER_EVENTS.load(Ordering::Relaxed) && enabled()
}

/// Turns per-iteration convergence events on or off (only observable
/// while tracing is enabled).
pub fn set_iter_events(on: bool) {
    ITER_EVENTS.store(on, Ordering::Relaxed);
}

/// Process-wide time origin for trace timestamps. Fixed at first use and
/// never reset, so timestamps from before and after a
/// [`Recorder::reset`] stay on one monotonic axis.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One thread's event storage. Only the owning thread pushes; only
/// [`Recorder::trace`] / [`Recorder::reset`] read or clear, so the
/// mutexes are uncontended in steady state.
struct ThreadBuf {
    thread: u32,
    spans: Mutex<Vec<SpanEvent>>,
    events: Mutex<Vec<InstantEvent>>,
}

/// The process-global span/event sink. Obtain it with [`recorder`].
pub struct Recorder {
    buffers: Mutex<Vec<Arc<ThreadBuf>>>,
    next_span: AtomicU64,
    next_thread: AtomicU32,
}

/// The process-global [`Recorder`].
///
/// # Example
///
/// ```
/// tracered_obs::set_enabled(true);
/// {
///     let _root = tracered_obs::span!("doc.work", { items: 3 });
/// }
/// tracered_obs::set_enabled(false);
/// let report = tracered_obs::recorder().report();
/// assert!(report.contains("doc.work"));
/// tracered_obs::recorder().reset();
/// ```
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(|| Recorder {
        buffers: Mutex::new(Vec::new()),
        next_span: AtomicU64::new(1),
        next_thread: AtomicU32::new(1),
    })
}

struct Local {
    buf: Arc<ThreadBuf>,
    stack: Vec<u64>,
}

thread_local! {
    static LOCAL: RefCell<Option<Local>> = const { RefCell::new(None) };
}

fn with_local<R>(f: impl FnOnce(&mut Local) -> R) -> R {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let local = slot.get_or_insert_with(|| {
            let rec = recorder();
            let buf = Arc::new(ThreadBuf {
                thread: rec.next_thread.fetch_add(1, Ordering::Relaxed),
                spans: Mutex::new(Vec::new()),
                events: Mutex::new(Vec::new()),
            });
            rec.buffers.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&buf));
            Local { buf, stack: Vec::new() }
        });
        f(local)
    })
}

impl Recorder {
    /// Drains nothing: clones every thread's buffered events into one
    /// [`Trace`], sorted by start time. Buffers keep accumulating.
    pub fn trace(&self) -> Trace {
        let buffers = self.buffers.lock().unwrap_or_else(|e| e.into_inner());
        let mut spans = Vec::new();
        let mut events = Vec::new();
        for buf in buffers.iter() {
            spans.extend(buf.spans.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
            events.extend(buf.events.lock().unwrap_or_else(|e| e.into_inner()).iter().cloned());
        }
        spans.sort_by_key(|s| (s.start_ns, s.id));
        events.sort_by_key(|e| e.ts_ns);
        Trace { spans, events }
    }

    /// Clears every thread's buffered events. Thread registrations (and
    /// the time origin) survive, so recording can resume immediately.
    pub fn reset(&self) {
        let buffers = self.buffers.lock().unwrap_or_else(|e| e.into_inner());
        for buf in buffers.iter() {
            buf.spans.lock().unwrap_or_else(|e| e.into_inner()).clear();
            buf.events.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
    }

    /// A plain-text hierarchical summary of everything recorded so far:
    /// one row per distinct span path with call count, total and self
    /// time. See [`Trace::report`].
    pub fn report(&self) -> String {
        self.trace().report()
    }

    /// Everything recorded so far as a chrome://tracing `trace_event`
    /// JSON array — write it to a file and load it in a trace viewer
    /// (`chrome://tracing` or <https://ui.perfetto.dev>). See
    /// [`Trace::chrome_trace_json`].
    pub fn chrome_trace_json(&self) -> String {
        self.trace().chrome_trace_json()
    }

    /// A machine-readable JSON object: per-path span aggregates plus
    /// every globally registered instrument. This is what the bench
    /// binaries embed in `BENCH_pr8.json`.
    pub fn snapshot_json(&self) -> String {
        crate::export::snapshot_json(&self.trace())
    }
}

/// An open span: created by [`crate::span!`] (or [`SpanGuard::enter`])
/// only when tracing is enabled, recorded into the current thread's
/// buffer on drop. Guards are `!Send` — a span measures one thread's
/// time slice; cross-thread work gets its own spans on the worker
/// threads.
pub struct SpanGuard {
    name: &'static str,
    begin: Instant,
    start_ns: u64,
    id: u64,
    parent: u64,
    args: Vec<(&'static str, f64)>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// Opens a span unconditionally (callers normally go through
    /// [`crate::span!`], which checks [`enabled`] first).
    pub fn enter(name: &'static str) -> SpanGuard {
        SpanGuard::with_args(name, &[])
    }

    /// Opens a span with key/value arguments attached.
    pub fn with_args(name: &'static str, args: &[(&'static str, f64)]) -> SpanGuard {
        let begin = Instant::now();
        let start_ns = begin.duration_since(epoch()).as_nanos() as u64;
        let id = recorder().next_span.fetch_add(1, Ordering::Relaxed);
        let parent = with_local(|l| {
            let parent = l.stack.last().copied().unwrap_or(0);
            l.stack.push(id);
            parent
        });
        SpanGuard { name, begin, start_ns, id, parent, args: args.to_vec(), _not_send: PhantomData }
    }

    /// Attaches one more argument (useful for values only known at the
    /// end of the span, like a termination reason).
    pub fn arg(&mut self, key: &'static str, value: f64) {
        self.args.push((key, value));
    }

    /// Time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.begin.elapsed()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let dur_ns = self.begin.elapsed().as_nanos() as u64;
        let args = std::mem::take(&mut self.args);
        with_local(|l| {
            if let Some(pos) = l.stack.iter().rposition(|&id| id == self.id) {
                l.stack.truncate(pos);
            }
            l.buf.spans.lock().unwrap_or_else(|e| e.into_inner()).push(SpanEvent {
                name: self.name,
                start_ns: self.start_ns,
                dur_ns,
                thread: l.buf.thread,
                id: self.id,
                parent: self.parent,
                args,
            });
        });
    }
}

/// Records a zero-duration instant event (chrome trace `ph:"i"`) when
/// tracing is enabled — the vehicle for per-iteration convergence
/// traces. High-volume call sites should additionally gate on
/// [`iter_events_enabled`].
pub fn instant_event(name: &'static str, args: &[(&'static str, f64)]) {
    if !enabled() {
        return;
    }
    let ts_ns = epoch().elapsed().as_nanos() as u64;
    with_local(|l| {
        l.buf.events.lock().unwrap_or_else(|e| e.into_inner()).push(InstantEvent {
            name,
            ts_ns,
            thread: l.buf.thread,
            args: args.to_vec(),
        });
    });
}

/// A timer that *always* measures wall time (so report structs keep
/// their fields regardless of tracing) and *additionally* records a
/// span when tracing is enabled — one measurement feeding both views.
///
/// # Example
///
/// ```
/// let t = tracered_obs::Timer::start("doc.phase");
/// let answer = 6 * 7;
/// let took = t.stop();
/// assert_eq!(answer, 42);
/// assert!(took.as_nanos() > 0 || took.is_zero());
/// ```
pub struct Timer {
    begin: Instant,
    guard: Option<SpanGuard>,
}

impl Timer {
    /// Starts a timer; opens a span of the same name when tracing is on.
    pub fn start(name: &'static str) -> Timer {
        let guard = if enabled() { Some(SpanGuard::enter(name)) } else { None };
        Timer { begin: Instant::now(), guard }
    }

    /// Starts a timer with span arguments.
    pub fn start_with(name: &'static str, args: &[(&'static str, f64)]) -> Timer {
        let guard = if enabled() { Some(SpanGuard::with_args(name, args)) } else { None };
        Timer { begin: Instant::now(), guard }
    }

    /// Attaches an argument to the underlying span (no-op when tracing
    /// is off).
    pub fn arg(&mut self, key: &'static str, value: f64) {
        if let Some(g) = &mut self.guard {
            g.arg(key, value);
        }
    }

    /// Stops the timer, closing the span if one is open, and returns
    /// the elapsed wall time.
    pub fn stop(self) -> Duration {
        let d = self.begin.elapsed();
        drop(self.guard);
        d
    }
}
