//! Structured tracing and metrics for the tracered workspace.
//!
//! Three pieces, all dependency-free:
//!
//! 1. **Spans** — [`span!`] opens a guard that records wall time,
//!    thread id, nesting, and numeric arguments into per-thread
//!    buffers owned by the global [`Recorder`]. Tracing is off by
//!    default; while off, a `span!` site costs one relaxed atomic
//!    load and records nothing, so instrumented hot paths stay
//!    bit-identical and effectively free (the same zero-overhead
//!    contract as the resilience knobs).
//! 2. **Instruments** — [`Counter`], [`Gauge`], [`Watermark`], and
//!    log-scale [`Histogram`]s (live p50/p99 at ~9% bucket
//!    resolution). Instruments are always on: plain relaxed atomics,
//!    owned by their subsystem or registered globally by name
//!    ([`counter`]/[`gauge`]/[`histogram`]).
//! 3. **Exporters** — [`Recorder::chrome_trace_json`] (opens directly
//!    in `chrome://tracing` / Perfetto), [`Recorder::report`] (plain
//!    text hierarchy), and [`Recorder::snapshot_json`]
//!    (machine-readable aggregate the bench binaries embed).
//!
//! # Capturing a trace
//!
//! ```
//! tracered_obs::set_enabled(true);
//! {
//!     let _outer = tracered_obs::span!("demo.outer", { n: 64 });
//!     let _inner = tracered_obs::span!("demo.inner");
//!     tracered_obs::event!("demo.tick", { step: 1 });
//! }
//! tracered_obs::set_enabled(false);
//!
//! let trace = tracered_obs::recorder().trace();
//! assert!(trace.has_span("demo.outer"));
//! let json = trace.chrome_trace_json();
//! tracered_obs::validate_json(&json).unwrap();
//! // std::fs::write("trace.json", json) — then load it in a viewer.
//! tracered_obs::recorder().reset();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod instrument;
mod json;
mod record;
mod registry;
mod trace;

pub use instrument::{Counter, Gauge, Histogram, HistogramSummary, Watermark};
pub use json::validate_json;
pub use record::{
    enabled, instant_event, iter_events_enabled, recorder, set_enabled, set_iter_events, Recorder,
    SpanGuard, Timer,
};
pub use registry::{counter, gauge, histogram};
pub use trace::{InstantEvent, SpanAgg, SpanEvent, Trace};

/// Opens a span when tracing is enabled; expands to `Option<SpanGuard>`.
///
/// Bind the result to a named variable (`let _span = ...`) — binding to
/// `_` drops the guard immediately and records an empty span.
///
/// Arguments come in two forms: bare identifiers captured by name
/// (`span!("chol.factorize", {n, nnz})`) or explicit key/value pairs
/// (`span!("pcg.solve", {n: a.ncols(), tol: 1e-8})`). Values are
/// converted with `as f64` and are **not evaluated at all** while
/// tracing is disabled.
///
/// # Example
///
/// ```
/// tracered_obs::set_enabled(true);
/// let (n, nnz) = (100, 460);
/// {
///     let _span = tracered_obs::span!("factor.numeric", { n, nnz });
/// }
/// tracered_obs::set_enabled(false);
/// assert!(tracered_obs::recorder().trace().has_span("factor.numeric"));
/// tracered_obs::recorder().reset();
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        if $crate::enabled() {
            Some($crate::SpanGuard::enter($name))
        } else {
            None
        }
    };
    ($name:expr, { $($key:ident : $value:expr),+ $(,)? }) => {
        if $crate::enabled() {
            Some($crate::SpanGuard::with_args(
                $name,
                &[$((stringify!($key), $value as f64)),+],
            ))
        } else {
            None
        }
    };
    ($name:expr, { $($key:ident),+ $(,)? }) => {
        if $crate::enabled() {
            Some($crate::SpanGuard::with_args(
                $name,
                &[$((stringify!($key), $key as f64)),+],
            ))
        } else {
            None
        }
    };
}

/// Records a zero-duration instant event when tracing is enabled.
/// Argument forms match [`span!`] (all bare identifiers, or all
/// key/value pairs); arguments are not evaluated while tracing is
/// disabled. High-volume sites (per-iteration traces) should
/// additionally gate on [`iter_events_enabled`].
///
/// # Example
///
/// ```
/// tracered_obs::set_enabled(true);
/// let residual = 1e-9_f64;
/// tracered_obs::event!("pcg.iter", { iter: 3.0, residual: residual });
/// tracered_obs::set_enabled(false);
/// assert!(!tracered_obs::recorder().trace().events.is_empty());
/// tracered_obs::recorder().reset();
/// ```
#[macro_export]
macro_rules! event {
    ($name:expr) => {
        if $crate::enabled() {
            $crate::instant_event($name, &[]);
        }
    };
    ($name:expr, { $($key:ident : $value:expr),+ $(,)? }) => {
        if $crate::enabled() {
            $crate::instant_event($name, &[$((stringify!($key), $value as f64)),+]);
        }
    };
    ($name:expr, { $($key:ident),+ $(,)? }) => {
        if $crate::enabled() {
            $crate::instant_event($name, &[$((stringify!($key), $key as f64)),+]);
        }
    };
}
