//! Typed instruments: counters, gauges, watermarks, and log-scale
//! histograms.
//!
//! Instruments are *always on* — unlike spans they are plain relaxed
//! atomics with no global enable flag, cheap enough to live on request
//! paths (one `fetch_add`, or for histograms a `log2` plus three atomic
//! RMWs). They can be owned by a subsystem (the service owns its own
//! set, so two services in one process never share counters) or
//! registered globally by name through [`crate::counter`] /
//! [`crate::gauge`] / [`crate::histogram`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// A monotonically increasing event counter.
///
/// # Example
///
/// ```
/// let hits = tracered_obs::Counter::new();
/// hits.inc();
/// hits.add(2);
/// assert_eq!(hits.get(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `v`.
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous level that can go up and down, with a
/// high-water mark.
///
/// # Example
///
/// ```
/// let depth = tracered_obs::Gauge::new();
/// depth.inc();
/// depth.inc();
/// depth.dec();
/// assert_eq!(depth.get(), 1);
/// assert_eq!(depth.max_seen(), 2);
/// ```
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge { value: AtomicI64::new(0), max: AtomicI64::new(0) }
    }

    /// Adds `delta` (may be negative) and updates the high-water mark.
    pub fn add(&self, delta: i64) {
        let now = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(now, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.value.fetch_sub(1, Ordering::Relaxed);
    }

    /// Sets the level outright and updates the high-water mark.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest level ever set through [`Gauge::add`] / [`Gauge::inc`] /
    /// [`Gauge::set`].
    pub fn max_seen(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }
}

/// A monotone high-water mark over observed values (e.g. the widest
/// batch executed so far).
#[derive(Debug, Default)]
pub struct Watermark(AtomicU64);

impl Watermark {
    /// A watermark starting at zero.
    pub const fn new() -> Self {
        Watermark(AtomicU64::new(0))
    }

    /// Raises the mark to `v` if `v` exceeds it.
    pub fn observe(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Highest value observed.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Sub-buckets per octave (power of two) of the histogram range.
const SUB: usize = 8;
/// Octaves covered: from `MIN_S` (≈0.93 ns) up to `MIN_S · 2^36` ≈ 64 s.
const OCTAVES: usize = 36;
/// Number of regular buckets.
const NB: usize = SUB * OCTAVES;
/// Lower edge of the first regular bucket, in seconds (2⁻³⁰).
const MIN_S: f64 = 1.0 / (1u64 << 30) as f64;

/// A fixed-bucket log-scale histogram of durations in seconds.
///
/// Buckets are spaced a factor `2^(1/8)` (≈9%) apart from ≈1 ns to
/// ≈64 s, with underflow/overflow buckets at the ends, so quantiles are
/// exact to within one bucket's relative width. Recording is lock-free:
/// a `log2`, then relaxed atomic adds — cheap enough to time every
/// service request live rather than post-hoc in a bench collector.
///
/// # Example
///
/// ```
/// use std::time::Duration;
/// let h = tracered_obs::Histogram::new();
/// for ms in 1..=100u64 {
///     h.record_duration(Duration::from_millis(ms));
/// }
/// let p50 = h.quantile(0.5);
/// assert!((p50 / 0.050 - 1.0).abs() < 0.10, "p50 {p50} ≉ 50ms");
/// ```
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Bit patterns of non-negative `f64`s order like the floats.
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    under: AtomicU64,
    over: AtomicU64,
    buckets: [AtomicU64; NB],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(0),
            under: AtomicU64::new(0),
            over: AtomicU64::new(0),
            buckets: [(); NB].map(|_| AtomicU64::new(0)),
        }
    }

    /// Records one observation, in seconds. Negative and non-finite
    /// values are clamped to zero (they land in the underflow bucket).
    pub fn record(&self, seconds: f64) {
        let v = if seconds.is_finite() && seconds > 0.0 { seconds } else { 0.0 };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        let bits = v.to_bits();
        self.min_bits.fetch_min(bits, Ordering::Relaxed);
        self.max_bits.fetch_max(bits, Ordering::Relaxed);
        if v < MIN_S {
            self.under.fetch_add(1, Ordering::Relaxed);
        } else {
            let idx = ((v / MIN_S).log2() * SUB as f64).floor() as usize;
            match self.buckets.get(idx) {
                Some(b) => b.fetch_add(1, Ordering::Relaxed),
                None => self.over.fetch_add(1, Ordering::Relaxed),
            };
        }
    }

    /// Records one observation as a [`Duration`].
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean observation in seconds (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum_ns.load(Ordering::Relaxed) as f64 * 1e-9 / c as f64
        }
    }

    /// Smallest observation in seconds (`0.0` when empty).
    pub fn min_s(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            f64::from_bits(self.min_bits.load(Ordering::Relaxed))
        }
    }

    /// Largest observation in seconds (`0.0` when empty).
    pub fn max_s(&self) -> f64 {
        f64::from_bits(self.max_bits.load(Ordering::Relaxed))
    }

    /// Nearest-rank quantile, `0.0 <= q <= 1.0`, exact to within one
    /// bucket's relative width (a factor of `2^(1/8)` ≈ 1.09). Returns
    /// the geometric midpoint of the bucket holding the target rank;
    /// the overflow bucket reports the observed maximum. `0.0` when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let target = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = self.under.load(Ordering::Relaxed);
        if cum >= target {
            // Underflow bucket: everything below MIN_S, including exact
            // zeros; report the observed minimum (itself < MIN_S).
            return self.min_s();
        }
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= target {
                return MIN_S * ((i as f64 + 0.5) / SUB as f64).exp2();
            }
        }
        self.max_s()
    }

    /// A small `Copy` summary (count, mean, p50/p90/p99, max) suitable
    /// for embedding in snapshot structs.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            mean_s: self.mean(),
            p50_s: self.quantile(0.50),
            p90_s: self.quantile(0.90),
            p99_s: self.quantile(0.99),
            max_s: self.max_s(),
        }
    }

    /// Occupied buckets as `(lower_edge_seconds, count)` pairs, in
    /// ascending order. The underflow bucket reports edge `0.0`.
    pub fn nonzero_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let under = self.under.load(Ordering::Relaxed);
        if under > 0 {
            out.push((0.0, under));
        }
        for (i, b) in self.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c > 0 {
                out.push((MIN_S * (i as f64 / SUB as f64).exp2(), c));
            }
        }
        let over = self.over.load(Ordering::Relaxed);
        if over > 0 {
            out.push((MIN_S * (NB as f64 / SUB as f64).exp2(), over));
        }
        out
    }

    /// The relative width of one bucket — quantiles are exact to within
    /// this factor.
    pub fn bucket_ratio() -> f64 {
        (1.0 / SUB as f64).exp2()
    }
}

/// A compact, `Copy` summary of a [`Histogram`] — what service
/// snapshots carry.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Mean observation, seconds.
    pub mean_s: f64,
    /// Median (nearest-rank, bucket-resolution), seconds.
    pub p50_s: f64,
    /// 90th percentile, seconds.
    pub p90_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Largest observation, seconds.
    pub max_s: f64,
}
