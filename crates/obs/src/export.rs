//! The machine-readable JSON snapshot: span aggregates + registered
//! instruments, one self-contained object the bench binaries embed in
//! their `BENCH_*.json` records.

use crate::registry::AnyInstrument;
use crate::trace::{escape, num_json, Trace};

/// Serializes `trace`'s per-path aggregates plus every globally
/// registered instrument as one JSON object:
///
/// ```json
/// {
///   "spans": [{"path": "...", "count": 1, "total_s": 0.1, "self_s": 0.1}],
///   "counters": {"name": 3},
///   "gauges": {"name": {"value": 0, "max": 4}},
///   "histograms": {"name": {"count": 9, "mean_s": 0.1, "p50_s": 0.1,
///                            "p90_s": 0.2, "p99_s": 0.2, "max_s": 0.3}}
/// }
/// ```
pub(crate) fn snapshot_json(trace: &Trace) -> String {
    let mut out = String::from("{\"spans\":[");
    for (i, a) in trace.aggregate().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"path\":\"{}\",\"count\":{},\"total_s\":{},\"self_s\":{}}}",
            escape(&a.path),
            a.count,
            num_json(a.total.as_secs_f64()),
            num_json(a.self_time.as_secs_f64())
        ));
    }
    out.push_str("],\"counters\":{");
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    crate::registry::for_each(|name, inst| match inst {
        AnyInstrument::Counter(c) => counters.push(format!("\"{}\":{}", escape(name), c.get())),
        AnyInstrument::Gauge(g) => gauges.push(format!(
            "\"{}\":{{\"value\":{},\"max\":{}}}",
            escape(name),
            g.get(),
            g.max_seen()
        )),
        AnyInstrument::Histogram(h) => {
            let s = h.summary();
            histograms.push(format!(
                "\"{}\":{{\"count\":{},\"mean_s\":{},\"p50_s\":{},\"p90_s\":{},\
                 \"p99_s\":{},\"max_s\":{}}}",
                escape(name),
                s.count,
                num_json(s.mean_s),
                num_json(s.p50_s),
                num_json(s.p90_s),
                num_json(s.p99_s),
                num_json(s.max_s)
            ));
        }
    });
    out.push_str(&counters.join(","));
    out.push_str("},\"gauges\":{");
    out.push_str(&gauges.join(","));
    out.push_str("},\"histograms\":{");
    out.push_str(&histograms.join(","));
    out.push_str("}}");
    out
}
