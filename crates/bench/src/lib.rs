//! Shared harness for the table/figure reproduction binaries.
//!
//! Each paper table has a binary (`table1`, `table2`, `table3`, `fig1`,
//! `fig2`, `ablation`) that prints the same rows the paper reports, over
//! synthetic analogs of its test cases. All binaries accept
//! `--scale <f64>` (default 1.0) to grow or shrink the cases, and
//! `--case <name>` to restrict to one case.
//!
//! None of the binaries enable the resilience layer (pivot boosting,
//! robust-solve escalation) — it defaults off everywhere — so the
//! `--check` determinism gates double as its zero-overhead-when-unused
//! gate: the timed hot paths must stay bit-identical to the
//! pre-resilience code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, Sparsifier, SparsifyConfig};
use tracered_graph::gen::{grid2d, grid3d, tri_mesh, WeightProfile};
use tracered_graph::Graph;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

/// A named benchmark case: a generator producing a synthetic analog of
/// one of the paper's test matrices at a given scale.
pub struct Case {
    /// Case name (mirrors the paper's matrix it stands in for).
    pub name: &'static str,
    /// Which paper matrix this is the analog of.
    pub analog_of: &'static str,
    /// Builds the graph at `scale` (1.0 = default size).
    pub build: fn(f64) -> Graph,
}

impl Case {
    /// Builds the case's graph.
    pub fn graph(&self, scale: f64) -> Graph {
        (self.build)(scale)
    }
}

fn dim(base: usize, scale: f64) -> usize {
    ((base as f64 * scale.sqrt()).round() as usize).max(4)
}

fn dim3(base: usize, scale: f64) -> usize {
    ((base as f64 * scale.cbrt()).round() as usize).max(3)
}

/// The ten sparsification cases of Table 1 (synthetic analogs, see
/// DESIGN.md §2 for the substitution rationale).
pub fn table1_cases() -> Vec<Case> {
    vec![
        Case {
            name: "grid2d-unit",
            analog_of: "ecology2",
            build: |s| grid2d(dim(100, s), dim(100, s), WeightProfile::Unit, 11),
        },
        Case {
            name: "grid3d-log",
            analog_of: "thermal2",
            build: |s| {
                grid3d(
                    dim3(22, s),
                    dim3(22, s),
                    dim3(22, s),
                    WeightProfile::LogUniform { lo: 0.1, hi: 10.0 },
                    12,
                )
            },
        },
        Case {
            name: "grid3d-uniform",
            analog_of: "parabolic_fem",
            build: |s| {
                grid3d(
                    dim3(20, s),
                    dim3(20, s),
                    dim3(20, s),
                    WeightProfile::Uniform { lo: 0.5, hi: 2.0 },
                    13,
                )
            },
        },
        Case {
            name: "grid2d-log",
            analog_of: "tmt_sym",
            build: |s| {
                grid2d(dim(90, s), dim(90, s), WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 14)
            },
        },
        Case {
            name: "grid2d-wide",
            analog_of: "G3_circuit",
            build: |s| {
                grid2d(
                    dim(110, s),
                    dim(110, s),
                    WeightProfile::LogUniform { lo: 0.01, hi: 100.0 },
                    15,
                )
            },
        },
        Case {
            name: "trimesh-unit",
            analog_of: "NACA0015",
            build: |s| tri_mesh(dim(85, s), dim(85, s), WeightProfile::Unit, 16),
        },
        Case {
            name: "trimesh-log",
            analog_of: "M6",
            build: |s| {
                tri_mesh(dim(90, s), dim(90, s), WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 17)
            },
        },
        Case {
            name: "trimesh-wide",
            analog_of: "333SP",
            build: |s| {
                tri_mesh(
                    dim(95, s),
                    dim(95, s),
                    WeightProfile::LogUniform { lo: 0.05, hi: 20.0 },
                    18,
                )
            },
        },
        Case {
            name: "trimesh-rect",
            analog_of: "AS365",
            build: |s| tri_mesh(dim(120, s), dim(70, s), WeightProfile::Unit, 19),
        },
        Case {
            name: "trimesh-aniso",
            analog_of: "NLR",
            build: |s| {
                tri_mesh(dim(130, s), dim(65, s), WeightProfile::Uniform { lo: 0.2, hi: 2.0 }, 20)
            },
        },
    ]
}

/// One method's measurements for a Table-1 row.
#[derive(Debug, Clone)]
pub struct SparsifyEval {
    /// Sparsification time `T_s`.
    pub sparsify_time: Duration,
    /// Relative condition number κ(L_G, L_P).
    pub kappa: f64,
    /// PCG iterations to 1e-3 (`N_i`).
    pub pcg_iterations: usize,
    /// PCG time `T_i`.
    pub pcg_time: Duration,
    /// Edges in the sparsifier.
    pub edges: usize,
}

/// Runs one sparsification method on a graph and evaluates it the way
/// Table 1 does: κ by generalized power iteration, then one PCG solve
/// with a random right-hand side to tolerance 1e-3.
///
/// # Panics
///
/// Panics when sparsification fails (the bench cases are always
/// connected and well-formed).
pub fn evaluate_sparsifier(g: &Graph, method: Method) -> SparsifyEval {
    evaluate_with_config(g, &SparsifyConfig::new(method))
}

/// [`evaluate_sparsifier`] with a caller-supplied configuration —
/// scaling benches use this to sweep the `threads` knob.
///
/// # Panics
///
/// Panics when sparsification fails.
pub fn evaluate_with_config(g: &Graph, cfg: &SparsifyConfig) -> SparsifyEval {
    let t0 = Instant::now();
    let sp = sparsify(g, cfg).expect("bench cases are connected");
    let sparsify_time = t0.elapsed();
    let lg = sp.graph_laplacian(g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g))
        .expect("sparsifier Laplacian is SPD under the shared shift");
    let kappa = relative_condition_number(&lg, pre.factor(), 60, 2024);
    let b = random_rhs(g.num_nodes(), 77);
    let t1 = Instant::now();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-3));
    let pcg_time = t1.elapsed();
    assert!(sol.converged, "PCG must converge with a sparsifier preconditioner");
    SparsifyEval {
        sparsify_time,
        kappa,
        pcg_iterations: sol.iterations,
        pcg_time,
        edges: sp.edge_ids().len(),
    }
}

/// Builds a sparsifier and its Cholesky preconditioner, timed.
///
/// # Panics
///
/// Panics when sparsification fails.
pub fn build_preconditioner(
    g: &Graph,
    cfg: &SparsifyConfig,
) -> (Sparsifier, CholPreconditioner, Duration) {
    let t0 = Instant::now();
    let sp = sparsify(g, cfg).expect("bench cases are connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g))
        .expect("sparsifier Laplacian is SPD under the shared shift");
    (sp, pre, t0.elapsed())
}

/// Deterministic pseudo-random right-hand side (the paper uses random
/// RHS vectors).
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.random::<f64>() - 0.5).collect()
}

/// One machine-readable measurement row for the `BENCH_*.json` files
/// later PRs diff against. Values are flat key → JSON scalar.
#[derive(Debug, Clone, Default)]
pub struct BenchRecord {
    fields: Vec<(String, JsonValue)>,
}

/// A JSON scalar value.
#[derive(Debug, Clone)]
pub enum JsonValue {
    /// A string field.
    Str(String),
    /// An integer field.
    Int(i64),
    /// A float field (serialized with full precision; non-finite → null).
    Num(f64),
    /// A pre-serialized JSON document embedded verbatim (used to nest an
    /// observability snapshot inside a record). The caller is
    /// responsible for its well-formedness.
    Raw(String),
}

impl BenchRecord {
    /// An empty record.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), JsonValue::Str(value.into())));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, value: i64) -> Self {
        self.fields.push((key.to_string(), JsonValue::Int(value)));
        self
    }

    /// Adds a float field.
    pub fn num(mut self, key: &str, value: f64) -> Self {
        self.fields.push((key.to_string(), JsonValue::Num(value)));
        self
    }

    /// Adds a duration field, in seconds.
    pub fn secs_field(self, key: &str, d: Duration) -> Self {
        self.num(key, d.as_secs_f64())
    }

    /// Embeds an already-serialized JSON document (object or array)
    /// verbatim under `key` — the hook the scaling benches use to nest
    /// a [`tracered_obs`] snapshot inside their record. The value must
    /// be well-formed JSON; it is not escaped or validated here.
    pub fn raw_json(mut self, key: &str, json: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), JsonValue::Raw(json.into())));
        self
    }

    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push('"');
            out.push_str(&json_escape(k));
            out.push_str("\": ");
            match v {
                JsonValue::Str(s) => {
                    out.push('"');
                    out.push_str(&json_escape(s));
                    out.push('"');
                }
                JsonValue::Int(n) => out.push_str(&n.to_string()),
                JsonValue::Num(x) if x.is_finite() => out.push_str(&format!("{x:?}")),
                JsonValue::Num(_) => out.push_str("null"),
                JsonValue::Raw(j) => out.push_str(j),
            }
        }
        out.push('}');
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes records as a JSON array (one object per line for easy
/// diffing) and writes them to `path`.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    let mut out = String::from("[\n");
    for (i, rec) in records.iter().enumerate() {
        out.push_str("  ");
        rec.write_json(&mut out);
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]\n");
    std::fs::write(path, out)
}

/// CPU parallelism the OS reports for this process, `1` when unknown —
/// recorded in every bench JSON so that single-core containers (which
/// cannot show real thread speedups) are machine-detectable when later
/// runs diff the numbers.
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

/// Resolved size of the process-global worker pool — the thread budget
/// parallel regions actually ran on (`TRACERED_THREADS` override or the
/// OS-reported parallelism). Recorded next to
/// [`available_parallelism`] in every bench JSON: the two differ
/// exactly when the environment pinned the pool, which makes BENCH
/// files self-describing on multi-core hardware.
pub fn pool_size() -> usize {
    tracered_par::global_pool_size()
}

/// Parses `--scale <f64>` and `--case <name>` from `std::env::args`.
pub fn parse_args() -> (f64, Option<String>) {
    let mut scale = 1.0;
    let mut case = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a positive number");
            }
            "--case" => {
                case = Some(args.next().expect("--case requires a name"));
            }
            other => panic!("unknown argument '{other}' (expected --scale or --case)"),
        }
    }
    assert!(scale > 0.0, "--scale must be positive");
    (scale, case)
}

/// Formats a duration as seconds with three decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a byte count as mebibytes with one decimal.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / (1024.0 * 1024.0))
}

/// Geometric mean of a nonempty slice of ratios.
///
/// # Panics
///
/// Panics if `values` is empty or contains a non-positive entry.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of an empty slice");
    assert!(values.iter().all(|&v| v > 0.0), "geomean requires positive values");
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_build_connected_graphs_at_tiny_scale() {
        for case in table1_cases() {
            let g = case.graph(0.01);
            assert!(g.is_connected(), "case {}", case.name);
            assert!(g.num_nodes() >= 9);
        }
    }

    #[test]
    fn case_names_are_unique() {
        let cases = table1_cases();
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len());
        assert_eq!(cases.len(), 10, "Table 1 has ten cases");
    }

    #[test]
    fn evaluate_runs_end_to_end_on_small_case() {
        let g = table1_cases()[0].graph(0.02);
        let eval = evaluate_sparsifier(&g, Method::TraceReduction);
        assert!(eval.kappa >= 1.0);
        assert!(eval.pcg_iterations > 0);
        assert!(eval.edges >= g.num_nodes() - 1);
    }

    #[test]
    fn geomean_of_constants() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn bench_records_serialize_to_valid_json() {
        let rec = BenchRecord::new()
            .str("bench", "tree_phase_scores")
            .str("quoted", "a\"b\\c")
            .int("threads", 4)
            .num("seconds", 0.125)
            .num("bad", f64::NAN);
        let mut s = String::new();
        rec.write_json(&mut s);
        assert_eq!(
            s,
            "{\"bench\": \"tree_phase_scores\", \"quoted\": \"a\\\"b\\\\c\", \
             \"threads\": 4, \"seconds\": 0.125, \"bad\": null}"
        );
        let path = std::env::temp_dir().join("tracered_bench_json_test.json");
        let path = path.to_str().unwrap();
        write_bench_json(path, &[rec.clone(), rec]).unwrap();
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.starts_with("[\n") && body.ends_with("]\n"));
        assert_eq!(body.matches("tree_phase_scores").count(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn scaling_grows_node_count() {
        let case = &table1_cases()[0];
        let small = case.graph(0.01).num_nodes();
        let big = case.graph(0.05).num_nodes();
        assert!(big > small);
    }
}
