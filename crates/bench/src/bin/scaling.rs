//! Scaling study: how the trace-reduction advantage over GRASS grows
//! with problem size.
//!
//! EXPERIMENTS.md observes that the measured κ-reduction (1.9× at ~10k
//! nodes) trails the paper's 2.6× (at 0.5M–4M nodes) and attributes the
//! gap to scale. This binary makes that claim checkable: it sweeps one
//! Table-1 case over `--scale`-multiplied sizes and prints the reduction
//! factors per size.
//!
//! Usage: `scaling [--scale f] [--case name]` (the sweep is multiplied
//! by `--scale`; default covers ~500 → ~50k nodes).

use tracered_bench::{evaluate_sparsifier, parse_args, table1_cases};
use tracered_core::Method;

fn main() {
    let (scale, case_name) = parse_args();
    let cases = table1_cases();
    let case = match &case_name {
        Some(name) => cases
            .iter()
            .find(|c| c.name == *name)
            .unwrap_or_else(|| panic!("unknown case '{name}'")),
        None => &cases[5], // trimesh-unit: the NACA0015 analog
    };
    println!("# Scaling study on {} (analog of {})", case.name, case.analog_of);
    println!(
        "{:>8} {:>9} | {:>9} {:>9} | {:>6} {:>6} | {:>7} {:>7}",
        "|V|", "|E|", "GRASS k", "TR k", "k red", "Ni red", "GR T_s", "TR T_s"
    );
    for mult in [0.05, 0.15, 0.5, 1.0, 2.0, 5.0] {
        let g = case.graph(scale * mult);
        let grass = evaluate_sparsifier(&g, Method::Grass);
        let tr = evaluate_sparsifier(&g, Method::TraceReduction);
        println!(
            "{:>8} {:>9} | {:>9.1} {:>9.1} | {:>5.2}X {:>5.2}X | {:>7.3} {:>7.3}",
            g.num_nodes(),
            g.num_edges(),
            grass.kappa,
            tr.kappa,
            grass.kappa / tr.kappa,
            grass.pcg_iterations as f64 / tr.pcg_iterations.max(1) as f64,
            grass.sparsify_time.as_secs_f64(),
            tr.sparsify_time.as_secs_f64(),
        );
    }
}
