//! Thread-scaling benchmark for the parallel criticality-scoring engine.
//!
//! Builds a large 2-D grid (≥200k edges at the default scale), then
//! measures the sparsification hot paths at 1/2/4/8 worker threads:
//!
//! - `tree_resistances` — batch LCA over all off-tree candidates;
//! - `tree_phase_scores` — β-layer trace-reduction scoring vs the tree;
//! - `subgraph_phase_scores` — SPAI-based scoring vs a denser subgraph
//!   (`--full` only: it needs a full-size Cholesky factorization);
//! - `sym_matvec` — the parallel SpMV behind PCG and Hutchinson;
//! - `pcg` — a tree-preconditioned solve, recording iteration counts.
//!
//! - `spawn_overhead` — the region-entry microbench: one fused PCG
//!   vector update (`x += α p`, `r -= α Ap`) per region, measured
//!   (a) serially, (b) through the persistent worker pool, and (c) on
//!   a `std::thread::scope` runtime replicating the PR 1–3 scheduler
//!   that spawned fresh OS threads per region. The per-region overhead
//!   gap is why parallel vector kernels become profitable at much
//!   smaller `n` with the pool.
//!
//! - `factor_scaling` — the numeric Cholesky sweep: an n × threads ×
//!   kernel grid of serial-vs-parallel factorization times
//!   (`CholeskyFactor::factorize_kernel` with the scalar up-looking and
//!   the supernodal blocked kernels), with the elimination-tree
//!   schedule's shape (jobs, parallel-column fraction, tree height) and
//!   the supernode partition's shape (count, mean/max panel width,
//!   padded cells) recorded per cell, plus a traced run per cell
//!   decomposing `chol.numeric` into subtree jobs and the serial tail.
//!   Written to a **separate** file (default `BENCH_pr10.json`,
//!   override with `--factor-out <path>`) so the factor-phase results
//!   diff independently of the PR 4 scaling file. With `--check`, every
//!   parallel factor is asserted bit-identical to the same kernel's
//!   serial factor (the per-variant determinism gate CI runs), the two
//!   kernels are asserted equal within rounding tolerance, and — on
//!   full-scale grids only — the supernodal kernel must beat the scalar
//!   one and push the serial-tail self-time fraction below the 68%
//!   scalar baseline.
//!
//! Results print as a table and are written to `BENCH_pr4.json` (override
//! with `--out <path>`) so later PRs can diff speedups and regressions.
//! Scores are bit-identical across thread counts (verified here too);
//! only wall-clock time changes.
//!
//! `--obs-out <path>` re-runs the factorization and a PCG solve once at
//! the highest thread count with tracing enabled and writes an
//! observability record there: the recorder's span/instrument snapshot
//! plus the numeric-phase decomposition the spans make visible — how
//! much of `chol.numeric` is the serial tail (`chol.numeric.tail`)
//! versus parallel subtree jobs. Under `--check` the traced factor must
//! be bit-identical to an untraced one.
//!
//! Usage: `cargo run --release -p tracered-bench --bin par_scaling --
//! [--scale 1.0] [--threads 1,2,4,8] [--full] [--out BENCH_pr4.json]
//! [--factor-out BENCH_pr10.json] [--obs-out OBS.json] [--check]`

use std::time::Instant;

use tracered_bench::{write_bench_json, BenchRecord};
use tracered_core::criticality::{subgraph_phase_scores_threads, tree_phase_scores_threads};
use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
use tracered_graph::lca::tree_resistances_threads;
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::RootedTree;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_sparse::chol::SymbolicCholesky;
use tracered_sparse::order::Ordering;
use tracered_sparse::{
    ApproxInverse, CholeskyFactor, KernelVariant, SpaiOptions, SupernodePartition,
};

const BETA: usize = 5;

struct Args {
    scale: f64,
    threads: Vec<usize>,
    full: bool,
    out: String,
    factor_out: String,
    obs_out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        threads: vec![1, 2, 4, 8],
        full: false,
        out: "BENCH_pr4.json".to_string(),
        factor_out: "BENCH_pr10.json".to_string(),
        obs_out: None,
        check: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a positive number");
            }
            "--threads" => {
                let spec = it.next().expect("--threads requires a comma-separated list");
                args.threads = spec
                    .split(',')
                    .map(|t| t.trim().parse().expect("thread counts must be positive integers"))
                    .collect();
            }
            "--full" => args.full = true,
            "--out" => args.out = it.next().expect("--out requires a path"),
            "--factor-out" => args.factor_out = it.next().expect("--factor-out requires a path"),
            "--obs-out" => args.obs_out = Some(it.next().expect("--obs-out requires a path")),
            "--check" => args.check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(args.scale > 0.0, "--scale must be positive");
    assert!(!args.threads.is_empty() && args.threads.iter().all(|&t| t > 0));
    args
}

fn main() {
    let args = parse_args();
    // 335×335 at scale 1.0: 112,225 nodes, 223,780 edges.
    let dim = ((335.0 * args.scale.sqrt()).round() as usize).max(8);
    let g = grid2d(dim, dim, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 42);
    let n = g.num_nodes();
    let m = g.num_edges();
    println!("grid {dim}x{dim}: {n} nodes, {m} edges");

    let t_tree = Instant::now();
    let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).expect("grid is connected");
    let tree = RootedTree::build(&g, &st.tree_edges, 0).expect("tree edges span the grid");
    let tree_time = t_tree.elapsed();
    let candidates = &st.off_tree_edges;
    let pairs: Vec<(usize, usize)> =
        candidates.iter().map(|&id| (g.edge(id).u, g.edge(id).v)).collect();
    println!("tree: {:.3}s, {} off-tree candidates", tree_time.as_secs_f64(), candidates.len());

    let shift = 1e-3 * 2.0 * g.total_weight() / n as f64;
    let shifts = vec![shift; n];
    let lg = laplacian_with_shifts(&g, &shifts);

    // Tree-preconditioner factorization shared by the PCG rows.
    let ls = subgraph_laplacian(&g, &st.tree_edges, &shifts);
    let pre = CholPreconditioner::from_matrix(&ls).expect("tree Laplacian is SPD");
    let b: Vec<f64> = tracered_bench::random_rhs(n, 77);

    // Optional subgraph-phase fixture (full-size factorization + SPAI).
    let sub_fixture = if args.full {
        let mut sub_edges = st.tree_edges.clone();
        sub_edges.extend(candidates.iter().take(n / 20).copied());
        let sub_cands: Vec<usize> = candidates.iter().skip(n / 20).copied().collect();
        let lsub = subgraph_laplacian(&g, &sub_edges, &shifts);
        let t0 = Instant::now();
        let factor =
            CholeskyFactor::factorize(&lsub, Ordering::MinDegree).expect("subgraph is SPD");
        let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.1))
            .expect("factor is valid");
        println!("subgraph fixture: factor+SPAI {:.3}s", t0.elapsed().as_secs_f64());
        Some((g.edge_subgraph(&sub_edges), factor, zinv, sub_cands))
    } else {
        None
    };

    let mut records: Vec<BenchRecord> = Vec::new();
    let base = |bench: &str, threads: usize| {
        BenchRecord::new()
            .str("bench", bench)
            .str("case", "grid2d-log")
            .str("method", "TraceReduction")
            .int("nodes", n as i64)
            .int("edges", m as i64)
            .int("candidates", candidates.len() as i64)
            .int("beta", BETA as i64)
            .int("threads", threads as i64)
            .int("available_parallelism", tracered_bench::available_parallelism() as i64)
            .int("pool_size", tracered_bench::pool_size() as i64)
            .secs_field("tree_time", tree_time)
    };

    let mut reference_scores: Option<Vec<f64>> = None;
    let mut serial_times: std::collections::HashMap<&'static str, f64> =
        std::collections::HashMap::new();
    for &t in &args.threads {
        // Batch LCA resistances.
        let t0 = Instant::now();
        let rs = tree_resistances_threads(&tree, &pairs, t);
        let lca_s = t0.elapsed().as_secs_f64();

        // Tree-phase scoring (the dominant kernel of iteration 1).
        let t0 = Instant::now();
        let scores = tree_phase_scores_threads(&g, &tree, candidates, &rs, BETA, t);
        let score_s = t0.elapsed().as_secs_f64();
        match &reference_scores {
            None => reference_scores = Some(scores),
            Some(reference) => assert!(
                reference.iter().zip(scores.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                "scores changed at {t} threads — determinism contract broken"
            ),
        }

        // Parallel symmetric SpMV, amortized over repetitions.
        let reps = 25;
        let mut y = vec![0.0; n];
        let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
        let t0 = Instant::now();
        for _ in 0..reps {
            if t <= 1 {
                lg.matvec_into(&x, &mut y);
            } else {
                lg.sym_matvec_into_threads(&x, &mut y, t);
            }
        }
        let spmv_s = t0.elapsed().as_secs_f64() / reps as f64;

        // Tree-preconditioned PCG with the parallel kernels.
        let t0 = Instant::now();
        let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-3).threads(t));
        let pcg_s = t0.elapsed().as_secs_f64();
        assert!(sol.converged, "PCG must converge with the tree preconditioner");

        for (bench, secs) in [
            ("tree_resistances", lca_s),
            ("tree_phase_scores", score_s),
            ("sym_matvec", spmv_s),
            ("pcg_tree_precond", pcg_s),
        ] {
            let serial = *serial_times.entry(bench).or_insert(secs);
            let mut rec =
                base(bench, t).num("seconds", secs).num("speedup_vs_first", serial / secs);
            if bench == "tree_phase_scores" {
                // score_time belongs only to the scoring row.
                rec = rec.num("score_time", score_s);
            }
            if bench == "pcg_tree_precond" {
                rec = rec.int("pcg_iterations", sol.iterations as i64);
            }
            records.push(rec);
        }

        // Subgraph-phase scoring against the densified subgraph.
        if let Some((sub, factor, zinv, sub_cands)) = &sub_fixture {
            let t0 = Instant::now();
            let s = subgraph_phase_scores_threads(&g, sub, factor, zinv, sub_cands, BETA, t);
            let secs = t0.elapsed().as_secs_f64();
            std::hint::black_box(&s);
            let serial = *serial_times.entry("subgraph_phase_scores").or_insert(secs);
            records.push(
                base("subgraph_phase_scores", t)
                    .int("factor_nnz", factor.nnz() as i64)
                    .int("spai_nnz", zinv.nnz() as i64)
                    .num("seconds", secs)
                    .num("speedup_vs_first", serial / secs),
            );
            println!(
                "threads {t}: lca {lca_s:.3}s, tree-score {score_s:.3}s, \
                 spmv {spmv_s:.4}s, pcg {pcg_s:.3}s ({} iters), subgraph-score {secs:.3}s",
                sol.iterations
            );
        } else {
            println!(
                "threads {t}: lca {lca_s:.3}s, tree-score {score_s:.3}s, \
                 spmv {spmv_s:.4}s, pcg {pcg_s:.3}s ({} iters)",
                sol.iterations
            );
        }
    }

    // --- Spawn-overhead microbench: region entry cost, pool vs scope. ---
    // One fused PCG vector update per region, so per-region scheduling
    // overhead dominates at small n. The "scope" runtime replicates the
    // PR 1–3 scheduler: fresh OS threads spawned and joined per region.
    for &t in &args.threads {
        if t <= 1 {
            continue; // both runtimes are the identical serial loop at t = 1
        }
        for &len in &[1_000usize, 10_000, 100_000] {
            let reps = 100;
            let alpha = 1e-4;
            let p: Vec<f64> = (0..len).map(|i| ((i % 23) as f64) - 11.0).collect();
            let ap: Vec<f64> = (0..len).map(|i| ((i % 29) as f64) - 14.0).collect();
            let chunk = tracered_par::chunk_size(len, t, 4096);
            let body = |start: usize, xs: &mut [f64], rs: &mut [f64]| {
                for off in 0..xs.len() {
                    xs[off] += alpha * p[start + off];
                    rs[off] -= alpha * ap[start + off];
                }
            };

            let mut x = vec![1.0f64; len];
            let mut r = vec![2.0f64; len];
            let t0 = Instant::now();
            for _ in 0..reps {
                let mut start = 0;
                for (xs, rs) in x.chunks_mut(chunk).zip(r.chunks_mut(chunk)) {
                    let l = xs.len();
                    body(start, xs, rs);
                    start += l;
                }
            }
            let serial_s = t0.elapsed().as_secs_f64() / reps as f64;

            let mut x = vec![1.0f64; len];
            let mut r = vec![2.0f64; len];
            let t0 = Instant::now();
            for _ in 0..reps {
                tracered_par::par_chunks2_mut(&mut x, &mut r, chunk, t, body);
            }
            let pool_s = t0.elapsed().as_secs_f64() / reps as f64;

            let mut x = vec![1.0f64; len];
            let mut r = vec![2.0f64; len];
            let t0 = Instant::now();
            for _ in 0..reps {
                scoped_chunks2(&mut x, &mut r, chunk, t, body);
            }
            let scope_s = t0.elapsed().as_secs_f64() / reps as f64;

            println!(
                "spawn_overhead n={len} t={t}: serial {:.2}us, pool {:.2}us, \
                 scope {:.2}us per region (pool overhead {:.2}us, scope {:.2}us)",
                serial_s * 1e6,
                pool_s * 1e6,
                scope_s * 1e6,
                (pool_s - serial_s) * 1e6,
                (scope_s - serial_s) * 1e6,
            );
            records.push(
                base("spawn_overhead", t)
                    .int("n", len as i64)
                    .int("reps", reps as i64)
                    .num("serial_seconds", serial_s)
                    .num("pool_seconds", pool_s)
                    .num("scope_seconds", scope_s)
                    .num("pool_overhead_seconds", pool_s - serial_s)
                    .num("scope_overhead_seconds", scope_s - serial_s),
            );
        }
    }

    write_bench_json(&args.out, &records).expect("writing the bench JSON must succeed");
    println!("wrote {} records to {}", records.len(), args.out);

    // --- Factor-scaling sweep: numeric Cholesky kernels (PR 5 + PR 10). ---
    // An n × threads × kernel grid over progressively larger meshes,
    // each cell a serial-vs-parallel factorization of the same shifted
    // Laplacian. Within a kernel the factor is bit-identical at every
    // thread count (asserted under --check); across kernels the blocked
    // panels reassociate sums, so values agree only to rounding.
    let mut factor_records: Vec<BenchRecord> = Vec::new();
    // Perf gates only fire on full-scale grids: CI smoke runs at
    // --scale 0.02, where a few-thousand-node factor finishes in
    // microseconds and timing comparisons are noise.
    const PERF_GATE_MIN_NODES: usize = 50_000;
    const TAIL_FRACTION_BASELINE: f64 = 0.68;
    for &base_dim in &[120usize, 220, 335] {
        let fdim = ((base_dim as f64 * args.scale.sqrt()).round() as usize).max(12);
        let fg = grid2d(fdim, fdim, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 42);
        let fn_nodes = fg.num_nodes();
        let fshift = 1e-3 * 2.0 * fg.total_weight() / fn_nodes as f64;
        let fl = laplacian_with_shifts(&fg, &vec![fshift; fn_nodes]);

        // Schedule and supernode-partition shape under the min-degree
        // ordering (what the sweep factors with): how much of the tree
        // the subtree jobs cover, and how the columns amalgamate into
        // dense panels. The permutation is computed once and reused for
        // every timed cell: it is kernel-invariant, and on the largest
        // grid greedy min-degree costs an order of magnitude more than
        // the numeric factorization itself, so timing it inside the
        // cells would drown the kernel comparison this sweep exists for.
        let t0 = Instant::now();
        let perm = Ordering::MinDegree.compute(&fl).expect("grid Laplacian is square");
        let ordering_s = t0.elapsed().as_secs_f64();
        let upper = fl.symmetric_perm_upper(&perm).expect("permutation matches");
        let symbolic =
            SymbolicCholesky::analyze(&upper).expect("symbolic analysis of an SPD matrix");
        let part = SupernodePartition::from_symbolic(&upper, &symbolic);

        // Gated grids repeat the serial measurement and keep the fastest
        // repetition: a single sample on a shared box is dominated by
        // scheduler noise, and the minimum over a few repetitions is the
        // standard estimator of the true (noise-free) cost. The factor
        // itself is bit-identical across repetitions (fixed kernel, one
        // thread), so any repetition's factor serves as the reference.
        let serial_reps = if args.check && fn_nodes >= PERF_GATE_MIN_NODES { 3 } else { 1 };
        let mut serial_by_kernel: Vec<(KernelVariant, CholeskyFactor, f64)> = Vec::new();
        for kernel in [KernelVariant::Scalar, KernelVariant::Supernodal] {
            let mut best: Option<(CholeskyFactor, f64)> = None;
            for _ in 0..serial_reps {
                let t0 = Instant::now();
                let serial =
                    CholeskyFactor::factorize_with_perm_kernel(&fl, perm.clone(), kernel, 1)
                        .expect("grid is SPD");
                let serial_s = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|(_, s)| serial_s < *s) {
                    best = Some((serial, serial_s));
                }
            }
            let (serial, serial_s) = best.expect("at least one repetition");
            serial_by_kernel.push((kernel, serial, serial_s));
        }
        if args.check {
            let (_, scalar, _) = &serial_by_kernel[0];
            let (_, sup, _) = &serial_by_kernel[1];
            assert_eq!(scalar.l().colptr(), sup.l().colptr(), "kernels disagree on pattern");
            assert_eq!(scalar.l().rowidx(), sup.l().rowidx(), "kernels disagree on pattern");
            assert!(
                scalar
                    .l()
                    .values()
                    .iter()
                    .zip(sup.l().values().iter())
                    .all(|(a, b)| (a - b).abs() <= 1e-9 * (1.0 + a.abs())),
                "kernels disagree beyond rounding tolerance"
            );
        }

        for (kernel, serial, serial_s) in &serial_by_kernel {
            let serial_s = *serial_s;
            for &t in &args.threads {
                let schedule = symbolic.schedule(t);
                let t0 = Instant::now();
                let par = CholeskyFactor::factorize_with_perm_kernel(&fl, perm.clone(), *kernel, t)
                    .expect("SPD");
                let secs = t0.elapsed().as_secs_f64();
                if args.check {
                    assert_eq!(par.l().colptr(), serial.l().colptr(), "factor pattern changed");
                    assert_eq!(par.l().rowidx(), serial.l().rowidx(), "factor pattern changed");
                    assert!(
                        par.l()
                            .values()
                            .iter()
                            .zip(serial.l().values().iter())
                            .all(|(a, b)| a.to_bits() == b.to_bits()),
                        "{kernel:?} factor values changed at {t} threads — \
                         determinism contract broken"
                    );
                }

                // Traced re-run: decompose the numeric phase into
                // subtree jobs and the serial tail for this cell. Cells
                // the perf gates below inspect repeat the traced run and
                // keep the repetition with the smallest tail fraction:
                // shared CI boxes show double-digit run-to-run variance,
                // and the minimum over a few repetitions is the standard
                // estimator of the true (noise-free) cost.
                let reps = if args.check && fn_nodes >= PERF_GATE_MIN_NODES { 3 } else { 1 };
                let recorder = tracered_obs::recorder();
                let mut numeric_s = f64::INFINITY;
                let mut tail_s = f64::INFINITY;
                let mut tail_fraction = f64::INFINITY;
                for _ in 0..reps {
                    recorder.reset();
                    tracered_obs::set_enabled(true);
                    let traced =
                        CholeskyFactor::factorize_with_perm_kernel(&fl, perm.clone(), *kernel, t)
                            .expect("SPD");
                    tracered_obs::set_enabled(false);
                    if args.check {
                        assert!(
                            traced
                                .l()
                                .values()
                                .iter()
                                .zip(par.l().values().iter())
                                .all(|(a, b)| a.to_bits() == b.to_bits()),
                            "traced {kernel:?} factor differs — tracing is not transparent"
                        );
                    }
                    let trace = recorder.trace();
                    let ns = trace.span_total("chol.numeric").as_secs_f64();
                    let ts = trace.span_total("chol.numeric.tail").as_secs_f64();
                    let frac = ts / ns.max(f64::MIN_POSITIVE);
                    recorder.reset();
                    if frac < tail_fraction {
                        tail_fraction = frac;
                        numeric_s = ns;
                        tail_s = ts;
                    }
                }

                let par_frac = schedule.parallel_columns() as f64 / fn_nodes as f64;
                println!(
                    "factor_scaling n={fn_nodes} kernel={kernel:?} t={t}: serial {serial_s:.3}s, \
                     parallel {secs:.3}s (speedup {:.2}×), {} jobs covering {:.0}% of {} levels, \
                     {} supernodes (mean width {:.1}), tail fraction {:.0}%",
                    serial_s / secs,
                    schedule.jobs().len(),
                    par_frac * 100.0,
                    schedule.num_levels(),
                    part.num_supernodes(),
                    part.mean_width(),
                    tail_fraction * 100.0,
                );
                factor_records.push(
                    BenchRecord::new()
                        .str("bench", "factor_scaling")
                        .str("case", "grid2d-log")
                        .str("ordering", "MinDegree")
                        .str("kernel", format!("{kernel:?}"))
                        .int("nodes", fn_nodes as i64)
                        .int("edges", fg.num_edges() as i64)
                        .int("factor_nnz", serial.nnz() as i64)
                        .int("factor_threads", t as i64)
                        .int(
                            "available_parallelism",
                            tracered_bench::available_parallelism() as i64,
                        )
                        .int("pool_size", tracered_bench::pool_size() as i64)
                        .num("ordering_seconds", ordering_s)
                        .num("serial_seconds", serial_s)
                        .num("parallel_seconds", secs)
                        .num("speedup_vs_serial", serial_s / secs)
                        .int("schedule_jobs", schedule.jobs().len() as i64)
                        .int("schedule_parallel_columns", schedule.parallel_columns() as i64)
                        .num("schedule_parallel_fraction", par_frac)
                        .int("etree_levels", schedule.num_levels() as i64)
                        .int("supernodes", part.num_supernodes() as i64)
                        .num("supernode_mean_width", part.mean_width())
                        .int("supernode_max_width", part.max_width() as i64)
                        .int("supernode_padded_cells", part.padded_cells() as i64)
                        .num("numeric_seconds_traced", numeric_s)
                        .num("numeric_tail_seconds", tail_s)
                        .num("serial_tail_fraction", tail_fraction)
                        .int("checked", i64::from(args.check)),
                );

                // PR 10 acceptance gates, full scale only: the blocked
                // kernel must beat the scalar serial reference, and its
                // parallel runs must spend less of the numeric phase in
                // the serial tail than the 68% scalar baseline.
                if args.check
                    && fn_nodes >= PERF_GATE_MIN_NODES
                    && *kernel == KernelVariant::Supernodal
                {
                    let scalar_serial_s = serial_by_kernel[0].2;
                    assert!(
                        serial_s < scalar_serial_s,
                        "supernodal serial ({serial_s:.3}s) must beat scalar serial \
                         ({scalar_serial_s:.3}s) at n={fn_nodes}"
                    );
                    if t > 1 {
                        assert!(
                            tail_fraction < TAIL_FRACTION_BASELINE,
                            "supernodal tail fraction {tail_fraction:.2} must stay below the \
                             {TAIL_FRACTION_BASELINE} scalar baseline at n={fn_nodes}, t={t}"
                        );
                    }
                }
            }
        }
    }
    write_bench_json(&args.factor_out, &factor_records)
        .expect("writing the factor bench JSON must succeed");
    println!("wrote {} records to {}", factor_records.len(), args.factor_out);

    // --- Traced representative run (--obs-out). ---
    // One factorization + one PCG solve at the highest thread count with
    // the recorder on: the spans decompose `chol.numeric` into parallel
    // subtree jobs and the serial tail, quantifying the Amdahl ceiling
    // the factor_scaling speedups run into.
    if let Some(obs_path) = &args.obs_out {
        let tmax = *args.threads.iter().max().expect("threads are non-empty");
        let baseline =
            CholeskyFactor::factorize_threads(&lg, Ordering::MinDegree, tmax).expect("SPD");

        let recorder = tracered_obs::recorder();
        recorder.reset();
        tracered_obs::set_enabled(true);
        let traced =
            CholeskyFactor::factorize_threads(&lg, Ordering::MinDegree, tmax).expect("SPD");
        let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-3).threads(tmax));
        tracered_obs::set_enabled(false);
        assert!(sol.converged, "traced PCG must converge");

        if args.check {
            assert!(
                traced
                    .l()
                    .values()
                    .iter()
                    .zip(baseline.l().values().iter())
                    .all(|(a, b)| a.to_bits() == b.to_bits()),
                "traced factor differs from untraced factor — tracing is not transparent"
            );
        }

        let trace = recorder.trace();
        let factor_s = trace.span_total("chol.factorize").as_secs_f64();
        let symbolic_s = trace.span_total("chol.symbolic").as_secs_f64();
        let schedule_s = trace.span_total("chol.schedule").as_secs_f64();
        let numeric_s = trace.span_total("chol.numeric").as_secs_f64();
        let tail_s = trace.span_total("chol.numeric.tail").as_secs_f64();
        // Job time is summed across workers, so it can exceed the
        // numeric phase's wall time — that excess *is* the parallelism.
        let jobs_s = trace.span_total("chol.numeric.job").as_secs_f64();
        let tail_fraction = tail_s / numeric_s.max(f64::MIN_POSITIVE);
        let snapshot = recorder.snapshot_json();
        tracered_obs::validate_json(&snapshot).expect("obs snapshot must be valid JSON");

        let obs_rec = BenchRecord::new()
            .str("bench", "par_scaling_obs")
            .str("case", "grid2d-log")
            .str("ordering", "MinDegree")
            .int("nodes", n as i64)
            .int("edges", m as i64)
            .int("threads", tmax as i64)
            .int("factor_nnz", traced.nnz() as i64)
            .num("factor_seconds", factor_s)
            .num("symbolic_seconds", symbolic_s)
            .num("schedule_seconds", schedule_s)
            .num("numeric_seconds", numeric_s)
            .num("numeric_tail_seconds", tail_s)
            .num("numeric_job_seconds_summed", jobs_s)
            .num("serial_tail_fraction", tail_fraction)
            .int("numeric_jobs", trace.span_count("chol.numeric.job") as i64)
            .num("pcg_seconds", trace.span_total("pcg.solve").as_secs_f64())
            .int("pcg_iterations", sol.iterations as i64)
            .raw_json("obs", snapshot);
        write_bench_json(obs_path, &[obs_rec]).expect("writing the obs JSON must succeed");
        println!(
            "obs: numeric {:.3}s = jobs {:.3}s (summed over workers) + tail {:.3}s \
             (serial-tail fraction {:.0}%); wrote {obs_path}",
            numeric_s,
            jobs_s,
            tail_s,
            tail_fraction * 100.0,
        );
        recorder.reset();
    }
}

/// The PR 1–3 runtime, kept verbatim as the microbench baseline: chunk
/// jobs on a mutex-guarded queue, fresh scoped OS threads spawned per
/// region and joined on exit.
fn scoped_chunks2<F>(a: &mut [f64], b: &mut [f64], chunk: usize, threads: usize, body: F)
where
    F: Fn(usize, &mut [f64], &mut [f64]) + Sync,
{
    let jobs: Vec<(usize, &mut [f64], &mut [f64])> = {
        let mut start = 0;
        a.chunks_mut(chunk)
            .zip(b.chunks_mut(chunk))
            .map(|(pa, pb)| {
                let job = (start, pa, pb);
                start += job.1.len();
                job
            })
            .collect()
    };
    let workers = threads.min(jobs.len());
    let queue = std::sync::Mutex::new(jobs.into_iter());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let job = queue.lock().expect("worker panicked holding job queue").next();
                match job {
                    Some((start, pa, pb)) => body(start, pa, pb),
                    None => break,
                }
            });
        }
    });
}
