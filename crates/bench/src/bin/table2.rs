//! **Table 2** — power-grid transient simulation.
//!
//! Six synthetic PG cases (analogs of ibmpg3t…thupg2t). For each:
//!
//! - **Direct**: fixed 10 ps steps, one factorization of `G + C/h`,
//!   substitutions per step (`T_tr`, `Mem`);
//! - **GRASS / Proposed**: variable breakpoint-driven steps (≤ 200 ps),
//!   PCG (tol 1e-6) preconditioned by the Cholesky factor of each
//!   method's sparsifier built in DC analysis (`T_s`, `T_tr`, `N_e`,
//!   `Mem`);
//! - speedups `Sp1 = T_direct / T_proposed`, `Sp2 = T_grass / T_proposed`
//!   (paper averages: 3.4 and 1.4).
//!
//! Usage: `table2 [--scale f] [--case name]`

use std::time::{Duration, Instant};
use tracered_bench::{geomean, mib, parse_args, secs};
use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_direct, simulate_pcg, TransientConfig};
use tracered_powergrid::PowerGrid;
use tracered_solver::precond::{CholPreconditioner, Preconditioner};

struct PgCase {
    name: &'static str,
    analog_of: &'static str,
    mesh: usize,
    seed: u64,
}

fn pg_cases() -> Vec<PgCase> {
    // Default sizes sit at 10k–50k nodes: large enough that the direct
    // solver's factor cost and fill dominate (the regime of the paper's
    // 0.85M–9M-node benchmarks), small enough to run in minutes.
    vec![
        PgCase { name: "pg-a", analog_of: "ibmpg3t", mesh: 104, seed: 31 },
        PgCase { name: "pg-b", analog_of: "ibmpg4t", mesh: 116, seed: 32 },
        PgCase { name: "pg-c", analog_of: "ibmpg5t", mesh: 128, seed: 33 },
        PgCase { name: "pg-d", analog_of: "ibmpg6t", mesh: 152, seed: 34 },
        PgCase { name: "pg-e", analog_of: "thupg1t", mesh: 176, seed: 35 },
        PgCase { name: "pg-f", analog_of: "thupg2t", mesh: 216, seed: 36 },
    ]
}

fn build_grid(case: &PgCase, scale: f64) -> PowerGrid {
    let mesh = ((case.mesh as f64 * scale.sqrt()).round() as usize).max(8);
    synthesize(&SynthConfig { mesh, seed: case.seed, ..Default::default() })
}

/// Builds a sparsifier preconditioner for the PG conductance matrix,
/// grounding the sparsifier's Laplacian with the *physical* pad
/// conductances.
fn pg_preconditioner(pg: &PowerGrid, method: Method) -> (CholPreconditioner, Duration) {
    let t0 = Instant::now();
    let cfg =
        SparsifyConfig::new(method).shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = tracered_core::sparsify(pg.graph(), &cfg).expect("PG mesh is connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph()))
        .expect("padded sparsifier Laplacian is SPD");
    (pre, t0.elapsed())
}

fn main() {
    let (scale, only) = parse_args();
    println!("# Table 2: power grid transient simulation (scale {scale}, 5 ns horizon)");
    println!(
        "{:<6} {:>7} | {:>8} {:>8} | {:>7} {:>8} {:>6} | {:>7} {:>8} {:>6} {:>8} | {:>5} {:>5}",
        "case",
        "|V|",
        "Dir Ttr",
        "Dir Mem",
        "GR T_s",
        "GR Ttr",
        "GR Ne",
        "TR T_s",
        "TR Ttr",
        "TR Ne",
        "TR Mem",
        "Sp1",
        "Sp2"
    );
    let mut sp1s = Vec::new();
    let mut sp2s = Vec::new();
    for case in pg_cases() {
        if let Some(ref name) = only {
            if name != case.name {
                continue;
            }
        }
        let pg = build_grid(&case, scale);
        let probes = {
            let (a, b) = probe_pair(&pg);
            vec![a, b]
        };
        let cfg = TransientConfig { fixed_step: Some(1e-11), ..Default::default() };
        let direct = simulate_direct(&pg, &cfg, &probes).expect("grid is grounded");
        let vcfg = TransientConfig { fixed_step: None, ..Default::default() };
        let (grass_pre, grass_ts) = pg_preconditioner(&pg, Method::Grass);
        let grass = simulate_pcg(&pg, &vcfg, &grass_pre, &probes).expect("grid is grounded");
        let (tr_pre, tr_ts) = pg_preconditioner(&pg, Method::TraceReduction);
        let proposed = simulate_pcg(&pg, &vcfg, &tr_pre, &probes).expect("grid is grounded");
        // Accuracy guard mirroring the paper's < 16 mV check.
        for idx in 0..probes.len() {
            let d = direct.max_probe_difference(&proposed, idx, 500);
            assert!(d < 0.016, "probe {idx} deviates {d} V from direct");
        }
        let t_dir = direct.stats.factor_time + direct.stats.solve_time;
        let t_gr = grass.stats.solve_time;
        let t_tr = proposed.stats.solve_time;
        let sp1 = t_dir.as_secs_f64() / t_tr.as_secs_f64().max(1e-9);
        let sp2 = t_gr.as_secs_f64() / t_tr.as_secs_f64().max(1e-9);
        sp1s.push(sp1);
        sp2s.push(sp2);
        println!(
            "{:<6} {:>7} | {:>8} {:>7}M | {:>7} {:>8} {:>6.1} | {:>7} {:>8} {:>6.1} {:>7}M | {:>5.1} {:>5.1}",
            case.name,
            pg.num_nodes(),
            secs(t_dir),
            mib(direct.stats.memory_bytes),
            secs(grass_ts),
            secs(t_gr),
            grass.stats.avg_pcg_iterations,
            secs(tr_ts),
            secs(t_tr),
            proposed.stats.avg_pcg_iterations,
            mib(tr_pre.memory_bytes()),
            sp1,
            sp2,
        );
        let _ = case.analog_of;
    }
    if sp1s.len() > 1 {
        println!(
            "{:<6} average speedups: Sp1 {:.1} (paper 3.4), Sp2 {:.1} (paper 1.4)",
            "-",
            geomean(&sp1s),
            geomean(&sp2s)
        );
    }
}
