//! **Table 3** — computing the approximate Fiedler vector for spectral
//! graph partitioning.
//!
//! Five mesh cases; five steps of inverse power iteration per solver.
//! Reports the direct solver's time and factor memory, and for each
//! sparsifier-preconditioned PCG solver its time, memory, average PCG
//! iterations per step (`N_e`) and the partition disagreement vs the
//! direct result (`RelErr`), plus `Sp1 = T_D / T_I(proposed)` and
//! `Sp2 = T_I(GRASS) / T_I(proposed)` (paper averages: 3.3 and 1.4).
//!
//! Usage: `table3 [--scale f] [--case name]`

use std::time::Instant;

use tracered_bench::{geomean, mib, parse_args, table1_cases};
use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::Graph;
use tracered_partition::{bisect_direct, bisect_pcg, partition_shift, relative_error, Bisection};
use tracered_solver::precond::{CholPreconditioner, Preconditioner};

const STEPS: usize = 5;
const SEED: u64 = 404;

fn iterative(g: &Graph, method: Method) -> (Bisection, f64, usize) {
    let s = partition_shift(g);
    let cfg = SparsifyConfig::new(method).shift(ShiftPolicy::Uniform(s));
    // Sparsifier construction is the amortized `T_s` of Table 1; the
    // paper's Table 3 `T_I` covers "matrix factorization and inverse
    // power iteration" only.
    let sp = tracered_core::sparsify(g, &cfg).expect("bench cases are connected");
    let t0 = Instant::now();
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g)).expect("SPD");
    let bis = bisect_pcg(g, &pre, STEPS, SEED, 1e-3).expect("bisection");
    (bis, t0.elapsed().as_secs_f64(), pre.memory_bytes())
}

fn main() {
    let (scale, only) = parse_args();
    println!("# Table 3: approximate Fiedler vector / spectral partitioning (scale {scale})");
    println!(
        "{:<14} {:>8} | {:>8} {:>8} | {:>8} {:>6} {:>9} | {:>8} {:>8} {:>6} {:>9} | {:>5} {:>5}",
        "case",
        "|V|",
        "T_D",
        "D Mem",
        "GR T_I",
        "GR Ne",
        "GR RelErr",
        "TR T_I",
        "TR Mem",
        "TR Ne",
        "TR RelErr",
        "Sp1",
        "Sp2"
    );
    let mut sp1s = Vec::new();
    let mut sp2s = Vec::new();
    // The paper's Table 3 uses the first five (SuiteSparse) cases.
    for case in table1_cases().into_iter().take(5) {
        if let Some(ref name) = only {
            if name != case.name {
                continue;
            }
        }
        let g = case.graph(scale);
        // Factor memory of the direct path, measured outside the timing.
        let direct_mem = {
            let s = partition_shift(&g);
            let l = tracered_graph::laplacian::laplacian_with_shifts(&g, &vec![s; g.num_nodes()]);
            tracered_solver::DirectSolver::new(&l).expect("SPD").memory_bytes()
        };
        let t0 = Instant::now();
        let direct_bis = bisect_direct(&g, STEPS, SEED).expect("bisection");
        let direct = (direct_bis, t0.elapsed().as_secs_f64(), direct_mem);
        let (gr_bis, gr_time, _gr_mem) = iterative(&g, Method::Grass);
        let (tr_bis, tr_time, tr_mem) = iterative(&g, Method::TraceReduction);
        let gr_err = relative_error(&direct.0.side, &gr_bis.side);
        let tr_err = relative_error(&direct.0.side, &tr_bis.side);
        let sp1 = direct.1 / tr_time.max(1e-9);
        let sp2 = gr_time / tr_time.max(1e-9);
        sp1s.push(sp1);
        sp2s.push(sp2);
        println!(
            "{:<14} {:>8} | {:>8.3} {:>7}M | {:>8.3} {:>6.1} {:>9.1e} | {:>8.3} {:>7}M {:>6.1} {:>9.1e} | {:>5.1} {:>5.1}",
            case.name,
            g.num_nodes(),
            direct.1,
            mib(direct.2),
            gr_time,
            gr_bis.inner_iterations as f64 / STEPS as f64,
            gr_err,
            tr_time,
            mib(tr_mem),
            tr_bis.inner_iterations as f64 / STEPS as f64,
            tr_err,
            sp1,
            sp2,
        );
    }
    if sp1s.len() > 1 {
        println!(
            "{:<14} average speedups: Sp1 {:.1} (paper 3.3), Sp2 {:.1} (paper 1.4)",
            "-",
            geomean(&sp1s),
            geomean(&sp2s)
        );
    }
}
