//! **Figure 2** — trade-off between sparsifier density and power-grid
//! transient runtime, GRASS vs the proposed method.
//!
//! Sweeps the proportion of recovered off-tree edges over
//! {0.05, 0.075, …, 0.20} on one PG case and records the transient
//! solve time of each method's preconditioned PCG. Writes
//! `fig2_tradeoff.csv` and prints the series; the paper's shape:
//! runtime decreases with density (diminishing returns) and the proposed
//! method keeps a persistent advantage that grows with density.
//!
//! Usage: `fig2 [--scale f]`

use tracered_bench::parse_args;
use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_pcg, TransientConfig};
use tracered_solver::precond::CholPreconditioner;

fn main() {
    let (scale, _) = parse_args();
    let mesh = ((116.0 * scale.sqrt()).round() as usize).max(8);
    let pg = synthesize(&SynthConfig { mesh, seed: 32, ..Default::default() });
    let probes = {
        let (a, b) = probe_pair(&pg);
        vec![a, b]
    };
    let fractions = [0.05, 0.075, 0.10, 0.125, 0.15, 0.175, 0.20];
    println!("# Figure 2: sparsity vs transient runtime (mesh {mesh}, |V| = {})", pg.num_nodes());
    println!(
        "{:>9} {:>12} {:>12} {:>8} {:>8}",
        "fraction", "GRASS (s)", "Proposed (s)", "GR Ne", "TR Ne"
    );
    let mut csv = String::from("fraction,grass_seconds,proposed_seconds,grass_ne,proposed_ne\n");
    for &f in &fractions {
        let mut row = (0.0, 0.0, 0.0, 0.0);
        for method in [Method::Grass, Method::TraceReduction] {
            let cfg = SparsifyConfig::new(method)
                .edge_fraction(f)
                .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
            let sp = tracered_core::sparsify(pg.graph(), &cfg).expect("PG mesh is connected");
            let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).expect("SPD");
            let out = simulate_pcg(&pg, &TransientConfig::default(), &pre, &probes)
                .expect("grid is grounded");
            let secs = out.stats.solve_time.as_secs_f64();
            match method {
                Method::Grass => {
                    row.0 = secs;
                    row.2 = out.stats.avg_pcg_iterations;
                }
                _ => {
                    row.1 = secs;
                    row.3 = out.stats.avg_pcg_iterations;
                }
            }
        }
        println!("{:>9.3} {:>12.4} {:>12.4} {:>8.1} {:>8.1}", f, row.0, row.1, row.2, row.3);
        csv.push_str(&format!("{},{:.6},{:.6},{:.2},{:.2}\n", f, row.0, row.1, row.2, row.3));
    }
    std::fs::write("fig2_tradeoff.csv", csv).expect("write csv");
    println!("wrote fig2_tradeoff.csv");
}
