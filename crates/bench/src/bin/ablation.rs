//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! - truncation radius β (paper default 5);
//! - SPAI pruning threshold δ (paper default 0.1);
//! - diagonal grounding scale (the reproduction finding of DESIGN.md §3);
//! - densification iteration count `N_r` (paper default 5);
//! - spanning-tree flavour (MEWST vs plain max-weight);
//! - similar-edge exclusion on/off.
//!
//! Each sweep reports κ(L_G, L_P) and sparsification time on one mesh
//! case.
//!
//! Usage: `ablation [--scale f]`

use std::time::Instant;

use tracered_bench::parse_args;
use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::mst::TreeKind;
use tracered_graph::Graph;
use tracered_solver::precond::CholPreconditioner;

fn eval(g: &Graph, cfg: &SparsifyConfig) -> (f64, f64) {
    let t0 = Instant::now();
    let sp = sparsify(g, cfg).expect("mesh is connected");
    let ts = t0.elapsed().as_secs_f64();
    let lg = sp.graph_laplacian(g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(g)).expect("SPD");
    (relative_condition_number(&lg, pre.factor(), 60, 11), ts)
}

fn main() {
    let (scale, _) = parse_args();
    let d = ((60.0 * scale.sqrt()).round() as usize).max(10);
    let g = tri_mesh(d, d, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 7);
    println!("# Ablations on trimesh {d}x{d} (|V| = {}, |E| = {})", g.num_nodes(), g.num_edges());

    println!("\n## β sweep (truncation radius; paper default 5)");
    for beta in [1usize, 2, 3, 5, 8, 12] {
        let (k, ts) = eval(&g, &SparsifyConfig::new(Method::TraceReduction).beta(beta));
        println!("beta {beta:>3}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    println!("\n## δ sweep (SPAI pruning threshold; paper default 0.1)");
    for delta in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
        let (k, ts) = eval(&g, &SparsifyConfig::new(Method::TraceReduction).spai_threshold(delta));
        println!("delta {delta:>5.2}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    println!("\n## grounding sweep (diagonal shift as fraction of mean weighted degree)");
    for s in [1e-6, 1e-5, 1e-4, 1e-3, 1e-2] {
        let (k, ts) = eval(
            &g,
            &SparsifyConfig::new(Method::TraceReduction).shift(ShiftPolicy::RelativeMeanDegree(s)),
        );
        println!("shift {s:>8.0e}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    println!("\n## N_r sweep (densification iterations; paper default 5)");
    for nr in [1usize, 2, 3, 5, 8] {
        let (k, ts) = eval(&g, &SparsifyConfig::new(Method::TraceReduction).iterations(nr));
        println!("N_r {nr:>2}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    println!("\n## spanning tree flavour (stretch = Σ w·R_T over all edges)");
    for (name, kind) in
        [("MEWST", TreeKind::MaxEffectiveWeight), ("max-weight", TreeKind::MaxWeight)]
    {
        let st = tracered_graph::mst::spanning_tree(&g, kind).expect("mesh is connected");
        let tree = tracered_graph::RootedTree::build(&g, &st.tree_edges, 0).expect("tree");
        let stretch = tracered_graph::lca::total_stretch(&g, &tree);
        let (k, ts) = eval(&g, &SparsifyConfig::new(Method::TraceReduction).tree_kind(kind));
        println!("{name:>10}: kappa {k:>8.2}, T_s {ts:>7.3}s, stretch {stretch:>10.0}");
    }

    println!("\n## similar-edge exclusion");
    for (name, on) in [("enabled", true), ("disabled", false)] {
        let (k, ts) =
            eval(&g, &SparsifyConfig::new(Method::TraceReduction).similarity_exclusion(on));
        println!("{name:>10}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    println!("\n## method comparison at matched budget");
    for (name, m) in [
        ("trace-red", Method::TraceReduction),
        ("grass", Method::Grass),
        ("eff-res", Method::EffectiveResistance),
        ("jl-res", Method::JlResistance),
    ] {
        let (k, ts) = eval(&g, &SparsifyConfig::new(m));
        println!("{name:>10}: kappa {k:>8.2}, T_s {ts:>7.3}s");
    }

    transient_solver_ablation(scale);
}

/// The paper's §4.2 argument, made concrete: with *varied* time steps a
/// direct solver refactorizes at every step-size change, while the
/// sparsifier-preconditioned PCG reuses one preconditioner throughout.
fn transient_solver_ablation(scale: f64) {
    use tracered_powergrid::synth::{synthesize, SynthConfig};
    use tracered_powergrid::transient::{
        probe_pair, simulate_direct, simulate_direct_varied, simulate_pcg, TransientConfig,
    };
    use tracered_solver::precond::CholPreconditioner;

    let mesh = ((72.0 * scale.sqrt()).round() as usize).max(8);
    let pg = synthesize(&SynthConfig { mesh, seed: 5, ..Default::default() });
    let probes = {
        let (a, b) = probe_pair(&pg);
        vec![a, b]
    };
    println!("\n## transient solver strategies (PG mesh {mesh}, |V| = {})", pg.num_nodes());
    let fixed = simulate_direct(
        &pg,
        &TransientConfig { fixed_step: Some(1e-11), ..Default::default() },
        &probes,
    )
    .expect("grid is grounded");
    println!(
        "direct fixed 10ps : {:>7.3}s ({} steps, 1 factorization)",
        (fixed.stats.factor_time + fixed.stats.solve_time).as_secs_f64(),
        fixed.stats.steps
    );
    let varied = simulate_direct_varied(&pg, &TransientConfig::default(), &probes)
        .expect("grid is grounded");
    println!(
        "direct varied step: {:>7.3}s ({} steps, {} factorizations)",
        (varied.stats.factor_time + varied.stats.solve_time).as_secs_f64(),
        varied.stats.steps,
        varied.stats.factorizations
    );
    let cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(tracered_graph::laplacian::ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = tracered_core::sparsify(pg.graph(), &cfg).expect("PG mesh is connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).expect("SPD");
    let pcg_run =
        simulate_pcg(&pg, &TransientConfig::default(), &pre, &probes).expect("grid is grounded");
    println!(
        "sparsifier PCG    : {:>7.3}s ({} steps, 0 factorizations, avg {:.1} its/step)",
        pcg_run.stats.solve_time.as_secs_f64(),
        pcg_run.stats.steps,
        pcg_run.stats.avg_pcg_iterations
    );
}
