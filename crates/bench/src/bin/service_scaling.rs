//! Service-scaling benchmark: Poisson open-loop load against the solver
//! service, sweeping arrival rate × `max_batch_width`.
//!
//! A deterministic load generator submits PCG requests with
//! exponentially distributed inter-arrival gaps (open loop: the arrival
//! process never waits for responses), while a collector thread stamps
//! each response as it lands. Per `(rate, width)` cell the record in
//! `BENCH_pr7.json` carries:
//!
//! - `achieved_rps` — completed requests per wall-clock second;
//! - `mean_batch_width` — average executed batch width (the aggregation
//!   payoff: `> 1` means requests actually shared blocked kernels);
//! - `p50_latency_s` / `p99_latency_s` — submit-to-response latency
//!   quantiles.
//!
//! `--check` additionally asserts the service's arithmetic contract —
//! micro-batched responses bit-identical to one-at-a-time responses,
//! with and without tracing enabled — and that the widest sweep cell at
//! the highest offered rate actually aggregated (`mean_batch_width > 1`).
//!
//! `--obs-out <path>` re-runs the heaviest cell once with tracing
//! enabled and writes an observability record there: the recorder's
//! span/instrument snapshot, the per-request latency decomposition
//! (queue / linger / kernel fractions), and the live histogram
//! p50/p99 next to the collector-side quantiles. Under `--check` the
//! live and collector quantiles must agree within histogram bucket
//! resolution plus scheduler-wakeup slack (the collector stamps after
//! `Ticket::wait` returns, the live histogram at reply time).
//!
//! Usage: `cargo run --release -p tracered-bench --bin service_scaling --
//! [--mesh 24] [--rates 5000,20000,100000] [--widths 1,4,8]
//! [--requests 96] [--threads 1] [--tol 1e-8] [--out BENCH_pr7.json]
//! [--obs-out OBS.json] [--check]`

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use tracered_bench::{available_parallelism, pool_size, write_bench_json, BenchRecord};
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_service::{ContextSpec, ServiceConfig, ServiceRequest, SolverService, Ticket};
use tracered_sparse::CscMatrix;

struct Args {
    mesh: usize,
    rates: Vec<usize>,
    widths: Vec<usize>,
    requests: usize,
    threads: usize,
    tol: f64,
    out: String,
    obs_out: Option<String>,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        mesh: 24,
        rates: vec![5_000, 20_000, 100_000],
        widths: vec![1, 4, 8],
        requests: 96,
        threads: 1,
        tol: 1e-8,
        out: "BENCH_pr7.json".to_string(),
        obs_out: None,
        check: false,
    };
    let parse_list = |spec: String| -> Vec<usize> {
        spec.split(',')
            .map(|t| t.trim().parse().expect("list entries must be positive integers"))
            .collect()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mesh" => {
                args.mesh = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--mesh requires a positive integer");
            }
            "--rates" => args.rates = parse_list(it.next().expect("--rates requires a list")),
            "--widths" => args.widths = parse_list(it.next().expect("--widths requires a list")),
            "--requests" => {
                args.requests = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--requests requires a positive integer");
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--threads requires a positive integer");
            }
            "--tol" => {
                args.tol = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--tol requires a positive tolerance");
            }
            "--out" => args.out = it.next().expect("--out requires a path"),
            "--obs-out" => args.obs_out = Some(it.next().expect("--obs-out requires a path")),
            "--check" => args.check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(args.mesh >= 4, "--mesh must be at least 4");
    assert!(!args.rates.is_empty() && args.rates.iter().all(|&r| r > 0));
    assert!(!args.widths.is_empty() && args.widths.iter().all(|&w| w > 0));
    assert!(args.requests > 0, "--requests must be positive");
    assert!(args.threads > 0, "--threads must be positive");
    assert!(args.tol > 0.0, "--tol must be positive");
    args
}

/// splitmix64 — the deterministic arrival clock.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Exponential inter-arrival gap for a Poisson process at `rate`/s.
fn exp_gap(state: &mut u64, rate: f64) -> f64 {
    let u = ((splitmix64(state) >> 11) as f64 + 0.5) / (1u64 << 53) as f64;
    -u.ln() / rate
}

fn request_rhs(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let h = (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(seed * 0x85eb_ca6b);
            ((h % 2000) as f64) / 1000.0 - 1.0
        })
        .collect()
}

fn service_config(width: usize, threads: usize) -> ServiceConfig {
    ServiceConfig {
        max_batch_width: width,
        // The bench favors throughput: a generous linger window lets the
        // aggregator actually observe the offered concurrency.
        max_linger: Duration::from_micros(500),
        solver_threads: threads,
        ..Default::default()
    }
}

fn quantile(sorted: &[f64], q: f64) -> f64 {
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Ceil nearest-rank quantile — the same convention the live
/// [`tracered_obs::Histogram`] uses, so the `--obs-out` comparison is
/// convention-for-convention.
fn rank_quantile(sorted: &[f64], q: f64) -> f64 {
    let len = sorted.len();
    let target = ((q * len as f64).ceil() as usize).clamp(1, len);
    sorted[target - 1]
}

fn main() {
    let args = parse_args();
    let pg = synthesize(&SynthConfig { mesh: args.mesh, seed: 7, ..Default::default() });
    let n = pg.num_nodes();
    println!(
        "power grid: {n} nodes, {} resistors; available parallelism {}",
        pg.graph().num_edges(),
        available_parallelism()
    );

    // The paper's pipeline feeds the service: conductance system matrix,
    // sparsifier Laplacian as the preconditioner matrix, published once
    // per service and shared by every request through Arc'd handles.
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg).expect("power grid is connected");
    let system: Arc<CscMatrix> = pg.conductance_shared();
    let precond: Arc<CscMatrix> = Arc::new(sp.laplacian(pg.graph()));
    let spec = || {
        ContextSpec::new(Arc::clone(&system), Arc::clone(&precond)).with_tag(sp_cfg.fingerprint())
    };

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut check_failures: Vec<String> = Vec::new();
    let max_rate = *args.rates.iter().max().expect("rates are non-empty");
    let max_width = *args.widths.iter().max().expect("widths are non-empty");

    for &rate in &args.rates {
        for &width in &args.widths {
            let svc = SolverService::start(service_config(width, args.threads));
            svc.publish(spec()).expect("publishing the bench context must succeed");
            let client = svc.client();

            // Collector: stamp responses as they land (FIFO wait order
            // matches the aggregator's arrival-order processing).
            let (tx, rx) = mpsc::channel::<(Instant, Ticket)>();
            let collector = thread::spawn(move || {
                let mut latencies: Vec<f64> = Vec::new();
                for (t_submit, ticket) in rx {
                    let out = ticket
                        .wait()
                        .expect("bench requests are healthy")
                        .into_solve()
                        .expect("solve response");
                    assert!(out.converged, "bench solve must converge");
                    latencies.push(t_submit.elapsed().as_secs_f64());
                }
                latencies
            });

            // Poisson open-loop load generator.
            let mut rng = 0x5eed_0000_0000_0007 ^ (rate as u64) << 8 ^ width as u64;
            let t0 = Instant::now();
            for i in 0..args.requests {
                let req = ServiceRequest::pcg(request_rhs(n, i as u64), args.tol);
                let _ = tx.send((Instant::now(), client.submit(req)));
                thread::sleep(Duration::from_secs_f64(exp_gap(&mut rng, rate as f64)));
            }
            drop(tx);
            let mut latencies = collector.join().expect("collector thread must not panic");
            let wall = t0.elapsed().as_secs_f64();
            latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));

            let m = svc.metrics();
            assert_eq!(m.completed as usize, args.requests, "every request must complete");
            let mean_width = m.mean_batch_width();
            let achieved_rps = args.requests as f64 / wall;
            let p50 = quantile(&latencies, 0.50);
            let p99 = quantile(&latencies, 0.99);
            records.push(
                BenchRecord::new()
                    .str("bench", "service_scaling")
                    .str("case", "synth-grid")
                    .int("mesh", args.mesh as i64)
                    .int("nodes", n as i64)
                    .int("offered_rate_rps", rate as i64)
                    .int("max_batch_width", width as i64)
                    .int("requests", args.requests as i64)
                    .int("threads", args.threads as i64)
                    .int("available_parallelism", available_parallelism() as i64)
                    .int("pool_size", pool_size() as i64)
                    .num("achieved_rps", achieved_rps)
                    .num("mean_batch_width", mean_width)
                    .int("widest_batch", m.max_batch_width as i64)
                    .int("batches", m.batches as i64)
                    .num("p50_latency_s", p50)
                    .num("p99_latency_s", p99),
            );
            println!(
                "rate {rate}/s width {width}: {achieved_rps:.0} req/s achieved, \
                 mean batch width {mean_width:.2} (max {}), p50 {:.1}µs p99 {:.1}µs",
                m.max_batch_width,
                p50 * 1e6,
                p99 * 1e6
            );

            // Aggregation gate: the widest cell under the heaviest load
            // must actually batch.
            if args.check && rate == max_rate && width == max_width && mean_width <= 1.0 {
                check_failures.push(format!(
                    "rate {rate}/s width {width}: mean batch width {mean_width:.2} \
                     shows no aggregation under load"
                ));
            }
        }
    }

    // Arithmetic gate: micro-batched responses must be bit-identical to
    // one-at-a-time responses (same thread count on both sides).
    if args.check {
        let solo = SolverService::start(service_config(1, args.threads));
        solo.publish(spec()).expect("publish");
        let batched = SolverService::start(service_config(max_width, args.threads));
        batched.publish(spec()).expect("publish");
        let tickets = batched.client().submit_many(
            (0..max_width)
                .map(|j| ServiceRequest::pcg(request_rhs(n, 500 + j as u64), args.tol))
                .collect(),
        );
        for (j, t) in tickets.into_iter().enumerate() {
            let got = t.wait().expect("healthy request").into_solve().expect("solve");
            let want = solo
                .client()
                .solve(ServiceRequest::pcg(request_rhs(n, 500 + j as u64), args.tol))
                .expect("healthy request")
                .into_solve()
                .expect("solve");
            let identical = got.x.len() == want.x.len()
                && got.x.iter().zip(&want.x).all(|(a, b)| (a - b).abs() == 0.0)
                && got.iterations == want.iterations;
            if !identical {
                check_failures.push(format!(
                    "request {j}: batched response (width {}) differs from sequential",
                    got.batch_width
                ));
            }
        }

        // Tracing gate: enabling the recorder must not change a single
        // bit of any response (span guards only read clocks).
        let req = || ServiceRequest::pcg(request_rhs(n, 999), args.tol);
        let plain =
            solo.client().solve(req()).expect("healthy request").into_solve().expect("solve");
        tracered_obs::set_enabled(true);
        let traced =
            solo.client().solve(req()).expect("healthy request").into_solve().expect("solve");
        tracered_obs::set_enabled(false);
        tracered_obs::recorder().reset();
        let identical = plain.x.len() == traced.x.len()
            && plain.x.iter().zip(&traced.x).all(|(a, b)| a.to_bits() == b.to_bits())
            && plain.iterations == traced.iterations;
        if !identical {
            check_failures
                .push("tracing-enabled response differs from tracing-disabled response".into());
        }
    }

    write_bench_json(&args.out, &records).expect("writing the bench JSON must succeed");
    println!("wrote {} records to {}", records.len(), args.out);

    // --- Traced representative run (--obs-out). ---
    // One more pass over the heaviest cell with the recorder on: where
    // does a request's latency actually go (queueing vs lingering vs the
    // blocked kernel), and do the service's live histograms agree with
    // the collector's ground truth?
    if let Some(obs_path) = &args.obs_out {
        let recorder = tracered_obs::recorder();
        recorder.reset();
        tracered_obs::set_enabled(true);

        let svc = SolverService::start(service_config(max_width, args.threads));
        svc.publish(spec()).expect("publishing the bench context must succeed");
        let client = svc.client();
        let (tx, rx) = mpsc::channel::<(Instant, Ticket)>();
        let collector = thread::spawn(move || {
            let mut latencies: Vec<f64> = Vec::new();
            for (t_submit, ticket) in rx {
                let out = ticket
                    .wait()
                    .expect("bench requests are healthy")
                    .into_solve()
                    .expect("solve response");
                assert!(out.converged, "bench solve must converge");
                latencies.push(t_submit.elapsed().as_secs_f64());
            }
            latencies
        });
        let mut rng = 0x0b5e_0000_0000_0008u64 ^ (max_rate as u64) << 8;
        for i in 0..args.requests {
            let req = ServiceRequest::pcg(request_rhs(n, i as u64), args.tol);
            let _ = tx.send((Instant::now(), client.submit(req)));
            thread::sleep(Duration::from_secs_f64(exp_gap(&mut rng, max_rate as f64)));
        }
        drop(tx);
        let mut latencies = collector.join().expect("collector thread must not panic");
        latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let m = svc.metrics();
        svc.shutdown();
        tracered_obs::set_enabled(false);

        let trace = recorder.trace();
        let batches = (m.batches as f64).max(1.0);
        let mean_latency = m.latency.mean_s.max(f64::MIN_POSITIVE);
        // Per-batch means: a request's latency contains its batch's
        // linger + kernel once, plus time queued before batch assembly.
        let mean_linger = trace.span_total("service.linger").as_secs_f64() / batches;
        let mean_kernel = trace.span_total("service.kernel").as_secs_f64() / batches;
        let linger_fraction = (mean_linger / mean_latency).min(1.0);
        let kernel_fraction = (mean_kernel / mean_latency).min(1.0);
        let queue_fraction = (1.0 - linger_fraction - kernel_fraction).max(0.0);
        let coll_p50 = rank_quantile(&latencies, 0.50);
        let coll_p99 = rank_quantile(&latencies, 0.99);
        let snapshot = recorder.snapshot_json();
        tracered_obs::validate_json(&snapshot).expect("obs snapshot must be valid JSON");

        let obs_rec = BenchRecord::new()
            .str("bench", "service_scaling_obs")
            .str("case", "synth-grid")
            .int("mesh", args.mesh as i64)
            .int("nodes", n as i64)
            .int("offered_rate_rps", max_rate as i64)
            .int("max_batch_width", max_width as i64)
            .int("requests", args.requests as i64)
            .int("threads", args.threads as i64)
            .int("batches", m.batches as i64)
            .int("max_queue_depth", m.max_queue_depth as i64)
            .num("mean_batch_width", m.mean_batch_width())
            .num("mean_latency_s", m.latency.mean_s)
            .num("mean_linger_s", mean_linger)
            .num("mean_kernel_s", mean_kernel)
            .num("queue_fraction", queue_fraction)
            .num("linger_fraction", linger_fraction)
            .num("kernel_fraction", kernel_fraction)
            .num("live_p50_s", m.latency.p50_s)
            .num("live_p99_s", m.latency.p99_s)
            .num("collector_p50_s", coll_p50)
            .num("collector_p99_s", coll_p99)
            .raw_json("obs", snapshot);
        write_bench_json(obs_path, &[obs_rec]).expect("writing the obs JSON must succeed");
        println!(
            "obs: latency mean {:.1}µs = queue {:.0}% + linger {:.0}% + kernel {:.0}%; \
             live p50 {:.1}µs vs collector {:.1}µs (wrote {obs_path})",
            m.latency.mean_s * 1e6,
            queue_fraction * 100.0,
            linger_fraction * 100.0,
            kernel_fraction * 100.0,
            m.latency.p50_s * 1e6,
            coll_p50 * 1e6,
        );
        recorder.reset();

        // Agreement gate: the live histogram observes reply-time stamps,
        // the collector stamps after `Ticket::wait` returns, so allow
        // one histogram bucket (~9%) compounded with scheduler-wakeup
        // slack: a factor of 1.5 plus 500µs absolute.
        if args.check {
            let agree = |live: f64, coll: f64| -> bool {
                let slack = 500e-6;
                live <= coll * 1.5 + slack && coll <= live * 1.5 + slack
            };
            if !agree(m.latency.p50_s, coll_p50) {
                check_failures.push(format!(
                    "live p50 {:.1}µs disagrees with collector p50 {:.1}µs",
                    m.latency.p50_s * 1e6,
                    coll_p50 * 1e6
                ));
            }
            if !agree(m.latency.p99_s, coll_p99) {
                check_failures.push(format!(
                    "live p99 {:.1}µs disagrees with collector p99 {:.1}µs",
                    m.latency.p99_s * 1e6,
                    coll_p99 * 1e6
                ));
            }
        }
    }

    if !check_failures.is_empty() {
        panic!("service scaling check failed: {}", check_failures.join("; "));
    }
}
