//! Batched multi-RHS solve benchmark: batch width × thread count sweep
//! over the blocked kernels and the batch power-grid transient engine.
//!
//! Three benches per (width, threads) cell, written to `BENCH_pr2.json`:
//!
//! - `solve_multi` — blocked Cholesky substitutions for a `k`-column
//!   block vs `k` single solves sharing the factor;
//! - `spmm` — symmetric SpMM vs `k` symmetric SpMVs;
//! - `transient_pcg_batch` — [`simulate_pcg_batch`] over a `k`-scenario
//!   ensemble (nominal + per-source activity corners), reporting the
//!   amortized per-RHS stepping time and per-scenario iteration counts.
//!
//! Every record carries `available_parallelism` so single-core containers
//! (where thread sweeps cannot show real speedups) are machine-detectable
//! on re-runs; `--check` asserts the batching win — amortized per-RHS
//! time at the largest width below the batch-of-1 baseline.
//!
//! Usage: `cargo run --release -p tracered-bench --bin multi_rhs --
//! [--mesh 40] [--widths 1,2,4,8] [--threads 1] [--t-end 2e-9]
//! [--out BENCH_pr2.json] [--check]`

use std::time::Instant;

use tracered_bench::{available_parallelism, pool_size, write_bench_json, BenchRecord};
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{
    probe_pair, simulate_pcg_batch, SourceScenario, TransientConfig,
};
use tracered_powergrid::PowerGrid;
use tracered_solver::precond::{CholPreconditioner, Preconditioner};
use tracered_sparse::MultiVec;

struct Args {
    mesh: usize,
    widths: Vec<usize>,
    threads: Vec<usize>,
    t_end: f64,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        mesh: 40,
        widths: vec![1, 2, 4, 8],
        threads: vec![1],
        t_end: 2e-9,
        out: "BENCH_pr2.json".to_string(),
        check: false,
    };
    let parse_list = |spec: String| -> Vec<usize> {
        spec.split(',')
            .map(|t| t.trim().parse().expect("list entries must be positive integers"))
            .collect()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mesh" => {
                args.mesh = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--mesh requires a positive integer");
            }
            "--widths" => {
                args.widths = parse_list(it.next().expect("--widths requires a list"));
            }
            "--threads" => {
                args.threads = parse_list(it.next().expect("--threads requires a list"));
            }
            "--t-end" => {
                args.t_end = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--t-end requires a positive duration in seconds");
            }
            "--out" => args.out = it.next().expect("--out requires a path"),
            "--check" => args.check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(args.mesh >= 4, "--mesh must be at least 4");
    assert!(!args.widths.is_empty() && args.widths.iter().all(|&k| k > 0));
    assert!(!args.threads.is_empty() && args.threads.iter().all(|&t| t > 0));
    assert!(args.t_end > 0.0, "--t-end must be positive");
    if args.check {
        assert!(
            args.widths[0] == 1 && args.widths.len() > 1,
            "--check compares the largest width against a batch-of-1 baseline, \
             so --widths must start at 1 and include a larger width"
        );
    }
    args
}

/// Deterministic ensemble: nominal corner plus per-source activity
/// patterns (mirrors the unit-test ensemble so numbers are comparable).
fn scenario_ensemble(pg: &PowerGrid, k: usize) -> Vec<SourceScenario> {
    let m = pg.sources().len();
    (0..k)
        .map(|i| {
            if i == 0 {
                SourceScenario::nominal()
            } else {
                SourceScenario::per_source(
                    (0..m).map(|j| 0.25 + ((i * 7 + j * 3) % 10) as f64 * 0.15).collect(),
                )
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let pg = synthesize(&SynthConfig { mesh: args.mesh, seed: 7, ..Default::default() });
    let n = pg.num_nodes();
    println!(
        "power grid: {n} nodes, {} resistors, {} sources; available parallelism {}",
        pg.graph().num_edges(),
        pg.sources().len(),
        available_parallelism()
    );

    // Sparsifier-preconditioner built once from DC analysis (the paper's
    // workflow), shared by every batch configuration.
    let t0 = Instant::now();
    let sp_cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = sparsify(pg.graph(), &sp_cfg).expect("power grid is connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph()))
        .expect("sparsifier Laplacian is SPD");
    println!(
        "sparsifier preconditioner: {:.3}s, {:.1} MiB",
        t0.elapsed().as_secs_f64(),
        pre.memory_bytes() as f64 / 1048576.0
    );
    let (near, far) = probe_pair(&pg);
    let probes = [near, far];

    // Factor of the fixed-step system for the kernel-level rows.
    let h = 1e-11;
    let factor = tracered_solver::DirectSolver::new(&pg.transient_matrix(h))
        .expect("transient matrix is SPD");
    let g = pg.conductance_matrix();

    let mut records: Vec<BenchRecord> = Vec::new();
    let base = |bench: &str, k: usize, threads: usize| {
        BenchRecord::new()
            .str("bench", bench)
            .str("case", "synth-grid")
            .int("mesh", args.mesh as i64)
            .int("nodes", n as i64)
            .int("batch", k as i64)
            .int("threads", threads as i64)
            .int("available_parallelism", available_parallelism() as i64)
            .int("pool_size", pool_size() as i64)
    };

    // Amortized per-RHS stepping time at the first swept width (width 1
    // whenever --check is on), per thread count — the baseline the
    // speedup field and the acceptance check compare against.
    let baseline_width = args.widths[0];
    let mut transient_base: std::collections::HashMap<usize, f64> =
        std::collections::HashMap::new();
    let mut check_failures: Vec<String> = Vec::new();

    for &t in &args.threads {
        for &k in &args.widths {
            // Kernel row 1: blocked factor substitutions vs k single solves.
            let cols: Vec<Vec<f64>> = (0..k)
                .map(|c| (0..n).map(|i| ((i * 13 + c * 5) % 29) as f64 - 14.0).collect())
                .collect();
            let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
            let b_blk = MultiVec::from_columns(&refs).expect("columns share a length");
            let reps = (200 / k).max(1);
            let mut x_blk = MultiVec::zeros(n, k);
            let t0 = Instant::now();
            for _ in 0..reps {
                factor.factor().solve_multi_into(&b_blk, &mut x_blk);
            }
            let blocked_s = t0.elapsed().as_secs_f64() / reps as f64;
            let mut x1 = vec![0.0; n];
            let t0 = Instant::now();
            for _ in 0..reps {
                for col in &cols {
                    factor.factor().solve_into(col, &mut x1);
                }
            }
            let loop_s = t0.elapsed().as_secs_f64() / reps as f64;
            records.push(
                base("solve_multi", k, t)
                    .num("seconds", blocked_s)
                    .num("per_rhs_seconds", blocked_s / k as f64)
                    .num("speedup_vs_k_single_solves", loop_s / blocked_s),
            );

            // Kernel row 2: symmetric SpMM vs k symmetric SpMVs.
            let mut y_blk = MultiVec::zeros(n, k);
            let reps = (400 / k).max(1);
            let t0 = Instant::now();
            for _ in 0..reps {
                if t <= 1 {
                    g.mul_multi_into(&b_blk, &mut y_blk);
                } else {
                    g.sym_mul_multi_into_threads(&b_blk, &mut y_blk, t);
                }
            }
            let spmm_s = t0.elapsed().as_secs_f64() / reps as f64;
            let mut y1 = vec![0.0; n];
            let t0 = Instant::now();
            for _ in 0..reps {
                for col in &cols {
                    if t <= 1 {
                        g.matvec_into(col, &mut y1);
                    } else {
                        g.sym_matvec_into_threads(col, &mut y1, t);
                    }
                }
            }
            let spmv_s = t0.elapsed().as_secs_f64() / reps as f64;
            records.push(
                base("spmm", k, t)
                    .num("seconds", spmm_s)
                    .num("per_rhs_seconds", spmm_s / k as f64)
                    .num("speedup_vs_k_spmv", spmv_s / spmm_s),
            );

            // Transient row: the batch engine end to end.
            let scenarios = scenario_ensemble(&pg, k);
            let cfg = TransientConfig { t_end: args.t_end, threads: t, ..Default::default() };
            let t0 = Instant::now();
            let results = simulate_pcg_batch(&pg, &cfg, &pre, &probes, &scenarios)
                .expect("batch transient must run");
            let wall = t0.elapsed().as_secs_f64();
            let per_rhs = wall / k as f64;
            let iters: usize = results.iter().map(|r| r.stats.total_pcg_iterations).sum();
            let steps = results[0].stats.steps;
            let baseline = *transient_base.entry(t).or_insert(per_rhs);
            records.push(
                base("transient_pcg_batch", k, t)
                    .num("seconds", wall)
                    .num("per_rhs_seconds", per_rhs)
                    .int("baseline_width", baseline_width as i64)
                    .num("per_rhs_speedup_vs_baseline", baseline / per_rhs)
                    .int("steps", steps as i64)
                    .int("total_pcg_iterations", iters as i64)
                    .num("avg_pcg_iterations_per_step_per_rhs", iters as f64 / (steps * k) as f64),
            );
            println!(
                "threads {t} width {k}: solve_multi {blocked_s:.5}s (vs {loop_s:.5}s), \
                 spmm {spmm_s:.5}s (vs {spmv_s:.5}s), transient {wall:.3}s \
                 ({per_rhs:.3}s/RHS, {steps} steps, {iters} iters)"
            );
            let max_width = *args.widths.iter().max().unwrap();
            if args.check && k == max_width && k != baseline_width && per_rhs >= baseline {
                check_failures.push(format!(
                    "threads {t}: per-RHS {per_rhs:.4}s at width {k} not below \
                     batch-of-1 baseline {baseline:.4}s"
                ));
            }
        }
    }

    write_bench_json(&args.out, &records).expect("writing the bench JSON must succeed");
    println!("wrote {} records to {}", records.len(), args.out);
    if !check_failures.is_empty() {
        panic!("batching check failed: {}", check_failures.join("; "));
    }
}
