//! Partition-scaling benchmark for the partition-parallel densification
//! pipeline (`sparsify_partitioned`).
//!
//! Builds a rectangular 2-D grid (simple λ₂, so the spectral decomposition
//! is seed-invariant), then sweeps partitions × threads and records, per
//! cell: total sparsification time with its partition/densify/stitch
//! breakdown, the decomposition quality (edge cut, balance ratio), and the
//! stitched sparsifier's relative condition number against the
//! unpartitioned `sparsify` baseline.
//!
//! Every record carries `available_parallelism` so single-core containers
//! (where thread sweeps cannot show real speedups) are machine-detectable
//! on re-runs. `--check` asserts the subsystem's contracts: identical
//! stitched edge sets at every thread count, and κ within the documented
//! 2× tolerance of the global baseline.
//!
//! Usage: `cargo run --release -p tracered-bench --bin partition_scaling --
//! [--scale 1.0] [--parts 1,2,4,8] [--threads 1,2,4] [--out BENCH_pr3.json]
//! [--check]`

use std::time::Instant;

use tracered_bench::{available_parallelism, pool_size, write_bench_json, BenchRecord};
use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, PartitionedConfig, Sparsifier, SparsifyConfig};
use tracered_graph::gen::{grid2d, WeightProfile};
use tracered_graph::Graph;
use tracered_sparse::order::Ordering;
use tracered_sparse::CholeskyFactor;

/// The documented partitioned-vs-global quality envelope (see
/// `crates/core/tests/partitioned_quality.rs`).
const KAPPA_TOLERANCE: f64 = 2.0;

struct Args {
    scale: f64,
    parts: Vec<usize>,
    threads: Vec<usize>,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 1.0,
        parts: vec![1, 2, 4, 8],
        threads: vec![1, 2, 4],
        out: "BENCH_pr3.json".to_string(),
        check: false,
    };
    let parse_list = |spec: String| -> Vec<usize> {
        spec.split(',')
            .map(|t| t.trim().parse().expect("list entries must be positive integers"))
            .collect()
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                args.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale requires a positive number");
            }
            "--parts" => args.parts = parse_list(it.next().expect("--parts requires a list")),
            "--threads" => {
                args.threads = parse_list(it.next().expect("--threads requires a list"));
            }
            "--out" => args.out = it.next().expect("--out requires a path"),
            "--check" => args.check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(args.scale > 0.0, "--scale must be positive");
    assert!(!args.parts.is_empty() && args.parts.iter().all(|&k| k > 0));
    assert!(!args.threads.is_empty() && args.threads.iter().all(|&t| t > 0));
    args
}

fn kappa(g: &Graph, sp: &Sparsifier) -> f64 {
    let lg = sp.graph_laplacian(g);
    let f = CholeskyFactor::factorize(&sp.laplacian(g), Ordering::MinDegree)
        .expect("sparsifier Laplacian is SPD");
    relative_condition_number(&lg, &f, 60, 2024)
}

fn main() {
    let args = parse_args();
    // 180×150 at scale 1.0: 27,000 nodes, 53,670 edges. Rectangular so
    // every recursion level of the spectral bisection has a simple λ₂.
    let rows = ((180.0 * args.scale.sqrt()).round() as usize).max(12);
    let cols = ((150.0 * args.scale.sqrt()).round() as usize).max(10);
    let g = grid2d(rows, cols, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 42);
    let n = g.num_nodes();
    let m = g.num_edges();
    println!(
        "grid {rows}x{cols}: {n} nodes, {m} edges; available parallelism {}",
        available_parallelism()
    );

    // Unpartitioned baseline (serial scoring, like the partition jobs).
    let t0 = Instant::now();
    let global = sparsify(&g, &SparsifyConfig::default()).expect("grid is connected");
    let global_s = t0.elapsed().as_secs_f64();
    let global_kappa = kappa(&g, &global);
    println!(
        "global sparsify: {global_s:.3}s, κ {global_kappa:.2}, {} edges",
        global.edge_ids().len()
    );

    let mut records: Vec<BenchRecord> = Vec::new();
    records.push(
        BenchRecord::new()
            .str("bench", "sparsify_global")
            .str("case", "grid2d-log")
            .int("nodes", n as i64)
            .int("edges", m as i64)
            .int("available_parallelism", available_parallelism() as i64)
            .int("pool_size", pool_size() as i64)
            .num("seconds", global_s)
            .num("kappa", global_kappa)
            .int("sparsifier_edges", global.edge_ids().len() as i64),
    );

    let mut check_failures: Vec<String> = Vec::new();
    for &k in &args.parts {
        // Contract: the stitched edge set is a function of the seed only,
        // never of the thread count.
        let mut reference_edges: Option<Vec<usize>> = None;
        let mut serial_s: Option<f64> = None;
        for &t in &args.threads {
            let cfg = PartitionedConfig::new(k).threads(Some(t));
            let t0 = Instant::now();
            let psp = sparsify_partitioned_checked(&g, &cfg);
            let secs = t0.elapsed().as_secs_f64();
            let pr = psp.partition_report();
            let sp = psp.sparsifier();
            match &reference_edges {
                None => reference_edges = Some(sp.edge_ids().to_vec()),
                Some(reference) => {
                    if reference != sp.edge_ids() {
                        let msg = format!("parts {k}: stitched edge set changed at {t} threads");
                        if args.check {
                            check_failures.push(msg);
                        } else {
                            eprintln!("warning: {msg}");
                        }
                    }
                }
            }
            let base = *serial_s.get_or_insert(secs);
            let kap = kappa(&g, sp);
            let ratio = kap / global_kappa;
            // Factor-phase accounting: aggregate per-iteration CPU time
            // plus the resolved factor_threads knob (PR 5), so factor
            // speedups are diffable from this file as well.
            let factor_s: f64 =
                sp.report().iterations.iter().map(|it| it.factor_time.as_secs_f64()).sum();
            let factor_threads = sp.report().iterations.first().map_or(1, |it| it.factor_threads);
            records.push(
                BenchRecord::new()
                    .str("bench", "sparsify_partitioned")
                    .str("case", "grid2d-log")
                    .int("nodes", n as i64)
                    .int("edges", m as i64)
                    .int("parts", k as i64)
                    .int("threads", t as i64)
                    .int("available_parallelism", available_parallelism() as i64)
                    .int("pool_size", pool_size() as i64)
                    .num("seconds", secs)
                    .num("speedup_vs_first", base / secs)
                    .num("partition_time", pr.partition_time.as_secs_f64())
                    .num("densify_time", pr.densify_time.as_secs_f64())
                    .num("stitch_time", pr.stitch_time.as_secs_f64())
                    .num("factor_time", factor_s)
                    .int("factor_threads", factor_threads as i64)
                    .int("cut_edges", pr.cut.count as i64)
                    .num("cut_weight", pr.cut.weight)
                    .num("balance_ratio", pr.balance_ratio)
                    .int("connector_edges", pr.connector_edges as i64)
                    .int("boundary_recovered", pr.boundary_recovered as i64)
                    .int("sparsifier_edges", sp.edge_ids().len() as i64)
                    .num("kappa", kap)
                    .num("kappa_vs_global", ratio),
            );
            println!(
                "parts {k} threads {t}: {secs:.3}s (partition {:.3}s, densify {:.3}s, \
                 stitch {:.3}s), cut {} edges, balance {:.3}, κ {kap:.2} ({ratio:.2}× global)",
                pr.partition_time.as_secs_f64(),
                pr.densify_time.as_secs_f64(),
                pr.stitch_time.as_secs_f64(),
                pr.cut.count,
                pr.balance_ratio,
            );
            if args.check && k > 1 && ratio > KAPPA_TOLERANCE {
                check_failures.push(format!(
                    "parts {k} threads {t}: κ ratio {ratio:.2} exceeds the documented \
                     {KAPPA_TOLERANCE}× tolerance"
                ));
            }
        }
    }

    write_bench_json(&args.out, &records).expect("writing the bench JSON must succeed");
    println!("wrote {} records to {}", records.len(), args.out);
    if !check_failures.is_empty() {
        panic!("partitioned checks failed: {}", check_failures.join("; "));
    }
}

/// `sparsify_partitioned` with bench-appropriate panics.
fn sparsify_partitioned_checked(
    g: &Graph,
    cfg: &PartitionedConfig,
) -> tracered_core::PartitionedSparsifier {
    tracered_core::sparsify_partitioned(g, cfg).expect("bench grid is connected and well-formed")
}
