//! `tracered` — command-line front end for the sparsification library.
//!
//! ```text
//! tracered info      <matrix.mtx>
//! tracered sparsify  <matrix.mtx> [--method tr|grass|er|jl] [--fraction F]
//!                    [--iterations N] [--out sparsifier.mtx]
//! tracered kappa     <matrix.mtx> [--method ...] [--fraction F]
//! tracered partition <matrix.mtx> [--parts K]
//! ```
//!
//! Matrices are Matrix Market SDD files (e.g. the paper's SuiteSparse
//! cases); the diagonal slack above the weighted degree is used as the
//! physical grounding.

use std::process::ExitCode;

use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_graph::mmio::{read_graph_path, write_laplacian, MmGraph};
use tracered_graph::Graph;
use tracered_partition::recursive_bisection;
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tracered info      <matrix.mtx>\n  tracered sparsify  <matrix.mtx> \
         [--method tr|grass|er|jl] [--fraction F] [--iterations N] [--out file.mtx]\n  \
         tracered kappa     <matrix.mtx> [--method tr|grass|er|jl] [--fraction F]\n  \
         tracered partition <matrix.mtx> [--parts K]"
    );
    ExitCode::from(2)
}

struct Options {
    path: String,
    method: Method,
    fraction: f64,
    iterations: Option<usize>,
    out: Option<String>,
    parts: usize,
}

fn parse(mut args: std::env::Args) -> Result<(String, Options), String> {
    let cmd = args.next().ok_or("missing command")?;
    let path = args.next().ok_or("missing matrix path")?;
    let mut opt = Options {
        path,
        method: Method::TraceReduction,
        fraction: 0.10,
        iterations: None,
        out: None,
        parts: 2,
    };
    while let Some(flag) = args.next() {
        let mut value = || args.next().ok_or_else(|| format!("{flag} requires a value"));
        match flag.as_str() {
            "--method" => {
                opt.method = match value()?.as_str() {
                    "tr" | "trace" => Method::TraceReduction,
                    "grass" => Method::Grass,
                    "er" => Method::EffectiveResistance,
                    "jl" => Method::JlResistance,
                    other => return Err(format!("unknown method '{other}'")),
                };
            }
            "--fraction" => {
                opt.fraction = value()?.parse().map_err(|_| "invalid --fraction".to_string())?;
            }
            "--iterations" => {
                opt.iterations =
                    Some(value()?.parse().map_err(|_| "invalid --iterations".to_string())?);
            }
            "--out" => opt.out = Some(value()?),
            "--parts" => {
                opt.parts = value()?.parse().map_err(|_| "invalid --parts".to_string())?;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok((cmd, opt))
}

fn load(path: &str) -> Result<MmGraph, String> {
    read_graph_path(path).map_err(|e| format!("cannot read {path}: {e}"))
}

/// Grounding: file slack plus a relative floor, as DESIGN.md §3 requires.
fn grounding(mm: &MmGraph) -> Vec<f64> {
    let n = mm.graph.num_nodes().max(1);
    let floor = 1e-3 * 2.0 * mm.graph.total_weight() / n as f64;
    mm.diag_slack.iter().map(|&s| s + floor).collect()
}

fn build(g: &Graph, shifts: Vec<f64>, opt: &Options) -> Result<tracered_core::Sparsifier, String> {
    let mut cfg = SparsifyConfig::new(opt.method)
        .edge_fraction(opt.fraction)
        .shift(ShiftPolicy::PerNode(shifts));
    if let Some(it) = opt.iterations {
        cfg = cfg.iterations(it);
    }
    sparsify(g, &cfg).map_err(|e| format!("sparsification failed: {e}"))
}

fn cmd_info(opt: &Options) -> Result<(), String> {
    let mm = load(&opt.path)?;
    let g = &mm.graph;
    println!("nodes        : {}", g.num_nodes());
    println!("edges        : {}", g.num_edges());
    println!("components   : {}", g.num_components());
    println!("total weight : {:.6e}", g.total_weight());
    let grounded = mm.diag_slack.iter().filter(|&&s| s > 0.0).count();
    println!("grounded     : {grounded} nodes carry diagonal slack");
    let wmin = g.edges().iter().map(|e| e.weight).fold(f64::INFINITY, f64::min);
    let wmax = g.edges().iter().map(|e| e.weight).fold(0.0f64, f64::max);
    println!("weight range : [{wmin:.3e}, {wmax:.3e}]");
    Ok(())
}

fn cmd_sparsify(opt: &Options) -> Result<(), String> {
    let mm = load(&opt.path)?;
    if !mm.graph.is_connected() {
        return Err("matrix graph is disconnected; sparsify components separately".into());
    }
    let shifts = grounding(&mm);
    let sp = build(&mm.graph, shifts.clone(), opt)?;
    println!(
        "sparsifier: {} of {} edges ({} tree + {} recovered) in {:.3}s",
        sp.edge_ids().len(),
        mm.graph.num_edges(),
        sp.tree_edge_count(),
        sp.num_recovered(),
        sp.report().total_time.as_secs_f64()
    );
    if let Some(out) = &opt.out {
        let sub = sp.as_graph(&mm.graph);
        let f = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
        write_laplacian(f, &sub, &mm.diag_slack).map_err(|e| format!("write failed: {e}"))?;
        println!("wrote sparsifier Laplacian to {out}");
    }
    Ok(())
}

fn cmd_kappa(opt: &Options) -> Result<(), String> {
    let mm = load(&opt.path)?;
    if !mm.graph.is_connected() {
        return Err("matrix graph is disconnected".into());
    }
    let shifts = grounding(&mm);
    let sp = build(&mm.graph, shifts, opt)?;
    let lg = sp.graph_laplacian(&mm.graph);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&mm.graph))
        .map_err(|e| format!("factorization failed: {e}"))?;
    let kappa = relative_condition_number(&lg, pre.factor(), 80, 1);
    let n = mm.graph.num_nodes();
    let b: Vec<f64> = (0..n).map(|i| ((i % 31) as f64) - 15.0).collect();
    let sol = pcg(&lg, &b, &pre, &PcgOptions::with_tolerance(1e-6));
    println!("method      : {:?}", opt.method);
    println!("kappa       : {kappa:.2}");
    println!("pcg (1e-6)  : {} iterations, converged = {}", sol.iterations, sol.converged);
    println!("factor nnz  : {}", pre.factor().nnz());
    Ok(())
}

fn cmd_partition(opt: &Options) -> Result<(), String> {
    let mm = load(&opt.path)?;
    if !mm.graph.is_connected() {
        return Err("matrix graph is disconnected".into());
    }
    let p = recursive_bisection(&mm.graph, opt.parts, 8, 1)
        .map_err(|e| format!("partitioning failed: {e}"))?;
    println!("parts       : {}", p.parts);
    println!("cut weight  : {:.6e}", p.cut_weight);
    println!("part sizes  : {:?}", p.part_sizes());
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args();
    let _ = args.next();
    let (cmd, opt) = match parse(args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(&opt),
        "sparsify" => cmd_sparsify(&opt),
        "kappa" => cmd_kappa(&opt),
        "partition" => cmd_partition(&opt),
        _ => {
            return usage();
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
