//! Contingency-screening benchmark: incremental rank-1 factor updates
//! (`simulate_contingency_batch`) against the naive
//! refactorize-per-outage reference (`simulate_contingency_refactor`)
//! on synthetic power grids.
//!
//! Per mesh size the sweep records both paths' wall time, the
//! outages/second rate, the update/fallback accounting, and the
//! speedup. `--check` asserts the subsystem's contracts: every outage
//! classifies identically on both paths (completed solves within the
//! residual gate, failures bitwise), and the incremental path screens
//! strictly more outages per second than the naive reference.
//!
//! Usage: `cargo run --release -p tracered-bench --bin
//! contingency_scaling -- [--mesh 16,24] [--outages 64]
//! [--out BENCH_pr9.json] [--check]`

use std::time::Instant;

use tracered_bench::{available_parallelism, pool_size, write_bench_json, BenchRecord};
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::{
    simulate_contingency_batch, simulate_contingency_refactor, ContingencyConfig, ContingencySweep,
    Outage, OutageOutcome, PowerGrid,
};

/// Completed-solve agreement gate between the two paths: both passed a
/// 1e-8 residual gate against the true perturbed system, so their
/// probes agree to far better than this.
const PROBE_TOLERANCE: f64 = 1e-6;

struct Args {
    mesh: Vec<usize>,
    outages: usize,
    out: String,
    check: bool,
}

fn parse_args() -> Args {
    let mut args =
        Args { mesh: vec![16, 24], outages: 64, out: "BENCH_pr9.json".to_string(), check: false };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mesh" => {
                args.mesh = it
                    .next()
                    .expect("--mesh requires a list")
                    .split(',')
                    .map(|t| t.trim().parse().expect("mesh entries must be positive integers"))
                    .collect();
            }
            "--outages" => {
                args.outages = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--outages requires a positive integer");
            }
            "--out" => args.out = it.next().expect("--out requires a path"),
            "--check" => args.check = true,
            other => panic!("unknown argument '{other}'"),
        }
    }
    assert!(!args.mesh.is_empty() && args.mesh.iter().all(|&m| m >= 4));
    assert!(args.outages > 0, "--outages must be positive");
    args
}

/// A deterministic mixed outage list: line outages, up/down reweights
/// and load steps, spread over the mesh by coprime strides.
fn outage_list(pg: &PowerGrid, count: usize) -> Vec<Outage> {
    let edges = pg.graph().num_edges();
    let nodes = pg.num_nodes();
    (0..count)
        .map(|i| match i % 4 {
            0 => Outage::LineOutage { edge: (i * 37 + 1) % edges },
            1 => Outage::Reweight { edge: (i * 53 + 5) % edges, new_weight: 2.0 },
            2 => Outage::Reweight { edge: (i * 101 + 11) % edges, new_weight: 0.5 },
            _ => Outage::LoadStep { node: (i * 71 + 3) % nodes, extra_current: 2e-3 },
        })
        .collect()
}

/// Outage-for-outage agreement: completed solves within
/// [`PROBE_TOLERANCE`], failures bitwise identical.
fn equivalence_failures(batch: &ContingencySweep, naive: &ContingencySweep) -> Vec<String> {
    let mut problems = Vec::new();
    for (i, (b, r)) in batch.outcomes.iter().zip(&naive.outcomes).enumerate() {
        match (b, r) {
            (OutageOutcome::Completed(bs), OutageOutcome::Completed(rs)) => {
                for (x, y) in bs.probes.iter().zip(&rs.probes) {
                    if (x - y).abs() > PROBE_TOLERANCE * y.abs().max(1.0) {
                        problems.push(format!("outage {i}: probe {x} vs reference {y}"));
                    }
                }
            }
            (OutageOutcome::Failed(bf), OutageOutcome::Failed(rf)) => {
                if bf != rf {
                    problems.push(format!("outage {i}: classification {bf:?} vs {rf:?}"));
                }
            }
            _ => problems.push(format!("outage {i}: outcome class mismatch")),
        }
    }
    problems
}

fn main() {
    let args = parse_args();
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut check_failures: Vec<String> = Vec::new();

    for &mesh in &args.mesh {
        let pg = synthesize(&SynthConfig { mesh, ..Default::default() });
        let n = pg.num_nodes();
        let m = pg.graph().num_edges();
        let outages = outage_list(&pg, args.outages);
        let cfg = ContingencyConfig::default();
        let probes = [0, n / 2, n - 1];

        let t0 = Instant::now();
        let batch = simulate_contingency_batch(&pg, &outages, &probes, &cfg, None)
            .expect("synthetic grid factors");
        let batch_s = t0.elapsed().as_secs_f64();

        let t0 = Instant::now();
        let naive = simulate_contingency_refactor(&pg, &outages, &probes, &cfg)
            .expect("synthetic grid factors");
        let naive_s = t0.elapsed().as_secs_f64();

        let batch_rate = outages.len() as f64 / batch_s;
        let naive_rate = outages.len() as f64 / naive_s;
        let speedup = naive_s / batch_s;
        let rb = batch.report;
        println!(
            "mesh {mesh} ({n} nodes, {m} edges), {} outages: batch {batch_s:.3}s \
             ({batch_rate:.0}/s, {} updates, {} fallbacks), naive {naive_s:.3}s \
             ({naive_rate:.0}/s, {} refactorizations), speedup {speedup:.2}x",
            outages.len(),
            rb.applied_updates,
            rb.update_fallbacks,
            naive.report.refactorizations,
        );

        let problems = equivalence_failures(&batch, &naive);
        for p in &problems {
            if args.check {
                check_failures.push(format!("mesh {mesh}: {p}"));
            } else {
                eprintln!("warning: mesh {mesh}: {p}");
            }
        }
        if args.check && speedup <= 1.0 {
            check_failures.push(format!(
                "mesh {mesh}: incremental updates must beat the naive refactor path \
                 (speedup {speedup:.2}x)"
            ));
        }

        records.push(
            BenchRecord::new()
                .str("bench", "contingency_scaling")
                .str("case", "synth-grid")
                .int("mesh", mesh as i64)
                .int("nodes", n as i64)
                .int("edges", m as i64)
                .int("outages", outages.len() as i64)
                .int("applied_updates", rb.applied_updates as i64)
                .int("update_fallbacks", rb.update_fallbacks as i64)
                .int("refactorizations", rb.refactorizations as i64)
                .int("rhs_only", rb.rhs_only as i64)
                .int("completed", rb.completed as i64)
                .int("failures", rb.failures as i64)
                .int("naive_refactorizations", naive.report.refactorizations as i64)
                .int("available_parallelism", available_parallelism() as i64)
                .int("pool_size", pool_size() as i64)
                .num("base_factor_seconds", rb.base_factor_seconds)
                .num("batch_seconds", batch_s)
                .num("naive_seconds", naive_s)
                .num("batch_outages_per_sec", batch_rate)
                .num("naive_outages_per_sec", naive_rate)
                .num("speedup_vs_naive", speedup),
        );
    }

    write_bench_json(&args.out, &records).expect("writing the bench JSON must succeed");
    println!("wrote {} records to {}", records.len(), args.out);
    if !check_failures.is_empty() {
        panic!("contingency checks failed: {}", check_failures.join("; "));
    }
}
