//! **Table 1** — results for spectral graph sparsification.
//!
//! For every case, runs GRASS and the proposed trace-reduction method
//! under the identical budget (10 %·|V| off-tree edges, 5 iterations) and
//! reports `T_s` (sparsification time), κ (relative condition number),
//! `N_i` (PCG iterations to 1e-3 with a random RHS) and `T_i` (PCG time),
//! plus the κ and `T_i` reduction factors the paper headlines (2.6× and
//! 1.7× on average).
//!
//! Usage: `table1 [--scale f] [--case name]`

use tracered_bench::{evaluate_sparsifier, geomean, parse_args, secs, table1_cases};
use tracered_core::Method;

fn main() {
    let (scale, only) = parse_args();
    println!("# Table 1: spectral graph sparsification (scale {scale})");
    println!(
        "{:<14} {:>8} {:>9} | {:>8} {:>8} {:>5} {:>8} | {:>8} {:>8} {:>5} {:>8} | {:>6} {:>6}",
        "case",
        "|V|",
        "|E|",
        "GR T_s",
        "GR k",
        "GR Ni",
        "GR T_i",
        "TR T_s",
        "TR k",
        "TR Ni",
        "TR T_i",
        "k red",
        "Ti red"
    );
    let mut kappa_ratios = Vec::new();
    let mut ti_ratios = Vec::new();
    for case in table1_cases() {
        if let Some(ref name) = only {
            if name != case.name {
                continue;
            }
        }
        let g = case.graph(scale);
        let grass = evaluate_sparsifier(&g, Method::Grass);
        let proposed = evaluate_sparsifier(&g, Method::TraceReduction);
        assert_eq!(grass.edges, proposed.edges, "methods must use equal budgets");
        let k_red = grass.kappa / proposed.kappa;
        let ti_red = grass.pcg_time.as_secs_f64() / proposed.pcg_time.as_secs_f64().max(1e-9);
        kappa_ratios.push(k_red);
        ti_ratios.push(ti_red);
        println!(
            "{:<14} {:>8} {:>9} | {:>8} {:>8.1} {:>5} {:>8} | {:>8} {:>8.1} {:>5} {:>8} | {:>5.1}X {:>5.1}X",
            case.name,
            g.num_nodes(),
            g.num_edges(),
            secs(grass.sparsify_time),
            grass.kappa,
            grass.pcg_iterations,
            secs(grass.pcg_time),
            secs(proposed.sparsify_time),
            proposed.kappa,
            proposed.pcg_iterations,
            secs(proposed.pcg_time),
            k_red,
            ti_red,
        );
    }
    if kappa_ratios.len() > 1 {
        println!(
            "{:<14} average reductions: kappa {:.1}X, PCG time {:.1}X (paper: 2.6X, 1.7X)",
            "-",
            geomean(&kappa_ratios),
            geomean(&ti_ratios)
        );
    }
}
