//! **Figure 1** — transient waveforms of a stiff (pad-adjacent) node and
//! a worst-droop node, direct solver vs the proposed iterative solver.
//!
//! Writes `fig1_waveforms.csv` with columns
//! `t_ns, near_direct, near_iterative, far_direct, far_iterative`
//! and prints the maximum deviation (the paper reports < 16 mV).
//!
//! Usage: `fig1 [--scale f]`

use tracered_bench::parse_args;
use tracered_core::{Method, SparsifyConfig};
use tracered_graph::laplacian::ShiftPolicy;
use tracered_powergrid::synth::{synthesize, SynthConfig};
use tracered_powergrid::transient::{probe_pair, simulate_direct, simulate_pcg, TransientConfig};
use tracered_solver::precond::CholPreconditioner;

fn main() {
    let (scale, _) = parse_args();
    let mesh = ((116.0 * scale.sqrt()).round() as usize).max(8);
    let pg = synthesize(&SynthConfig { mesh, seed: 32, ..Default::default() });
    let (near, far) = probe_pair(&pg);
    let probes = vec![near, far];

    let direct = simulate_direct(
        &pg,
        &TransientConfig { fixed_step: Some(1e-11), ..Default::default() },
        &probes,
    )
    .expect("grid is grounded");

    let cfg = SparsifyConfig::new(Method::TraceReduction)
        .shift(ShiftPolicy::PerNode(pg.pad_conductance().to_vec()));
    let sp = tracered_core::sparsify(pg.graph(), &cfg).expect("PG mesh is connected");
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(pg.graph())).expect("SPD");
    let iter =
        simulate_pcg(&pg, &TransientConfig::default(), &pre, &probes).expect("grid is grounded");

    let samples = 500;
    let t_end = *direct.times.last().unwrap();
    let mut csv = String::from("t_ns,near_direct,near_iterative,far_direct,far_iterative\n");
    for k in 0..=samples {
        let t = t_end * k as f64 / samples as f64;
        csv.push_str(&format!(
            "{:.4},{:.6},{:.6},{:.6},{:.6}\n",
            t * 1e9,
            direct.sample(0, t),
            iter.sample(0, t),
            direct.sample(1, t),
            iter.sample(1, t),
        ));
    }
    std::fs::write("fig1_waveforms.csv", csv).expect("write csv");
    let d_near = direct.max_probe_difference(&iter, 0, samples);
    let d_far = direct.max_probe_difference(&iter, 1, samples);
    println!("# Figure 1: transient waveforms (mesh {mesh}, |V| = {})", pg.num_nodes());
    println!("wrote fig1_waveforms.csv ({} samples)", samples + 1);
    println!(
        "max |direct - iterative|: pad-adjacent node {:.2} mV, worst-droop node {:.2} mV (paper: < 16 mV)",
        d_near * 1e3,
        d_far * 1e3
    );
    assert!(d_near < 0.016 && d_far < 0.016, "accuracy check failed");
}
