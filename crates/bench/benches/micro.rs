//! Criterion micro-benchmarks for the computational kernels behind every
//! table: sparse Cholesky factorization, Algorithm 1 (SPAI), tree-phase
//! and subgraph-phase trace-reduction scoring, PCG stepping, and the κ
//! estimator.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use tracered_core::criticality::{
    subgraph_phase_scores, tree_phase_scores, tree_phase_scores_threads,
};
use tracered_core::metrics::relative_condition_number;
use tracered_core::{sparsify, Method, SparsifyConfig};
use tracered_graph::gen::{tri_mesh, WeightProfile};
use tracered_graph::laplacian::{laplacian_with_shifts, subgraph_laplacian};
use tracered_graph::lca::tree_resistances;
use tracered_graph::mst::{spanning_tree, TreeKind};
use tracered_graph::{Graph, RootedTree};
use tracered_solver::pcg::{pcg, PcgOptions};
use tracered_solver::precond::CholPreconditioner;
use tracered_sparse::order::Ordering;
use tracered_sparse::{ApproxInverse, CholeskyFactor, SpaiOptions};

struct Fixture {
    g: Graph,
    shifts: Vec<f64>,
    tree: RootedTree,
    tree_edges: Vec<usize>,
    off_tree: Vec<usize>,
}

fn fixture() -> Fixture {
    let g = tri_mesh(40, 40, WeightProfile::LogUniform { lo: 0.2, hi: 5.0 }, 99);
    let n = g.num_nodes();
    let shift = 1e-3 * 2.0 * g.total_weight() / n as f64;
    let shifts = vec![shift; n];
    let st = spanning_tree(&g, TreeKind::MaxEffectiveWeight).unwrap();
    let tree = RootedTree::build(&g, &st.tree_edges, 0).unwrap();
    Fixture { g, shifts, tree, tree_edges: st.tree_edges, off_tree: st.off_tree_edges }
}

fn bench_cholesky(c: &mut Criterion) {
    let f = fixture();
    let lg = laplacian_with_shifts(&f.g, &f.shifts);
    c.bench_function("cholesky_factorize_full_mesh", |b| {
        b.iter(|| CholeskyFactor::factorize(black_box(&lg), Ordering::MinDegree).unwrap())
    });
    let ls = subgraph_laplacian(&f.g, &f.tree_edges, &f.shifts);
    c.bench_function("cholesky_factorize_tree", |b| {
        b.iter(|| CholeskyFactor::factorize(black_box(&ls), Ordering::MinDegree).unwrap())
    });
}

fn bench_spai(c: &mut Criterion) {
    let f = fixture();
    let mut sub = f.tree_edges.clone();
    sub.extend(f.off_tree.iter().take(f.g.num_nodes() / 50).copied());
    let ls = subgraph_laplacian(&f.g, &sub, &f.shifts);
    let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
    c.bench_function("spai_build_delta_0.1", |b| {
        b.iter(|| {
            ApproxInverse::build(black_box(factor.l()), SpaiOptions::with_threshold(0.1)).unwrap()
        })
    });
}

fn bench_scoring(c: &mut Criterion) {
    let f = fixture();
    let pairs: Vec<(usize, usize)> =
        f.off_tree.iter().map(|&id| (f.g.edge(id).u, f.g.edge(id).v)).collect();
    let rs = tree_resistances(&f.tree, &pairs);
    c.bench_function("tree_phase_scores_beta5", |b| {
        b.iter(|| tree_phase_scores(black_box(&f.g), &f.tree, &f.off_tree, &rs, 5))
    });
    let mut sub = f.tree_edges.clone();
    sub.extend(f.off_tree.iter().take(f.g.num_nodes() / 50).copied());
    let candidates: Vec<usize> = f.off_tree.iter().skip(f.g.num_nodes() / 50).copied().collect();
    let ls = subgraph_laplacian(&f.g, &sub, &f.shifts);
    let factor = CholeskyFactor::factorize(&ls, Ordering::MinDegree).unwrap();
    let zinv = ApproxInverse::build(factor.l(), SpaiOptions::with_threshold(0.1)).unwrap();
    let subgraph = f.g.edge_subgraph(&sub);
    c.bench_function("subgraph_phase_scores_beta5", |b| {
        b.iter(|| subgraph_phase_scores(black_box(&f.g), &subgraph, &factor, &zinv, &candidates, 5))
    });
}

fn bench_sparsify(c: &mut Criterion) {
    let f = fixture();
    let mut group = c.benchmark_group("sparsify_full_pipeline");
    group.sample_size(10);
    group.bench_function("trace_reduction", |b| {
        b.iter(|| sparsify(black_box(&f.g), &SparsifyConfig::new(Method::TraceReduction)).unwrap())
    });
    group.bench_function("grass", |b| {
        b.iter(|| sparsify(black_box(&f.g), &SparsifyConfig::new(Method::Grass)).unwrap())
    });
    group.bench_function("effective_resistance", |b| {
        b.iter(|| {
            sparsify(black_box(&f.g), &SparsifyConfig::new(Method::EffectiveResistance)).unwrap()
        })
    });
    group.finish();
}

fn bench_pcg(c: &mut Criterion) {
    let f = fixture();
    let sp = sparsify(&f.g, &SparsifyConfig::default()).unwrap();
    let lg = sp.graph_laplacian(&f.g);
    let pre = CholPreconditioner::from_matrix(&sp.laplacian(&f.g)).unwrap();
    let b_vec = tracered_bench::random_rhs(f.g.num_nodes(), 3);
    c.bench_function("pcg_solve_tol_1e-3", |b| {
        b.iter(|| pcg(black_box(&lg), &b_vec, &pre, &PcgOptions::with_tolerance(1e-3)))
    });
    let mut group = c.benchmark_group("kappa_estimator");
    group.sample_size(10);
    group.bench_function("power_iteration_60", |b| {
        b.iter(|| relative_condition_number(black_box(&lg), pre.factor(), 60, 1))
    });
    group.finish();
}

fn bench_parallel_scoring(c: &mut Criterion) {
    let f = fixture();
    let pairs: Vec<(usize, usize)> =
        f.off_tree.iter().map(|&id| (f.g.edge(id).u, f.g.edge(id).v)).collect();
    let rs = tree_resistances(&f.tree, &pairs);
    let mut group = c.benchmark_group("tree_phase_scores_threads");
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("{threads}t"), |b| {
            b.iter(|| {
                tree_phase_scores_threads(black_box(&f.g), &f.tree, &f.off_tree, &rs, 5, threads)
            })
        });
    }
    group.finish();
}

fn bench_parallel_spmv(c: &mut Criterion) {
    let f = fixture();
    let lg = laplacian_with_shifts(&f.g, &f.shifts);
    let n = f.g.num_nodes();
    let x: Vec<f64> = (0..n).map(|i| ((i % 13) as f64) - 6.0).collect();
    let mut y = vec![0.0; n];
    let mut group = c.benchmark_group("sym_matvec");
    group.bench_function("serial_scatter", |b| b.iter(|| lg.matvec_into(black_box(&x), &mut y)));
    for threads in [1usize, 2, 4] {
        group.bench_function(&format!("gather_{threads}t"), |b| {
            b.iter(|| lg.sym_matvec_into_threads(black_box(&x), &mut y, threads))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cholesky,
    bench_spai,
    bench_scoring,
    bench_parallel_scoring,
    bench_parallel_spmv,
    bench_sparsify,
    bench_pcg
);
criterion_main!(benches);
