//! Property tests for the sparse rank-1 update/downdate: the
//! update-vs-refactor equivalence contract of the incremental-update
//! subsystem.
//!
//! On random SPD grid/tridiagonal matrices × random sparse rank-1
//! vectors:
//!
//! (a) `update` then `downdate` with the same vector reproduces the
//!     original factor's solves **bit-identically** (the undo journal);
//! (b) an updated factor matches a from-scratch `factorize` of
//!     `A ± v vᵀ` within `1e-10` relative residual;
//! (c) a rank-deficient downdate yields the typed
//!     `NotPositiveDefinite` error and leaves the factor untouched;
//! (d) everything is invariant under `TRACERED_THREADS={1,4}`: the
//!     numeric walk is serial and base factorizations are bit-identical
//!     at every thread count, so factors built at different parallelism
//!     update to bit-identical results.

use proptest::prelude::*;
use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, CooMatrix, CscMatrix, SparseError};

/// Deterministic weight stream (a tiny LCG, not a statistical RNG).
fn weight(seed: u64, i: usize) -> f64 {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i as u64)
        .wrapping_mul(2862933555777941757);
    0.1 + (x >> 40) as f64 / (1u64 << 24) as f64 * 4.9
}

/// A shifted grid Laplacian with pseudo-random positive edge weights.
fn grid_spd(rows: usize, cols: usize, shift: f64, seed: u64) -> CscMatrix {
    let n = rows * cols;
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    let id = |r: usize, c: usize| r * cols + c;
    let mut e = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            for (nr, nc) in [(r, c + 1), (r + 1, c)] {
                if nr < rows && nc < cols {
                    let w = weight(seed, e);
                    e += 1;
                    coo.push_symmetric(id(r, c), id(nr, nc), -w).unwrap();
                    deg[id(r, c)] += w;
                    deg[id(nr, nc)] += w;
                }
            }
        }
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

/// A shifted tridiagonal SPD matrix with pseudo-random couplings.
fn tridiag_spd(n: usize, shift: f64, seed: u64) -> CscMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    for i in 0..n - 1 {
        let w = weight(seed, i);
        coo.push_symmetric(i, i + 1, -w).unwrap();
        deg[i] += w;
        deg[i + 1] += w;
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

/// The matrix family under test. Tridiagonals under the natural
/// ordering are the pattern-growth stress case: their factor is
/// bidiagonal, so a rank-1 vector spanning distant nodes forces fill
/// along the whole elimination-tree path.
fn arb_case() -> impl Strategy<Value = (CscMatrix, Ordering)> {
    (0usize..3, 4usize..9, 4usize..9, 0.05f64..2.0, 0u64..1 << 32).prop_map(
        |(kind, a, b, shift, seed)| match kind {
            0 => (grid_spd(a, b, shift, seed), Ordering::MinDegree),
            1 => (tridiag_spd(a * b, shift, seed), Ordering::Natural),
            _ => (grid_spd(a, b, shift, seed), Ordering::Natural),
        },
    )
}

/// A sparse rank-1 vector shaped like a Laplacian edge perturbation
/// (`√w (e_u − e_v)`), scaled below the PD-loss threshold so downdates
/// of `A − v vᵀ` stay definite (the shift keeps slack).
fn edge_vector(n: usize, u: usize, v: usize, w: f64) -> Vec<f64> {
    let s = w.sqrt();
    let mut x = vec![0.0; n];
    x[u % n] = s;
    let vv = v % n;
    if vv != u % n {
        x[vv] = -s;
    }
    x
}

fn solve_bits(f: &CholeskyFactor, b: &[f64]) -> Vec<u64> {
    f.solve(b).iter().map(|x| x.to_bits()).collect()
}

/// `A + sigma · v vᵀ` assembled from triplets.
fn perturbed(a: &CscMatrix, v: &[f64], sigma: f64) -> CscMatrix {
    let n = a.ncols();
    let mut coo = CooMatrix::new(n, n);
    for (r, c, x) in a.iter() {
        coo.push(r, c, x).unwrap();
    }
    for (i, &vi) in v.iter().enumerate() {
        if vi == 0.0 {
            continue;
        }
        for (k, &vk) in v.iter().enumerate() {
            if vk != 0.0 {
                coo.push(i, k, sigma * vi * vk).unwrap();
            }
        }
    }
    coo.to_csc()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// (a) update ∘ downdate (and downdate ∘ update) is the bit-exact
    /// identity on solves, and (d) the property holds identically for
    /// factors built at 1 and 4 threads.
    #[test]
    fn update_then_downdate_is_bit_exact(
        (a, ord) in arb_case(),
        u in 0usize..64,
        v in 0usize..64,
        w in 0.01f64..0.9,
    ) {
        let n = a.ncols();
        let vec = edge_vector(n, u, v, w);
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).cos()).collect();
        for threads in [1usize, 4] {
            let mut f = CholeskyFactor::factorize_threads(&a, ord, threads).unwrap();
            let baseline = solve_bits(&f, &b);
            f.update(&vec).unwrap();
            let restored = f.downdate(&vec).unwrap();
            prop_assert!(restored.journaled_restore);
            prop_assert_eq!(solve_bits(&f, &b), baseline.clone());

            // The mirrored order: downdate first (stays PD because the
            // vector is scaled below the edge weight plus shift slack),
            // then update back.
            if f.downdate(&vec).is_ok() {
                let back = f.update(&vec).unwrap();
                prop_assert!(back.journaled_restore);
                prop_assert_eq!(solve_bits(&f, &b), baseline);
            }
        }
    }

    /// (b) an updated/downdated factor solves the perturbed system as
    /// well as a from-scratch factorization: relative residual ≤ 1e-10
    /// against the assembled `A ± v vᵀ`.
    #[test]
    fn update_matches_refactorize(
        (a, ord) in arb_case(),
        u in 0usize..64,
        v in 0usize..64,
        w in 0.01f64..0.9,
        sign_sel in 0usize..2,
    ) {
        let n = a.ncols();
        let sign = sign_sel == 1;
        let vec = edge_vector(n, u, v, w);
        let sigma = if sign { 1.0 } else { -1.0 };
        let mut f = CholeskyFactor::factorize_threads(&a, ord, 1).unwrap();
        let applied = if sign { f.update(&vec) } else { f.downdate(&vec) };
        if applied.is_err() {
            // A downdate may legitimately lose definiteness for an
            // unlucky draw; property (c) covers that branch.
            return Ok(());
        }
        let ap = perturbed(&a, &vec, sigma);
        let b: Vec<f64> = (0..n).map(|i| ((i % 7) as f64) - 3.0).collect();
        let bnorm = b.iter().fold(0.0f64, |m, x| m.max(x.abs()));

        let x_inc = f.solve(&b);
        prop_assert!(ap.residual_inf_norm(&x_inc, &b) <= 1e-10 * bnorm);

        let scratch = CholeskyFactor::factorize(&ap, ord).unwrap();
        let x_ref = scratch.solve(&b);
        prop_assert!(ap.residual_inf_norm(&x_ref, &b) <= 1e-10 * bnorm);
    }

    /// (c) a rank-deficient downdate fails with the typed error and the
    /// factor is restored bit-for-bit — at both thread counts.
    #[test]
    fn rank_deficient_downdate_fails_typed(
        (a, ord) in arb_case(),
        u in 0usize..64,
    ) {
        let n = a.ncols();
        let node = u % n;
        // Overshooting the diagonal makes `A − v vᵀ` indefinite:
        // (A − vvᵀ)[node, node] = a_nn (1 − 9) < 0.
        let mut vec = vec![0.0; n];
        vec[node] = (9.0 * a.get(node, node)).sqrt();
        for threads in [1usize, 4] {
            let mut f = CholeskyFactor::factorize_threads(&a, ord, threads).unwrap();
            let lbits: Vec<u64> = f.l().values().iter().map(|x| x.to_bits()).collect();
            let err = f.downdate(&vec).unwrap_err();
            prop_assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
            let after: Vec<u64> = f.l().values().iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(after, lbits);
            prop_assert_eq!(f.pending_updates(), 0);
        }
    }

    /// (d) factors built at different thread counts update to
    /// bit-identical factors (the update walk is serial, the base
    /// factorization bit-identical at every count).
    #[test]
    fn update_invariant_across_build_threads(
        (a, ord) in arb_case(),
        u in 0usize..64,
        v in 0usize..64,
        w in 0.01f64..0.9,
    ) {
        let n = a.ncols();
        let vec = edge_vector(n, u, v, w);
        let mut f1 = CholeskyFactor::factorize_threads(&a, ord, 1).unwrap();
        let mut f4 = CholeskyFactor::factorize_threads(&a, ord, 4).unwrap();
        f1.update(&vec).unwrap();
        f4.update(&vec).unwrap();
        prop_assert_eq!(f1.l().colptr(), f4.l().colptr());
        prop_assert_eq!(f1.l().rowidx(), f4.l().rowidx());
        let b1: Vec<u64> = f1.l().values().iter().map(|x| x.to_bits()).collect();
        let b4: Vec<u64> = f4.l().values().iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(b1, b4);
    }
}

/// Deterministic (non-property) composition check: a downdate that
/// kills positive definiteness escalates cleanly through the
/// `factorize_regularized` boost ladder on the re-assembled matrix —
/// the fallback route the contingency sweep takes.
#[test]
fn failed_downdate_composes_with_regularized_refactorization() {
    use tracered_sparse::{factorize_regularized, BoostSchedule};

    let a = grid_spd(6, 6, 1e-9, 7);
    let n = a.ncols();
    let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
    // Remove (nearly) all of the diagonal slack at one node and more:
    // the incremental path must refuse…
    let mut vec = vec![0.0; n];
    vec[10] = (4.0 * a.get(10, 10)).sqrt();
    let err = f.downdate(&vec).unwrap_err();
    assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));

    // …and the caller re-assembles A − v vᵀ and climbs the ladder; the
    // boosted factor is still usable as a (degraded) preconditioner.
    let ap = perturbed(&a, &vec, -1.0);
    let reg = factorize_regularized(&ap, Ordering::MinDegree, &BoostSchedule::default());
    assert!(reg.is_ok());
    assert!(!reg.unwrap().is_unboosted());
}
