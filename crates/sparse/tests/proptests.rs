//! Property-based tests for the sparse linear-algebra substrate.

use proptest::prelude::*;
use tracered_sparse::ichol::IncompleteCholesky;
use tracered_sparse::order::{nested_dissection, Ordering};
use tracered_sparse::sparsevec::SparseVec;
use tracered_sparse::{
    ApproxInverse, CholeskyFactor, CooMatrix, CscMatrix, MultiVec, Permutation, SpaiOptions,
};

/// Strategy: a connected weighted graph on `n` nodes given as a random
/// spanning tree plus extra random edges, returned as (n, edges).
fn arb_connected_graph() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (3usize..14).prop_flat_map(|n| {
        let tree = proptest::collection::vec(0.05f64..5.0, n - 1);
        let extras = proptest::collection::vec((0..n * n, 0.05f64..5.0), 0..(2 * n));
        (tree, extras).prop_map(move |(tree_w, extras)| {
            let mut edges = Vec::new();
            for (i, w) in tree_w.into_iter().enumerate() {
                // Chain tree keeps things connected.
                edges.push((i, i + 1, w));
            }
            for (code, w) in extras {
                let (u, v) = (code / n, code % n);
                if u != v {
                    edges.push((u.min(v), u.max(v), w));
                }
            }
            (n, edges)
        })
    })
}

/// Builds a shifted Laplacian CSC matrix from an edge list.
fn laplacian(n: usize, edges: &[(usize, usize, f64)], shift: f64) -> CscMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(u, v, w) in edges {
        coo.push_symmetric(u, v, -w).unwrap();
        coo.push(u, u, w).unwrap();
        coo.push(v, v, w).unwrap();
    }
    for i in 0..n {
        coo.push(i, i, shift).unwrap();
    }
    coo.to_csc()
}

proptest! {
    #[test]
    fn cholesky_solve_has_small_residual((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.1);
        let b: Vec<f64> = (0..n).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = CholeskyFactor::factorize(&a, ord).unwrap();
            let x = f.solve(&b);
            prop_assert!(a.residual_inf_norm(&x, &b) < 1e-8, "ordering {ord:?}");
        }
    }

    #[test]
    fn factor_orderings_agree_on_solution((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.05);
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x1 = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap().solve(&b);
        let x2 = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap().solve(&b);
        for (a1, a2) in x1.iter().zip(x2.iter()) {
            prop_assert!((a1 - a2).abs() < 1e-7);
        }
    }

    #[test]
    fn solve_multi_columns_match_single_solves((n, edges) in arb_connected_graph(), k in 1usize..6) {
        let a = laplacian(n, &edges, 0.15);
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i * 11 + c * 5) % 9) as f64 - 4.0).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let b = MultiVec::from_columns(&refs).unwrap();
        for ord in [Ordering::Natural, Ordering::MinDegree] {
            let f = CholeskyFactor::factorize(&a, ord).unwrap();
            let x = f.solve_multi(&b);
            for (c, col) in cols.iter().enumerate() {
                let single = f.solve(col);
                for (s, m) in single.iter().zip(x.col(c).iter()) {
                    // Bit-identical up to signed zeros (documented bound:
                    // the blocked kernel applies, rather than skips,
                    // exactly-zero updates).
                    prop_assert!((s - m).abs() == 0.0, "ordering {ord:?} column {c}");
                }
            }
        }
    }

    #[test]
    fn spmm_columns_match_matvec_across_thread_counts((n, edges) in arb_connected_graph(), k in 1usize..5) {
        let a = laplacian(n, &edges, 0.1);
        let cols: Vec<Vec<f64>> = (0..k)
            .map(|c| (0..n).map(|i| ((i * 3 + c) % 7) as f64 - 3.0).collect())
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let x = MultiVec::from_columns(&refs).unwrap();
        let y = a.mul_multi(&x);
        for (c, col) in cols.iter().enumerate() {
            let single = a.matvec(col);
            for (s, m) in single.iter().zip(y.col(c).iter()) {
                prop_assert_eq!(s.to_bits(), m.to_bits(), "serial SpMM column {}", c);
            }
        }
        for threads in [1usize, 2, 4] {
            let mut yp = MultiVec::zeros(n, k);
            a.sym_mul_multi_into_threads(&x, &mut yp, threads);
            for (c, col) in cols.iter().enumerate() {
                let mut single = vec![0.0; n];
                a.sym_matvec_into_threads(col.as_slice(), &mut single, 1);
                for (s, m) in single.iter().zip(yp.col(c).iter()) {
                    prop_assert_eq!(s.to_bits(), m.to_bits(), "{} threads column {}", threads, c);
                }
            }
        }
    }

    #[test]
    fn csr_roundtrip((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.2);
        prop_assert_eq!(a.to_csr().to_csc(), a.clone());
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matvec_csc_equals_csr((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.2);
        let x: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let y1 = a.matvec(&x);
        let y2 = a.to_csr().matvec(&x);
        for (a1, a2) in y1.iter().zip(y2.iter()) {
            prop_assert!((a1 - a2).abs() < 1e-12);
        }
    }

    #[test]
    fn spai_zero_threshold_is_exact_inverse((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.3);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let z = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        let prod = f.l().to_dense().matmul(&z.to_csc().to_dense());
        for r in 0..n {
            for c in 0..n {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((prod[(r, c)] - expect).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn spai_columns_nonnegative((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.2);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let z = ApproxInverse::build(f.l(), SpaiOptions::default()).unwrap();
        for j in 0..n {
            for (i, v) in z.column(j).iter() {
                prop_assert!(i >= j);
                prop_assert!(v >= 0.0);
            }
        }
    }

    #[test]
    fn permutation_apply_roundtrip(perm in proptest::collection::vec(0usize..1000, 1..30)) {
        // Turn an arbitrary vector into a permutation by ranking.
        let n = perm.len();
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by_key(|&i| (perm[i], i));
        let p = Permutation::from_vec(idx).unwrap();
        let v: Vec<f64> = (0..n).map(|i| i as f64).collect();
        prop_assert_eq!(p.apply_inverse(&p.apply(&v)), v);
    }

    #[test]
    fn sparsevec_dot_matches_dense(
        a in proptest::collection::vec((0usize..30, -5.0f64..5.0), 0..20),
        b in proptest::collection::vec((0usize..30, -5.0f64..5.0), 0..20),
    ) {
        let sa = SparseVec::from_entries(30, a);
        let sb = SparseVec::from_entries(30, b);
        let dense_dot: f64 = sa
            .to_dense()
            .iter()
            .zip(sb.to_dense().iter())
            .map(|(x, y)| x * y)
            .sum();
        prop_assert!((sa.dot(&sb) - dense_dot).abs() < 1e-9);
        prop_assert!((sa.dot_dense(&sb.to_dense()) - dense_dot).abs() < 1e-9);
    }

    #[test]
    fn ic0_exists_and_matches_pattern_for_sdd((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.1);
        let ic = IncompleteCholesky::factorize(&a).unwrap();
        // Pattern preserved.
        let lower = a.lower_triangle();
        prop_assert_eq!(ic.l().colptr(), lower.colptr());
        prop_assert_eq!(ic.l().rowidx(), lower.rowidx());
        // L·Lᵀ equals A on A's pattern (the IC(0) defining property).
        let llt = ic.l().to_dense().matmul(&ic.l().to_dense().transpose());
        for (r, c, v) in a.iter() {
            prop_assert!((llt[(r, c)] - v).abs() < 1e-8 * (1.0 + v.abs()),
                "pattern entry ({r},{c})");
        }
    }

    #[test]
    fn nested_dissection_factorizes_correctly((n, edges) in arb_connected_graph()) {
        let a = laplacian(n, &edges, 0.2);
        let p = nested_dissection(&a);
        prop_assert_eq!(p.len(), n);
        let f = CholeskyFactor::factorize_with_perm(&a, p).unwrap();
        let b: Vec<f64> = (0..n).map(|i| ((i % 5) as f64) - 2.0).collect();
        let x = f.solve(&b);
        prop_assert!(a.residual_inf_norm(&x, &b) < 1e-8);
    }

    #[test]
    fn ordering_selection_picks_minimum_fill((n, edges) in arb_connected_graph()) {
        use tracered_sparse::order::select_ordering;
        let a = laplacian(n, &edges, 0.2);
        let candidates = [Ordering::Natural, Ordering::MinDegree, Ordering::NestedDissection];
        let (_, _, best_fill) = select_ordering(&a, &candidates).unwrap();
        for ord in candidates {
            let perm = ord.compute(&a).unwrap();
            let f = CholeskyFactor::factorize_with_perm(&a, perm).unwrap();
            prop_assert!(best_fill <= f.nnz(), "selection missed a better ordering");
        }
    }

    #[test]
    fn add_scaled_matches_dense((n, edges) in arb_connected_graph(), s in -2.0f64..2.0) {
        let a = laplacian(n, &edges, 0.2);
        let i = CscMatrix::identity(n);
        let sum = a.add_scaled(&i, s).unwrap();
        let ad = a.to_dense();
        for r in 0..n {
            for c in 0..n {
                let expect = ad[(r, c)] + if r == c { s } else { 0.0 };
                prop_assert!((sum.get(r, c) - expect).abs() < 1e-12);
            }
        }
    }
}
