//! Property tests for the parallel numeric Cholesky: the level-set
//! schedule's structural invariants, and bit-identity of the parallel
//! factorization with the serial up-looking kernel at every thread
//! count, across random SPD grid/tridiagonal matrices, shifts, and
//! fill-reducing orderings (natural and minimum-degree — the AMD
//! stand-in — plus RCM).

use proptest::prelude::*;
use tracered_sparse::chol::{etree_consistent_with_factor, SymbolicCholesky};
use tracered_sparse::etree::{self, NO_PARENT};
use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, CooMatrix, CscMatrix};

/// Deterministic weight stream so proptest only has to explore shapes,
/// shifts and seeds (a tiny LCG, not a statistical RNG).
fn weight(seed: u64, i: usize) -> f64 {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i as u64)
        .wrapping_mul(2862933555777941757);
    0.1 + (x >> 40) as f64 / (1u64 << 24) as f64 * 4.9
}

/// A shifted grid Laplacian with pseudo-random positive edge weights.
fn grid_spd(rows: usize, cols: usize, shift: f64, seed: u64) -> CscMatrix {
    let n = rows * cols;
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    let id = |r: usize, c: usize| r * cols + c;
    let mut e = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            for (nr, nc) in [(r, c + 1), (r + 1, c)] {
                if nr < rows && nc < cols {
                    let w = weight(seed, e);
                    e += 1;
                    coo.push_symmetric(id(r, c), id(nr, nc), -w).unwrap();
                    deg[id(r, c)] += w;
                    deg[id(nr, nc)] += w;
                }
            }
        }
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

/// A shifted tridiagonal SPD matrix with pseudo-random couplings.
fn tridiag_spd(n: usize, shift: f64, seed: u64) -> CscMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    for i in 0..n - 1 {
        let w = weight(seed, i);
        coo.push_symmetric(i, i + 1, -w).unwrap();
        deg[i] += w;
        deg[i + 1] += w;
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

/// The matrix family under test: grids large enough to cross the
/// parallel kernel's fallback threshold (128 columns) and small enough
/// to keep the suite quick, plus tridiagonals (whose etree is a path —
/// the adversarial no-parallelism case).
fn arb_spd() -> impl Strategy<Value = CscMatrix> {
    (0usize..3, 6usize..14, 6usize..14, 0.05f64..2.0, 0u64..1 << 32).prop_map(
        |(kind, a, b, shift, seed)| match kind {
            0 => grid_spd(a, b, shift, seed),
            1 => tridiag_spd(a * b * 2, shift, seed),
            _ => grid_spd(a * 2, b, shift, seed),
        },
    )
}

fn assert_csc_bit_identical(a: &CscMatrix, b: &CscMatrix, what: &str) {
    assert_eq!(a.colptr(), b.colptr(), "{what}: colptr");
    assert_eq!(a.rowidx(), b.rowidx(), "{what}: rowidx");
    for (i, (x, y)) in a.values().iter().zip(b.values().iter()).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: value {i} diverged ({x} vs {y})");
    }
}

const ORDERINGS: [Ordering; 3] = [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree];

proptest! {
    /// The headline contract: the parallel factor equals the serial one
    /// bit for bit at threads 1, 2, and 4, for every ordering.
    #[test]
    fn parallel_factor_bit_identical_to_serial(a in arb_spd()) {
        for ord in ORDERINGS {
            let serial = CholeskyFactor::factorize(&a, ord).unwrap();
            for threads in [1usize, 2, 4] {
                let par = CholeskyFactor::factorize_threads(&a, ord, threads).unwrap();
                assert_csc_bit_identical(par.l(), serial.l(), &format!("{ord:?} t={threads}"));
            }
        }
    }

    /// The level sets partition the columns, and every node's parent is
    /// in a strictly later level — the correctness frame of the
    /// schedule.
    #[test]
    fn level_sets_cover_once_with_parents_strictly_later(a in arb_spd()) {
        for ord in ORDERINGS {
            let perm = ord.compute(&a).unwrap();
            let c = a.symmetric_perm_upper(&perm).unwrap();
            let parent = etree::elimination_tree(&c);
            let levels = etree::level_sets(&parent);
            let n = parent.len();
            let mut level_of = vec![usize::MAX; n];
            let mut covered = 0usize;
            for (l, cols) in levels.iter().enumerate() {
                for &j in cols {
                    prop_assert_eq!(level_of[j], usize::MAX, "column covered twice");
                    level_of[j] = l;
                    covered += 1;
                }
            }
            prop_assert_eq!(covered, n, "every column exactly once");
            for j in 0..n {
                if parent[j] != NO_PARENT {
                    prop_assert!(
                        level_of[parent[j]] > level_of[j],
                        "parent of {} must sit strictly above it", j
                    );
                }
            }
        }
    }

    /// The subtree schedule partitions the columns, and jobs are closed
    /// under the etree: a job column's parent is in the same job or the
    /// serial tail, never in another job.
    #[test]
    fn schedule_is_a_partition_of_closed_subtrees(a in arb_spd()) {
        for ord in [Ordering::Natural, Ordering::MinDegree] {
            let perm = ord.compute(&a).unwrap();
            let c = a.symmetric_perm_upper(&perm).unwrap();
            let symbolic = SymbolicCholesky::analyze(&c).unwrap();
            let parent = symbolic.parent();
            let n = symbolic.n();
            for threads in [1usize, 2, 4] {
                let s = symbolic.schedule(threads);
                const TAIL: usize = usize::MAX;
                let mut owner = vec![TAIL - 1; n]; // sentinel: unseen
                for (job, cols) in s.jobs().iter().enumerate() {
                    for &j in cols {
                        prop_assert_eq!(owner[j], TAIL - 1, "column scheduled twice");
                        owner[j] = job;
                    }
                }
                for &j in s.serial_tail() {
                    prop_assert_eq!(owner[j], TAIL - 1, "column scheduled twice");
                    owner[j] = TAIL;
                }
                prop_assert!(owner.iter().all(|&o| o != TAIL - 1), "column never scheduled");
                for j in 0..n {
                    let p = parent[j];
                    if owner[j] != TAIL && p != NO_PARENT {
                        prop_assert!(
                            owner[p] == owner[j] || owner[p] == TAIL,
                            "parent of a job column leaked into another job"
                        );
                    }
                }
            }
        }
    }

    /// Promoted from the single-size unit test in `chol.rs`: the factor's
    /// structure is consistent with the elimination tree **after** the
    /// fill-reducing permutation, for the natural and min-degree (AMD
    /// analog) orderings, on serial and parallel factors alike.
    #[test]
    fn etree_consistent_with_factor_post_permutation(a in arb_spd()) {
        for ord in [Ordering::Natural, Ordering::MinDegree] {
            let perm = ord.compute(&a).unwrap();
            let c = a.symmetric_perm_upper(&perm).unwrap();
            let symbolic = SymbolicCholesky::analyze(&c).unwrap();
            for threads in [1usize, 4] {
                let f =
                    CholeskyFactor::factorize_with_perm_threads(&a, perm.clone(), threads).unwrap();
                prop_assert!(
                    etree_consistent_with_factor(f.l(), symbolic.parent()),
                    "{ord:?} at {threads} threads: factor structure disagrees with the etree"
                );
            }
        }
    }

    /// The solve path through a parallel factor is exactly the serial
    /// solve (same factor bits in, same solution bits out).
    #[test]
    fn solves_through_parallel_factor_match(a in arb_spd()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let serial = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let xs = serial.solve(&b);
        for threads in [2usize, 4] {
            let par = CholeskyFactor::factorize_threads(&a, Ordering::MinDegree, threads).unwrap();
            let xp = par.solve(&b);
            for (s, p) in xs.iter().zip(xp.iter()) {
                prop_assert_eq!(s.to_bits(), p.to_bits());
            }
        }
        prop_assert!(a.residual_inf_norm(&xs, &b) < 1e-8);
    }
}
