//! Property tests for the supernodal blocked Cholesky kernel: partition
//! invariants (contiguous cover, exact union patterns, chain structure),
//! scalar-vs-supernodal agreement within tolerance across random SPD
//! grids × orderings × shifts, bit-identity of the supernodal factor at
//! every thread count, and serial-equivalent failure reporting.

use proptest::prelude::*;
use tracered_sparse::chol::SymbolicCholesky;
use tracered_sparse::etree::NO_PARENT;
use tracered_sparse::order::Ordering;
use tracered_sparse::{CholeskyFactor, CooMatrix, CscMatrix, KernelVariant, SupernodePartition};

/// Deterministic weight stream (tiny LCG) so proptest only explores
/// shapes, shifts and seeds.
fn weight(seed: u64, i: usize) -> f64 {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(i as u64)
        .wrapping_mul(2862933555777941757);
    0.1 + (x >> 40) as f64 / (1u64 << 24) as f64 * 4.9
}

/// A shifted grid Laplacian with pseudo-random positive edge weights.
fn grid_spd(rows: usize, cols: usize, shift: f64, seed: u64) -> CscMatrix {
    let n = rows * cols;
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    let id = |r: usize, c: usize| r * cols + c;
    let mut e = 0usize;
    for r in 0..rows {
        for c in 0..cols {
            for (nr, nc) in [(r, c + 1), (r + 1, c)] {
                if nr < rows && nc < cols {
                    let w = weight(seed, e);
                    e += 1;
                    coo.push_symmetric(id(r, c), id(nr, nc), -w).unwrap();
                    deg[id(r, c)] += w;
                    deg[id(nr, nc)] += w;
                }
            }
        }
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

/// A shifted tridiagonal SPD matrix — the etree-is-a-path adversarial
/// case, where every column is one chain and amalgamation does all the
/// work.
fn tridiag_spd(n: usize, shift: f64, seed: u64) -> CscMatrix {
    let mut coo = CooMatrix::new(n, n);
    let mut deg = vec![0.0; n];
    for i in 0..n - 1 {
        let w = weight(seed, i);
        coo.push_symmetric(i, i + 1, -w).unwrap();
        deg[i] += w;
        deg[i + 1] += w;
    }
    for (i, &d) in deg.iter().enumerate() {
        coo.push(i, i, d + shift).unwrap();
    }
    coo.to_csc()
}

fn arb_spd() -> impl Strategy<Value = CscMatrix> {
    (0usize..3, 6usize..14, 6usize..14, 0.05f64..2.0, 0u64..1 << 32).prop_map(
        |(kind, a, b, shift, seed)| match kind {
            0 => grid_spd(a, b, shift, seed),
            1 => tridiag_spd(a * b * 2, shift, seed),
            _ => grid_spd(a * 2, b, shift, seed),
        },
    )
}

fn assert_csc_bit_identical(a: &CscMatrix, b: &CscMatrix, what: &str) {
    assert_eq!(a.colptr(), b.colptr(), "{what}: colptr");
    assert_eq!(a.rowidx(), b.rowidx(), "{what}: rowidx");
    for (i, (x, y)) in a.values().iter().zip(b.values().iter()).enumerate() {
        assert!(x.to_bits() == y.to_bits(), "{what}: value {i} diverged ({x} vs {y})");
    }
}

const ORDERINGS: [Ordering; 4] =
    [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree, Ordering::NestedDissection];

proptest! {
    /// Partition invariants: supernode column ranges are contiguous and
    /// cover every column exactly once; each supernode's columns form an
    /// etree chain; the union row pattern is exactly the union of its
    /// columns' factor patterns (sorted, starting with the columns
    /// themselves); and the panel-cell accounting closes (trapezoid
    /// cells = factor nonzeros + padded cells).
    #[test]
    fn partition_invariants(a in arb_spd()) {
        for ord in ORDERINGS {
            let perm = ord.compute(&a).unwrap();
            let c = a.symmetric_perm_upper(&perm).unwrap();
            let symbolic = SymbolicCholesky::analyze(&c).unwrap();
            let part = SupernodePartition::from_symbolic(&c, &symbolic);
            let f = CholeskyFactor::factorize_with_perm(&a, perm.clone()).unwrap();
            let l = f.l();
            let n = symbolic.n();
            let parent = symbolic.parent();

            let mut covered = 0usize;
            let mut trapezoid_cells = 0usize;
            for s in 0..part.num_supernodes() {
                let cols = part.cols(s);
                prop_assert_eq!(cols.start, covered, "ranges must be contiguous");
                prop_assert!(!cols.is_empty(), "supernodes are non-empty");
                covered = cols.end;
                let rows = part.rows(s);
                let w = cols.len();
                prop_assert!(
                    rows.windows(2).all(|p| p[0] < p[1]),
                    "union rows strictly ascending"
                );
                // The first w rows are the supernode's own columns.
                for (i, j) in cols.clone().enumerate() {
                    prop_assert_eq!(rows[i], j, "panel rows start with the columns");
                    prop_assert_eq!(part.supernode_of(j), s);
                }
                // Columns form an etree chain.
                for (j, &p) in parent.iter().enumerate().take(cols.end - 1).skip(cols.start) {
                    prop_assert_eq!(p, j + 1, "columns of a supernode chain in the etree");
                }
                // Union pattern == union of the factor columns' patterns.
                let mut union: Vec<usize> = Vec::new();
                for j in cols.clone() {
                    let (rj, _) = l.col(j);
                    union.extend_from_slice(rj);
                }
                union.sort_unstable();
                union.dedup();
                prop_assert_eq!(&union[..], rows, "union rows must match the factor patterns");
                trapezoid_cells += w * rows.len() - w * (w - 1) / 2;
            }
            prop_assert_eq!(covered, n, "every column exactly once");
            prop_assert_eq!(
                trapezoid_cells,
                l.nnz() + part.padded_cells(),
                "panel-cell accounting must close"
            );
        }
    }

    /// Scalar vs supernodal: identical factor pattern, values within
    /// rounding tolerance, for every ordering.
    #[test]
    fn supernodal_matches_scalar_within_tolerance(a in arb_spd()) {
        for ord in ORDERINGS {
            let scalar = CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Scalar, 1).unwrap();
            let blocked =
                CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Supernodal, 1).unwrap();
            prop_assert_eq!(scalar.l().colptr(), blocked.l().colptr(), "{:?}: colptr", ord);
            prop_assert_eq!(scalar.l().rowidx(), blocked.l().rowidx(), "{:?}: rowidx", ord);
            for (i, (x, y)) in
                scalar.l().values().iter().zip(blocked.l().values().iter()).enumerate()
            {
                prop_assert!(
                    (x - y).abs() <= 1e-9 * (1.0 + x.abs()),
                    "{:?}: entry {} diverged beyond tolerance ({} vs {})", ord, i, x, y
                );
            }
        }
    }

    /// The supernodal determinism contract: bit-identical factors at
    /// threads 1, 2, and 4.
    #[test]
    fn supernodal_bit_identical_across_threads(a in arb_spd()) {
        for ord in [Ordering::MinDegree, Ordering::NestedDissection, Ordering::Natural] {
            let serial =
                CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Supernodal, 1).unwrap();
            for threads in [2usize, 4] {
                let par =
                    CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Supernodal, threads)
                        .unwrap();
                assert_csc_bit_identical(
                    par.l(),
                    serial.l(),
                    &format!("supernodal {ord:?} t={threads}"),
                );
            }
        }
    }

    /// Solves through the supernodal factor actually solve the system.
    #[test]
    fn supernodal_solve_residual(a in arb_spd()) {
        let n = a.ncols();
        let b: Vec<f64> = (0..n).map(|i| ((i * 13 % 17) as f64) - 8.0).collect();
        let f = CholeskyFactor::factorize_kernel(
            &a,
            Ordering::MinDegree,
            KernelVariant::Supernodal,
            4,
        )
        .unwrap();
        let x = f.solve(&b);
        prop_assert!(a.residual_inf_norm(&x, &b) < 1e-8);
    }

    /// The partition exists for every matrix in the family and its
    /// supernode count is consistent with the mean width accessor.
    #[test]
    fn partition_stats_consistent(a in arb_spd()) {
        let perm = Ordering::MinDegree.compute(&a).unwrap();
        let c = a.symmetric_perm_upper(&perm).unwrap();
        let symbolic = SymbolicCholesky::analyze(&c).unwrap();
        let part = SupernodePartition::from_symbolic(&c, &symbolic);
        prop_assert!(part.num_supernodes() >= 1);
        prop_assert!(part.num_supernodes() <= symbolic.n());
        let mean = part.mean_width();
        prop_assert!(mean >= 1.0 && mean <= part.max_width() as f64);
        prop_assert!((mean * part.num_supernodes() as f64 - symbolic.n() as f64).abs() < 1e-9);
    }
}

/// A 14x14 grid with one diagonal entry poisoned to be strongly negative:
/// both kernels must report the same failing pivot column — the serial
/// sweep's first — at every thread count.
#[test]
fn supernodal_first_failure_matches_scalar() {
    let k = 14usize;
    let n = k * k;
    for poison in [3usize, n / 2, n - 2] {
        let base = grid_spd(k, k, 0.4, 7);
        let mut coo = CooMatrix::new(n, n);
        for j in 0..n {
            let (rows, vals) = base.col(j);
            for (&r, &v) in rows.iter().zip(vals.iter()) {
                let v = if r == j && r == poison { -100.0 } else { v };
                coo.push(r, j, v).unwrap();
            }
        }
        let a = coo.to_csc();
        for ord in [Ordering::Natural, Ordering::MinDegree] {
            let scalar_err =
                CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Scalar, 1).unwrap_err();
            for threads in [1usize, 2, 4] {
                let err =
                    CholeskyFactor::factorize_kernel(&a, ord, KernelVariant::Supernodal, threads)
                        .unwrap_err();
                assert_eq!(
                    format!("{scalar_err:?}"),
                    format!("{err:?}"),
                    "kernels must agree on the first failing column (ord {ord:?}, t={threads})"
                );
            }
        }
    }
}

/// Tiny matrices take the serial supernodal path (below the parallel
/// cutoff) and still match scalar.
#[test]
fn supernodal_small_matrices() {
    for n in [1usize, 2, 5, 16] {
        let a = tridiag_spd(n.max(2), 0.7, 11);
        let scalar =
            CholeskyFactor::factorize_kernel(&a, Ordering::Natural, KernelVariant::Scalar, 1)
                .unwrap();
        let blocked =
            CholeskyFactor::factorize_kernel(&a, Ordering::Natural, KernelVariant::Supernodal, 4)
                .unwrap();
        assert_eq!(scalar.l().colptr(), blocked.l().colptr());
        assert_eq!(scalar.l().rowidx(), blocked.l().rowidx());
        for (x, y) in scalar.l().values().iter().zip(blocked.l().values()) {
            assert!((x - y).abs() <= 1e-10 * (1.0 + x.abs()));
        }
    }
}

/// An etree chain's supernodes may straddle a job/tail boundary only —
/// encoded indirectly: the partition is schedule-independent, so two
/// different thread counts must see identical partitions (the partition
/// is derived purely from the symbolic analysis).
#[test]
fn partition_is_thread_independent_by_construction() {
    let a = grid_spd(13, 13, 0.3, 5);
    let perm = Ordering::MinDegree.compute(&a).unwrap();
    let c = a.symmetric_perm_upper(&perm).unwrap();
    let symbolic = SymbolicCholesky::analyze(&c).unwrap();
    let p1 = SupernodePartition::from_symbolic(&c, &symbolic);
    let p2 = SupernodePartition::from_symbolic(&c, &symbolic);
    assert_eq!(p1.num_supernodes(), p2.num_supernodes());
    for s in 0..p1.num_supernodes() {
        assert_eq!(p1.cols(s), p2.cols(s));
        assert_eq!(p1.rows(s), p2.rows(s));
    }
    assert_eq!(p1.padded_cells(), p2.padded_cells());
}

/// `NO_PARENT` roots terminate chains: the last column of the matrix is
/// always the last column of the last supernode, and its etree parent is
/// `NO_PARENT`.
#[test]
fn last_supernode_ends_at_root() {
    let a = grid_spd(10, 11, 0.2, 3);
    let perm = Ordering::MinDegree.compute(&a).unwrap();
    let c = a.symmetric_perm_upper(&perm).unwrap();
    let symbolic = SymbolicCholesky::analyze(&c).unwrap();
    let part = SupernodePartition::from_symbolic(&c, &symbolic);
    let n = symbolic.n();
    let last = part.num_supernodes() - 1;
    assert_eq!(part.cols(last).end, n);
    assert_eq!(symbolic.parent()[n - 1], NO_PARENT);
}
