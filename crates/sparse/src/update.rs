//! Sparse rank-1 Cholesky update and downdate.
//!
//! Given a factor `P A Pᵀ = L Lᵀ`, [`CholeskyFactor::update`] rewrites
//! `L` in place so that it factors `A + w wᵀ`, and
//! [`CholeskyFactor::downdate`] does the same for `A − w wᵀ` — without
//! refactorizing. This is the CHOLMOD `updown` / CSparse `cs_updown`
//! scheme the paper's production workload (N-1/N-2 contingency
//! screening, a sweep of rank-1 Laplacian perturbations) depends on:
//! the numeric work is one hyperbolic-rotation walk along the
//! elimination-tree path of the update vector, `O(path column sizes)`
//! instead of a full numeric factorization.
//!
//! Three properties the rest of the workspace leans on:
//!
//! - **Pattern growth is handled, not assumed away.** An update vector
//!   whose support is not already "cliqued" in the factor pattern can
//!   introduce fill along its elimination-tree path. Before the numeric
//!   walk, the pattern is re-analysed from `pattern(L) ∪
//!   clique(supp(w̃))` — a superset of the exact new pattern — and old
//!   values are carried over (filled patterns are closed under symbolic
//!   factorization, so the refreshed pattern always contains the old
//!   one).
//! - **Downdates fail typed, never panic.** Subtracting `w wᵀ` can push
//!   the matrix out of positive definiteness; the walk detects the lost
//!   pivot (including the NaN/overflow routes) and returns
//!   [`SparseError::NotPositiveDefinite`] with the factor restored
//!   bit-for-bit to its pre-call state. Callers escalate exactly like a
//!   failed factorization — e.g. re-assemble and retry through the
//!   [`crate::regularize::factorize_regularized`] boost ladder.
//! - **Revert is bit-exact.** Hyperbolic rotations are not exact
//!   inverses in floating point, so "update then downdate with the same
//!   vector" replayed numerically would drift in the last ulps. Each
//!   applied operation therefore journals an undo record (the
//!   pre-operation values of every column it touched); reverting the
//!   most recent operation with the bitwise-identical vector pops the
//!   journal and restores the factor exactly. This is what lets a
//!   contingency sweep apply/revert hundreds of outages against one
//!   factor and leave it bit-identical to the start.
//!
//! # Example
//!
//! ```
//! use tracered_sparse::{CholeskyFactor, CooMatrix, order::Ordering};
//!
//! # fn main() -> Result<(), tracered_sparse::SparseError> {
//! // A shifted path-graph Laplacian (SPD).
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0)?;
//! coo.push(1, 1, 3.0)?;
//! coo.push(2, 2, 2.0)?;
//! coo.push_symmetric(0, 1, -1.0)?;
//! coo.push_symmetric(1, 2, -1.0)?;
//! let a = coo.to_csc();
//!
//! let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree)?;
//! let baseline = f.solve(&[1.0, 0.0, 1.0]);
//!
//! // Strengthen edge (0, 1) by 0.5: A + w wᵀ with w = √0.5 (e₀ − e₁).
//! let s = 0.5f64.sqrt();
//! let w = vec![s, -s, 0.0];
//! f.update(&w)?;
//!
//! // Revert: bit-identical to the original factor's solves.
//! f.downdate(&w)?;
//! assert_eq!(f.solve(&[1.0, 0.0, 1.0]), baseline);
//! # Ok(())
//! # }
//! ```

use crate::chol::CholeskyFactor;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::etree;

/// Cap on remembered operations: a sweep that applies and reverts in
/// LIFO order (the contingency pattern) never holds more than one live
/// entry, but a caller stacking updates without reverting must not grow
/// the factor's footprint without bound.
const JOURNAL_CAP: usize = 32;

/// Undo record of one applied rank-1 operation. Stored newest-last in
/// the factor's journal; popping it restores the factor bit-for-bit.
#[derive(Debug, Clone)]
pub(crate) struct UndoEntry {
    /// `+1` if the journalled operation was an update, `-1` a downdate.
    sigma: i8,
    /// Nonzeros of the original-index-space vector, bit-exact, sorted by
    /// index — the match key for revert detection.
    support: Vec<(usize, u64)>,
    /// Pre-operation values of every column the numeric walk touched.
    saved: Vec<(usize, Vec<f64>)>,
    /// The entire pre-operation factor matrix when the operation grew
    /// the pattern (column slices alone cannot undo a structure change).
    old_l: Option<CscMatrix>,
}

/// What a successful [`CholeskyFactor::update`] / `downdate` did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateReport {
    /// Factor columns the numeric walk rewrote (zero-mass path columns
    /// are skipped; a journalled restore reports the columns restored).
    pub touched_columns: usize,
    /// Whether the factor pattern had to grow along the update path.
    pub grew_pattern: bool,
    /// Whether the operation was recognised as the exact inverse of the
    /// most recent journalled operation and satisfied by a bit-exact
    /// restore instead of a numeric walk.
    pub journaled_restore: bool,
}

impl CholeskyFactor {
    /// Rewrites the factor of `A` into a factor of `A + w wᵀ` in place.
    ///
    /// `w` is in **original** (unpermuted) index space. Cost is
    /// proportional to the factor columns on the elimination-tree path
    /// of `w`'s support, not to a full refactorization.
    ///
    /// # Errors
    ///
    /// - [`SparseError::DimensionMismatch`] if `w.len() != self.n()`;
    /// - [`SparseError::InvalidValue`] if `w` has a NaN/infinite entry;
    /// - [`SparseError::NotPositiveDefinite`] if the rotation walk loses
    ///   a pivot (possible for updates only through overflow).
    ///
    /// On error the factor is unchanged, bit-for-bit.
    pub fn update(&mut self, w: &[f64]) -> Result<UpdateReport, SparseError> {
        self.rank_one(w, 1)
    }

    /// Rewrites the factor of `A` into a factor of `A − w wᵀ` in place.
    ///
    /// Same contract as [`CholeskyFactor::update`]; additionally, a
    /// downdate that would make the matrix lose positive definiteness
    /// (e.g. removing a bridge edge from a Laplacian-plus-shifts system)
    /// returns [`SparseError::NotPositiveDefinite`] naming the permuted
    /// column where the pivot died, with the factor restored. Callers
    /// fall back exactly as for a failed factorization — re-assemble the
    /// perturbed matrix and escalate through
    /// [`crate::regularize::factorize_regularized`].
    pub fn downdate(&mut self, w: &[f64]) -> Result<UpdateReport, SparseError> {
        self.rank_one(w, -1)
    }

    /// Number of applied-but-unreverted rank-1 operations this factor
    /// remembers (the undo-journal depth, capped at an internal bound).
    pub fn pending_updates(&self) -> usize {
        self.journal().len()
    }

    fn rank_one(&mut self, w: &[f64], sigma: i8) -> Result<UpdateReport, SparseError> {
        let n = self.n();
        if w.len() != n {
            return Err(SparseError::DimensionMismatch { expected: n, found: w.len() });
        }
        if let Some((i, &v)) = w.iter().enumerate().find(|(_, v)| !v.is_finite()) {
            return Err(SparseError::InvalidValue {
                what: format!("non-finite rank-1 vector entry {v} at index {i}"),
            });
        }
        let support: Vec<(usize, u64)> = w
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0.0)
            .map(|(i, &v)| (i, v.to_bits()))
            .collect();
        let mut span = tracered_obs::span!("chol.update", {
            n: n,
            support: support.len(),
            sigma: sigma
        });
        if support.is_empty() {
            return Ok(UpdateReport {
                touched_columns: 0,
                grew_pattern: false,
                journaled_restore: false,
            });
        }

        // Bit-exact revert fast path: the inverse of the most recent
        // journalled operation.
        if let Some(report) = self.try_journal_restore(&support, sigma) {
            if let Some(s) = span.as_mut() {
                s.arg("journaled", 1.0);
            }
            return Ok(report);
        }

        // Permute the vector to factor index space.
        let wt = self.perm().apply(w);
        let mut supp: Vec<usize> =
            wt.iter().enumerate().filter(|(_, &v)| v != 0.0).map(|(i, _)| i).collect();
        supp.sort_unstable();

        // Grow the pattern if the support clique is not already present:
        // fill from the update can only appear along paths the clique
        // makes symbolic analysis aware of.
        let grew = !clique_in_pattern(self.l(), &supp);
        let old_l = if grew {
            let snapshot = self.l().clone();
            let refreshed = refreshed_pattern(self.l(), &supp)?;
            self.set_l(refreshed);
            Some(snapshot)
        } else {
            None
        };

        match updown_in_place(self.l_mut(), wt, supp[0], sigma) {
            Ok(saved) => {
                let touched = saved.len();
                let journal = self.journal_mut();
                if journal.len() == JOURNAL_CAP {
                    journal.remove(0);
                }
                journal.push(UndoEntry { sigma, support, saved, old_l });
                Ok(UpdateReport {
                    touched_columns: touched,
                    grew_pattern: grew,
                    journaled_restore: false,
                })
            }
            Err(e) => {
                // updown_in_place already restored the touched column
                // values; a grown pattern is rolled back wholesale so
                // the caller sees the exact pre-call factor.
                if let Some(old) = old_l {
                    self.set_l(old);
                }
                Err(e)
            }
        }
    }

    /// Pops and applies the top journal entry iff `(support, sigma)` is
    /// its exact inverse.
    fn try_journal_restore(&mut self, support: &[(usize, u64)], sigma: i8) -> Option<UpdateReport> {
        let matches =
            self.journal().last().is_some_and(|top| top.sigma == -sigma && top.support == support);
        if !matches {
            return None;
        }
        let entry = self.journal_mut().pop().expect("matched entry present");
        let touched = entry.saved.len();
        match entry.old_l {
            Some(old) => self.set_l(old),
            None => {
                let (colptr, _, values) = self.l_mut().parts_mut();
                for (j, vals) in &entry.saved {
                    let p0 = colptr[*j];
                    values[p0..p0 + vals.len()].copy_from_slice(vals);
                }
            }
        }
        Some(UpdateReport {
            touched_columns: touched,
            grew_pattern: false,
            journaled_restore: true,
        })
    }
}

/// Whether every pair of support indices is already connected in the
/// factor pattern (`L[b, a] ≠ 0` for all `a < b` in `supp`). When true,
/// symbolic analysis would reproduce the current pattern and the
/// refresh is skipped. Support sizes here are tiny (a Laplacian edge
/// perturbation has two), so the pairwise scan is cheap.
fn clique_in_pattern(l: &CscMatrix, supp: &[usize]) -> bool {
    for (i, &a) in supp.iter().enumerate() {
        let (rows, _) = l.col(a);
        for &b in &supp[i + 1..] {
            if rows.binary_search(&b).is_err() {
                return false;
            }
        }
    }
    true
}

/// Re-runs symbolic analysis on `pattern(L + Lᵀ) ∪ clique(supp)` and
/// returns a factor matrix with the (weakly larger) refreshed pattern,
/// old values carried over and fill entries zeroed.
fn refreshed_pattern(l: &CscMatrix, supp: &[usize]) -> Result<CscMatrix, SparseError> {
    let n = l.ncols();
    // Upper-triangular pattern: entry L(r, j) with j ≤ r becomes row j of
    // column r. Iterating columns of L in order appends rows ascending.
    let mut cols: Vec<Vec<usize>> = vec![Vec::new(); n];
    for j in 0..n {
        let (rows, _) = l.col(j);
        for &r in rows {
            cols[r].push(j);
        }
    }
    for (i, &a) in supp.iter().enumerate() {
        for &b in &supp[i + 1..] {
            cols[b].push(a);
        }
    }
    let mut colptr = vec![0usize; n + 1];
    let mut rowidx = Vec::new();
    for (c, col) in cols.iter_mut().enumerate() {
        col.sort_unstable();
        col.dedup();
        rowidx.extend_from_slice(col);
        colptr[c + 1] = rowidx.len();
    }
    let nnz = rowidx.len();
    let upper = CscMatrix::from_raw_parts(n, n, colptr, rowidx, vec![1.0; nnz])?;

    let parent = etree::elimination_tree(&upper);
    let counts = etree::column_counts(&upper, &parent);
    let mut lcolptr = vec![0usize; n + 1];
    for j in 0..n {
        lcolptr[j + 1] = lcolptr[j] + counts[j];
    }
    let lnnz = lcolptr[n];
    let mut lrowidx = vec![0usize; lnnz];
    // Diagonal first, then row k appended to every column of its ereach;
    // k ascends, so each column's rows come out sorted.
    let mut next: Vec<usize> = lcolptr[..n].to_vec();
    for j in 0..n {
        lrowidx[next[j]] = j;
        next[j] += 1;
    }
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    for k in 0..n {
        let top = etree::ereach(&upper, k, &parent, &mut stack, &mut wmark);
        for &j in &stack[top..n] {
            lrowidx[next[j]] = k;
            next[j] += 1;
        }
    }
    debug_assert!(next.iter().zip(&lcolptr[1..]).all(|(a, b)| a == b));

    // Two-pointer merge of old values into the superset pattern.
    let mut lvalues = vec![0.0f64; lnnz];
    for j in 0..n {
        let (old_rows, old_vals) = l.col(j);
        let new_rows = &lrowidx[lcolptr[j]..lcolptr[j + 1]];
        let new_vals = &mut lvalues[lcolptr[j]..lcolptr[j + 1]];
        let mut src = 0;
        for (dst, &r) in new_rows.iter().enumerate() {
            if src < old_rows.len() && old_rows[src] == r {
                new_vals[dst] = old_vals[src];
                src += 1;
            }
        }
        debug_assert_eq!(src, old_rows.len(), "refreshed pattern must contain the old one");
    }
    CscMatrix::from_raw_parts(n, n, lcolptr, lrowidx, lvalues)
}

/// The CSparse `cs_updown` hyperbolic-rotation walk, specialised to
/// `L Lᵀ` storage. `x` is the permuted update vector (consumed), `f`
/// the first column of its elimination-tree path, `sigma` `+1`/`-1` for
/// update/downdate. Returns the pre-operation values of every rewritten
/// column; on pivot loss those values are restored before returning the
/// typed error, leaving `l` untouched.
fn updown_in_place(
    l: &mut CscMatrix,
    mut x: Vec<f64>,
    f: usize,
    sigma: i8,
) -> Result<Vec<(usize, Vec<f64>)>, SparseError> {
    let (colptr, rowidx, values) = l.parts_mut();
    let sig = f64::from(sigma);
    let mut saved: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut beta = 1.0f64;
    let mut j = f;
    loop {
        let p0 = colptr[j];
        let p1 = colptr[j + 1];
        if x[j] != 0.0 {
            saved.push((j, values[p0..p1].to_vec()));
            let alpha = x[j] / values[p0];
            let beta2sq = beta * beta + sig * alpha * alpha;
            // A lost pivot reads `beta2sq <= 0`; NaN (downdating a
            // column whose diagonal already collapsed) and overflow fail
            // the same gate.
            if !beta2sq.is_finite() || beta2sq <= 0.0 {
                saved.pop(); // column `j` was not modified yet
                for (jj, vals) in &saved {
                    let q0 = colptr[*jj];
                    values[q0..q0 + vals.len()].copy_from_slice(vals);
                }
                return Err(SparseError::NotPositiveDefinite { column: j });
            }
            let beta2 = beta2sq.sqrt();
            let delta = if sigma > 0 { beta / beta2 } else { beta2 / beta };
            let gamma = sig * alpha / (beta2 * beta);
            values[p0] = delta * values[p0] + if sigma > 0 { gamma * x[j] } else { 0.0 };
            beta = beta2;
            for p in p0 + 1..p1 {
                let w1 = x[rowidx[p]];
                let w2 = w1 - alpha * values[p];
                x[rowidx[p]] = w2;
                values[p] = delta * values[p] + gamma * if sigma > 0 { w1 } else { w2 };
            }
        }
        // Next path column: the elimination-tree parent is the first
        // off-diagonal row (zero-mass columns pass through untouched —
        // their rotation is exactly the identity).
        if p1 - p0 >= 2 {
            j = rowidx[p0 + 1];
        } else {
            break;
        }
    }
    Ok(saved)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;
    use crate::order::Ordering;

    /// A k×k grid Laplacian with a uniform diagonal shift (SPD).
    fn grid_laplacian_shifted(k: usize, shift: f64) -> CscMatrix {
        let n = k * k;
        let mut coo = CooMatrix::new(n, n);
        let id = |r: usize, c: usize| r * k + c;
        let mut deg = vec![0.0; n];
        let push_edge = |coo: &mut CooMatrix, a: usize, b: usize, deg: &mut [f64]| {
            coo.push_symmetric(a, b, -1.0).unwrap();
            deg[a] += 1.0;
            deg[b] += 1.0;
        };
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    push_edge(&mut coo, id(r, c), id(r, c + 1), &mut deg);
                }
                if r + 1 < k {
                    push_edge(&mut coo, id(r, c), id(r + 1, c), &mut deg);
                }
            }
        }
        for (i, &d) in deg.iter().enumerate() {
            coo.push(i, i, d + shift).unwrap();
        }
        coo.to_csc()
    }

    fn edge_vector(n: usize, u: usize, v: usize, weight: f64) -> Vec<f64> {
        let s = weight.sqrt();
        let mut w = vec![0.0; n];
        w[u] = s;
        w[v] = -s;
        w
    }

    #[test]
    fn update_matches_refactorized_solves() {
        let a = grid_laplacian_shifted(6, 0.3);
        let n = a.ncols();
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let w = edge_vector(n, 3, 29, 0.75);
        let report = f.update(&w).unwrap();
        assert!(!report.journaled_restore);

        // A + w wᵀ assembled densely through the CSC helper.
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for (r, c, v) in a.iter() {
            coo.push(r, c, v).unwrap();
        }
        for i in 0..n {
            for k in 0..n {
                if w[i] != 0.0 && w[k] != 0.0 {
                    coo.push(i, k, w[i] * w[k]).unwrap();
                }
            }
        }
        let ap = coo.to_csc();
        let b = vec![1.0; n];
        let x = f.solve(&b);
        assert!(ap.residual_inf_norm(&x, &b) < 1e-10);
    }

    #[test]
    fn downdate_then_update_is_bit_exact() {
        let a = grid_laplacian_shifted(5, 0.4);
        let n = a.ncols();
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let baseline = f.solve(&b);
        let w = edge_vector(n, 0, 1, 0.25);
        f.downdate(&w).unwrap();
        let restored = f.update(&w).unwrap();
        assert!(restored.journaled_restore);
        let after = f.solve(&b);
        let same_bits = baseline.iter().zip(&after).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same_bits, "journalled restore must reproduce solves bit-for-bit");
    }

    #[test]
    fn zero_vector_is_a_noop() {
        let a = grid_laplacian_shifted(4, 0.5);
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let before = f.l().values().to_vec();
        let report = f.update(&vec![0.0; a.ncols()]).unwrap();
        assert_eq!(report.touched_columns, 0);
        assert_eq!(f.l().values(), &before[..]);
        assert_eq!(f.pending_updates(), 0);
    }

    #[test]
    fn non_finite_vector_is_rejected_typed() {
        let a = grid_laplacian_shifted(4, 0.5);
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let before = f.l().values().to_vec();
        let mut w = vec![0.0; a.ncols()];
        w[2] = f64::NAN;
        let err = f.update(&w).unwrap_err();
        assert!(matches!(err, SparseError::InvalidValue { .. }));
        assert_eq!(f.l().values(), &before[..]);
    }

    #[test]
    fn wrong_length_is_rejected_typed() {
        let a = grid_laplacian_shifted(4, 0.5);
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let err = f.downdate(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SparseError::DimensionMismatch { .. }));
    }

    #[test]
    fn excessive_downdate_fails_typed_and_restores() {
        let a = grid_laplacian_shifted(5, 0.2);
        let n = a.ncols();
        let mut f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let before = f.l().values().to_vec();
        // Subtracting far more than the edge weight makes A − w wᵀ
        // indefinite.
        let w = edge_vector(n, 0, 1, 50.0);
        let err = f.downdate(&w).unwrap_err();
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
        assert_eq!(f.l().values(), &before[..], "failed downdate must leave the factor intact");
        assert_eq!(f.pending_updates(), 0);
    }

    #[test]
    fn pattern_growth_handles_distant_support() {
        // Natural ordering on a path graph keeps the factor bidiagonal;
        // an update touching the two endpoints forces fill along the
        // whole elimination-tree path.
        let n = 12;
        let mut coo = crate::coo::CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.5).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        let a = coo.to_csc();
        let mut f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let w = edge_vector(n, 0, n - 1, 0.5);
        let report = f.update(&w).unwrap();
        assert!(report.grew_pattern);

        let mut coo2 = crate::coo::CooMatrix::new(n, n);
        for (r, c, v) in a.iter() {
            coo2.push(r, c, v).unwrap();
        }
        coo2.push(0, 0, 0.5).unwrap();
        coo2.push(n - 1, n - 1, 0.5).unwrap();
        coo2.push_symmetric(0, n - 1, -0.5).unwrap();
        let ap = coo2.to_csc();
        let b = vec![1.0; n];
        assert!(ap.residual_inf_norm(&f.solve(&b), &b) < 1e-10);

        // Reverting the growth restores the original pattern and bits.
        let before = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        f.downdate(&w).unwrap();
        assert_eq!(f.l().colptr(), before.l().colptr());
        assert_eq!(f.l().rowidx(), before.l().rowidx());
        let bits_equal =
            f.l().values().iter().zip(before.l().values()).all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(bits_equal);
    }
}
