//! Compressed sparse row storage, used where row access dominates
//! (graph adjacency walks, row-oriented matvec).

use crate::csc::CscMatrix;

/// A sparse matrix in compressed sparse row (CSR) form.
///
/// Produced from a [`CscMatrix`] via [`CscMatrix::to_csr`]. Row indices
/// within each row are sorted, mirroring the CSC invariants.
///
/// # Example
///
/// ```
/// use tracered_sparse::CooMatrix;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 3);
/// coo.push(0, 2, 5.0)?;
/// coo.push(1, 0, 1.0)?;
/// let csr = coo.to_csc().to_csr();
/// let (cols, vals) = csr.row(0);
/// assert_eq!(cols, &[2]);
/// assert_eq!(vals, &[5.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    rowptr: Vec<usize>,
    colidx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Internal constructor: reinterprets the transpose of a CSC matrix as
    /// CSR storage of the original.
    pub(crate) fn from_csc_transpose(t: CscMatrix) -> Self {
        // `t` is the transpose of the matrix we want in CSR form; the CSC
        // arrays of Aᵀ are exactly the CSR arrays of A.
        let nrows = t.ncols();
        let ncols = t.nrows();
        CsrMatrix {
            nrows,
            ncols,
            rowptr: t.colptr().to_vec(),
            colidx: t.rowidx().to_vec(),
            values: t.values().to_vec(),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row pointer array (`nrows + 1` entries).
    pub fn rowptr(&self) -> &[usize] {
        &self.rowptr
    }

    /// The column-index array.
    pub fn colidx(&self) -> &[usize] {
        &self.colidx
    }

    /// The value array.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Column indices and values of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.nrows()`.
    pub fn row(&self, r: usize) -> (&[usize], &[f64]) {
        let range = self.rowptr[r]..self.rowptr[r + 1];
        (&self.colidx[range.clone()], &self.values[range])
    }

    /// Dense matrix–vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.ncols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.ncols, "vector length must equal ncols");
        let mut y = vec![0.0; self.nrows];
        for r in 0..self.nrows {
            let (cols, vals) = self.row(r);
            let mut acc = 0.0;
            for (&c, &v) in cols.iter().zip(vals.iter()) {
                acc += v * x[c];
            }
            y[r] = acc;
        }
        y
    }

    /// Converts back to CSC format.
    pub fn to_csc(&self) -> CscMatrix {
        // The CSR arrays of A are the CSC arrays of Aᵀ; transpose to get A.
        CscMatrix::from_raw_parts(
            self.ncols,
            self.nrows,
            self.rowptr.clone(),
            self.colidx.clone(),
            self.values.clone(),
        )
        .expect("CSR invariants imply CSC invariants of the transpose")
        .transpose()
    }
}

#[cfg(test)]
mod tests {
    use crate::coo::CooMatrix;

    fn sample() -> crate::csc::CscMatrix {
        let mut coo = CooMatrix::new(3, 4);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 3, 2.0).unwrap();
        coo.push(1, 0, 3.0).unwrap();
        coo.push(2, 2, 4.0).unwrap();
        coo.push(2, 3, 5.0).unwrap();
        coo.to_csc()
    }

    #[test]
    fn csr_rows_match_csc_entries() {
        let a = sample();
        let csr = a.to_csr();
        assert_eq!(csr.nrows(), 3);
        assert_eq!(csr.ncols(), 4);
        assert_eq!(csr.nnz(), 5);
        let (cols, vals) = csr.row(0);
        assert_eq!(cols, &[1, 3]);
        assert_eq!(vals, &[1.0, 2.0]);
        let (cols, vals) = csr.row(2);
        assert_eq!(cols, &[2, 3]);
        assert_eq!(vals, &[4.0, 5.0]);
    }

    #[test]
    fn matvec_agrees_with_csc() {
        let a = sample();
        let csr = a.to_csr();
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(a.matvec(&x), csr.matvec(&x));
    }

    #[test]
    fn roundtrip_csc_csr_csc() {
        let a = sample();
        assert_eq!(a.to_csr().to_csc(), a);
    }
}
