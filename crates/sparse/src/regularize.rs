//! Boosted (regularized) Cholesky factorization — the retry layer that
//! turns `NotPositiveDefinite` from a fatal error into a classified,
//! recoverable event.
//!
//! Production sparse solvers (CHOLMOD's `beta` shift, PETSc's
//! `PCFactorSetShiftType`) recover from marginally indefinite or
//! near-singular matrices by adding a small multiple of the identity to
//! the diagonal and refactorizing. [`factorize_regularized`] brings that
//! discipline here: on a pivot failure it climbs a geometric shift ladder
//! ([`BoostSchedule`]) — `σ₀·s, σ₀·g·s, σ₀·g²·s, …` where `s` is the mean
//! absolute diagonal — until a factorization succeeds, and reports the
//! applied shift in the returned [`RegularizedFactor`] so callers can
//! account for the perturbation (e.g. by using the boosted factor as a
//! preconditioner rather than a direct solve).
//!
//! The boost is applied to the **input matrix** (one
//! [`CscMatrix::add_diagonal`] per rung), not smuggled into the numeric
//! kernel, so the bit-identity contract of
//! [`CholeskyFactor::factorize_threads`] is untouched: serial and
//! parallel factorizations of the same boosted matrix agree bit for bit
//! at every thread count.
//!
//! A cheap non-finite input scan ([`scan_non_finite`]) runs first: NaN or
//! infinite entries are input corruption, not conditioning, and no shift
//! recovers them — they surface immediately as the typed
//! [`SparseError::NonFiniteValue`].

#![warn(clippy::unwrap_used)]

use crate::chol::CholeskyFactor;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::order::Ordering;
use crate::supernode::KernelVariant;

/// Geometric diagonal-boost ladder for [`factorize_regularized`].
///
/// Rung `k` (0-based) shifts the diagonal by
/// `initial_relative · growthᵏ · scale`, where `scale` is the mean
/// absolute diagonal of the input (1.0 for an all-zero diagonal). The
/// defaults start ten orders of magnitude below the diagonal scale and
/// climb fast: eight rungs reach `10⁶ · scale`, far past the point where
/// any SDD-like matrix factors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoostSchedule {
    /// First shift, relative to the diagonal scale (default `1e-10`).
    pub initial_relative: f64,
    /// Geometric growth factor between rungs (default `100.0`).
    pub growth: f64,
    /// Number of boosted retries after the unshifted attempt (default 8).
    pub max_boosts: usize,
}

impl Default for BoostSchedule {
    fn default() -> Self {
        BoostSchedule { initial_relative: 1e-10, growth: 100.0, max_boosts: 8 }
    }
}

impl BoostSchedule {
    /// Validates the ladder parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidValue`] when the initial shift is not
    /// finite and positive, the growth factor is not finite and > 1, or
    /// the ladder has no rungs.
    pub fn validate(&self) -> Result<(), SparseError> {
        if !self.initial_relative.is_finite() || self.initial_relative <= 0.0 {
            return Err(SparseError::InvalidValue {
                what: format!(
                    "boost initial_relative {} must be finite and > 0",
                    self.initial_relative
                ),
            });
        }
        if !self.growth.is_finite() || self.growth <= 1.0 {
            return Err(SparseError::InvalidValue {
                what: format!("boost growth {} must be finite and > 1", self.growth),
            });
        }
        if self.max_boosts == 0 {
            return Err(SparseError::InvalidValue {
                what: "boost max_boosts must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// The absolute shift applied at rung `attempt` (0-based) for a
    /// matrix with diagonal scale `scale`.
    pub fn shift_at(&self, attempt: usize, scale: f64) -> f64 {
        self.initial_relative * self.growth.powi(attempt as i32) * scale
    }
}

/// A Cholesky factorization that may have required a diagonal boost,
/// carrying the applied shift so no perturbation goes unreported.
#[derive(Debug, Clone)]
pub struct RegularizedFactor {
    /// The successful factorization (of `A + applied_shift · I`).
    pub factor: CholeskyFactor,
    /// Diagonal shift that was added before the successful attempt
    /// (`0.0` when the matrix factored as given).
    pub applied_shift: f64,
    /// Total factorization attempts, counting the unshifted one (`1`
    /// means no boost was needed).
    pub attempts: usize,
}

impl RegularizedFactor {
    /// `true` when the matrix factored without any boost.
    pub fn is_unboosted(&self) -> bool {
        self.applied_shift == 0.0
    }

    /// Unwraps the factorization.
    pub fn into_factor(self) -> CholeskyFactor {
        self.factor
    }
}

/// Scans every stored entry for NaN or infinite values — the cheap input
/// hygiene check run before factorizations and robust solves, `O(nnz)`
/// with no allocation.
///
/// # Errors
///
/// Returns [`SparseError::NonFiniteValue`] locating the first offending
/// entry in column-major order.
pub fn scan_non_finite(a: &CscMatrix) -> Result<(), SparseError> {
    for (row, col, v) in a.iter() {
        if !v.is_finite() {
            return Err(SparseError::NonFiniteValue { row, col });
        }
    }
    Ok(())
}

/// Mean absolute diagonal — the natural scale for relative shifts.
fn diagonal_scale(a: &CscMatrix) -> f64 {
    let d = a.diagonal();
    if d.is_empty() {
        return 1.0;
    }
    let mean = d.iter().map(|v| v.abs()).sum::<f64>() / d.len() as f64;
    if mean.is_finite() && mean > 0.0 {
        mean
    } else {
        1.0
    }
}

/// [`factorize_regularized_threads`] on the serial numeric kernel.
///
/// # Example
///
/// An unshifted graph Laplacian is singular — a plain factorization
/// fails, while the regularized one recovers with a tiny reported shift:
///
/// ```
/// use tracered_sparse::order::Ordering;
/// use tracered_sparse::regularize::{factorize_regularized, BoostSchedule};
/// use tracered_sparse::{CholeskyFactor, CooMatrix};
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// // Path-graph Laplacian: positive *semi*-definite, singular.
/// let mut coo = CooMatrix::new(3, 3);
/// coo.push(0, 0, 1.0)?;
/// coo.push(1, 1, 2.0)?;
/// coo.push(2, 2, 1.0)?;
/// coo.push_symmetric(0, 1, -1.0)?;
/// coo.push_symmetric(1, 2, -1.0)?;
/// let l = coo.to_csc();
///
/// assert!(CholeskyFactor::factorize(&l, Ordering::Natural).is_err());
/// let rf = factorize_regularized(&l, Ordering::Natural, &BoostSchedule::default())?;
/// assert!(rf.applied_shift > 0.0, "recovery must report its shift");
/// assert!(rf.attempts >= 2);
/// // The boosted factor solves the regularized system accurately.
/// let x = rf.factor.solve(&[1.0, 0.0, -1.0]);
/// assert!(x.iter().all(|v| v.is_finite()));
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// Same conditions as [`factorize_regularized_threads`].
pub fn factorize_regularized(
    a: &CscMatrix,
    ordering: Ordering,
    schedule: &BoostSchedule,
) -> Result<RegularizedFactor, SparseError> {
    factorize_regularized_threads(a, ordering, 1, schedule)
}

/// Factorizes `a`, retrying with a geometric diagonal-boost ladder on
/// pivot failure; the numeric phase runs on up to `threads` pool workers
/// ([`CholeskyFactor::factorize_threads`]).
///
/// The fill-reducing permutation is computed once (the boost never
/// changes the sparsity pattern) and reused across attempts. Because each
/// attempt factors an explicitly boosted copy of the input, the result is
/// bit-identical across thread counts, exactly like the underlying
/// kernels.
///
/// # Errors
///
/// - [`SparseError::NonFiniteValue`] if the input scan finds NaN/Inf;
/// - [`SparseError::InvalidValue`] for an invalid [`BoostSchedule`];
/// - [`SparseError::NotPositiveDefinite`] when even the top rung of the
///   ladder fails (the last pivot failure is reported);
/// - any structural error of the underlying factorization
///   ([`SparseError::NotSquare`] etc.).
pub fn factorize_regularized_threads(
    a: &CscMatrix,
    ordering: Ordering,
    threads: usize,
    schedule: &BoostSchedule,
) -> Result<RegularizedFactor, SparseError> {
    factorize_regularized_kernel(a, ordering, KernelVariant::Scalar, threads, schedule)
}

/// [`factorize_regularized_threads`] with an explicit numeric kernel
/// choice ([`CholeskyFactor::factorize_kernel`]): every rung of the boost
/// ladder factors with the same `kernel`, so the escalation chain keeps
/// the caller's configured variant end to end.
///
/// # Errors
///
/// Same conditions as [`factorize_regularized_threads`].
pub fn factorize_regularized_kernel(
    a: &CscMatrix,
    ordering: Ordering,
    kernel: KernelVariant,
    threads: usize,
    schedule: &BoostSchedule,
) -> Result<RegularizedFactor, SparseError> {
    schedule.validate()?;
    scan_non_finite(a)?;
    let perm = ordering.compute(a)?;
    let mut last =
        match CholeskyFactor::factorize_with_perm_kernel(a, perm.clone(), kernel, threads) {
            Ok(factor) => {
                return Ok(RegularizedFactor { factor, applied_shift: 0.0, attempts: 1 });
            }
            Err(e @ SparseError::NotPositiveDefinite { .. }) => e,
            Err(e) => return Err(e),
        };
    let scale = diagonal_scale(a);
    let n = a.ncols();
    for attempt in 0..schedule.max_boosts {
        let shift = schedule.shift_at(attempt, scale);
        let boosted = a.add_diagonal(&vec![shift; n])?;
        match CholeskyFactor::factorize_with_perm_kernel(&boosted, perm.clone(), kernel, threads) {
            Ok(factor) => {
                return Ok(RegularizedFactor {
                    factor,
                    applied_shift: shift,
                    attempts: attempt + 2,
                });
            }
            Err(e @ SparseError::NotPositiveDefinite { .. }) => last = e,
            Err(e) => return Err(e),
        }
    }
    Err(last)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn spd() -> CscMatrix {
        let mut coo = CooMatrix::new(4, 4);
        for i in 0..4 {
            coo.push(i, i, 3.0).unwrap();
        }
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.push_symmetric(1, 2, -1.0).unwrap();
        coo.push_symmetric(2, 3, -1.0).unwrap();
        coo.to_csc()
    }

    fn singular_laplacian() -> CscMatrix {
        let mut coo = CooMatrix::new(4, 4);
        let deg = [1.0, 2.0, 2.0, 1.0];
        for i in 0..4 {
            coo.push(i, i, deg[i]).unwrap();
        }
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.push_symmetric(1, 2, -1.0).unwrap();
        coo.push_symmetric(2, 3, -1.0).unwrap();
        coo.to_csc()
    }

    #[test]
    fn spd_input_takes_one_attempt_and_no_shift() {
        let a = spd();
        let rf = factorize_regularized(&a, Ordering::MinDegree, &BoostSchedule::default()).unwrap();
        assert!(rf.is_unboosted());
        assert_eq!(rf.attempts, 1);
        let x = rf.factor.solve(&[1.0, 2.0, 3.0, 4.0]);
        assert!(a.residual_inf_norm(&x, &[1.0, 2.0, 3.0, 4.0]) < 1e-12);
    }

    #[test]
    fn singular_input_recovers_with_reported_shift() {
        let l = singular_laplacian();
        assert!(matches!(
            CholeskyFactor::factorize(&l, Ordering::Natural),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
        let rf = factorize_regularized(&l, Ordering::Natural, &BoostSchedule::default()).unwrap();
        assert!(rf.applied_shift > 0.0);
        assert!(!rf.is_unboosted());
        assert!(rf.attempts >= 2);
        // The shift is part of the input: the factor solves L + σI exactly.
        let boosted = l.add_diagonal(&[rf.applied_shift; 4]).unwrap();
        let x = rf.factor.solve(&[1.0, -1.0, 1.0, -1.0]);
        assert!(boosted.residual_inf_norm(&x, &[1.0, -1.0, 1.0, -1.0]) < 1e-9);
    }

    #[test]
    fn boosted_factor_is_bit_identical_across_thread_counts() {
        let l = singular_laplacian();
        let serial =
            factorize_regularized_threads(&l, Ordering::MinDegree, 1, &BoostSchedule::default())
                .unwrap();
        for threads in [2usize, 4] {
            let par = factorize_regularized_threads(
                &l,
                Ordering::MinDegree,
                threads,
                &BoostSchedule::default(),
            )
            .unwrap();
            assert_eq!(par.applied_shift, serial.applied_shift);
            assert_eq!(par.attempts, serial.attempts);
            assert_eq!(par.factor.l().values(), serial.factor.l().values());
        }
    }

    #[test]
    fn non_finite_entries_are_typed_errors() {
        let mut a = spd();
        a.values_mut()[2] = f64::NAN;
        assert!(matches!(scan_non_finite(&a), Err(SparseError::NonFiniteValue { .. })));
        let err = factorize_regularized(&a, Ordering::Natural, &BoostSchedule::default())
            .expect_err("NaN input must not factor");
        assert!(matches!(err, SparseError::NonFiniteValue { .. }));
        let mut b = spd();
        *b.values_mut().last_mut().unwrap() = f64::INFINITY;
        assert!(matches!(scan_non_finite(&b), Err(SparseError::NonFiniteValue { .. })));
        assert!(scan_non_finite(&spd()).is_ok());
    }

    #[test]
    fn hopeless_matrix_reports_last_pivot_failure() {
        // -I is indefinite at any positive shift the default ladder
        // reaches relative to its unit diagonal scale... unless the ladder
        // climbs past 1.0. Pin a short ladder so it genuinely fails.
        let mut coo = CooMatrix::new(3, 3);
        for i in 0..3 {
            coo.push(i, i, -1.0).unwrap();
        }
        let a = coo.to_csc();
        let short = BoostSchedule { initial_relative: 1e-10, growth: 10.0, max_boosts: 3 };
        let err = factorize_regularized(&a, Ordering::Natural, &short)
            .expect_err("short ladder cannot rescue -I");
        assert!(matches!(err, SparseError::NotPositiveDefinite { .. }));
        // A ladder that climbs past |diag| does rescue it.
        let tall = BoostSchedule { initial_relative: 1e-2, growth: 100.0, max_boosts: 4 };
        let rf = factorize_regularized(&a, Ordering::Natural, &tall).unwrap();
        assert!(rf.applied_shift > 1.0);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let a = spd();
        for bad in [
            BoostSchedule { initial_relative: 0.0, ..Default::default() },
            BoostSchedule { initial_relative: f64::NAN, ..Default::default() },
            BoostSchedule { growth: 1.0, ..Default::default() },
            BoostSchedule { growth: f64::INFINITY, ..Default::default() },
            BoostSchedule { max_boosts: 0, ..Default::default() },
        ] {
            assert!(matches!(
                factorize_regularized(&a, Ordering::Natural, &bad),
                Err(SparseError::InvalidValue { .. })
            ));
        }
    }

    #[test]
    fn shift_ladder_is_geometric() {
        let s = BoostSchedule::default();
        let scale = 2.0;
        assert!((s.shift_at(1, scale) / s.shift_at(0, scale) - s.growth).abs() < 1e-9);
        assert!((s.shift_at(3, scale) / s.shift_at(2, scale) - s.growth).abs() < 1e-9);
    }
}
