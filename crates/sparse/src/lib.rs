//! Sparse linear-algebra substrate for the `tracered` workspace.
//!
//! This crate implements, from scratch, everything the trace-reduction
//! sparsifier of Liu & Yu (DAC 2022) needs from a sparse direct solver:
//!
//! - triplet ([`CooMatrix`]), compressed-column ([`CscMatrix`]) and
//!   compressed-row ([`CsrMatrix`]) storage with conversions;
//! - fill-reducing orderings (reverse Cuthill–McKee and minimum degree) in
//!   [`order`];
//! - an elimination-tree based symbolic analysis ([`etree`]) and an
//!   up-looking numeric sparse Cholesky factorization ([`chol`]) in the
//!   style of CSparse/CHOLMOD, with a level-set-scheduled parallel
//!   numeric path ([`CholeskyFactor::factorize_threads`]) that factors
//!   independent elimination-tree subtrees concurrently and is
//!   bit-identical to the serial kernel at every thread count;
//! - sparse triangular solves and a convenience SDD solver;
//! - CHOLMOD-style sparse rank-1 update/downdate of a factor in place
//!   ([`update`]), with elimination-tree pattern growth, typed
//!   loss-of-positive-definiteness errors, and a bit-exact undo journal
//!   for apply/revert sweeps (contingency screening);
//! - the paper's **Algorithm 1**: a structure-aware sparse approximate
//!   inverse of the Cholesky factor ([`spai`]);
//! - a small dense-matrix module ([`dense`]) used as a test oracle;
//! - a column-major multi-vector ([`multivec`]) with blocked multi-RHS
//!   kernels: batched triangular solves ([`CholeskyFactor::solve_multi`])
//!   and symmetric SpMM ([`CscMatrix::mul_multi`],
//!   [`CscMatrix::sym_mul_multi_into_threads`]) that stream the sparse
//!   operand once per batch.
//!
//! # Example
//!
//! ```
//! use tracered_sparse::{CooMatrix, CholeskyFactor, order::Ordering};
//!
//! # fn main() -> Result<(), tracered_sparse::SparseError> {
//! // A tiny SPD matrix (a shifted path-graph Laplacian).
//! let mut coo = CooMatrix::new(3, 3);
//! coo.push(0, 0, 2.0)?; coo.push(1, 1, 3.0)?; coo.push(2, 2, 2.0)?;
//! coo.push(0, 1, -1.0)?; coo.push(1, 0, -1.0)?;
//! coo.push(1, 2, -1.0)?; coo.push(2, 1, -1.0)?;
//! let a = coo.to_csc();
//!
//! let factor = CholeskyFactor::factorize(&a, Ordering::MinDegree)?;
//! let x = factor.solve(&[1.0, 2.0, 3.0]);
//! let r = a.residual_inf_norm(&x, &[1.0, 2.0, 3.0]);
//! assert!(r < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Numeric kernels walk several parallel arrays (colptr/rowidx/values) by
// position; index loops are the clearer idiom there.
#![allow(clippy::needless_range_loop)]

pub mod chol;
pub mod coo;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod error;
pub mod etree;
pub mod ichol;
pub mod multivec;
pub mod order;
pub mod perm;
pub mod regularize;
pub mod spai;
pub mod sparsevec;
pub mod supernode;
pub mod update;

pub use chol::CholeskyFactor;
pub use coo::CooMatrix;
pub use csc::{par_axpy, par_dot, par_xpby, CscMatrix};
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use multivec::MultiVec;
pub use perm::Permutation;
pub use regularize::{
    factorize_regularized, factorize_regularized_kernel, factorize_regularized_threads,
    scan_non_finite, BoostSchedule, RegularizedFactor,
};
pub use spai::{ApproxInverse, SpaiOptions};
pub use supernode::{KernelVariant, SupernodePartition};
pub use update::UpdateReport;

// Shared-handle audit: the service layer hands `Arc`'d matrices and
// factors to concurrent request handlers, so the core storage types must
// stay `Send + Sync`. A field of interior mutability or a raw pointer
// added later breaks the build here, not in production.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CscMatrix>();
    assert_send_sync::<CholeskyFactor>();
    assert_send_sync::<MultiVec>();
    assert_send_sync::<BoostSchedule>();
};
