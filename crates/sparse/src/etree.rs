//! Elimination trees and row-subtree traversal (the symbolic backbone of
//! sparse Cholesky), in the style of CSparse.

use crate::csc::CscMatrix;

/// Sentinel meaning "no parent" (tree root).
pub const NO_PARENT: usize = usize::MAX;

/// Computes the elimination tree of a symmetric matrix given its **upper
/// triangle** in CSC form.
///
/// Returns the parent array: `parent[i]` is the parent of node `i`, or
/// [`NO_PARENT`] for roots. Uses Liu's algorithm with path compression.
///
/// # Panics
///
/// Panics if the matrix is rectangular.
pub fn elimination_tree(upper: &CscMatrix) -> Vec<usize> {
    assert_eq!(upper.nrows(), upper.ncols(), "matrix must be square");
    let n = upper.ncols();
    let mut parent = vec![NO_PARENT; n];
    let mut ancestor = vec![NO_PARENT; n];
    for k in 0..n {
        let (rows, _) = upper.col(k);
        for &entry_row in rows {
            let mut i = entry_row;
            // Traverse from i up to the root of its current subtree, path
            // compressing the ancestor pointers to k.
            while i != NO_PARENT && i < k {
                let inext = ancestor[i];
                ancestor[i] = k;
                if inext == NO_PARENT {
                    parent[i] = k;
                }
                i = inext;
            }
        }
    }
    parent
}

/// Depth-first postordering of a forest given by a parent array.
///
/// Returns a permutation vector `post` such that `post[k]` is the node
/// visited `k`-th in postorder. Children of each node are visited in
/// increasing node order.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (head/next linked lists, children pushed in reverse
    // so they pop in increasing order).
    let mut head = vec![NO_PARENT; n];
    let mut next = vec![NO_PARENT; n];
    for i in (0..n).rev() {
        let p = parent[i];
        if p != NO_PARENT {
            next[i] = head[p];
            head[p] = i;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != NO_PARENT {
            continue;
        }
        stack.push(root);
        while let Some(&node) = stack.last() {
            let child = head[node];
            if child == NO_PARENT {
                // All children done; emit node.
                stack.pop();
                post.push(node);
            } else {
                head[node] = next[child];
                stack.push(child);
            }
        }
    }
    post
}

/// Computes the pattern of row `k` of the Cholesky factor `L` (the "ereach"
/// of node `k`): the set of columns `j < k` with `L(k, j) ≠ 0`.
///
/// `upper` is the upper triangle of the (permuted) matrix, `parent` its
/// elimination tree. The pattern is written into `stack[top..n]` in
/// topological order (suitable for the up-looking numeric step) and `top`
/// is returned. `wmark` is a scratch array of length `n` whose entries must
/// never equal `k`'s marker before the call; marking uses the value `k`
/// itself, so a fresh array of `usize::MAX` works for all `k`.
pub fn ereach(
    upper: &CscMatrix,
    k: usize,
    parent: &[usize],
    stack: &mut [usize],
    wmark: &mut [usize],
) -> usize {
    let n = upper.ncols();
    let mut top = n;
    wmark[k] = k; // mark k itself
    let (rows, _) = upper.col(k);
    for &row in rows {
        if row > k {
            continue; // use upper triangle only
        }
        let mut i = row;
        let mut len = 0;
        // Walk up the etree until hitting a marked node.
        while wmark[i] != k {
            stack[len] = i;
            len += 1;
            wmark[i] = k;
            i = parent[i];
            debug_assert!(i != NO_PARENT, "etree path from a column entry must reach k");
        }
        // Push the path (deepest last) onto the output section.
        while len > 0 {
            len -= 1;
            top -= 1;
            stack[top] = stack[len];
        }
    }
    top
}

/// Number of nonzeros per column of `L` (including the diagonal), computed
/// by sweeping [`ereach`] over all rows. `O(nnz(L))` time.
pub fn column_counts(upper: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = upper.ncols();
    let mut counts = vec![1usize; n]; // the diagonal
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    for k in 0..n {
        let top = ereach(upper, k, parent, &mut stack, &mut wmark);
        for &j in &stack[top..n] {
            counts[j] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Arrow matrix: dense last row/column, diagonal otherwise.
    fn arrow(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, n - 1, -1.0).unwrap();
        }
        coo.to_csc()
    }

    /// Tridiagonal matrix.
    fn tridiag(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = tridiag(6).upper_triangle();
        let parent = elimination_tree(&a);
        for i in 0..5 {
            assert_eq!(parent[i], i + 1);
        }
        assert_eq!(parent[5], NO_PARENT);
    }

    #[test]
    fn etree_of_arrow_points_to_last() {
        let a = arrow(5).upper_triangle();
        let parent = elimination_tree(&a);
        for i in 0..4 {
            assert_eq!(parent[i], 4, "node {i}");
        }
        assert_eq!(parent[4], NO_PARENT);
    }

    #[test]
    fn etree_of_diagonal_is_forest_of_roots() {
        let a = CscMatrix::identity(4);
        let parent = elimination_tree(&a.upper_triangle());
        assert!(parent.iter().all(|&p| p == NO_PARENT));
    }

    #[test]
    fn postorder_is_permutation_and_respects_children() {
        let a = tridiag(7).upper_triangle();
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        let mut seen = [false; 7];
        for &v in &post {
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Every node must appear after all of its children.
        let mut position = [0usize; 7];
        for (idx, &v) in post.iter().enumerate() {
            position[v] = idx;
        }
        for i in 0..7 {
            if parent[i] != NO_PARENT {
                assert!(position[i] < position[parent[i]]);
            }
        }
    }

    #[test]
    fn ereach_matches_factor_pattern_for_tridiagonal() {
        let a = tridiag(5).upper_triangle();
        let parent = elimination_tree(&a);
        let mut stack = vec![0usize; 5];
        let mut wmark = vec![usize::MAX; 5];
        // Row k of L for a tridiagonal matrix touches only column k-1.
        for k in 1..5 {
            let top = ereach(&a, k, &parent, &mut stack, &mut wmark);
            assert_eq!(&stack[top..5], &[k - 1], "row {k}");
        }
    }

    #[test]
    fn column_counts_of_arrow() {
        // L of the arrow matrix (dense last row) has 2 entries per column
        // (diagonal + last row), except the last column with 1.
        let a = arrow(6).upper_triangle();
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        for (i, &cnt) in counts.iter().enumerate().take(5) {
            assert_eq!(cnt, 2, "column {i}");
        }
        assert_eq!(counts[5], 1);
    }

    #[test]
    fn column_counts_total_equals_dense_fill_for_tridiag() {
        let a = tridiag(8).upper_triangle();
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        // Tridiagonal L: bidiagonal, 2 per column except last.
        assert_eq!(counts.iter().sum::<usize>(), 2 * 8 - 1);
    }
}
