//! Elimination trees and row-subtree traversal (the symbolic backbone of
//! sparse Cholesky), in the style of CSparse — plus the level-set
//! schedule that drives the parallel numeric factorization.

use crate::csc::CscMatrix;

/// Sentinel meaning "no parent" (tree root).
pub const NO_PARENT: usize = usize::MAX;

/// Computes the elimination tree of a symmetric matrix given its **upper
/// triangle** in CSC form.
///
/// Returns the parent array: `parent[i]` is the parent of node `i`, or
/// [`NO_PARENT`] for roots. Uses Liu's algorithm with path compression.
///
/// # Panics
///
/// Panics if the matrix is rectangular.
pub fn elimination_tree(upper: &CscMatrix) -> Vec<usize> {
    assert_eq!(upper.nrows(), upper.ncols(), "matrix must be square");
    let n = upper.ncols();
    let mut parent = vec![NO_PARENT; n];
    let mut ancestor = vec![NO_PARENT; n];
    for k in 0..n {
        let (rows, _) = upper.col(k);
        for &entry_row in rows {
            let mut i = entry_row;
            // Traverse from i up to the root of its current subtree, path
            // compressing the ancestor pointers to k.
            while i != NO_PARENT && i < k {
                let inext = ancestor[i];
                ancestor[i] = k;
                if inext == NO_PARENT {
                    parent[i] = k;
                }
                i = inext;
            }
        }
    }
    parent
}

/// Depth-first postordering of a forest given by a parent array.
///
/// Returns a permutation vector `post` such that `post[k]` is the node
/// visited `k`-th in postorder. Children of each node are visited in
/// increasing node order.
pub fn postorder(parent: &[usize]) -> Vec<usize> {
    let n = parent.len();
    // Build child lists (head/next linked lists, children pushed in reverse
    // so they pop in increasing order).
    let mut head = vec![NO_PARENT; n];
    let mut next = vec![NO_PARENT; n];
    for i in (0..n).rev() {
        let p = parent[i];
        if p != NO_PARENT {
            next[i] = head[p];
            head[p] = i;
        }
    }
    let mut post = Vec::with_capacity(n);
    let mut stack = Vec::new();
    for root in 0..n {
        if parent[root] != NO_PARENT {
            continue;
        }
        stack.push(root);
        while let Some(&node) = stack.last() {
            let child = head[node];
            if child == NO_PARENT {
                // All children done; emit node.
                stack.pop();
                post.push(node);
            } else {
                head[node] = next[child];
                stack.push(child);
            }
        }
    }
    post
}

/// Computes the pattern of row `k` of the Cholesky factor `L` (the "ereach"
/// of node `k`): the set of columns `j < k` with `L(k, j) ≠ 0`.
///
/// `upper` is the upper triangle of the (permuted) matrix, `parent` its
/// elimination tree. The pattern is written into `stack[top..n]` in
/// topological order (suitable for the up-looking numeric step) and `top`
/// is returned. `wmark` is a scratch array of length `n` whose entries must
/// never equal `k`'s marker before the call; marking uses the value `k`
/// itself, so a fresh array of `usize::MAX` works for all `k`.
pub fn ereach(
    upper: &CscMatrix,
    k: usize,
    parent: &[usize],
    stack: &mut [usize],
    wmark: &mut [usize],
) -> usize {
    let n = upper.ncols();
    let mut top = n;
    wmark[k] = k; // mark k itself
    let (rows, _) = upper.col(k);
    for &row in rows {
        if row > k {
            continue; // use upper triangle only
        }
        let mut i = row;
        let mut len = 0;
        // Walk up the etree until hitting a marked node.
        while wmark[i] != k {
            stack[len] = i;
            len += 1;
            wmark[i] = k;
            i = parent[i];
            debug_assert!(i != NO_PARENT, "etree path from a column entry must reach k");
        }
        // Push the path (deepest last) onto the output section.
        while len > 0 {
            len -= 1;
            top -= 1;
            stack[top] = stack[len];
        }
    }
    top
}

/// Number of nonzeros per column of `L` (including the diagonal), computed
/// by sweeping [`ereach`] over all rows. `O(nnz(L))` time.
pub fn column_counts(upper: &CscMatrix, parent: &[usize]) -> Vec<usize> {
    let n = upper.ncols();
    let mut counts = vec![1usize; n]; // the diagonal
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    for k in 0..n {
        let top = ereach(upper, k, parent, &mut stack, &mut wmark);
        for &j in &stack[top..n] {
            counts[j] += 1;
        }
    }
    counts
}

/// Bottom-up level sets of an elimination forest: level 0 holds the
/// leaves, and every node sits one level above its deepest child, so a
/// node's parent is always in a **strictly later** level.
///
/// Columns whose etree nodes share a level have disjoint row subtrees
/// below the already-finished levels, which makes the level sets the
/// correctness frame of the parallel numeric factorization: any
/// execution that finishes all of a node's descendants before the node
/// itself (subtree tasks, level barriers, …) computes each factor
/// column from exactly the serial kernel's inputs.
///
/// Within each level the columns are listed in increasing order; the
/// sets partition `0..parent.len()`.
///
/// ```
/// use tracered_sparse::{etree, CooMatrix};
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// // Tridiagonal: the etree is the path 0 → 1 → 2, one node per level.
/// let mut coo = CooMatrix::new(3, 3);
/// for i in 0..3 { coo.push(i, i, 2.0)?; }
/// coo.push(0, 1, -1.0)?;
/// coo.push(1, 2, -1.0)?;
/// let parent = etree::elimination_tree(&coo.to_csc());
/// assert_eq!(etree::level_sets(&parent), vec![vec![0], vec![1], vec![2]]);
/// # Ok(())
/// # }
/// ```
pub fn level_sets(parent: &[usize]) -> Vec<Vec<usize>> {
    let n = parent.len();
    let mut level = vec![0usize; n];
    // Parents always have larger indices than their children, so one
    // ascending pass sees every child before its parent.
    for j in 0..n {
        let p = parent[j];
        if p != NO_PARENT {
            level[p] = level[p].max(level[j] + 1);
        }
    }
    let height = level.iter().max().map_or(0, |&h| h + 1);
    let mut sets = vec![Vec::new(); height];
    for (j, &l) in level.iter().enumerate() {
        sets[l].push(j);
    }
    sets
}

/// A parallel factorization schedule over an elimination forest:
/// independent subtree jobs plus a serial tail of top-of-tree columns.
///
/// Built by splitting the forest's heaviest subtrees (by a caller-chosen
/// per-column cost model, e.g. the up-looking flop proxy
/// [`crate::chol::SymbolicCholesky::column_costs`]) until the frontier
/// holds enough comparably-sized pieces for `threads` workers. The split
/// nodes — the dense top levels of the tree, where columns are few and
/// long — become the `serial_tail`; everything below is grouped into
/// `jobs`, each a union of complete subtrees balanced by total cost.
///
/// Invariants (property-tested in `tests/chol_parallel.rs`):
///
/// - `jobs` and `serial_tail` together cover every column exactly once;
/// - each job is closed under etree descendants: a job column's parent
///   is either in the same job or in the serial tail, never in another
///   job — so jobs touch disjoint factor columns and can run
///   concurrently;
/// - every serial-tail column's children outside the tail have all their
///   descendants in jobs, so the tail can run after the jobs finish, in
///   ascending column order, exactly like the serial kernel.
///
/// ```
/// use tracered_sparse::etree::{elimination_tree, EtreeSchedule};
/// use tracered_sparse::CooMatrix;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let n = 64;
/// let mut coo = CooMatrix::new(n, n);
/// for i in 0..n { coo.push(i, i, 2.0)?; }
/// for i in 0..n - 1 { coo.push(i, i + 1, -1.0)?; }
/// let parent = elimination_tree(&coo.to_csc());
/// let sched = EtreeSchedule::build(&parent, &vec![1; n], 4);
/// let covered: usize =
///     sched.jobs().iter().map(Vec::len).sum::<usize>() + sched.serial_tail().len();
/// assert_eq!(covered, n);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EtreeSchedule {
    jobs: Vec<Vec<usize>>,
    serial_tail: Vec<usize>,
    num_levels: usize,
}

impl EtreeSchedule {
    /// Builds a schedule for up to `threads` workers from a parent array
    /// and a per-column cost model (`cost[j]` ~ work attributable to
    /// column `j`; any nonnegative proxy works, zero columns are fine).
    ///
    /// `threads <= 1` produces the degenerate schedule (no jobs, every
    /// column in the serial tail), which callers route to the serial
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics if `cost.len() != parent.len()`.
    pub fn build(parent: &[usize], cost: &[u64], threads: usize) -> Self {
        let n = parent.len();
        assert_eq!(cost.len(), n, "cost model must cover every column");
        // Forest height = number of level sets, computed with the same
        // one-pass child-before-parent recurrence as [`level_sets`]
        // without materializing the per-level column lists.
        let mut level = vec![0usize; n];
        for j in 0..n {
            let p = parent[j];
            if p != NO_PARENT {
                level[p] = level[p].max(level[j] + 1);
            }
        }
        let num_levels = level.iter().max().map_or(0, |&h| h + 1);
        if threads <= 1 || n == 0 {
            return EtreeSchedule { jobs: Vec::new(), serial_tail: (0..n).collect(), num_levels };
        }

        // Subtree costs: children precede parents in index order.
        let mut subtree_cost: Vec<u64> = cost.to_vec();
        for j in 0..n {
            let p = parent[j];
            if p != NO_PARENT {
                subtree_cost[p] = subtree_cost[p].saturating_add(subtree_cost[j]);
            }
        }
        // Child lists (same head/next layout as `postorder`).
        let mut head = vec![NO_PARENT; n];
        let mut next = vec![NO_PARENT; n];
        for i in (0..n).rev() {
            let p = parent[i];
            if p != NO_PARENT {
                next[i] = head[p];
                head[p] = i;
            }
        }

        // Split the heaviest frontier subtrees until the pieces are fine
        // enough: several tasks per worker, none dominating the total.
        let mut frontier: std::collections::BinaryHeap<(u64, usize)> =
            (0..n).filter(|&j| parent[j] == NO_PARENT).map(|r| (subtree_cost[r], r)).collect();
        let total: u64 = frontier.iter().map(|&(c, _)| c).sum();
        let grain = (total / (threads as u64 * 4)).max(1);
        let max_tasks = threads * 8;
        let mut is_serial = vec![false; n];
        let mut atomic: Vec<usize> = Vec::new(); // heavy but childless roots
        while atomic.len() + frontier.len() < max_tasks {
            match frontier.peek() {
                Some(&(c, _)) if c > grain => {}
                _ => break,
            }
            let (_, r) = frontier.pop().expect("peeked entry");
            if head[r] == NO_PARENT {
                // A single expensive column cannot be split further.
                atomic.push(r);
                continue;
            }
            is_serial[r] = true;
            let mut child = head[r];
            while child != NO_PARENT {
                frontier.push((subtree_cost[child], child));
                child = next[child];
            }
        }
        let mut roots: Vec<usize> = atomic;
        roots.extend(frontier.into_iter().map(|(_, r)| r));

        // Label every column with its owning frontier subtree. Parents
        // have larger indices, so a descending pass sees each node's
        // parent first and subtree membership flows downward.
        const SERIAL: usize = usize::MAX;
        let mut task_of = vec![SERIAL; n];
        let mut task_id = vec![SERIAL; n];
        for (t, &r) in roots.iter().enumerate() {
            task_id[r] = t;
        }
        for j in (0..n).rev() {
            if is_serial[j] {
                continue;
            }
            if task_id[j] != SERIAL {
                task_of[j] = task_id[j];
            } else {
                let p = parent[j];
                debug_assert!(p != NO_PARENT, "non-root below no frontier subtree");
                debug_assert!(!is_serial[p], "child of a split node must be a frontier root");
                task_of[j] = task_of[p];
            }
        }

        // Bin the subtree tasks into at most 2·threads jobs, heaviest
        // first onto the currently lightest bin (LPT), so one O(n)
        // scratch allocation per job amortizes over many subtrees.
        let num_tasks = roots.len();
        let mut task_cost = vec![0u64; num_tasks];
        for j in 0..n {
            if task_of[j] != SERIAL {
                task_cost[task_of[j]] = task_cost[task_of[j]].saturating_add(cost[j]);
            }
        }
        let num_jobs = num_tasks.min(threads * 2).max(1);
        let mut order: Vec<usize> = (0..num_tasks).collect();
        order.sort_by(|&a, &b| {
            task_cost[b].cmp(&task_cost[a]).then_with(|| roots[a].cmp(&roots[b]))
        });
        let mut bin_of_task = vec![0usize; num_tasks];
        let mut bin_load = vec![0u64; num_jobs];
        for &t in &order {
            let bin = (0..num_jobs).min_by_key(|&b| (bin_load[b], b)).expect("at least one bin");
            bin_of_task[t] = bin;
            bin_load[bin] = bin_load[bin].saturating_add(task_cost[t]);
        }

        let mut jobs = vec![Vec::new(); num_jobs];
        let mut serial_tail = Vec::new();
        for j in 0..n {
            if task_of[j] == SERIAL {
                serial_tail.push(j);
            } else {
                jobs[bin_of_task[task_of[j]]].push(j);
            }
        }
        jobs.retain(|cols| !cols.is_empty());
        EtreeSchedule { jobs, serial_tail, num_levels }
    }

    /// The concurrent jobs: disjoint unions of complete etree subtrees,
    /// each listed in ascending column order.
    pub fn jobs(&self) -> &[Vec<usize>] {
        &self.jobs
    }

    /// Top-of-tree columns factored serially after the jobs, ascending.
    pub fn serial_tail(&self) -> &[usize] {
        &self.serial_tail
    }

    /// Height of the elimination forest (number of [`level_sets`]).
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }

    /// Columns covered by concurrent jobs (the rest are in the tail).
    pub fn parallel_columns(&self) -> usize {
        self.jobs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    /// Arrow matrix: dense last row/column, diagonal otherwise.
    fn arrow(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, n - 1, -1.0).unwrap();
        }
        coo.to_csc()
    }

    /// Tridiagonal matrix.
    fn tridiag(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn etree_of_tridiagonal_is_a_path() {
        let a = tridiag(6).upper_triangle();
        let parent = elimination_tree(&a);
        for i in 0..5 {
            assert_eq!(parent[i], i + 1);
        }
        assert_eq!(parent[5], NO_PARENT);
    }

    #[test]
    fn etree_of_arrow_points_to_last() {
        let a = arrow(5).upper_triangle();
        let parent = elimination_tree(&a);
        for i in 0..4 {
            assert_eq!(parent[i], 4, "node {i}");
        }
        assert_eq!(parent[4], NO_PARENT);
    }

    #[test]
    fn etree_of_diagonal_is_forest_of_roots() {
        let a = CscMatrix::identity(4);
        let parent = elimination_tree(&a.upper_triangle());
        assert!(parent.iter().all(|&p| p == NO_PARENT));
    }

    #[test]
    fn postorder_is_permutation_and_respects_children() {
        let a = tridiag(7).upper_triangle();
        let parent = elimination_tree(&a);
        let post = postorder(&parent);
        let mut seen = [false; 7];
        for &v in &post {
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Every node must appear after all of its children.
        let mut position = [0usize; 7];
        for (idx, &v) in post.iter().enumerate() {
            position[v] = idx;
        }
        for i in 0..7 {
            if parent[i] != NO_PARENT {
                assert!(position[i] < position[parent[i]]);
            }
        }
    }

    #[test]
    fn ereach_matches_factor_pattern_for_tridiagonal() {
        let a = tridiag(5).upper_triangle();
        let parent = elimination_tree(&a);
        let mut stack = vec![0usize; 5];
        let mut wmark = vec![usize::MAX; 5];
        // Row k of L for a tridiagonal matrix touches only column k-1.
        for k in 1..5 {
            let top = ereach(&a, k, &parent, &mut stack, &mut wmark);
            assert_eq!(&stack[top..5], &[k - 1], "row {k}");
        }
    }

    #[test]
    fn column_counts_of_arrow() {
        // L of the arrow matrix (dense last row) has 2 entries per column
        // (diagonal + last row), except the last column with 1.
        let a = arrow(6).upper_triangle();
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        for (i, &cnt) in counts.iter().enumerate().take(5) {
            assert_eq!(cnt, 2, "column {i}");
        }
        assert_eq!(counts[5], 1);
    }

    #[test]
    fn column_counts_total_equals_dense_fill_for_tridiag() {
        let a = tridiag(8).upper_triangle();
        let parent = elimination_tree(&a);
        let counts = column_counts(&a, &parent);
        // Tridiagonal L: bidiagonal, 2 per column except last.
        assert_eq!(counts.iter().sum::<usize>(), 2 * 8 - 1);
    }

    #[test]
    fn level_sets_of_path_and_forest() {
        // Tridiagonal etree is a path: one node per level.
        let parent = elimination_tree(&tridiag(5).upper_triangle());
        let levels = level_sets(&parent);
        assert_eq!(levels, vec![vec![0], vec![1], vec![2], vec![3], vec![4]]);
        // Diagonal matrix: a forest of roots, all at level 0.
        let parent = elimination_tree(&CscMatrix::identity(4).upper_triangle());
        assert_eq!(level_sets(&parent), vec![vec![0, 1, 2, 3]]);
        // Arrow: all leaves at level 0, the apex alone at level 1.
        let parent = elimination_tree(&arrow(5).upper_triangle());
        assert_eq!(level_sets(&parent), vec![vec![0, 1, 2, 3], vec![4]]);
        assert!(level_sets(&[]).is_empty());
    }

    #[test]
    fn schedule_partitions_columns_and_respects_subtrees() {
        let a = tridiag(100).upper_triangle();
        let parent = elimination_tree(&a);
        let cost = vec![1u64; 100];
        for threads in [1usize, 2, 4] {
            let s = EtreeSchedule::build(&parent, &cost, threads);
            let mut seen = vec![0usize; 100];
            for job in s.jobs() {
                assert!(job.windows(2).all(|w| w[0] < w[1]), "jobs must be ascending");
                for &j in job {
                    seen[j] += 1;
                }
            }
            assert!(s.serial_tail().windows(2).all(|w| w[0] < w[1]));
            for &j in s.serial_tail() {
                seen[j] += 1;
            }
            assert!(seen.iter().all(|&c| c == 1), "every column exactly once");
            assert_eq!(s.num_levels(), 100);
        }
        // Serial schedule degenerates to the tail.
        let s = EtreeSchedule::build(&parent, &cost, 1);
        assert!(s.jobs().is_empty());
        assert_eq!(s.serial_tail().len(), 100);
        assert_eq!(s.parallel_columns(), 0);
        // An arrow's etree is a star: the leaves split across several
        // jobs, the apex lands in the serial tail.
        let parent = elimination_tree(&arrow(64).upper_triangle());
        let s = EtreeSchedule::build(&parent, &[1u64; 64], 4);
        assert!(s.jobs().len() > 1, "star subtrees must split across jobs");
        assert_eq!(s.serial_tail(), &[63]);
    }

    #[test]
    fn schedule_handles_forests_and_empty_input() {
        let parent = elimination_tree(&CscMatrix::identity(16).upper_triangle());
        let s = EtreeSchedule::build(&parent, &[1u64; 16], 4);
        let covered: usize = s.parallel_columns() + s.serial_tail().len();
        assert_eq!(covered, 16);
        let s = EtreeSchedule::build(&[], &[], 4);
        assert!(s.jobs().is_empty() && s.serial_tail().is_empty());
    }
}
