//! Zero-fill incomplete Cholesky factorization, IC(0).
//!
//! A classic preconditioner baseline: factor `A ≈ L Lᵀ` where `L` is
//! restricted to the sparsity pattern of `A`'s lower triangle. For the
//! M-matrices this workspace works with (shifted Laplacians), IC(0)
//! always exists \[Meijerink & van der Vorst 1977\]. It gives the
//! benchmark harness a conventional preconditioner to compare the
//! sparsifier-based ones against: IC(0) applies cheaply but its iteration
//! counts grow with the mesh size, whereas a spectral sparsifier's stay
//! nearly flat.

use crate::csc::CscMatrix;
use crate::error::SparseError;

/// An incomplete Cholesky factor with the pattern of the input's lower
/// triangle.
///
/// # Example
///
/// ```
/// use tracered_sparse::{CooMatrix, ichol::IncompleteCholesky};
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0)?;
/// coo.push(1, 1, 9.0)?;
/// let a = coo.to_csc();
/// let ic = IncompleteCholesky::factorize(&a)?;
/// let mut x = vec![8.0, 18.0];
/// ic.apply_in_place(&mut x);
/// assert_eq!(x, vec![2.0, 2.0]); // exact for diagonal matrices
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncompleteCholesky {
    /// Lower-triangular factor, diagonal first in every column.
    l: CscMatrix,
}

impl IncompleteCholesky {
    /// Computes IC(0) of a symmetric positive definite matrix (only the
    /// lower triangle is read). No fill-reducing permutation is applied —
    /// IC(0) generates no fill by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular input and
    /// [`SparseError::NotPositiveDefinite`] if a restricted pivot becomes
    /// non-positive (cannot happen for M-matrices such as shifted
    /// Laplacians).
    pub fn factorize(a: &CscMatrix) -> Result<Self, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let n = a.ncols();
        let lower = a.lower_triangle();
        let colptr = lower.colptr().to_vec();
        let rowidx = lower.rowidx().to_vec();
        let mut values = lower.values().to_vec();
        for j in 0..n {
            if colptr[j] == colptr[j + 1] || rowidx[colptr[j]] != j {
                return Err(SparseError::InvalidFormat {
                    what: format!("missing diagonal entry in column {j}"),
                });
            }
        }
        // Left-looking IC(0). `next_in_col[k]` walks column k's entries as
        // its contributions are consumed in row order; `head[i]` links the
        // columns whose next un-consumed entry sits in row i. `mark[i] == j`
        // flags rows belonging to column j's pattern, so updates landing
        // outside the pattern are dropped — the IC(0) restriction.
        let mut head = vec![usize::MAX; n];
        let mut next_in_col = vec![0usize; n];
        let mut link = vec![usize::MAX; n];
        let mut mark = vec![usize::MAX; n];
        let mut work = vec![0.0f64; n];
        for j in 0..n {
            // Scatter column j of A's lower triangle and stamp its pattern.
            for p in colptr[j]..colptr[j + 1] {
                work[rowidx[p]] = values[p];
                mark[rowidx[p]] = j;
            }
            // Subtract contributions of every column k < j with L(j,k) ≠ 0.
            let mut k = head[j];
            while k != usize::MAX {
                let knext = link[k];
                let pjk = next_in_col[k];
                let ljk = values[pjk];
                for p in pjk..colptr[k + 1] {
                    let i = rowidx[p];
                    if mark[i] == j {
                        work[i] -= values[p] * ljk;
                    }
                }
                // Advance column k to its next row below j and re-link.
                let pnext = pjk + 1;
                if pnext < colptr[k + 1] {
                    let i = rowidx[pnext];
                    next_in_col[k] = pnext;
                    link[k] = head[i];
                    head[i] = k;
                }
                k = knext;
            }
            // Pivot.
            let d = work[j];
            if d <= 0.0 || !d.is_finite() {
                return Err(SparseError::NotPositiveDefinite { column: j });
            }
            let dj = d.sqrt();
            values[colptr[j]] = dj;
            work[j] = 0.0;
            for p in (colptr[j] + 1)..colptr[j + 1] {
                let i = rowidx[p];
                values[p] = work[i] / dj;
                work[i] = 0.0;
            }
            // Link column j for its first sub-diagonal row.
            if colptr[j] + 1 < colptr[j + 1] {
                let i = rowidx[colptr[j] + 1];
                next_in_col[j] = colptr[j] + 1;
                link[j] = head[i];
                head[i] = j;
            }
        }
        let l = CscMatrix::from_raw_parts(n, n, colptr, rowidx, values)
            .expect("IC(0) preserves the input pattern");
        Ok(IncompleteCholesky { l })
    }

    /// The incomplete factor `L`.
    pub fn l(&self) -> &CscMatrix {
        &self.l
    }

    /// Applies `x ← (L Lᵀ)⁻¹ x` (the preconditioner action).
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the factor dimension.
    pub fn apply_in_place(&self, x: &mut [f64]) {
        crate::chol::lsolve_in_place(&self.l, x);
        crate::chol::ltsolve_in_place(&self.l, x);
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.l.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn grid_sdd(k: usize, shift: f64) -> CscMatrix {
        let n = k * k;
        let mut coo = CooMatrix::new(n, n);
        let id = |r: usize, c: usize| r * k + c;
        let mut deg = vec![shift; n];
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    coo.push_symmetric(id(r, c), id(r, c + 1), -1.0).unwrap();
                    deg[id(r, c)] += 1.0;
                    deg[id(r, c + 1)] += 1.0;
                }
                if r + 1 < k {
                    coo.push_symmetric(id(r, c), id(r + 1, c), -1.0).unwrap();
                    deg[id(r, c)] += 1.0;
                    deg[id(r + 1, c)] += 1.0;
                }
            }
        }
        for (i, &d) in deg.iter().enumerate() {
            coo.push(i, i, d).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn pattern_matches_lower_triangle() {
        let a = grid_sdd(4, 0.5);
        let ic = IncompleteCholesky::factorize(&a).unwrap();
        let lower = a.lower_triangle();
        assert_eq!(ic.l().colptr(), lower.colptr());
        assert_eq!(ic.l().rowidx(), lower.rowidx());
    }

    #[test]
    fn exact_for_tridiagonal() {
        // A tridiagonal SPD matrix factors with zero fill, so IC(0) is the
        // exact Cholesky factor.
        let mut coo = CooMatrix::new(5, 5);
        for i in 0..5 {
            coo.push(i, i, 2.5).unwrap();
        }
        for i in 0..4 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        let a = coo.to_csc();
        let ic = IncompleteCholesky::factorize(&a).unwrap();
        let llt = ic.l().to_dense().matmul(&ic.l().to_dense().transpose());
        let ad = a.to_dense();
        for r in 0..5 {
            for c in 0..5 {
                assert!((llt[(r, c)] - ad[(r, c)]).abs() < 1e-12, "({r},{c})");
            }
        }
    }

    #[test]
    fn residual_is_restricted_to_fill_positions() {
        // L Lᵀ must match A exactly on A's pattern; deviations may appear
        // only at fill positions.
        let a = grid_sdd(4, 0.3);
        let ic = IncompleteCholesky::factorize(&a).unwrap();
        let llt = ic.l().to_dense().matmul(&ic.l().to_dense().transpose());
        for (r, c, v) in a.iter() {
            assert!(
                (llt[(r, c)] - v).abs() < 1e-10,
                "pattern entry ({r},{c}): {} vs {v}",
                llt[(r, c)]
            );
        }
    }

    #[test]
    fn preconditioner_action_reduces_cg_iterations() {
        use crate::chol::CholeskyFactor;
        use crate::order::Ordering;
        let a = grid_sdd(8, 0.05);
        let ic = IncompleteCholesky::factorize(&a).unwrap();
        // Crude check: applying the preconditioner to the residual of the
        // true solution's equation gets closer to the solution than the
        // raw residual does.
        let exact = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let b: Vec<f64> = (0..64).map(|i| ((i % 7) as f64) - 3.0).collect();
        let x_true = exact.solve(&b);
        let mut z = b.clone();
        ic.apply_in_place(&mut z);
        let err_pre: f64 =
            z.iter().zip(x_true.iter()).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        let err_raw: f64 =
            b.iter().zip(x_true.iter()).map(|(a, b)| (a - b).powi(2)).sum::<f64>().sqrt();
        assert!(err_pre < err_raw, "IC(0) must improve on the identity: {err_pre} vs {err_raw}");
    }

    #[test]
    fn rejects_rectangular_and_missing_diagonal() {
        assert!(IncompleteCholesky::factorize(&CscMatrix::zeros(2, 3)).is_err());
        let mut coo = CooMatrix::new(2, 2);
        coo.push(1, 0, -1.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        assert!(matches!(
            IncompleteCholesky::factorize(&coo.to_csc()),
            Err(SparseError::InvalidFormat { .. })
        ));
    }

    #[test]
    fn indefinite_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -2.0).unwrap();
        assert!(matches!(
            IncompleteCholesky::factorize(&coo.to_csc()),
            Err(SparseError::NotPositiveDefinite { column: 1 })
        ));
    }
}
