//! Triplet (coordinate) format, the natural assembly format.

use crate::csc::CscMatrix;
use crate::error::SparseError;

/// A sparse matrix in triplet (coordinate) form.
///
/// Duplicate entries are allowed and are summed when converting to
/// compressed formats, which makes `CooMatrix` the natural target for
/// finite-element-style assembly (e.g. building graph Laplacians edge by
/// edge).
///
/// # Example
///
/// ```
/// use tracered_sparse::CooMatrix;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 1.0)?;
/// coo.push(0, 0, 2.0)?; // duplicates are summed on conversion
/// coo.push(1, 1, 4.0)?;
/// let csc = coo.to_csc();
/// assert_eq!(csc.get(0, 0), 3.0);
/// assert_eq!(csc.nnz(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CooMatrix {
    nrows: usize,
    ncols: usize,
    rows: Vec<usize>,
    cols: Vec<usize>,
    values: Vec<f64>,
}

impl CooMatrix {
    /// Creates an empty `nrows` × `ncols` triplet matrix.
    pub fn new(nrows: usize, ncols: usize) -> Self {
        CooMatrix { nrows, ncols, rows: Vec::new(), cols: Vec::new(), values: Vec::new() }
    }

    /// Creates an empty triplet matrix with room for `cap` entries.
    pub fn with_capacity(nrows: usize, ncols: usize, cap: usize) -> Self {
        CooMatrix {
            nrows,
            ncols,
            rows: Vec::with_capacity(cap),
            cols: Vec::with_capacity(cap),
            values: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries (duplicates counted separately).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Appends the entry `(row, col, value)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if the entry lies outside
    /// the matrix, and [`SparseError::InvalidValue`] if `value` is not
    /// finite.
    pub fn push(&mut self, row: usize, col: usize, value: f64) -> Result<(), SparseError> {
        if row >= self.nrows || col >= self.ncols {
            return Err(SparseError::IndexOutOfBounds {
                row,
                col,
                nrows: self.nrows,
                ncols: self.ncols,
            });
        }
        if !value.is_finite() {
            return Err(SparseError::InvalidValue {
                what: format!("non-finite entry {value} at ({row}, {col})"),
            });
        }
        self.rows.push(row);
        self.cols.push(col);
        self.values.push(value);
        Ok(())
    }

    /// Appends a symmetric pair of off-diagonal entries
    /// `(row, col, value)` and `(col, row, value)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CooMatrix::push`].
    pub fn push_symmetric(
        &mut self,
        row: usize,
        col: usize,
        value: f64,
    ) -> Result<(), SparseError> {
        self.push(row, col, value)?;
        if row != col {
            self.push(col, row, value)?;
        }
        Ok(())
    }

    /// Iterates over the stored triplets.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.rows
            .iter()
            .zip(self.cols.iter())
            .zip(self.values.iter())
            .map(|((&r, &c), &v)| (r, c, v))
    }

    /// Converts to compressed sparse column format, summing duplicates and
    /// dropping exact zeros that result from cancellation.
    pub fn to_csc(&self) -> CscMatrix {
        // Count entries per column.
        let mut colptr = vec![0usize; self.ncols + 1];
        for &c in &self.cols {
            colptr[c + 1] += 1;
        }
        for c in 0..self.ncols {
            colptr[c + 1] += colptr[c];
        }
        // Scatter triplets into column buckets.
        let nnz = self.values.len();
        let mut next = colptr.clone();
        let mut rowidx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        for k in 0..nnz {
            let c = self.cols[k];
            let slot = next[c];
            next[c] += 1;
            rowidx[slot] = self.rows[k];
            values[slot] = self.values[k];
        }
        // Sort each column by row index and merge duplicates.
        let mut out_colptr = vec![0usize; self.ncols + 1];
        let mut out_rowidx = Vec::with_capacity(nnz);
        let mut out_values = Vec::with_capacity(nnz);
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for c in 0..self.ncols {
            scratch.clear();
            for k in colptr[c]..colptr[c + 1] {
                scratch.push((rowidx[k], values[k]));
            }
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < scratch.len() {
                let r = scratch[i].0;
                let mut sum = 0.0;
                while i < scratch.len() && scratch[i].0 == r {
                    sum += scratch[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    out_rowidx.push(r);
                    out_values.push(sum);
                }
            }
            out_colptr[c + 1] = out_rowidx.len();
        }
        CscMatrix::from_raw_parts(self.nrows, self.ncols, out_colptr, out_rowidx, out_values)
            .expect("conversion from a valid CooMatrix always yields a valid CscMatrix")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(coo.push(2, 0, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
        assert!(matches!(coo.push(0, 5, 1.0), Err(SparseError::IndexOutOfBounds { .. })));
    }

    #[test]
    fn push_rejects_non_finite() {
        let mut coo = CooMatrix::new(2, 2);
        assert!(matches!(coo.push(0, 0, f64::NAN), Err(SparseError::InvalidValue { .. })));
        assert!(matches!(coo.push(0, 0, f64::INFINITY), Err(SparseError::InvalidValue { .. })));
    }

    #[test]
    fn duplicates_are_summed() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push(1, 2, 1.5).unwrap();
        coo.push(1, 2, 2.5).unwrap();
        coo.push(0, 0, 1.0).unwrap();
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 2);
        assert_eq!(csc.get(1, 2), 4.0);
    }

    #[test]
    fn cancellation_drops_entries() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(0, 1, -1.0).unwrap();
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 0);
    }

    #[test]
    fn push_symmetric_adds_mirror() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 2, -1.0).unwrap();
        coo.push_symmetric(1, 1, 5.0).unwrap();
        let csc = coo.to_csc();
        assert_eq!(csc.get(0, 2), -1.0);
        assert_eq!(csc.get(2, 0), -1.0);
        assert_eq!(csc.get(1, 1), 5.0);
        assert_eq!(csc.nnz(), 3);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(4, 4);
        let csc = coo.to_csc();
        assert_eq!(csc.nnz(), 0);
        assert_eq!(csc.nrows(), 4);
    }

    #[test]
    fn iter_yields_insertion_order() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 1, 1.0).unwrap();
        coo.push(1, 0, 2.0).unwrap();
        let triplets: Vec<_> = coo.iter().collect();
        assert_eq!(triplets, vec![(0, 1, 1.0), (1, 0, 2.0)]);
    }
}
