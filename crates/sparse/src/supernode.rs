//! Supernodal (blocked) numeric Cholesky kernel.
//!
//! The scalar up-looking kernel in [`crate::chol`] touches the factor one
//! row at a time through indexed gather/scatter loops — fine for very
//! sparse columns, but the dense top-of-tree block that dominates grid
//! Laplacians (BENCH_pr8.json measured the serial tail at 68% of numeric
//! time) pays the full indirection cost on what is effectively dense
//! arithmetic. This module implements the classic supernodal alternative:
//!
//! 1. **Detection** ([`SupernodePartition`]): adjacent factor columns with
//!    identical below-diagonal structure (the *fundamental supernode*
//!    condition `parent[j] == j + 1 && count[j] == count[j + 1] + 1`) are
//!    merged into panels, with *relaxed amalgamation* additionally merging
//!    neighbouring chains when the explicit zeros this introduces stay
//!    under a small budget (`RELAX_MAX_WIDTH`, `RELAX_PAD_DENOM`).
//! 2. **Panels**: each supernode's columns are stored as one dense
//!    column-major block over the union row pattern, so the update and
//!    factor loops are plain strided `f64` loops the compiler can
//!    autovectorize — no BLAS dependency.
//! 3. **Left-looking blocked factorization**: every supernode first
//!    receives the rank-`w` updates of its descendant supernodes (tiled
//!    microkernels accumulating through a scratch block), then runs a
//!    dense in-panel Cholesky.
//!
//! # Determinism contract
//!
//! Within the [`KernelVariant::Supernodal`] variant the factor is
//! **bit-identical at every thread count**: updates are applied in
//! ascending descendant-supernode order from precomputed (and therefore
//! schedule-independent) update lists, so the serial sweep and the
//! [`crate::etree::EtreeSchedule`]-driven parallel path execute literally
//! the same floating-point operations in the same order. Across variants
//! (`Scalar` vs `Supernodal`) the summation order differs, so results are
//! equal only up to rounding — compare with a tolerance, never bitwise.

use crate::chol::SymbolicCholesky;
use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::etree;

/// Which numeric kernel [`crate::CholeskyFactor`]'s `factorize*` entry
/// points run.
///
/// Deliberately **not** `#[non_exhaustive]`: downstream config
/// fingerprints match on this exhaustively so that adding a variant is a
/// compile error at every tag site instead of a silent cache collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum KernelVariant {
    /// The scalar up-looking row kernel — the historical default.
    #[default]
    Scalar,
    /// Supernodal blocked panels with tiled rank-k updates.
    Supernodal,
}

/// Widest panel relaxed amalgamation may produce. Wide panels amortize
/// the per-update scatter better but pad more; 32 columns keeps a panel
/// column comfortably inside L1 for the grids the bench family generates.
const RELAX_MAX_WIDTH: usize = 32;

/// Pad budget denominator: a merge is accepted only while the explicit
/// zeros stay at or below `1/RELAX_PAD_DENOM` of the merged panel's lower
/// trapezoid.
const RELAX_PAD_DENOM: usize = 8;

/// A partition of the factor's columns into supernodes: maximal runs of
/// columns with (near-)identical below-diagonal structure, stored with
/// the union row pattern of each panel.
///
/// Invariants (checked by the `chol_supernodal` property suite):
/// - supernode column ranges are contiguous and cover `0..n` exactly once;
/// - `rows(s)` is strictly ascending and starts with `cols(s)` itself;
/// - every factor column's pattern is a subset of its supernode's rows.
#[derive(Debug, Clone)]
pub struct SupernodePartition {
    /// First column of each supernode (length `num_supernodes + 1`,
    /// terminated by `n`).
    first_col: Vec<usize>,
    /// Supernode index owning each column (length `n`).
    sup_of: Vec<usize>,
    /// Offsets into `rows` (length `num_supernodes + 1`).
    rowptr: Vec<usize>,
    /// Concatenated union row patterns; each supernode's slice is sorted
    /// ascending and begins with the supernode's own columns.
    rows: Vec<usize>,
    /// Explicit-zero cells introduced by relaxed amalgamation, summed
    /// over all panels' lower trapezoids.
    padded: usize,
}

impl SupernodePartition {
    /// Detects the supernode partition for the upper triangle `c` of an
    /// already-permuted matrix with its symbolic analysis.
    pub fn from_symbolic(c: &CscMatrix, symbolic: &SymbolicCholesky) -> Self {
        let structure = factor_structure(c, symbolic);
        Self::from_structure(symbolic, &structure)
    }

    /// Detection from a precomputed factor row-index array (the exact
    /// per-column pattern of `L`, as built by [`factor_structure`]).
    pub(crate) fn from_structure(symbolic: &SymbolicCholesky, lrowidx: &[usize]) -> Self {
        let n = symbolic.n();
        let parent = symbolic.parent();
        let lcolptr = symbolic.lcolptr();
        let counts = symbolic.column_counts();

        // Fundamental supernode heads: column j + 1 extends column j's
        // supernode iff j's first below-diagonal row is j + 1 (etree
        // parent) and the patterns are nested with equal cardinality.
        let mut heads: Vec<usize> = Vec::new();
        if n > 0 {
            heads.push(0);
        }
        for j in 1..n {
            if !(parent[j - 1] == j && counts[j - 1] == counts[j] + 1) {
                heads.push(j);
            }
        }

        let nb = heads.len();
        let mut first_col = Vec::new();
        let mut rowptr = vec![0usize];
        let mut rows_all: Vec<usize> = Vec::new();
        let mut padded = 0usize;

        let mut bi = 0;
        while bi < nb {
            let a = heads[bi];
            let mut e = if bi + 1 < nb { heads[bi + 1] } else { n };
            // A fundamental block's union pattern is its first column's
            // pattern (the later columns are nested suffixes of it).
            let mut union_rows: Vec<usize> = lrowidx[lcolptr[a]..lcolptr[a + 1]].to_vec();
            let mut nnz_sum: usize = (a..e).map(|j| counts[j]).sum();
            let mut bj = bi + 1;
            while bj < nb {
                let c0 = heads[bj];
                let e2 = if bj + 1 < nb { heads[bj + 1] } else { n };
                // Relaxed amalgamation: the chain must continue (so the
                // merged range still forms one etree path) and the merge
                // must respect the width and zero-pad budgets.
                if parent[e - 1] != c0 || e2 - a > RELAX_MAX_WIDTH {
                    break;
                }
                let merged = merge_sorted(&union_rows, &lrowidx[lcolptr[c0]..lcolptr[c0 + 1]]);
                let nnz_new = nnz_sum + (c0..e2).map(|j| counts[j]).sum::<usize>();
                let w = e2 - a;
                let trapezoid = w * merged.len() - w * (w - 1) / 2;
                let pad = trapezoid - nnz_new;
                if pad * RELAX_PAD_DENOM > trapezoid {
                    break;
                }
                union_rows = merged;
                nnz_sum = nnz_new;
                e = e2;
                bj += 1;
            }
            let w = e - a;
            padded += w * union_rows.len() - w * (w - 1) / 2 - nnz_sum;
            first_col.push(a);
            rows_all.extend_from_slice(&union_rows);
            rowptr.push(rows_all.len());
            bi = bj;
        }
        first_col.push(n);

        let mut sup_of = vec![0usize; n];
        for s in 0..first_col.len() - 1 {
            for j in first_col[s]..first_col[s + 1] {
                sup_of[j] = s;
            }
        }
        SupernodePartition { first_col, sup_of, rowptr, rows: rows_all, padded }
    }

    /// Number of supernodes.
    pub fn num_supernodes(&self) -> usize {
        self.first_col.len() - 1
    }

    /// Dimension of the partitioned factor.
    pub fn n(&self) -> usize {
        *self.first_col.last().expect("first_col is never empty")
    }

    /// Column range of supernode `s`.
    pub fn cols(&self, s: usize) -> std::ops::Range<usize> {
        self.first_col[s]..self.first_col[s + 1]
    }

    /// Number of columns in supernode `s`.
    pub fn width(&self, s: usize) -> usize {
        self.first_col[s + 1] - self.first_col[s]
    }

    /// Union row pattern of supernode `s`: ascending, beginning with the
    /// supernode's own columns, then the below-diagonal union.
    pub fn rows(&self, s: usize) -> &[usize] {
        &self.rows[self.rowptr[s]..self.rowptr[s + 1]]
    }

    /// The supernode owning column `col`.
    pub fn supernode_of(&self, col: usize) -> usize {
        self.sup_of[col]
    }

    /// Explicit-zero panel cells introduced by relaxed amalgamation.
    pub fn padded_cells(&self) -> usize {
        self.padded
    }

    /// Mean supernode width (columns per panel).
    pub fn mean_width(&self) -> f64 {
        if self.num_supernodes() == 0 {
            return 0.0;
        }
        self.n() as f64 / self.num_supernodes() as f64
    }

    /// Widest supernode.
    pub fn max_width(&self) -> usize {
        (0..self.num_supernodes()).map(|s| self.width(s)).max().unwrap_or(0)
    }

    /// Tallest panel (longest union row pattern).
    fn max_rows(&self) -> usize {
        (0..self.num_supernodes()).map(|s| self.rowptr[s + 1] - self.rowptr[s]).max().unwrap_or(0)
    }
}

/// Two-pointer merge of sorted, duplicate-free index slices.
fn merge_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Builds the exact row-index array of `L` (the full symbolic pattern,
/// sorted ascending per column with the diagonal first) by replaying the
/// up-looking kernel's `ereach` sweep without arithmetic. `O(nnz(L))`.
pub(crate) fn factor_structure(c: &CscMatrix, symbolic: &SymbolicCholesky) -> Vec<usize> {
    let n = c.ncols();
    let lcolptr = symbolic.lcolptr();
    let mut lrowidx = vec![0usize; symbolic.factor_nnz()];
    let mut next: Vec<usize> = lcolptr.to_vec();
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    for k in 0..n {
        let top = etree::ereach(c, k, symbolic.parent(), &mut stack, &mut wmark);
        for &j in &stack[top..n] {
            lrowidx[next[j]] = k;
            next[j] += 1;
        }
        lrowidx[next[k]] = k;
        next[k] += 1;
    }
    debug_assert!(
        (0..n).all(|j| next[j] == lcolptr[j + 1]),
        "structure sweep must fill the symbolic counts exactly"
    );
    lrowidx
}

/// Per-target update lists: `updates[s]` holds `(d, off)` pairs meaning
/// descendant supernode `d` updates supernode `s`, with `off` the index
/// into `rows(d)` of the first row landing in `cols(s)`.
///
/// The outer loop ascends over `d`, so each `updates[s]` list is sorted
/// ascending by descendant — the canonical application order the
/// determinism contract fixes. The lists depend only on the partition
/// (never on the schedule), so every thread count applies identical
/// updates in identical order.
fn build_updates(part: &SupernodePartition) -> Vec<Vec<(usize, usize)>> {
    let nsup = part.num_supernodes();
    let mut updates: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nsup];
    for d in 0..nsup {
        let rows = part.rows(d);
        let w = part.width(d);
        let mut i = w;
        while i < rows.len() {
            let s = part.sup_of[rows[i]];
            updates[s].push((d, i));
            let end = part.first_col[s + 1];
            while i < rows.len() && rows[i] < end {
                i += 1;
            }
        }
    }
    updates
}

/// Read access to completed descendant panels — indexed globally by the
/// serial sweep and the tail, and through a job-local sorted list inside
/// subtree jobs.
trait PanelLookup {
    /// The completed dense panel of supernode `s`.
    fn panel(&self, s: usize) -> &[f64];
}

impl PanelLookup for [Vec<f64>] {
    fn panel(&self, s: usize) -> &[f64] {
        &self[s]
    }
}

impl PanelLookup for [(usize, &mut Vec<f64>)] {
    fn panel(&self, s: usize) -> &[f64] {
        let i = self
            .binary_search_by_key(&s, |e| e.0)
            .expect("descendant supernode panels stay within the owning subtree job");
        self[i].1.as_slice()
    }
}

/// Factors one supernode panel left-looking: scatter of the lower
/// triangle of `A`, descendant rank-k updates in ascending-descendant
/// order through the `wbuf` scratch block, then a dense in-panel
/// Cholesky. Columns with global index `>= limit` are skipped (the
/// parallel tail uses this to stop at an earlier job failure exactly
/// where the serial sweep would have stopped).
///
/// Returns the global index of the first failing pivot column, if any.
/// `relmap` must be `usize::MAX`-filled on entry and is restored on exit.
#[allow(clippy::too_many_arguments)]
fn factor_supernode_into<L: PanelLookup + ?Sized>(
    s: usize,
    lower: &CscMatrix,
    part: &SupernodePartition,
    updates: &[(usize, usize)],
    deps: &L,
    panel: &mut Vec<f64>,
    relmap: &mut [usize],
    wbuf: &mut [f64],
    limit: usize,
) -> Option<usize> {
    let s1 = part.first_col[s];
    let s2 = part.first_col[s + 1];
    let w = s2 - s1;
    let rows = part.rows(s);
    let r = rows.len();
    panel.clear();
    panel.resize(r * w, 0.0);
    for (i, &row) in rows.iter().enumerate() {
        relmap[row] = i;
    }

    // Scatter the lower-triangle columns of A. Every stored entry of A
    // is in L's pattern, so the row map always hits.
    for (jc, jj) in (s1..s2).enumerate() {
        let (ri, rv) = lower.col(jj);
        let base = jc * r;
        for (&i, &v) in ri.iter().zip(rv.iter()) {
            debug_assert!(relmap[i] != usize::MAX, "A's pattern must be inside L's");
            panel[base + relmap[i]] = v;
        }
    }

    // Descendant updates, ascending by descendant supernode index.
    for &(d, off) in updates {
        let drows = part.rows(d);
        let dw = part.width(d);
        let rd = drows.len();
        let dpanel = deps.panel(d);
        debug_assert_eq!(dpanel.len(), rd * dw, "descendant panel must be complete");
        let r2 = rd - off;
        // Rows of d that land inside this supernode's column range
        // become update target columns.
        let mut r1 = 0;
        while r1 < r2 && drows[off + r1] < s2 {
            r1 += 1;
        }

        // Fused path: when the descendant's landing rows occupy one
        // consecutive run of this panel's row pattern (always true in
        // the dense top-of-tree region the serial tail factors), the
        // rank-k update subtracts straight into the panel columns —
        // no scratch `W`, no scatter pass. Whether an update takes
        // this path depends only on the partition, never on the
        // schedule, so the bit-identity contract across thread counts
        // is untouched.
        let t0 = relmap[drows[off]];
        let contiguous = t0 != usize::MAX && (0..r2).all(|i| relmap[drows[off + i]] == t0 + i);
        if contiguous {
            let mut j = 0;
            while j + 2 <= r1 {
                // The panel's rows begin with its own columns, so in the
                // contiguous case target columns are adjacent: t0 + j
                // and t0 + j + 1.
                let tc = drows[off + j] - s1;
                let (pa, pb) = panel[tc * r..(tc + 2) * r].split_at_mut(r);
                let col0 = &mut pa[t0 + j..t0 + r2];
                let col1 = &mut pb[t0 + j + 1..t0 + r2];
                let mut k = 0;
                while k + 4 <= dw {
                    let c0 = &dpanel[k * rd + off..(k + 1) * rd];
                    let c1 = &dpanel[(k + 1) * rd + off..(k + 2) * rd];
                    let c2 = &dpanel[(k + 2) * rd + off..(k + 3) * rd];
                    let c3 = &dpanel[(k + 3) * rd + off..(k + 4) * rd];
                    let (a0, a1, a2, a3) = (c0[j], c1[j], c2[j], c3[j]);
                    let (b0, b1, b2, b3) = (c0[j + 1], c1[j + 1], c2[j + 1], c3[j + 1]);
                    col0[0] -= a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3;
                    let (d0, d1, d2, d3) = (&c0[j + 1..], &c1[j + 1..], &c2[j + 1..], &c3[j + 1..]);
                    for t in 0..col1.len() {
                        let (x0, x1, x2, x3) = (d0[t], d1[t], d2[t], d3[t]);
                        col0[t + 1] -= x0 * a0 + x1 * a1 + x2 * a2 + x3 * a3;
                        col1[t] -= x0 * b0 + x1 * b1 + x2 * b2 + x3 * b3;
                    }
                    k += 4;
                }
                while k < dw {
                    let c0 = &dpanel[k * rd + off..(k + 1) * rd];
                    let a0 = c0[j];
                    let b0 = c0[j + 1];
                    col0[0] -= a0 * a0;
                    let d0 = &c0[j + 1..];
                    for t in 0..col1.len() {
                        col0[t + 1] -= d0[t] * a0;
                        col1[t] -= d0[t] * b0;
                    }
                    k += 1;
                }
                j += 2;
            }
            if j < r1 {
                let tc = drows[off + j] - s1;
                let col = &mut panel[tc * r + t0 + j..tc * r + t0 + r2];
                let mut k = 0;
                while k + 4 <= dw {
                    let c0 = &dpanel[k * rd + off + j..k * rd + rd];
                    let c1 = &dpanel[(k + 1) * rd + off + j..(k + 1) * rd + rd];
                    let c2 = &dpanel[(k + 2) * rd + off + j..(k + 2) * rd + rd];
                    let c3 = &dpanel[(k + 3) * rd + off + j..(k + 3) * rd + rd];
                    let (b0, b1, b2, b3) = (c0[0], c1[0], c2[0], c3[0]);
                    for (i, x) in col.iter_mut().enumerate() {
                        *x -= c0[i] * b0 + c1[i] * b1 + c2[i] * b2 + c3[i] * b3;
                    }
                    k += 4;
                }
                while k < dw {
                    let c0 = &dpanel[k * rd + off + j..k * rd + rd];
                    let b0 = c0[0];
                    for (i, x) in col.iter_mut().enumerate() {
                        *x -= c0[i] * b0;
                    }
                    k += 1;
                }
            }
            continue;
        }

        // W[j*r2 + i] = sum_k Ld[off+i, k] * Ld[off+j, k] for the lower
        // trapezoid i >= j: a rank-dw outer-product accumulation, tiled
        // 2 (target columns) × 4 (descendant columns) so every loaded
        // panel element feeds two accumulators — on the tall dense panels
        // at the top of the tree this kernel is memory-bound, and the
        // pairing halves the stream traffic. The inner loops are plain
        // fused multiply-add streams the compiler autovectorizes.
        let mut j = 0;
        while j + 2 <= r1 {
            // Two adjacent W columns; wbuf is r2-strided, so the pair's
            // live parts (rows j.. and j+1..) never overlap.
            let (wa, wb) = wbuf[j * r2..(j + 2) * r2].split_at_mut(r2);
            let wcol0 = &mut wa[j..];
            let wcol1 = &mut wb[j + 1..];
            wcol0.fill(0.0);
            wcol1.fill(0.0);
            let mut k = 0;
            while k + 4 <= dw {
                let c0 = &dpanel[k * rd + off..(k + 1) * rd];
                let c1 = &dpanel[(k + 1) * rd + off..(k + 2) * rd];
                let c2 = &dpanel[(k + 2) * rd + off..(k + 3) * rd];
                let c3 = &dpanel[(k + 3) * rd + off..(k + 4) * rd];
                let (a0, a1, a2, a3) = (c0[j], c1[j], c2[j], c3[j]);
                let (b0, b1, b2, b3) = (c0[j + 1], c1[j + 1], c2[j + 1], c3[j + 1]);
                // Row i = j contributes to column j only.
                wcol0[0] += a0 * a0 + a1 * a1 + a2 * a2 + a3 * a3;
                let (d0, d1, d2, d3) = (&c0[j + 1..], &c1[j + 1..], &c2[j + 1..], &c3[j + 1..]);
                for t in 0..wcol1.len() {
                    let (x0, x1, x2, x3) = (d0[t], d1[t], d2[t], d3[t]);
                    wcol0[t + 1] += x0 * a0 + x1 * a1 + x2 * a2 + x3 * a3;
                    wcol1[t] += x0 * b0 + x1 * b1 + x2 * b2 + x3 * b3;
                }
                k += 4;
            }
            while k < dw {
                let c0 = &dpanel[k * rd + off..(k + 1) * rd];
                let a0 = c0[j];
                let b0 = c0[j + 1];
                wcol0[0] += a0 * a0;
                let d0 = &c0[j + 1..];
                for t in 0..wcol1.len() {
                    wcol0[t + 1] += d0[t] * a0;
                    wcol1[t] += d0[t] * b0;
                }
                k += 1;
            }
            j += 2;
        }
        if j < r1 {
            let wcol = &mut wbuf[j * r2 + j..j * r2 + r2];
            wcol.fill(0.0);
            let mut k = 0;
            while k + 4 <= dw {
                let c0 = &dpanel[k * rd + off + j..k * rd + rd];
                let c1 = &dpanel[(k + 1) * rd + off + j..(k + 1) * rd + rd];
                let c2 = &dpanel[(k + 2) * rd + off + j..(k + 2) * rd + rd];
                let c3 = &dpanel[(k + 3) * rd + off + j..(k + 3) * rd + rd];
                let (b0, b1, b2, b3) = (c0[0], c1[0], c2[0], c3[0]);
                for (i, x) in wcol.iter_mut().enumerate() {
                    *x += c0[i] * b0 + c1[i] * b1 + c2[i] * b2 + c3[i] * b3;
                }
                k += 4;
            }
            while k < dw {
                let c0 = &dpanel[k * rd + off + j..k * rd + rd];
                let b0 = c0[0];
                for (i, x) in wcol.iter_mut().enumerate() {
                    *x += c0[i] * b0;
                }
                k += 1;
            }
        }
        // Scatter-subtract W into the panel. Rows of d absent from this
        // panel's union pattern (possible only through relaxed padding)
        // carry exactly-zero contributions and are skipped — a decision
        // made purely from the partition, never from the schedule.
        for j in 0..r1 {
            let tc = drows[off + j] - s1;
            let base = tc * r;
            for i in j..r2 {
                let t = relmap[drows[off + i]];
                if t != usize::MAX {
                    panel[base + t] -= wbuf[j * r2 + i];
                }
            }
        }
    }

    // Dense in-panel Cholesky: per column, subtract the rank-1
    // contributions of the completed panel columns (tiled in fours),
    // pivot, then scale the below-diagonal rows.
    let mut failed = None;
    for jc in 0..w {
        if s1 + jc >= limit {
            break;
        }
        let (before, current) = panel.split_at_mut(jc * r);
        let col = &mut current[..r];
        let mut kc = 0;
        while kc + 4 <= jc {
            let p0 = &before[kc * r..kc * r + r];
            let p1 = &before[(kc + 1) * r..(kc + 1) * r + r];
            let p2 = &before[(kc + 2) * r..(kc + 2) * r + r];
            let p3 = &before[(kc + 3) * r..(kc + 3) * r + r];
            let (l0, l1, l2, l3) = (p0[jc], p1[jc], p2[jc], p3[jc]);
            for i in jc..r {
                col[i] -= p0[i] * l0 + p1[i] * l1 + p2[i] * l2 + p3[i] * l3;
            }
            kc += 4;
        }
        while kc < jc {
            let p0 = &before[kc * r..kc * r + r];
            let l0 = p0[jc];
            for i in jc..r {
                col[i] -= p0[i] * l0;
            }
            kc += 1;
        }
        let pivot = col[jc];
        if pivot <= 0.0 || !pivot.is_finite() {
            failed = Some(s1 + jc);
            break;
        }
        let sq = pivot.sqrt();
        col[jc] = sq;
        for x in col[jc + 1..].iter_mut() {
            *x /= sq;
        }
    }

    for &row in rows {
        relmap[row] = usize::MAX;
    }
    failed
}

/// Gathers the completed panels into the CSC factor along the exact
/// symbolic pattern. Padded cells are exactly `±0.0` throughout the
/// factorization (every product feeding one has an exactly-zero factor),
/// so dropping them here loses nothing.
fn panels_to_csc(
    n: usize,
    lcolptr: Vec<usize>,
    lrowidx: Vec<usize>,
    part: &SupernodePartition,
    panels: &[Vec<f64>],
) -> Result<CscMatrix, SparseError> {
    let mut lvalues = vec![0.0f64; lrowidx.len()];
    let mut relmap = vec![usize::MAX; n];
    for s in 0..part.num_supernodes() {
        let rows = part.rows(s);
        let r = rows.len();
        let panel = &panels[s];
        debug_assert_eq!(panel.len(), r * part.width(s));
        for (i, &row) in rows.iter().enumerate() {
            relmap[row] = i;
        }
        for (jc, j) in part.cols(s).enumerate() {
            let base = jc * r;
            for p in lcolptr[j]..lcolptr[j + 1] {
                lvalues[p] = panel[base + relmap[lrowidx[p]]];
            }
        }
        for &row in rows {
            relmap[row] = usize::MAX;
        }
    }
    CscMatrix::from_raw_parts(n, n, lcolptr, lrowidx, lvalues)
}

/// Supernodal numeric factorization of the upper triangle `c` of the
/// permuted matrix, with precomputed symbolic structure. Serial when
/// `threads <= 1` (or below the parallel cutoff), otherwise subtree jobs
/// from the [`SymbolicCholesky::schedule`] run whole supernodes
/// concurrently and the serial tail finishes the top of the tree —
/// bit-identical to the serial supernodal sweep at every thread count.
pub(crate) fn numeric_supernodal(
    c: &CscMatrix,
    symbolic: &SymbolicCholesky,
    threads: usize,
) -> Result<CscMatrix, SparseError> {
    let n = c.ncols();
    let lcolptr: Vec<usize> = symbolic.lcolptr().to_vec();
    let lrowidx = factor_structure(c, symbolic);
    let part = SupernodePartition::from_structure(symbolic, &lrowidx);
    let lower = c.transpose();
    let updates = build_updates(&part);
    if threads > 1 && n >= crate::chol::PARALLEL_MIN_COLS {
        numeric_supernodal_parallel(symbolic, &lower, lcolptr, lrowidx, &part, &updates, threads)
    } else {
        let _span = tracered_obs::span!("chol.numeric", {
            n: n,
            nnz: symbolic.factor_nnz(),
            supernodes: part.num_supernodes()
        });
        let panels = supernodal_serial(n, &lower, &part, &updates)?;
        panels_to_csc(n, lcolptr, lrowidx, &part, &panels)
    }
}

/// Serial left-looking sweep over all supernodes, ascending.
fn supernodal_serial(
    n: usize,
    lower: &CscMatrix,
    part: &SupernodePartition,
    updates: &[Vec<(usize, usize)>],
) -> Result<Vec<Vec<f64>>, SparseError> {
    let nsup = part.num_supernodes();
    let mut panels: Vec<Vec<f64>> = vec![Vec::new(); nsup];
    let mut relmap = vec![usize::MAX; n];
    let mut wbuf = vec![0.0f64; part.max_rows() * part.max_width()];
    for s in 0..nsup {
        let (done, rest) = panels.split_at_mut(s);
        if let Some(column) = factor_supernode_into(
            s,
            lower,
            part,
            &updates[s],
            &done[..],
            &mut rest[0],
            &mut relmap,
            &mut wbuf,
            usize::MAX,
        ) {
            return Err(SparseError::NotPositiveDefinite { column });
        }
    }
    Ok(panels)
}

/// Parallel supernodal factorization over the elimination-tree schedule.
///
/// A supernode is assigned to a subtree job iff **all** its columns
/// belong to that job; chain supernodes can straddle only a job/tail
/// boundary (jobs are descendant-closed), and every descendant supernode
/// updating a job-owned supernode lives in the same job (each union row
/// is real in some descendant column, and that column's etree path runs
/// through the descendant's top column), so the job phase is
/// self-contained. Straddlers and top-of-tree supernodes run in the
/// serial tail, which sees every completed panel. Failure semantics
/// mirror the scalar parallel path: jobs record their first failing
/// pivot, the tail runs only columns below the minimum, and the smallest
/// failing column — exactly the serial sweep's — is reported.
#[allow(clippy::too_many_arguments)]
fn numeric_supernodal_parallel(
    symbolic: &SymbolicCholesky,
    lower: &CscMatrix,
    lcolptr: Vec<usize>,
    lrowidx: Vec<usize>,
    part: &SupernodePartition,
    updates: &[Vec<(usize, usize)>],
    threads: usize,
) -> Result<CscMatrix, SparseError> {
    let n = symbolic.n();
    let schedule = {
        let _sched = tracered_obs::span!("chol.schedule", { threads: threads });
        symbolic.schedule(threads)
    };
    if schedule.jobs().len() <= 1 {
        let _span = tracered_obs::span!("chol.numeric", {
            n: n,
            nnz: symbolic.factor_nnz(),
            supernodes: part.num_supernodes()
        });
        let panels = supernodal_serial(n, lower, part, updates)?;
        return panels_to_csc(n, lcolptr, lrowidx, part, &panels);
    }

    let njobs = schedule.jobs().len();
    let mut owner = vec![usize::MAX; n];
    for (ji, job) in schedule.jobs().iter().enumerate() {
        for &j in job {
            owner[j] = ji;
        }
    }
    let nsup = part.num_supernodes();
    // assign[s]: owning job, or usize::MAX for the serial tail.
    let mut assign = vec![usize::MAX; nsup];
    for (s, slot) in assign.iter_mut().enumerate() {
        let o = owner[part.first_col[s]];
        if o != usize::MAX && part.cols(s).all(|j| owner[j] == o) {
            *slot = o;
        }
    }

    let mut tail_cols = 0usize;
    let mut tail_snodes: Vec<usize> = Vec::new();
    let mut panels: Vec<Vec<f64>> = vec![Vec::new(); nsup];
    let mut job_items: Vec<Vec<(usize, &mut Vec<f64>)>> = (0..njobs).map(|_| Vec::new()).collect();
    for (s, p) in panels.iter_mut().enumerate() {
        if assign[s] == usize::MAX {
            tail_snodes.push(s);
            tail_cols += part.width(s);
        } else {
            job_items[assign[s]].push((s, p));
        }
    }

    let _span = tracered_obs::span!("chol.numeric", {
        n: n,
        nnz: symbolic.factor_nnz(),
        jobs: njobs,
        tail_rows: tail_cols,
        supernodes: nsup
    });

    // --- Phase 1: subtree jobs factor their whole supernodes. ---
    // One unit of work: a job's (supernode, panel) list plus the slot
    // its first failing pivot (if any) is reported through.
    type JobWork<'a> = (Vec<(usize, &'a mut Vec<f64>)>, &'a mut Option<usize>);
    let mut job_fail: Vec<Option<usize>> = vec![None; njobs];
    let work: Vec<JobWork<'_>> = job_items.into_iter().zip(job_fail.iter_mut()).collect();
    let max_rows = part.max_rows();
    let max_width = part.max_width();
    tracered_par::par_jobs(work, threads, |(mut items, fail)| {
        let cols: usize = items.iter().map(|&(s, _)| part.width(s)).sum();
        let _job = tracered_obs::span!("chol.numeric.job", { cols: cols });
        let mut relmap = vec![usize::MAX; n];
        let mut wbuf = vec![0.0f64; max_rows * max_width];
        for i in 0..items.len() {
            let (done, rest) = items.split_at_mut(i);
            let s = rest[0].0;
            if let Some(column) = factor_supernode_into(
                s,
                lower,
                part,
                &updates[s],
                &*done,
                rest[0].1,
                &mut relmap,
                &mut wbuf,
                usize::MAX,
            ) {
                *fail = Some(column);
                break;
            }
        }
    });
    let mut first_failure: Option<usize> = job_fail.iter().flatten().copied().min();

    // --- Phase 2: serial tail over the remaining supernodes, ascending.
    // Only columns below the earliest job failure run; a tail failure is
    // necessarily smaller and preempts it.
    let _tail = tracered_obs::span!("chol.numeric.tail", { rows: tail_cols });
    let mut relmap = vec![usize::MAX; n];
    let mut wbuf = vec![0.0f64; max_rows * max_width];
    for &s in &tail_snodes {
        let stop = first_failure.unwrap_or(usize::MAX);
        if part.first_col[s] >= stop {
            break;
        }
        let (done, rest) = panels.split_at_mut(s);
        if let Some(column) = factor_supernode_into(
            s,
            lower,
            part,
            &updates[s],
            &done[..],
            &mut rest[0],
            &mut relmap,
            &mut wbuf,
            stop,
        ) {
            debug_assert!(column < stop);
            first_failure = Some(column);
        }
    }
    if let Some(column) = first_failure {
        return Err(SparseError::NotPositiveDefinite { column });
    }
    panels_to_csc(n, lcolptr, lrowidx, part, &panels)
}
