//! Error type shared by all fallible operations in this crate.

use std::error::Error;
use std::fmt;

/// Errors produced by sparse-matrix construction and factorization.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SparseError {
    /// An operation that requires a square matrix received a rectangular one.
    NotSquare {
        /// Number of rows of the offending matrix.
        nrows: usize,
        /// Number of columns of the offending matrix.
        ncols: usize,
    },
    /// A structurally or numerically non-symmetric matrix was passed to an
    /// operation that requires symmetry.
    NotSymmetric,
    /// Cholesky factorization failed: the matrix is not positive definite.
    NotPositiveDefinite {
        /// Column (in the permuted matrix) at which a non-positive pivot
        /// appeared.
        column: usize,
    },
    /// Operand dimensions do not agree.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Dimension that was found.
        found: usize,
    },
    /// An entry index lies outside the matrix.
    IndexOutOfBounds {
        /// Row index of the entry.
        row: usize,
        /// Column index of the entry.
        col: usize,
        /// Number of rows of the matrix.
        nrows: usize,
        /// Number of columns of the matrix.
        ncols: usize,
    },
    /// A value that must be finite (and possibly positive) was not.
    InvalidValue {
        /// Human-readable description of the offending value.
        what: String,
    },
    /// Malformed input to a parser or a raw-parts constructor.
    InvalidFormat {
        /// Human-readable description of the problem.
        what: String,
    },
    /// A permutation vector was not a bijection on `0..n`.
    InvalidPermutation,
    /// A stored matrix entry was NaN or infinite — caught by the cheap
    /// input scan of [`crate::regularize::scan_non_finite`] before it can
    /// poison a factorization or an iterative solve.
    NonFiniteValue {
        /// Row index of the offending entry.
        row: usize,
        /// Column index of the offending entry.
        col: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::NotSquare { nrows, ncols } => {
                write!(f, "matrix is not square ({nrows}x{ncols})")
            }
            SparseError::NotSymmetric => write!(f, "matrix is not symmetric"),
            SparseError::NotPositiveDefinite { column } => {
                write!(f, "matrix is not positive definite (pivot at column {column})")
            }
            SparseError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch (expected {expected}, found {found})")
            }
            SparseError::IndexOutOfBounds { row, col, nrows, ncols } => {
                write!(f, "entry ({row}, {col}) out of bounds for {nrows}x{ncols} matrix")
            }
            SparseError::InvalidValue { what } => write!(f, "invalid value: {what}"),
            SparseError::InvalidFormat { what } => write!(f, "invalid format: {what}"),
            SparseError::InvalidPermutation => {
                write!(f, "permutation vector is not a bijection on 0..n")
            }
            SparseError::NonFiniteValue { row, col } => {
                write!(f, "non-finite value at entry ({row}, {col})")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errors = [
            SparseError::NotSquare { nrows: 2, ncols: 3 },
            SparseError::NotSymmetric,
            SparseError::NotPositiveDefinite { column: 4 },
            SparseError::DimensionMismatch { expected: 5, found: 6 },
            SparseError::IndexOutOfBounds { row: 9, col: 9, nrows: 3, ncols: 3 },
            SparseError::InvalidValue { what: "NaN weight".into() },
            SparseError::InvalidFormat { what: "bad header".into() },
            SparseError::InvalidPermutation,
            SparseError::NonFiniteValue { row: 1, col: 2 },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }
}
