//! Column-major dense multi-vectors: the right-hand-side blocks of the
//! batched multi-RHS solve subsystem.
//!
//! Power-grid transient analysis solves the same conductance matrix
//! against many right-hand sides (one per timestep × source scenario).
//! A [`MultiVec`] packs `k` length-`n` vectors column-major so that
//!
//! - each column is a contiguous `&[f64]` — every existing single-vector
//!   kernel (dots, axpys, preconditioner applies) works on a column
//!   unchanged, with unchanged arithmetic;
//! - blocked kernels ([`crate::chol::lsolve_multi_in_place`],
//!   [`CscMatrix::mul_multi_into`](crate::CscMatrix::mul_multi_into))
//!   stream the sparse operand **once** for all `k` columns, amortizing
//!   the dominant memory traffic of factor substitutions and SpMV.

use crate::error::SparseError;

/// A dense `n × k` block of column vectors, stored column-major.
///
/// Column `j` occupies `data[j * n .. (j + 1) * n]`, so column access is
/// contiguous-slice cheap and appending or dropping trailing columns is
/// `O(1)` bookkeeping — which is how the block-PCG solver deflates
/// converged columns without copying the survivors.
///
/// # Example
///
/// ```
/// use tracered_sparse::MultiVec;
///
/// let mut x = MultiVec::zeros(3, 2);
/// x.col_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
/// assert_eq!(x.col(0), &[0.0, 0.0, 0.0]);
/// assert_eq!(x.col(1), &[1.0, 2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MultiVec {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl MultiVec {
    /// An `n × k` block of zero columns.
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        MultiVec { nrows, ncols, data: vec![0.0; nrows * ncols] }
    }

    /// Builds a block from column slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::DimensionMismatch`] when columns have
    /// unequal lengths.
    pub fn from_columns(columns: &[&[f64]]) -> Result<Self, SparseError> {
        let nrows = columns.first().map_or(0, |c| c.len());
        let mut data = Vec::with_capacity(nrows * columns.len());
        for col in columns {
            if col.len() != nrows {
                return Err(SparseError::DimensionMismatch { expected: nrows, found: col.len() });
            }
            data.extend_from_slice(col);
        }
        Ok(MultiVec { nrows, ncols: columns.len(), data })
    }

    /// Builds a block whose every column is a copy of `column`.
    pub fn broadcast(column: &[f64], ncols: usize) -> Self {
        let mut data = Vec::with_capacity(column.len() * ncols);
        for _ in 0..ncols {
            data.extend_from_slice(column);
        }
        MultiVec { nrows: column.len(), ncols, data }
    }

    /// Number of rows (the system dimension `n`).
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns (the batch width `k`).
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.ncols, "column {j} out of bounds (k = {})", self.ncols);
        &self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Column `j` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.ncols()`.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.ncols, "column {j} out of bounds (k = {})", self.ncols);
        &mut self.data[j * self.nrows..(j + 1) * self.nrows]
    }

    /// Two distinct columns, the first mutably — the shape of the fused
    /// per-column vector updates in block PCG.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of bounds.
    pub fn col_mut_and(&mut self, a: usize, b: usize) -> (&mut [f64], &[f64]) {
        assert!(a != b, "columns must be distinct");
        assert!(a < self.ncols && b < self.ncols, "column out of bounds");
        let n = self.nrows;
        if a < b {
            let (lo, hi) = self.data.split_at_mut(b * n);
            (&mut lo[a * n..(a + 1) * n], &hi[..n])
        } else {
            let (lo, hi) = self.data.split_at_mut(a * n);
            (&mut hi[..n], &lo[b * n..(b + 1) * n])
        }
    }

    /// Iterates over columns as slices. Always yields exactly
    /// [`MultiVec::ncols`] items, even for a zero-height block.
    pub fn cols(&self) -> impl Iterator<Item = &[f64]> {
        let n = self.nrows;
        (0..self.ncols).map(move |j| &self.data[j * n..(j + 1) * n])
    }

    /// Iterates over columns as mutable slices. Always yields exactly
    /// [`MultiVec::ncols`] items, even for a zero-height block.
    pub fn cols_mut(&mut self) -> impl Iterator<Item = &mut [f64]> {
        let n = self.nrows;
        let mut rest: &mut [f64] = &mut self.data;
        (0..self.ncols).map(move |_| {
            if n == 0 {
                &mut []
            } else {
                let (head, tail) = std::mem::take(&mut rest).split_at_mut(n);
                rest = tail;
                head
            }
        })
    }

    /// Copies the columns out into owned vectors.
    pub fn to_columns(&self) -> Vec<Vec<f64>> {
        self.cols().map(<[f64]>::to_vec).collect()
    }

    /// Swaps columns `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        assert!(a < self.ncols && b < self.ncols, "column out of bounds");
        if a == b {
            return;
        }
        let n = self.nrows;
        let (lo, hi) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(hi * n);
        head[lo * n..(lo + 1) * n].swap_with_slice(&mut tail[..n]);
    }

    /// Drops trailing columns so `k` becomes `ncols` — `O(1)` apart from
    /// freeing nothing (capacity is kept for reuse).
    ///
    /// # Panics
    ///
    /// Panics if `ncols > self.ncols()`.
    pub fn truncate_cols(&mut self, ncols: usize) {
        assert!(ncols <= self.ncols, "cannot grow via truncate_cols");
        self.ncols = ncols;
        self.data.truncate(ncols * self.nrows);
    }

    /// Sets every entry to zero.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// The whole block as one flat column-major slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_contiguous_and_independent() {
        let mut m = MultiVec::zeros(4, 3);
        for j in 0..3 {
            for (i, v) in m.col_mut(j).iter_mut().enumerate() {
                *v = (j * 10 + i) as f64;
            }
        }
        assert_eq!(m.col(1), &[10.0, 11.0, 12.0, 13.0]);
        assert_eq!(m.to_columns().len(), 3);
        assert_eq!(m.as_slice().len(), 12);
    }

    #[test]
    fn from_columns_validates_lengths() {
        let a = [1.0, 2.0];
        let b = [3.0, 4.0];
        let m = MultiVec::from_columns(&[&a, &b]).unwrap();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(1), &[3.0, 4.0]);
        let short = [1.0];
        assert!(MultiVec::from_columns(&[&a, &short]).is_err());
    }

    #[test]
    fn broadcast_replicates_the_column() {
        let m = MultiVec::broadcast(&[7.0, 8.0], 3);
        for j in 0..3 {
            assert_eq!(m.col(j), &[7.0, 8.0]);
        }
    }

    #[test]
    fn swap_and_truncate_deflate_like_block_pcg() {
        let mut m = MultiVec::from_columns(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        m.swap_cols(0, 2);
        assert_eq!(m.col(0), &[3.0, 3.0]);
        assert_eq!(m.col(2), &[1.0, 1.0]);
        m.truncate_cols(2);
        assert_eq!(m.ncols(), 2);
        assert_eq!(m.col(1), &[2.0, 2.0]);
        m.swap_cols(1, 1); // self-swap is a no-op
        assert_eq!(m.col(1), &[2.0, 2.0]);
    }

    #[test]
    fn col_mut_and_returns_disjoint_views() {
        let mut m = MultiVec::from_columns(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        {
            let (a, b) = m.col_mut_and(2, 0);
            a[0] += b[0];
        }
        assert_eq!(m.col(2), &[4.0]);
        let (a, b) = m.col_mut_and(0, 2);
        a[0] = b[0] * 10.0;
        assert_eq!(m.col(0), &[40.0]);
    }

    #[test]
    fn zero_width_and_zero_height_are_fine() {
        let mut m = MultiVec::zeros(0, 4);
        assert_eq!(m.col(3), &[] as &[f64]);
        assert_eq!(m.cols().count(), 4, "zero-height blocks still have ncols columns");
        assert_eq!(m.cols_mut().count(), 4);
        assert_eq!(m.to_columns(), vec![Vec::<f64>::new(); 4]);
        assert_eq!(m.memory_bytes(), 0);
        let m = MultiVec::zeros(5, 0);
        assert_eq!(m.cols().count(), 0);
        assert_eq!(m.memory_bytes(), 0);
    }
}
