//! Sparse Cholesky factorization `P A Pᵀ = L Lᵀ` for symmetric positive
//! definite matrices, with an up-looking numeric kernel driven by
//! elimination-tree row subtrees (the CSparse `cs_chol` scheme).
//!
//! This module is the workspace's substitute for CHOLMOD [Chen et al. 2008],
//! which the paper uses both inside the sparsification loop (Step 12 of
//! Algorithm 2) and as the "Direct" baseline solver of its Tables 2–3.

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::etree::{self, NO_PARENT};
use crate::multivec::MultiVec;
use crate::order::Ordering;
use crate::perm::Permutation;
use crate::supernode::KernelVariant;

/// Symbolic analysis of a (permuted) symmetric matrix: elimination tree and
/// factor column pointers.
///
/// Reusable across numeric factorizations with the same pattern, which is
/// how the iterative densification loop avoids re-analysing when only edge
/// weights change.
#[derive(Debug, Clone)]
pub struct SymbolicCholesky {
    /// Elimination tree (parent array) of the permuted matrix.
    parent: Vec<usize>,
    /// Column pointers of `L` (length `n + 1`).
    lcolptr: Vec<usize>,
}

impl SymbolicCholesky {
    /// Analyses the **upper triangle** of an already-permuted symmetric
    /// matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs.
    pub fn analyze(upper: &CscMatrix) -> Result<Self, SparseError> {
        if upper.nrows() != upper.ncols() {
            return Err(SparseError::NotSquare { nrows: upper.nrows(), ncols: upper.ncols() });
        }
        let n = upper.ncols();
        let parent = etree::elimination_tree(upper);
        let counts = etree::column_counts(upper, &parent);
        let mut lcolptr = vec![0usize; n + 1];
        for j in 0..n {
            lcolptr[j + 1] = lcolptr[j] + counts[j];
        }
        Ok(SymbolicCholesky { parent, lcolptr })
    }

    /// Dimension of the analysed matrix.
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// Number of nonzeros the factor will have.
    pub fn factor_nnz(&self) -> usize {
        *self.lcolptr.last().unwrap_or(&0)
    }

    /// The elimination tree parent array.
    pub fn parent(&self) -> &[usize] {
        &self.parent
    }

    /// The factor column pointers (length `n + 1`), for the supernodal
    /// kernel's structure sweep.
    pub(crate) fn lcolptr(&self) -> &[usize] {
        &self.lcolptr
    }

    /// Nonzeros per factor column (including the diagonal), from the
    /// symbolic column pointers.
    pub fn column_counts(&self) -> Vec<usize> {
        self.lcolptr.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Per-column cost model for the level-set schedule: the square of
    /// the factor column count, the standard flop proxy for the
    /// up-looking kernel (row `k`'s triangular solve streams every
    /// descendant column once per nonzero it contributes).
    pub fn column_costs(&self) -> Vec<u64> {
        self.column_counts().into_iter().map(|c| (c as u64).pow(2)).collect()
    }

    /// Builds the elimination-tree schedule the parallel numeric kernel
    /// runs on: balanced subtree jobs under the
    /// [`SymbolicCholesky::column_costs`] model plus the serial
    /// top-of-tree tail. See [`etree::EtreeSchedule`].
    pub fn schedule(&self, threads: usize) -> etree::EtreeSchedule {
        etree::EtreeSchedule::build(&self.parent, &self.column_costs(), threads)
    }
}

/// A sparse Cholesky factorization `P A Pᵀ = L Lᵀ`.
///
/// `L` is lower triangular with sorted row indices, so the diagonal entry
/// is the first entry of every column — a property the sparse approximate
/// inverse (Algorithm 1 of the paper) relies on.
///
/// # Example
///
/// ```
/// use tracered_sparse::{CooMatrix, CholeskyFactor, order::Ordering};
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 4.0)?;
/// coo.push(1, 1, 9.0)?;
/// let a = coo.to_csc();
/// let f = CholeskyFactor::factorize(&a, Ordering::Natural)?;
/// assert_eq!(f.solve(&[8.0, 18.0]), vec![2.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    perm: Permutation,
    l: CscMatrix,
    /// LIFO undo journal of applied rank-1 updates/downdates (see
    /// [`crate::update`]): reverting the most recent operation with the
    /// same vector restores the factor bit-for-bit instead of replaying
    /// inexact hyperbolic rotations.
    journal: Vec<crate::update::UndoEntry>,
}

impl CholeskyFactor {
    /// Factorizes a symmetric positive definite matrix, first computing a
    /// fill-reducing permutation with `ordering`.
    ///
    /// Only the upper triangle of `a` is read; symmetry of the input is the
    /// caller's responsibility (use [`CscMatrix::is_symmetric_within`] to
    /// check when in doubt).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs and
    /// [`SparseError::NotPositiveDefinite`] when a pivot fails.
    pub fn factorize(a: &CscMatrix, ordering: Ordering) -> Result<Self, SparseError> {
        Self::factorize_threads(a, ordering, 1)
    }

    /// [`CholeskyFactor::factorize`] with the numeric phase running on up
    /// to `threads` worker threads of the global `tracered_par` pool:
    /// independent elimination-tree subtrees factor concurrently and the
    /// dense top-of-tree columns run on the serial kernel (see
    /// [`crate::etree::EtreeSchedule`]).
    ///
    /// The factor is **bit-identical** to the serial one at every thread
    /// count: each column's summation order is fixed by the etree (a
    /// column's updates come from its ancestors, which form a chain), so
    /// the schedule changes only wall-clock time. `threads <= 1` is the
    /// exact historical serial path.
    ///
    /// ```
    /// use tracered_sparse::{CholeskyFactor, CooMatrix, order::Ordering};
    ///
    /// # fn main() -> Result<(), tracered_sparse::SparseError> {
    /// let mut coo = CooMatrix::new(3, 3);
    /// for i in 0..3 { coo.push(i, i, 2.0)?; }
    /// coo.push_symmetric(0, 1, -1.0)?;
    /// coo.push_symmetric(1, 2, -1.0)?;
    /// let a = coo.to_csc();
    /// let serial = CholeskyFactor::factorize(&a, Ordering::Natural)?;
    /// let parallel = CholeskyFactor::factorize_threads(&a, Ordering::Natural, 4)?;
    /// assert_eq!(serial.l().values(), parallel.l().values());
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Same conditions as [`CholeskyFactor::factorize`].
    pub fn factorize_threads(
        a: &CscMatrix,
        ordering: Ordering,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let perm = ordering.compute(a)?;
        Self::factorize_with_perm_threads(a, perm, threads)
    }

    /// Factorizes with a caller-provided permutation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CholeskyFactor::factorize`], plus
    /// [`SparseError::DimensionMismatch`] if the permutation size differs.
    pub fn factorize_with_perm(a: &CscMatrix, perm: Permutation) -> Result<Self, SparseError> {
        Self::factorize_with_perm_threads(a, perm, 1)
    }

    /// [`CholeskyFactor::factorize_with_perm`] with the parallel numeric
    /// phase of [`CholeskyFactor::factorize_threads`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`CholeskyFactor::factorize_with_perm`].
    pub fn factorize_with_perm_threads(
        a: &CscMatrix,
        perm: Permutation,
        threads: usize,
    ) -> Result<Self, SparseError> {
        Self::factorize_with_perm_kernel(a, perm, KernelVariant::Scalar, threads)
    }

    /// [`CholeskyFactor::factorize_threads`] with an explicit numeric
    /// kernel choice: the scalar up-looking row kernel or the supernodal
    /// blocked-panel kernel (see [`crate::supernode`]).
    ///
    /// Each variant is bit-identical to itself at every thread count; the
    /// two variants agree only up to rounding (different summation
    /// orders), so cross-variant comparisons need a tolerance.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CholeskyFactor::factorize`].
    pub fn factorize_kernel(
        a: &CscMatrix,
        ordering: Ordering,
        kernel: KernelVariant,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let perm = ordering.compute(a)?;
        Self::factorize_with_perm_kernel(a, perm, kernel, threads)
    }

    /// [`CholeskyFactor::factorize_with_perm`] with an explicit numeric
    /// kernel choice — the entry point every other `factorize*` method
    /// funnels into.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CholeskyFactor::factorize_with_perm`].
    pub fn factorize_with_perm_kernel(
        a: &CscMatrix,
        perm: Permutation,
        kernel: KernelVariant,
        threads: usize,
    ) -> Result<Self, SparseError> {
        let _span =
            tracered_obs::span!("chol.factorize", { n: a.ncols(), nnz: a.nnz(), threads: threads });
        let (c, symbolic) = {
            let _sym = tracered_obs::span!("chol.symbolic");
            let c = a.symmetric_perm_upper(&perm)?;
            let symbolic = SymbolicCholesky::analyze(&c)?;
            (c, symbolic)
        };
        let l = match kernel {
            KernelVariant::Scalar => {
                if threads > 1 {
                    numeric_up_looking_parallel(&c, &symbolic, threads)?
                } else {
                    numeric_up_looking(&c, &symbolic)?
                }
            }
            KernelVariant::Supernodal => {
                crate::supernode::numeric_supernodal(&c, &symbolic, threads)?
            }
        };
        Ok(CholeskyFactor { perm, l, journal: Vec::new() })
    }

    /// Dimension of the factored matrix.
    pub fn n(&self) -> usize {
        self.l.ncols()
    }

    /// The lower-triangular factor `L` (in permuted index space).
    pub fn l(&self) -> &CscMatrix {
        &self.l
    }

    /// The fill-reducing permutation (new-to-old convention).
    pub fn perm(&self) -> &Permutation {
        &self.perm
    }

    /// Mutable access to `L` for the rank-1 update kernel.
    pub(crate) fn l_mut(&mut self) -> &mut CscMatrix {
        &mut self.l
    }

    /// Replaces `L` wholesale (pattern growth / journalled restore).
    pub(crate) fn set_l(&mut self, l: CscMatrix) {
        self.l = l;
    }

    /// The rank-1 undo journal (see [`crate::update`]).
    pub(crate) fn journal(&self) -> &[crate::update::UndoEntry] {
        &self.journal
    }

    /// Mutable access to the rank-1 undo journal.
    pub(crate) fn journal_mut(&mut self) -> &mut Vec<crate::update::UndoEntry> {
        &mut self.journal
    }

    /// Number of nonzeros in `L`.
    pub fn nnz(&self) -> usize {
        self.l.nnz()
    }

    /// Estimated memory footprint of the factor in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.l.memory_bytes()
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != self.n()`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut x = self.perm.apply(b); // b in permuted space
        lsolve_in_place(&self.l, &mut x);
        ltsolve_in_place(&self.l, &mut x);
        self.perm.apply_inverse(&x)
    }

    /// Solves `A x = b` writing through a reusable buffer, avoiding the
    /// allocation in [`CholeskyFactor::solve`]. `x` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` or `x.len()` differ from `self.n()`.
    pub fn solve_into(&self, b: &[f64], x: &mut [f64]) {
        let n = self.n();
        assert_eq!(b.len(), n, "rhs length must equal n");
        assert_eq!(x.len(), n, "output length must equal n");
        // Permute into x.
        for k in 0..n {
            x[k] = b[self.perm.new_to_old(k)];
        }
        lsolve_in_place(&self.l, x);
        ltsolve_in_place(&self.l, x);
        // Un-permute in place via a rotation-free copy.
        let tmp = x.to_vec();
        for k in 0..n {
            x[self.perm.new_to_old(k)] = tmp[k];
        }
    }

    /// Solves `A X = B` for a whole block of right-hand sides through the
    /// blocked substitutions [`lsolve_multi_in_place`] /
    /// [`ltsolve_multi_in_place`]: the factor is streamed **once** for all
    /// `k` columns instead of once per column, which is where the batched
    /// transient engine's per-RHS amortization comes from. Column `j` of
    /// the result equals `self.solve(b.col(j))` exactly, except that
    /// signed zeros may differ (see the substitution kernels).
    ///
    /// # Panics
    ///
    /// Panics if `b.nrows() != self.n()`.
    pub fn solve_multi(&self, b: &MultiVec) -> MultiVec {
        let mut x = MultiVec::zeros(self.n(), b.ncols());
        self.solve_multi_into(b, &mut x);
        x
    }

    /// [`CholeskyFactor::solve_multi`] writing through a reusable block,
    /// avoiding the allocation. `x` is overwritten.
    ///
    /// # Panics
    ///
    /// Panics if the shapes of `b` and `x` disagree with the factor.
    pub fn solve_multi_into(&self, b: &MultiVec, x: &mut MultiVec) {
        let n = self.n();
        assert_eq!(b.nrows(), n, "rhs rows must equal n");
        assert_eq!(x.nrows(), n, "output rows must equal n");
        assert_eq!(x.ncols(), b.ncols(), "output width must match rhs width");
        for (bc, xc) in b.cols().zip(x.cols_mut()) {
            for k in 0..n {
                xc[k] = bc[self.perm.new_to_old(k)];
            }
        }
        lsolve_multi_in_place(&self.l, x);
        ltsolve_multi_in_place(&self.l, x);
        let mut tmp = vec![0.0; n];
        for xc in x.cols_mut() {
            tmp.copy_from_slice(xc);
            for k in 0..n {
                xc[self.perm.new_to_old(k)] = tmp[k];
            }
        }
    }

    /// Solves `L y = e_i` style systems in the **permuted** index space:
    /// applies the forward substitution only, on a caller-managed dense
    /// vector. Used by the trace-reduction kernels that work directly with
    /// factor columns.
    pub fn lsolve_permuted(&self, x: &mut [f64]) {
        lsolve_in_place(&self.l, x);
    }

    /// Backward substitution `Lᵀ x = y` in the permuted index space.
    pub fn ltsolve_permuted(&self, x: &mut [f64]) {
        ltsolve_in_place(&self.l, x);
    }
}

/// One up-looking row step on the **shared** factor arrays: computes row
/// `k` of `L` — ereach pattern, scatter of column `k` of `C`, the
/// triangular solve against the completed descendant columns, and the
/// pivot — appending `L(k, j)` through the `next` cursors. This single
/// body is the reference arithmetic both the serial sweep and the
/// parallel path's top-of-tree tail execute (the job-local kernel in
/// [`factor_subtree_job`] mirrors it through a local column map), which
/// is what keeps the bit-identity contract in one place.
///
/// # Errors
///
/// Returns [`SparseError::NotPositiveDefinite`] when the pivot fails.
#[allow(clippy::too_many_arguments)]
fn factor_row_shared(
    c: &CscMatrix,
    parent: &[usize],
    k: usize,
    lcolptr: &[usize],
    lrowidx: &mut [usize],
    lvalues: &mut [f64],
    next: &mut [usize],
    stack: &mut [usize],
    wmark: &mut [usize],
    x: &mut [f64],
) -> Result<(), SparseError> {
    let n = c.ncols();
    // Pattern of row k of L, in topological order.
    let top = etree::ereach(c, k, parent, stack, wmark);
    // Scatter the upper-triangle column k of C (rows <= k) into x.
    let (rows, vals) = c.col(k);
    let mut d = 0.0;
    for (&r, &v) in rows.iter().zip(vals.iter()) {
        if r < k {
            x[r] = v;
        } else if r == k {
            d = v;
        }
    }
    // Solve the triangular system for row k.
    for &j in &stack[top..n] {
        let ljj = lvalues[lcolptr[j]]; // diagonal is first entry of column j
        let lkj = x[j] / ljj;
        x[j] = 0.0;
        for p in (lcolptr[j] + 1)..next[j] {
            x[lrowidx[p]] -= lvalues[p] * lkj;
        }
        d -= lkj * lkj;
        let slot = next[j];
        next[j] += 1;
        lrowidx[slot] = k;
        lvalues[slot] = lkj;
    }
    if d <= 0.0 || !d.is_finite() {
        return Err(SparseError::NotPositiveDefinite { column: k });
    }
    let slot = next[k];
    next[k] += 1;
    lrowidx[slot] = k;
    lvalues[slot] = d.sqrt();
    Ok(())
}

/// Up-looking numeric factorization of the upper triangle `c` of the
/// permuted matrix, with precomputed symbolic structure.
fn numeric_up_looking(
    c: &CscMatrix,
    symbolic: &SymbolicCholesky,
) -> Result<CscMatrix, SparseError> {
    let n = c.ncols();
    let _span = tracered_obs::span!("chol.numeric", { n: n, nnz: symbolic.factor_nnz() });
    let lcolptr = symbolic.lcolptr.clone();
    let nnz = symbolic.factor_nnz();
    let mut lrowidx = vec![0usize; nnz];
    let mut lvalues = vec![0.0f64; nnz];
    // next[j]: next free slot in column j of L.
    let mut next = lcolptr.clone();
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    let mut x = vec![0.0f64; n]; // dense row accumulator

    for k in 0..n {
        factor_row_shared(
            c,
            &symbolic.parent,
            k,
            &lcolptr,
            &mut lrowidx,
            &mut lvalues,
            &mut next,
            &mut stack,
            &mut wmark,
            &mut x,
        )?;
    }
    debug_assert!(
        (0..n).all(|j| next[j] == lcolptr[j + 1]),
        "numeric fill must match symbolic counts"
    );
    CscMatrix::from_raw_parts(n, n, lcolptr, lrowidx, lvalues)
}

/// Matrices below this dimension never amortize the schedule build and
/// job scratch, so the parallel numeric path falls back to serial (both
/// kernel variants share the cutoff).
pub(crate) const PARALLEL_MIN_COLS: usize = 128;

/// One subtree job's private slice of the factor: columns owned by the
/// job, stored contiguously in job-local order.
#[derive(Default)]
struct SubtreeFactor {
    /// Local column pointers (length `cols.len() + 1`).
    colptr: Vec<usize>,
    rowidx: Vec<usize>,
    values: Vec<f64>,
    /// Entries actually written per local column (a prefix of the
    /// symbolic count: the rest comes from serial-tail rows later).
    filled: Vec<usize>,
    /// First non-positive pivot the job hit, if any.
    failed_column: Option<usize>,
}

/// Up-looking factorization of one job's subtree union: the job's rows in
/// ascending order, reading and writing only the job's own columns.
///
/// This mirrors [`factor_row_shared`] line for line — same `ereach`
/// pattern, same topological update loop, same append order — just
/// addressed through the job's local column map (which is why it cannot
/// reuse the shared-array body verbatim), so every column it produces is
/// bit-identical to the serial kernel's.
fn factor_subtree_job(c: &CscMatrix, symbolic: &SymbolicCholesky, cols: &[usize]) -> SubtreeFactor {
    let n = c.ncols();
    let mut local_of = vec![usize::MAX; n];
    let mut colptr = Vec::with_capacity(cols.len() + 1);
    colptr.push(0usize);
    for (li, &j) in cols.iter().enumerate() {
        local_of[j] = li;
        colptr.push(colptr[li] + (symbolic.lcolptr[j + 1] - symbolic.lcolptr[j]));
    }
    let nnz = *colptr.last().expect("colptr starts with a 0 entry");
    let mut rowidx = vec![0usize; nnz];
    let mut values = vec![0.0f64; nnz];
    let mut next: Vec<usize> = colptr[..cols.len()].to_vec();
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    let mut x = vec![0.0f64; n];
    let mut failed_column = None;
    for &k in cols {
        let top = etree::ereach(c, k, &symbolic.parent, &mut stack, &mut wmark);
        let (rows, vals) = c.col(k);
        let mut d = 0.0;
        for (&r, &v) in rows.iter().zip(vals.iter()) {
            if r < k {
                x[r] = v;
            } else if r == k {
                d = v;
            }
        }
        for &j in &stack[top..n] {
            // Row k's pattern is a pruned subtree below k, so every j is
            // an etree descendant of k and lives in this job.
            let lj = local_of[j];
            debug_assert!(lj != usize::MAX, "ereach must stay inside the job's subtrees");
            let pj = colptr[lj];
            let ljj = values[pj];
            let lkj = x[j] / ljj;
            x[j] = 0.0;
            for p in (pj + 1)..next[lj] {
                x[rowidx[p]] -= values[p] * lkj;
            }
            d -= lkj * lkj;
            let slot = next[lj];
            next[lj] += 1;
            rowidx[slot] = k;
            values[slot] = lkj;
        }
        if d <= 0.0 || !d.is_finite() {
            failed_column = Some(k);
            break;
        }
        let lk = local_of[k];
        let slot = next[lk];
        next[lk] += 1;
        rowidx[slot] = k;
        values[slot] = d.sqrt();
    }
    let filled = (0..cols.len()).map(|li| next[li] - colptr[li]).collect();
    SubtreeFactor { colptr, rowidx, values, filled, failed_column }
}

/// Parallel up-looking numeric factorization: independent etree subtrees
/// factor concurrently as [`tracered_par::par_jobs`], then the serial
/// kernel finishes the dense top-of-tree rows.
///
/// Bit-identical to [`numeric_up_looking`] at every thread count. Why:
/// the writers of factor column `j` are `j`'s etree ancestors, which
/// form a chain with strictly increasing indices, so "append in
/// ascending row order within each owner" — what the subtree phase and
/// the ascending serial tail both do — reproduces the serial kernel's
/// per-column summation order exactly; and every value feeding a row's
/// triangular solve comes from completed descendant columns, computed
/// identically. The same chain argument makes error reporting serial-
/// equivalent: the smallest failing pivot across jobs and the tail
/// prefix below it is exactly the pivot the serial sweep hits first.
fn numeric_up_looking_parallel(
    c: &CscMatrix,
    symbolic: &SymbolicCholesky,
    threads: usize,
) -> Result<CscMatrix, SparseError> {
    let n = c.ncols();
    if n < PARALLEL_MIN_COLS {
        return numeric_up_looking(c, symbolic);
    }
    let schedule = {
        let _sched = tracered_obs::span!("chol.schedule", { threads: threads });
        symbolic.schedule(threads)
    };
    if schedule.jobs().len() <= 1 {
        return numeric_up_looking(c, symbolic);
    }
    let _span = tracered_obs::span!("chol.numeric", {
        n: n,
        nnz: symbolic.factor_nnz(),
        jobs: schedule.jobs().len(),
        tail_rows: schedule.serial_tail().len()
    });
    let lcolptr = symbolic.lcolptr.clone();
    let nnz = symbolic.factor_nnz();
    let mut lrowidx = vec![0usize; nnz];
    let mut lvalues = vec![0.0f64; nnz];
    let mut next = lcolptr.clone();

    // --- Phase 1: factor the independent subtree jobs concurrently. ---
    let mut outs: Vec<SubtreeFactor> = Vec::new();
    outs.resize_with(schedule.jobs().len(), SubtreeFactor::default);
    let jobs: Vec<(&Vec<usize>, &mut SubtreeFactor)> =
        schedule.jobs().iter().zip(outs.iter_mut()).collect();
    tracered_par::par_jobs(jobs, threads, |(cols, out)| {
        let _job = tracered_obs::span!("chol.numeric.job", { cols: cols.len() });
        *out = factor_subtree_job(c, symbolic, cols);
    });

    // Merge the job prefixes into the shared factor. Jobs own disjoint
    // column sets, so this is a straight copy plus cursor bump; partial
    // fills of a failed job are kept so the tail prefix below the
    // failure still sees exactly the serial kernel's state.
    let mut first_failure: Option<usize> = None;
    for (cols, out) in schedule.jobs().iter().zip(outs.iter()) {
        if let Some(col) = out.failed_column {
            first_failure = Some(first_failure.map_or(col, |c0| c0.min(col)));
        }
        for (li, &j) in cols.iter().enumerate() {
            let len = out.filled[li];
            let src = out.colptr[li]..out.colptr[li] + len;
            lrowidx[lcolptr[j]..lcolptr[j] + len].copy_from_slice(&out.rowidx[src.clone()]);
            lvalues[lcolptr[j]..lcolptr[j] + len].copy_from_slice(&out.values[src]);
            next[j] = lcolptr[j] + len;
        }
    }

    // --- Phase 2: serial tail over the top-of-tree rows, ascending. ---
    // On a job failure only the tail rows *below* the failing pivot run:
    // they are the tail rows the serial sweep would still have reached,
    // and a failure among them preempts the job's (it is smaller).
    let stop = first_failure.unwrap_or(usize::MAX);
    // The serial-tail span is the direct lens on the scalability ceiling:
    // its fraction of `chol.numeric` is the part no thread count removes.
    let _tail = tracered_obs::span!("chol.numeric.tail", { rows: schedule.serial_tail().len() });
    let mut stack = vec![0usize; n];
    let mut wmark = vec![usize::MAX; n];
    let mut x = vec![0.0f64; n];
    for &k in schedule.serial_tail() {
        if k >= stop {
            break;
        }
        factor_row_shared(
            c,
            &symbolic.parent,
            k,
            &lcolptr,
            &mut lrowidx,
            &mut lvalues,
            &mut next,
            &mut stack,
            &mut wmark,
            &mut x,
        )?;
    }
    if let Some(column) = first_failure {
        return Err(SparseError::NotPositiveDefinite { column });
    }
    debug_assert!(
        (0..n).all(|j| next[j] == lcolptr[j + 1]),
        "numeric fill must match symbolic counts"
    );
    CscMatrix::from_raw_parts(n, n, lcolptr, lrowidx, lvalues)
}

/// In-place forward substitution `x ← L⁻¹ x` for a lower-triangular CSC
/// matrix whose diagonal entry is the first entry of every column.
pub fn lsolve_in_place(l: &CscMatrix, x: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(x.len(), n, "vector length must equal n");
    let colptr = l.colptr();
    let rowidx = l.rowidx();
    let values = l.values();
    for j in 0..n {
        let xj = x[j] / values[colptr[j]];
        x[j] = xj;
        if xj != 0.0 {
            for p in (colptr[j] + 1)..colptr[j + 1] {
                x[rowidx[p]] -= values[p] * xj;
            }
        }
    }
}

/// In-place backward substitution `x ← L⁻ᵀ x`.
pub fn ltsolve_in_place(l: &CscMatrix, x: &mut [f64]) {
    let n = l.ncols();
    assert_eq!(x.len(), n, "vector length must equal n");
    let colptr = l.colptr();
    let rowidx = l.rowidx();
    let values = l.values();
    for j in (0..n).rev() {
        let mut xj = x[j];
        for p in (colptr[j] + 1)..colptr[j + 1] {
            xj -= values[p] * x[rowidx[p]];
        }
        x[j] = xj / values[colptr[j]];
    }
}

/// Blocked in-place forward substitution `X ← L⁻¹ X` over every column
/// of a multi-vector.
///
/// Each column of `L` is applied to all `k` right-hand sides before
/// moving on, so the factor — the dominant memory traffic of a sparse
/// triangular solve — is streamed once for the whole batch instead of
/// once per column. Per column the arithmetic (division and update
/// order) is identical to [`lsolve_in_place`]; the only permitted
/// difference is the sign of zeros, because the single-vector kernel
/// skips updates for exactly-zero solution entries while the blocked
/// kernel applies them.
///
/// # Panics
///
/// Panics if `x.nrows() != l.ncols()`.
pub fn lsolve_multi_in_place(l: &CscMatrix, x: &mut MultiVec) {
    let n = l.ncols();
    assert_eq!(x.nrows(), n, "multi-vector rows must equal n");
    let colptr = l.colptr();
    let rowidx = l.rowidx();
    let values = l.values();
    for j in 0..n {
        let d = values[colptr[j]];
        for xc in x.cols_mut() {
            let xj = xc[j] / d;
            xc[j] = xj;
            for p in (colptr[j] + 1)..colptr[j + 1] {
                xc[rowidx[p]] -= values[p] * xj;
            }
        }
    }
}

/// Blocked in-place backward substitution `X ← L⁻ᵀ X` over every column
/// of a multi-vector; the blocked counterpart of [`ltsolve_in_place`]
/// with the same once-per-batch factor streaming as
/// [`lsolve_multi_in_place`], and bit-identical per-column arithmetic.
///
/// # Panics
///
/// Panics if `x.nrows() != l.ncols()`.
pub fn ltsolve_multi_in_place(l: &CscMatrix, x: &mut MultiVec) {
    let n = l.ncols();
    assert_eq!(x.nrows(), n, "multi-vector rows must equal n");
    let colptr = l.colptr();
    let rowidx = l.rowidx();
    let values = l.values();
    for j in (0..n).rev() {
        let d = values[colptr[j]];
        for xc in x.cols_mut() {
            let mut xj = xc[j];
            for p in (colptr[j] + 1)..colptr[j + 1] {
                xj -= values[p] * xc[rowidx[p]];
            }
            xc[j] = xj / d;
        }
    }
}

/// Checks that every node's elimination-tree parent is its smallest
/// strictly-above neighbour in `L` — a structural invariant used in tests.
#[doc(hidden)]
pub fn etree_consistent_with_factor(l: &CscMatrix, parent: &[usize]) -> bool {
    let n = l.ncols();
    for j in 0..n {
        let (rows, _) = l.col(j);
        let first_below = rows.iter().copied().find(|&r| r > j);
        match (first_below, parent[j]) {
            (None, p) => {
                if p != NO_PARENT {
                    return false;
                }
            }
            (Some(r), p) => {
                if r != p {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn grid_laplacian_shifted(k: usize, shift: f64) -> CscMatrix {
        let n = k * k;
        let mut coo = CooMatrix::new(n, n);
        let id = |r: usize, c: usize| r * k + c;
        let mut deg = vec![0.0; n];
        let push_edge = |coo: &mut CooMatrix, a: usize, b: usize, deg: &mut [f64]| {
            coo.push_symmetric(a, b, -1.0).unwrap();
            deg[a] += 1.0;
            deg[b] += 1.0;
        };
        for r in 0..k {
            for c in 0..k {
                if c + 1 < k {
                    push_edge(&mut coo, id(r, c), id(r, c + 1), &mut deg);
                }
                if r + 1 < k {
                    push_edge(&mut coo, id(r, c), id(r + 1, c), &mut deg);
                }
            }
        }
        for (i, &d) in deg.iter().enumerate() {
            coo.push(i, i, d + shift).unwrap();
        }
        coo.to_csc()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = grid_laplacian_shifted(4, 0.3);
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = CholeskyFactor::factorize(&a, ord).unwrap();
            // Check P A Pᵀ = L Lᵀ densely.
            let ld = f.l().to_dense();
            let llt = ld.matmul(&ld.transpose());
            let ad = a.to_dense();
            let n = a.ncols();
            for newr in 0..n {
                for newc in 0..n {
                    let (or, oc) = (f.perm().new_to_old(newr), f.perm().new_to_old(newc));
                    assert!(
                        (llt[(newr, newc)] - ad[(or, oc)]).abs() < 1e-10,
                        "mismatch at ({newr},{newc}) under {ord:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_matches_dense_oracle() {
        let a = grid_laplacian_shifted(5, 0.7);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let dense = a.to_dense().cholesky().unwrap();
        let b: Vec<f64> = (0..a.ncols()).map(|i| (i as f64).sin()).collect();
        let x_sparse = f.solve(&b);
        let x_dense = dense.solve(&b);
        for (s, d) in x_sparse.iter().zip(x_dense.iter()) {
            assert!((s - d).abs() < 1e-9);
        }
        assert!(a.residual_inf_norm(&x_sparse, &b) < 1e-9);
    }

    #[test]
    fn solve_into_matches_solve() {
        let a = grid_laplacian_shifted(4, 0.5);
        let f = CholeskyFactor::factorize(&a, Ordering::Rcm).unwrap();
        let b: Vec<f64> = (0..a.ncols()).map(|i| (i as f64 + 1.0).cos()).collect();
        let x1 = f.solve(&b);
        let mut x2 = vec![0.0; a.ncols()];
        f.solve_into(&b, &mut x2);
        assert_eq!(x1, x2);
    }

    #[test]
    fn diagonal_is_first_entry_of_each_column() {
        let a = grid_laplacian_shifted(4, 0.4);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        for j in 0..f.n() {
            let (rows, vals) = f.l().col(j);
            assert_eq!(rows[0], j, "column {j} must start with its diagonal");
            assert!(vals[0] > 0.0);
        }
    }

    #[test]
    fn etree_structure_matches_factor() {
        let a = grid_laplacian_shifted(5, 0.2);
        let perm = Ordering::MinDegree.compute(&a).unwrap();
        let c = a.symmetric_perm_upper(&perm).unwrap();
        let symbolic = SymbolicCholesky::analyze(&c).unwrap();
        let l = numeric_up_looking(&c, &symbolic).unwrap();
        assert!(etree_consistent_with_factor(&l, symbolic.parent()));
    }

    #[test]
    fn indefinite_matrix_is_rejected() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, -1.0).unwrap();
        let a = coo.to_csc();
        assert!(matches!(
            CholeskyFactor::factorize(&a, Ordering::Natural),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn singular_matrix_is_rejected() {
        // Unshifted Laplacian of an edge: singular.
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.0).unwrap();
        coo.push(1, 1, 1.0).unwrap();
        coo.push_symmetric(0, 1, -1.0).unwrap();
        let a = coo.to_csc();
        assert!(matches!(
            CholeskyFactor::factorize(&a, Ordering::Natural),
            Err(SparseError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rectangular_is_rejected() {
        let a = CscMatrix::zeros(2, 3);
        assert!(matches!(
            CholeskyFactor::factorize(&a, Ordering::Natural),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn triangular_solves_are_inverses() {
        let a = grid_laplacian_shifted(4, 1.0);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let n = f.n();
        let mut x: Vec<f64> = (0..n).map(|i| (i as f64) * 0.1 - 0.7).collect();
        let orig = x.clone();
        // L (L⁻¹ x) = x
        lsolve_in_place(f.l(), &mut x);
        let ld = f.l().to_dense();
        let y = ld.matvec(&x);
        for (a, b) in y.iter().zip(orig.iter()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_multi_matches_column_solves_exactly() {
        let a = grid_laplacian_shifted(5, 0.6);
        let n = a.ncols();
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let f = CholeskyFactor::factorize(&a, ord).unwrap();
            let cols: Vec<Vec<f64>> =
                (0..4).map(|c| (0..n).map(|i| ((i * 7 + c * 13) as f64).sin()).collect()).collect();
            let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
            let b = MultiVec::from_columns(&refs).unwrap();
            let x = f.solve_multi(&b);
            assert_eq!(x.ncols(), 4);
            for (c, col) in cols.iter().enumerate() {
                let single = f.solve(col);
                for (i, (s, m)) in single.iter().zip(x.col(c).iter()).enumerate() {
                    assert!(
                        (s - m).abs() == 0.0,
                        "column {c} row {i} under {ord:?}: single {s} vs multi {m}"
                    );
                }
            }
        }
    }

    #[test]
    fn solve_multi_into_reuses_buffer() {
        let a = grid_laplacian_shifted(4, 0.9);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let b = MultiVec::broadcast(&vec![1.0; a.ncols()], 3);
        let mut x = MultiVec::zeros(a.ncols(), 3);
        f.solve_multi_into(&b, &mut x);
        for c in 0..3 {
            assert!(a.residual_inf_norm(x.col(c), b.col(c)) < 1e-9);
        }
    }

    #[test]
    fn blocked_substitutions_match_serial_per_column() {
        let a = grid_laplacian_shifted(5, 0.4);
        let f = CholeskyFactor::factorize(&a, Ordering::Rcm).unwrap();
        let n = f.n();
        let cols: Vec<Vec<f64>> =
            (0..3).map(|c| (0..n).map(|i| ((i + c * 17) as f64) * 0.1 - 2.0).collect()).collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let mut block = MultiVec::from_columns(&refs).unwrap();
        lsolve_multi_in_place(f.l(), &mut block);
        ltsolve_multi_in_place(f.l(), &mut block);
        for (c, col) in cols.iter().enumerate() {
            let mut single = col.clone();
            lsolve_in_place(f.l(), &mut single);
            ltsolve_in_place(f.l(), &mut single);
            for (s, m) in single.iter().zip(block.col(c).iter()) {
                assert!((s - m).abs() == 0.0, "column {c} diverged");
            }
        }
    }

    #[test]
    fn factor_nnz_reported() {
        let a = grid_laplacian_shifted(4, 0.4);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        assert_eq!(f.nnz(), f.l().nnz());
        assert!(f.memory_bytes() > 0);
    }

    fn assert_factors_bit_identical(a: &CscMatrix, b: &CscMatrix) {
        assert_eq!(a.colptr(), b.colptr());
        assert_eq!(a.rowidx(), b.rowidx());
        assert!(
            a.values().iter().zip(b.values().iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "factor values diverged"
        );
    }

    #[test]
    fn parallel_factor_is_bit_identical_to_serial() {
        // 13×13 grid: 169 columns, above the parallel fallback threshold.
        let a = grid_laplacian_shifted(13, 0.3);
        for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
            let serial = CholeskyFactor::factorize(&a, ord).unwrap();
            for threads in [2usize, 4] {
                let par = CholeskyFactor::factorize_threads(&a, ord, threads).unwrap();
                let n = serial.n();
                assert!((0..n).all(|k| par.perm().new_to_old(k) == serial.perm().new_to_old(k)));
                assert_factors_bit_identical(par.l(), serial.l());
            }
        }
    }

    #[test]
    fn parallel_factor_small_matrix_falls_back_to_serial() {
        let a = grid_laplacian_shifted(4, 0.5);
        let serial = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let par = CholeskyFactor::factorize_threads(&a, Ordering::MinDegree, 8).unwrap();
        assert_factors_bit_identical(par.l(), serial.l());
    }

    #[test]
    fn parallel_factor_reports_serial_first_failure() {
        // A big SPD grid with one diagonal entry poisoned: every thread
        // count must report the same (serial-first) failing column.
        let a = grid_laplacian_shifted(13, 0.3);
        let n = a.ncols();
        let poison = |col: usize| {
            let mut coo = CooMatrix::new(n, n);
            for (r, c, v) in a.iter() {
                let v = if r == col && c == col { -1.0 } else { v };
                coo.push(r, c, v).unwrap();
            }
            coo.to_csc()
        };
        for bad in [3usize, n / 2, n - 2] {
            let m = poison(bad);
            let serial = CholeskyFactor::factorize(&m, Ordering::Natural);
            let serial_col = match serial {
                Err(SparseError::NotPositiveDefinite { column }) => column,
                other => panic!("expected a pivot failure, got {other:?}"),
            };
            for threads in [2usize, 4] {
                match CholeskyFactor::factorize_threads(&m, Ordering::Natural, threads) {
                    Err(SparseError::NotPositiveDefinite { column }) => {
                        assert_eq!(column, serial_col, "threads {threads}, poisoned {bad}");
                    }
                    other => panic!("expected a pivot failure, got {other:?}"),
                }
            }
        }
    }
}
