//! Sparse vectors and a dense-workspace accumulator for sparse kernels.

/// A sparse vector stored as parallel `(index, value)` arrays with strictly
/// increasing indices.
///
/// Used for the columns of the approximate inverse factor (paper's
/// Algorithm 1) and for scattering/gathering in the trace-reduction kernels.
///
/// # Example
///
/// ```
/// use tracered_sparse::sparsevec::SparseVec;
///
/// let a = SparseVec::from_entries(4, vec![(0, 1.0), (2, 3.0)]);
/// let b = SparseVec::from_entries(4, vec![(2, 2.0), (3, 5.0)]);
/// assert_eq!(a.dot(&b), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseVec {
    dim: usize,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl SparseVec {
    /// An all-zero sparse vector of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        SparseVec { dim, indices: Vec::new(), values: Vec::new() }
    }

    /// Builds a sparse vector from `(index, value)` entries.
    ///
    /// Entries are sorted and deduplicated by summation; exact zeros are
    /// dropped.
    ///
    /// # Panics
    ///
    /// Panics if any index is `>= dim`.
    pub fn from_entries(dim: usize, mut entries: Vec<(usize, f64)>) -> Self {
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut indices = Vec::with_capacity(entries.len());
        let mut values = Vec::with_capacity(entries.len());
        let mut iter = entries.into_iter().peekable();
        while let Some((i, mut v)) = iter.next() {
            assert!(i < dim, "index {i} out of bounds for dimension {dim}");
            while let Some(&(j, w)) = iter.peek() {
                if j == i {
                    v += w;
                    iter.next();
                } else {
                    break;
                }
            }
            if v != 0.0 {
                indices.push(i);
                values.push(v);
            }
        }
        SparseVec { dim, indices, values }
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Stored indices (strictly increasing).
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Iterates over `(index, value)` pairs in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.indices.iter().copied().zip(self.values.iter().copied())
    }

    /// Sparse–sparse dot product (merge join on indices).
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn dot(&self, other: &SparseVec) -> f64 {
        assert_eq!(self.dim, other.dim, "dimensions must match");
        let (mut i, mut j) = (0, 0);
        let mut acc = 0.0;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Dot product against a dense vector.
    ///
    /// # Panics
    ///
    /// Panics if `dense.len() != self.dim()`.
    pub fn dot_dense(&self, dense: &[f64]) -> f64 {
        assert_eq!(dense.len(), self.dim, "dimensions must match");
        self.iter().map(|(i, v)| v * dense[i]).sum()
    }

    /// Returns `self - other` as a new sparse vector.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn sub(&self, other: &SparseVec) -> SparseVec {
        assert_eq!(self.dim, other.dim, "dimensions must match");
        let mut entries = Vec::with_capacity(self.nnz() + other.nnz());
        entries.extend(self.iter());
        entries.extend(other.iter().map(|(i, v)| (i, -v)));
        SparseVec::from_entries(self.dim, entries)
    }

    /// Squared Euclidean norm.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum()
    }

    /// Converts to a dense vector.
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.dim];
        for (i, v) in self.iter() {
            out[i] = v;
        }
        out
    }
}

/// A dense workspace with a touched-index list, enabling O(nnz) sparse
/// accumulation without clearing the whole buffer between uses.
///
/// This is the classic SPA (sparse accumulator) pattern from sparse matrix
/// codes: `add` scatters into a dense buffer while recording first-touched
/// indices; `gather_and_clear` harvests the result and resets only the
/// touched positions.
#[derive(Debug, Clone)]
pub struct Workspace {
    dense: Vec<f64>,
    touched: Vec<usize>,
    flags: Vec<bool>,
}

impl Workspace {
    /// Creates a workspace of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Workspace { dense: vec![0.0; dim], touched: Vec::new(), flags: vec![false; dim] }
    }

    /// Dimension of the workspace.
    pub fn dim(&self) -> usize {
        self.dense.len()
    }

    /// Adds `value` at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn add(&mut self, index: usize, value: f64) {
        if !self.flags[index] {
            self.flags[index] = true;
            self.touched.push(index);
        }
        self.dense[index] += value;
    }

    /// Current value at `index` (0.0 if untouched).
    pub fn get(&self, index: usize) -> f64 {
        self.dense[index]
    }

    /// Number of touched positions.
    pub fn touched_len(&self) -> usize {
        self.touched.len()
    }

    /// Largest accumulated value (0.0 when nothing was touched).
    pub fn max_value(&self) -> f64 {
        self.touched.iter().map(|&i| self.dense[i]).fold(0.0, f64::max)
    }

    /// Harvests all touched entries with `|value| > threshold` into a
    /// [`SparseVec`], then clears the workspace for reuse.
    pub fn gather_and_clear(&mut self, threshold: f64) -> SparseVec {
        self.touched.sort_unstable();
        let mut indices = Vec::with_capacity(self.touched.len());
        let mut values = Vec::with_capacity(self.touched.len());
        for &i in &self.touched {
            let v = self.dense[i];
            if v.abs() > threshold {
                indices.push(i);
                values.push(v);
            }
            self.dense[i] = 0.0;
            self.flags[i] = false;
        }
        self.touched.clear();
        SparseVec { dim: self.dense.len(), indices, values }
    }

    /// Clears the workspace without harvesting.
    pub fn clear(&mut self) {
        for &i in &self.touched {
            self.dense[i] = 0.0;
            self.flags[i] = false;
        }
        self.touched.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_entries_sorts_dedupes_drops_zero() {
        let v = SparseVec::from_entries(5, vec![(3, 1.0), (1, 2.0), (3, -1.0), (0, 4.0)]);
        assert_eq!(v.indices(), &[0, 1]);
        assert_eq!(v.values(), &[4.0, 2.0]);
    }

    #[test]
    fn dot_merge_join() {
        let a = SparseVec::from_entries(6, vec![(0, 1.0), (2, 2.0), (5, 3.0)]);
        let b = SparseVec::from_entries(6, vec![(2, 4.0), (3, 9.0), (5, -1.0)]);
        assert_eq!(a.dot(&b), 8.0 - 3.0);
    }

    #[test]
    fn sub_and_norm() {
        let a = SparseVec::from_entries(4, vec![(0, 1.0), (1, 2.0)]);
        let b = SparseVec::from_entries(4, vec![(1, 2.0), (2, -1.0)]);
        let d = a.sub(&b);
        assert_eq!(d.indices(), &[0, 2]);
        assert_eq!(d.values(), &[1.0, 1.0]);
        assert_eq!(d.norm_sq(), 2.0);
    }

    #[test]
    fn dense_roundtrip() {
        let a = SparseVec::from_entries(4, vec![(1, 5.0), (3, -2.0)]);
        assert_eq!(a.to_dense(), vec![0.0, 5.0, 0.0, -2.0]);
        assert_eq!(a.dot_dense(&[1.0, 1.0, 1.0, 1.0]), 3.0);
    }

    #[test]
    fn workspace_accumulates_and_clears() {
        let mut w = Workspace::new(5);
        w.add(3, 1.0);
        w.add(1, 2.0);
        w.add(3, 0.5);
        assert_eq!(w.touched_len(), 2);
        assert_eq!(w.max_value(), 2.0);
        let v = w.gather_and_clear(0.0);
        assert_eq!(v.indices(), &[1, 3]);
        assert_eq!(v.values(), &[2.0, 1.5]);
        // Reusable after clear.
        assert_eq!(w.touched_len(), 0);
        w.add(0, 7.0);
        let v2 = w.gather_and_clear(0.0);
        assert_eq!(v2.indices(), &[0]);
    }

    #[test]
    fn workspace_threshold_prunes() {
        let mut w = Workspace::new(4);
        w.add(0, 1.0);
        w.add(1, 0.001);
        let v = w.gather_and_clear(0.01);
        assert_eq!(v.indices(), &[0]);
        // Pruned position must still be reset.
        w.add(1, 0.0);
        assert_eq!(w.get(1), 0.0);
    }
}
