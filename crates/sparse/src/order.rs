//! Fill-reducing orderings for sparse Cholesky factorization.
//!
//! Two orderings are implemented from scratch:
//!
//! - **Reverse Cuthill–McKee** ([`rcm`]): a bandwidth-reducing BFS ordering,
//!   good for mesh-like matrices;
//! - **Minimum degree** ([`min_degree`]): a greedy fill-reducing ordering
//!   (the classic algorithm without supernode/indistinguishable-node
//!   refinements), standing in for CHOLMOD's AMD. On the ultra-sparse
//!   tree-plus-a-few-edges systems this workspace factorizes, it produces
//!   near-optimal fill.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::perm::Permutation;

/// Choice of fill-reducing ordering used before factorization.
///
/// Deliberately **not** `#[non_exhaustive]`: downstream config
/// fingerprints match on this exhaustively so that adding an ordering is
/// a compile error at every tag site instead of a silent cache collision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Ordering {
    /// Keep the natural (input) order.
    Natural,
    /// Reverse Cuthill–McKee.
    Rcm,
    /// Greedy minimum-degree (default; best fill on sparsifier Laplacians).
    #[default]
    MinDegree,
    /// Level-set nested dissection — asymptotically optimal fill on 2-D/3-D
    /// meshes, where greedy minimum degree falls behind (this is where the
    /// "Direct" baselines of the paper's Tables 2–3 get their factor from).
    NestedDissection,
}

impl Ordering {
    /// Computes the permutation for a square symmetric matrix `a` (the full
    /// matrix, not a triangle; only the pattern is used).
    ///
    /// Every fill-reducing ordering is refined by
    /// [`etree_postorder_refine`] before being returned — the composition
    /// CHOLMOD applies after AMD. [`Ordering::Natural`] is exempt: its
    /// contract is "keep the input order" verbatim.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] for rectangular inputs.
    pub fn compute(self, a: &CscMatrix) -> Result<Permutation, SparseError> {
        if a.nrows() != a.ncols() {
            return Err(SparseError::NotSquare { nrows: a.nrows(), ncols: a.ncols() });
        }
        let base = match self {
            Ordering::Natural => return Ok(Permutation::identity(a.ncols())),
            Ordering::Rcm => rcm(a),
            Ordering::MinDegree => min_degree(a),
            Ordering::NestedDissection => nested_dissection(a),
        };
        etree_postorder_refine(a, base)
    }
}

/// Refines a fill-reducing permutation by composing the depth-first
/// postorder of the permuted matrix's elimination tree into it — the
/// AMD-then-postorder composition CHOLMOD performs during analysis.
///
/// Relabeling the columns along any topological order of the elimination
/// tree leaves the factor's fill and flop counts exactly unchanged (Liu's
/// equivalent-reordering result); what it buys is *contiguity*: after the
/// postorder, every single-child chain of the etree occupies consecutive
/// column numbers. That contiguity is what the supernodal kernel's
/// fundamental-supernode detection (`parent[j-1] == j` with nested
/// patterns) keys on — without it a greedy min-degree order scatters chain
/// columns and the partition degenerates to width-1 panels.
///
/// Returns the input permutation unchanged when the etree is already in
/// postorder (always the case for a second application, so the refinement
/// is idempotent).
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular inputs.
pub fn etree_postorder_refine(
    a: &CscMatrix,
    perm: Permutation,
) -> Result<Permutation, SparseError> {
    let upper = a.symmetric_perm_upper(&perm)?;
    let parent = crate::etree::elimination_tree(&upper);
    let post = crate::etree::postorder(&parent);
    if post.iter().enumerate().all(|(k, &v)| k == v) {
        return Ok(perm);
    }
    let post_perm = Permutation::from_vec(post).expect("postorder is a bijection");
    // Final position k takes permuted column post[k], i.e. original column
    // perm.new_to_old(post[k]).
    Ok(post_perm.compose(&perm))
}

/// Builds an off-diagonal adjacency list from the pattern of a symmetric
/// CSC matrix.
fn adjacency(a: &CscMatrix) -> Vec<Vec<usize>> {
    let n = a.ncols();
    let mut adj = vec![Vec::new(); n];
    for c in 0..n {
        let (rows, _) = a.col(c);
        for &r in rows {
            if r != c {
                adj[c].push(r);
            }
        }
    }
    adj
}

/// Finds a pseudo-peripheral vertex of the component containing `start`
/// by repeated BFS to the farthest level.
fn pseudo_peripheral(
    adj: &[Vec<usize>],
    start: usize,
    scratch: &mut [usize],
    round: usize,
) -> usize {
    let mut node = start;
    let mut last_ecc = 0usize;
    loop {
        // BFS from `node`, tracking eccentricity and the last low-degree
        // vertex in the final level.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back((node, 0usize));
        scratch[node] = round;
        let mut far_node = node;
        let mut far_dist = 0usize;
        while let Some((v, d)) = queue.pop_front() {
            if d > far_dist || (d == far_dist && adj[v].len() < adj[far_node].len()) {
                far_dist = d;
                far_node = v;
            }
            for &u in &adj[v] {
                if scratch[u] != round {
                    scratch[u] = round;
                    queue.push_back((u, d + 1));
                }
            }
        }
        if far_dist <= last_ecc {
            return node;
        }
        last_ecc = far_dist;
        node = far_node;
        // Reset marks for the next sweep by bumping the round is handled by
        // caller passing distinct rounds; here we reuse the same round, so
        // clear the component marks.
        // (Cheap: re-BFS the component.)
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(node);
        let mut comp = vec![node];
        // marks are all == round in this component; flip them back.
        scratch[node] = round - 1;
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if scratch[u] == round {
                    scratch[u] = round - 1;
                    queue.push_back(u);
                    comp.push(u);
                }
            }
        }
        let _ = comp;
    }
}

/// Reverse Cuthill–McKee ordering.
///
/// Handles disconnected matrices by ordering each connected component from
/// a pseudo-peripheral start vertex.
pub fn rcm(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let adj = adjacency(a);
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut scratch = vec![0usize; n];
    let mut round = 2usize;
    let mut neighbors = Vec::new();
    for s in 0..n {
        if visited[s] {
            continue;
        }
        let start = pseudo_peripheral(&adj, s, &mut scratch, round);
        round += 2;
        // Cuthill–McKee BFS with neighbors sorted by degree.
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        visited[start] = true;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            neighbors.clear();
            neighbors.extend(adj[v].iter().copied().filter(|&u| !visited[u]));
            neighbors.sort_unstable_by_key(|&u| adj[u].len());
            for &u in &neighbors {
                visited[u] = true;
                queue.push_back(u);
            }
        }
    }
    order.reverse();
    Permutation::from_vec(order).expect("RCM visits every vertex exactly once")
}

/// Greedy minimum-degree ordering.
///
/// Eliminates, at each step, a vertex of minimum degree in the current
/// *elimination graph* (the graph updated with clique fill between the
/// eliminated vertex's neighbours). Uses sorted adjacency vectors and a
/// lazy-deletion binary heap.
///
/// Vertices whose elimination-graph degree exceeds an AMD-style *dense
/// cutoff* are deferred and numbered last as a dense block: on 3-D meshes
/// the late elimination graph develops huge cliques whose explicit merges
/// would make the ordering itself quadratic.
pub fn min_degree(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let mut adj = adjacency(a);
    for list in adj.iter_mut() {
        list.sort_unstable();
        list.dedup();
    }
    // AMD-flavoured dense-row threshold: a multiple of the average degree
    // with a sqrt(n) floor.
    let avg_degree = if n == 0 { 0.0 } else { a.nnz() as f64 / n as f64 };
    let dense_cutoff = ((16.0 * avg_degree).max(4.0 * (n as f64).sqrt()).max(16.0) as usize).min(n);
    let mut eliminated = vec![false; n];
    let mut heap: BinaryHeap<Reverse<(usize, usize)>> = BinaryHeap::with_capacity(n * 2);
    for (v, list) in adj.iter().enumerate() {
        heap.push(Reverse((list.len(), v)));
    }
    let mut order = Vec::with_capacity(n);
    let mut deferred = Vec::new();
    let mut scratch: Vec<usize> = Vec::new();
    while let Some(Reverse((deg, v))) = heap.pop() {
        if eliminated[v] || adj[v].len() != deg {
            continue; // stale heap entry
        }
        eliminated[v] = true;
        if deg > dense_cutoff {
            // Dense row: exclude from further updates, number it last.
            deferred.push(v);
            adj[v] = Vec::new();
            continue;
        }
        order.push(v);
        // Active neighbours of v.
        let nv: Vec<usize> = adj[v].iter().copied().filter(|&u| !eliminated[u]).collect();
        // Form the clique on nv: for each u in nv, new adjacency is
        // (adj[u] \ {v, eliminated}) ∪ (nv \ {u}).
        for &u in &nv {
            scratch.clear();
            // Merge the two sorted lists, dropping v, u and eliminated nodes.
            let (aa, bb) = (&adj[u], &nv);
            let (mut i, mut j) = (0usize, 0usize);
            while i < aa.len() || j < bb.len() {
                let pick_a = if i >= aa.len() {
                    false
                } else if j >= bb.len() {
                    true
                } else {
                    aa[i] <= bb[j]
                };
                let x = if pick_a {
                    if j < bb.len() && aa[i] == bb[j] {
                        j += 1;
                    }
                    let x = aa[i];
                    i += 1;
                    x
                } else {
                    let x = bb[j];
                    j += 1;
                    x
                };
                if x != u && x != v && !eliminated[x] {
                    scratch.push(x);
                }
            }
            scratch.dedup();
            std::mem::swap(&mut adj[u], &mut scratch);
            heap.push(Reverse((adj[u].len(), u)));
        }
        adj[v] = Vec::new(); // release memory of the eliminated vertex
    }
    order.extend(deferred);
    Permutation::from_vec(order).expect("min-degree eliminates every vertex exactly once")
}

/// Picks the candidate ordering with the smallest *symbolic* factor fill
/// (nonzeros of `L`), the cheap analysis CHOLMOD performs when choosing
/// between AMD and nested dissection. Returns the winning ordering, its
/// permutation and the predicted `nnz(L)`.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular inputs.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn select_ordering(
    a: &CscMatrix,
    candidates: &[Ordering],
) -> Result<(Ordering, Permutation, usize), SparseError> {
    assert!(!candidates.is_empty(), "at least one candidate ordering is required");
    let mut best: Option<(Ordering, Permutation, usize)> = None;
    for &ord in candidates {
        let perm = ord.compute(a)?;
        let upper = a.symmetric_perm_upper(&perm)?;
        let parent = crate::etree::elimination_tree(&upper);
        let fill: usize = crate::etree::column_counts(&upper, &parent).iter().sum();
        if best.as_ref().map(|b| fill < b.2).unwrap_or(true) {
            best = Some((ord, perm, fill));
        }
    }
    Ok(best.expect("candidates is non-empty"))
}

/// Level-set nested dissection.
///
/// Recursively bisects each connected piece through a BFS level-set
/// separator: run BFS from a pseudo-peripheral vertex, pick the level that
/// splits the piece into halves, order both halves recursively and number
/// the separator *last*. Leaves (≤ 48 vertices) are ordered by degree.
/// `O(n log n)` time on bounded-degree graphs.
pub fn nested_dissection(a: &CscMatrix) -> Permutation {
    let n = a.ncols();
    let adj = adjacency(a);
    let mut order = Vec::with_capacity(n);
    let mut level = vec![usize::MAX; n];
    let mut stamp = vec![0u64; n];
    let mut round = 0u64;
    // Work stack: subsets still to dissect, plus separators to emit after
    // both of their halves have been ordered.
    enum Item {
        Dissect(Vec<usize>),
        Emit(Vec<usize>),
    }
    let mut stack: Vec<Item> = vec![Item::Dissect((0..n).collect())];
    while let Some(item) = stack.pop() {
        let nodes = match item {
            Item::Emit(sep) => {
                order.extend(sep);
                continue;
            }
            Item::Dissect(nodes) => nodes,
        };
        if nodes.is_empty() {
            continue;
        }
        if nodes.len() <= 48 {
            let mut leaf = nodes;
            leaf.sort_unstable_by_key(|&v| (adj[v].len(), v));
            order.extend(leaf);
            continue;
        }
        // BFS within the subset from the first node; splits off one
        // connected component at a time.
        round += 1;
        for &v in &nodes {
            stamp[v] = round;
        }
        let start = nodes[0];
        let mut queue = std::collections::VecDeque::new();
        queue.push_back(start);
        level[start] = 0;
        let mut component = vec![start];
        let mut max_level = 0usize;
        // Mark visited by bumping stamp to round + <big offset>? Use a
        // second marker value: level != MAX within this round. Reset below.
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if stamp[u] == round && level[u] == usize::MAX {
                    level[u] = level[v] + 1;
                    max_level = max_level.max(level[u]);
                    component.push(u);
                    queue.push_back(u);
                }
            }
        }
        if component.len() < nodes.len() {
            // Disconnected subset: handle this component, requeue the rest.
            let rest: Vec<usize> =
                nodes.iter().copied().filter(|&v| level[v] == usize::MAX).collect();
            stack.push(Item::Dissect(rest));
        }
        if max_level < 2 {
            // Too shallow to split usefully; emit by degree.
            let mut leaf = component.clone();
            leaf.sort_unstable_by_key(|&v| (adj[v].len(), v));
            order.extend(leaf);
            for v in component {
                level[v] = usize::MAX;
            }
            continue;
        }
        // Choose the separator level whose below-count is closest to half.
        let mut counts = vec![0usize; max_level + 1];
        for &v in &component {
            counts[level[v]] += 1;
        }
        let half = component.len() as i64 / 2;
        let mut below = 0i64;
        let mut best = (i64::MAX, 1usize);
        for l in 1..max_level {
            below += counts[l - 1] as i64;
            let imbalance = (below - half).abs();
            if imbalance < best.0 {
                best = (imbalance, l);
            }
        }
        let sep_level = best.1;
        let mut left = Vec::new();
        let mut right = Vec::new();
        let mut sep = Vec::new();
        for &v in &component {
            match level[v].cmp(&sep_level) {
                std::cmp::Ordering::Less => left.push(v),
                std::cmp::Ordering::Equal => sep.push(v),
                std::cmp::Ordering::Greater => right.push(v),
            }
            // Reset for future rounds.
        }
        for &v in &component {
            level[v] = usize::MAX;
        }
        if left.is_empty() || right.is_empty() {
            let mut leaf = component;
            leaf.sort_unstable_by_key(|&v| (adj[v].len(), v));
            order.extend(leaf);
            continue;
        }
        // Separator is numbered last: push Emit first (LIFO).
        stack.push(Item::Emit(sep));
        stack.push(Item::Dissect(right));
        stack.push(Item::Dissect(left));
    }
    Permutation::from_vec(order).expect("nested dissection orders every vertex exactly once")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coo::CooMatrix;

    fn path_laplacian(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        coo.to_csc()
    }

    fn star(n: usize) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            coo.push(i, i, 4.0).unwrap();
        }
        for i in 1..n {
            coo.push_symmetric(0, i, -1.0).unwrap();
        }
        coo.to_csc()
    }

    fn grid2d(k: usize) -> CscMatrix {
        let n = k * k;
        let mut coo = CooMatrix::new(n, n);
        let id = |r: usize, c: usize| r * k + c;
        for r in 0..k {
            for c in 0..k {
                coo.push(id(r, c), id(r, c), 4.0).unwrap();
                if c + 1 < k {
                    coo.push_symmetric(id(r, c), id(r, c + 1), -1.0).unwrap();
                }
                if r + 1 < k {
                    coo.push_symmetric(id(r, c), id(r + 1, c), -1.0).unwrap();
                }
            }
        }
        coo.to_csc()
    }

    fn fill_of(a: &CscMatrix, perm: &Permutation) -> usize {
        let upper = a.symmetric_perm_upper(perm).unwrap();
        let parent = crate::etree::elimination_tree(&upper);
        crate::etree::column_counts(&upper, &parent).iter().sum()
    }

    #[test]
    fn orderings_are_permutations() {
        for a in [path_laplacian(10), star(10), grid2d(5)] {
            for ord in [Ordering::Natural, Ordering::Rcm, Ordering::MinDegree] {
                let p = ord.compute(&a).unwrap();
                assert_eq!(p.len(), a.ncols());
            }
        }
    }

    #[test]
    fn min_degree_star_eliminates_hub_last() {
        // Natural order on a star with the hub first gives dense fill;
        // min-degree must eliminate leaves first (zero fill).
        let a = star(20);
        let p = min_degree(&a);
        // The hub must survive until its degree drops to that of a leaf,
        // i.e. be one of the last two vertices eliminated.
        assert!(
            p.new_to_old(19) == 0 || p.new_to_old(18) == 0,
            "hub must be eliminated among the last two"
        );
        assert_eq!(fill_of(&a, &p), 2 * 20 - 1, "star under min-degree has zero fill-in");
    }

    #[test]
    fn min_degree_beats_natural_on_grid() {
        let a = grid2d(8);
        let natural = fill_of(&a, &Permutation::identity(64));
        let md = fill_of(&a, &min_degree(&a));
        assert!(md <= natural, "min-degree fill {md} must not exceed natural {natural}");
    }

    #[test]
    fn rcm_reduces_bandwidth_fill_on_grid() {
        let a = grid2d(8);
        let natural = fill_of(&a, &Permutation::identity(64));
        let r = fill_of(&a, &rcm(&a));
        // RCM should not be catastrophically worse than natural on a grid.
        assert!(r <= natural * 2);
    }

    #[test]
    fn nested_dissection_is_a_permutation() {
        for a in [path_laplacian(200), star(50), grid2d(13)] {
            let p = nested_dissection(&a);
            assert_eq!(p.len(), a.ncols());
        }
    }

    #[test]
    fn nested_dissection_beats_natural_on_grids() {
        let a = grid2d(20);
        let natural = fill_of(&a, &Permutation::identity(400));
        let nd = fill_of(&a, &nested_dissection(&a));
        assert!(nd < natural, "ND fill {nd} must beat natural {natural}");
    }

    #[test]
    fn nested_dissection_competitive_with_min_degree_on_grids() {
        let a = grid2d(24);
        let md = fill_of(&a, &min_degree(&a));
        let nd = fill_of(&a, &nested_dissection(&a));
        // On regular 2-D grids the two should be within a small factor.
        assert!(nd <= 2 * md, "ND fill {nd} vs min-degree {md}");
    }

    #[test]
    fn nested_dissection_handles_disconnected_graphs() {
        let mut coo = CooMatrix::new(120, 120);
        for i in 0..120 {
            coo.push(i, i, 2.0).unwrap();
        }
        for i in 0..59 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        for i in 60..119 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
        }
        let a = coo.to_csc();
        let p = nested_dissection(&a);
        assert_eq!(p.len(), 120);
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint paths.
        let mut coo = CooMatrix::new(6, 6);
        for i in 0..6 {
            coo.push(i, i, 2.0).unwrap();
        }
        coo.push_symmetric(0, 1, -1.0).unwrap();
        coo.push_symmetric(1, 2, -1.0).unwrap();
        coo.push_symmetric(3, 4, -1.0).unwrap();
        coo.push_symmetric(4, 5, -1.0).unwrap();
        let a = coo.to_csc();
        for ord in [Ordering::Rcm, Ordering::MinDegree] {
            let p = ord.compute(&a).unwrap();
            assert_eq!(p.len(), 6);
        }
    }

    #[test]
    fn rejects_rectangular() {
        let a = CscMatrix::zeros(2, 3);
        assert!(matches!(Ordering::MinDegree.compute(&a), Err(SparseError::NotSquare { .. })));
    }

    #[test]
    fn compute_postorders_the_elimination_tree() {
        use crate::etree;
        let a = grid2d(12);
        for ord in [Ordering::Rcm, Ordering::MinDegree, Ordering::NestedDissection] {
            let p = ord.compute(&a).unwrap();
            let upper = a.symmetric_perm_upper(&p).unwrap();
            let parent = etree::elimination_tree(&upper);
            let post = etree::postorder(&parent);
            assert!(
                post.iter().enumerate().all(|(k, &v)| k == v),
                "{ord:?}: etree of the computed ordering must already be postordered"
            );
        }
    }

    #[test]
    fn postorder_refinement_is_fill_neutral_and_idempotent() {
        let a = grid2d(12);
        let raw = min_degree(&a);
        let refined = etree_postorder_refine(&a, raw.clone()).unwrap();
        assert_eq!(fill_of(&a, &raw), fill_of(&a, &refined), "relabeling must not change fill");
        let twice = etree_postorder_refine(&a, refined.clone()).unwrap();
        assert_eq!(twice, refined, "second application must be the identity");
    }

    #[test]
    fn path_min_degree_zero_fill() {
        let a = path_laplacian(16);
        let p = min_degree(&a);
        assert_eq!(fill_of(&a, &p), 2 * 16 - 1, "paths factor with zero fill under min-degree");
    }
}
