//! Permutations of `0..n`, used to express fill-reducing orderings.

use crate::error::SparseError;

/// A permutation of `0..n`.
///
/// The convention follows CSparse: `perm[k] = i` means that row/column `i`
/// of the original matrix becomes row/column `k` of the permuted matrix
/// (`perm` maps *new* positions to *old* indices).
///
/// # Example
///
/// ```
/// use tracered_sparse::Permutation;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let p = Permutation::from_vec(vec![2, 0, 1])?;
/// assert_eq!(p.new_to_old(0), 2);
/// assert_eq!(p.old_to_new(2), 0);
/// assert_eq!(p.inverse().new_to_old(2), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Permutation {
    new_to_old: Vec<usize>,
    old_to_new: Vec<usize>,
}

impl Permutation {
    /// The identity permutation on `0..n`.
    pub fn identity(n: usize) -> Self {
        let v: Vec<usize> = (0..n).collect();
        Permutation { new_to_old: v.clone(), old_to_new: v }
    }

    /// Builds a permutation from a new-to-old map.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidPermutation`] if `new_to_old` is not a
    /// bijection on `0..n`.
    pub fn from_vec(new_to_old: Vec<usize>) -> Result<Self, SparseError> {
        let n = new_to_old.len();
        let mut old_to_new = vec![usize::MAX; n];
        for (newi, &oldi) in new_to_old.iter().enumerate() {
            if oldi >= n || old_to_new[oldi] != usize::MAX {
                return Err(SparseError::InvalidPermutation);
            }
            old_to_new[oldi] = newi;
        }
        Ok(Permutation { new_to_old, old_to_new })
    }

    /// Number of elements being permuted.
    pub fn len(&self) -> usize {
        self.new_to_old.len()
    }

    /// Returns `true` for the empty permutation.
    pub fn is_empty(&self) -> bool {
        self.new_to_old.is_empty()
    }

    /// Original index of the element at new position `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn new_to_old(&self, k: usize) -> usize {
        self.new_to_old[k]
    }

    /// New position of the element with original index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn old_to_new(&self, i: usize) -> usize {
        self.old_to_new[i]
    }

    /// The new-to-old map as a slice.
    pub fn as_new_to_old(&self) -> &[usize] {
        &self.new_to_old
    }

    /// The old-to-new map as a slice.
    pub fn as_old_to_new(&self) -> &[usize] {
        &self.old_to_new
    }

    /// Returns the inverse permutation.
    pub fn inverse(&self) -> Permutation {
        Permutation { new_to_old: self.old_to_new.clone(), old_to_new: self.new_to_old.clone() }
    }

    /// Applies the permutation to a dense vector: `out[k] = v[new_to_old(k)]`.
    ///
    /// In other words, `out` is `v` expressed in the *new* index space.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "vector length must match permutation size");
        self.new_to_old.iter().map(|&i| v[i]).collect()
    }

    /// Applies the inverse permutation to a dense vector:
    /// `out[new_to_old(k)] = v[k]`, mapping a vector from the new index
    /// space back to the original one.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.len()`.
    pub fn apply_inverse(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.len(), "vector length must match permutation size");
        let mut out = vec![0.0; v.len()];
        for (k, &i) in self.new_to_old.iter().enumerate() {
            out[i] = v[k];
        }
        out
    }

    /// Composes two permutations: applying `self` after `other`.
    ///
    /// The result maps new position `k` to `other.new_to_old(self.new_to_old(k))`.
    ///
    /// # Panics
    ///
    /// Panics if the permutations have different lengths.
    pub fn compose(&self, other: &Permutation) -> Permutation {
        assert_eq!(self.len(), other.len(), "permutation lengths must match");
        let new_to_old: Vec<usize> =
            (0..self.len()).map(|k| other.new_to_old(self.new_to_old(k))).collect();
        Permutation::from_vec(new_to_old).expect("composition of bijections is a bijection")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrip() {
        let p = Permutation::identity(5);
        for i in 0..5 {
            assert_eq!(p.new_to_old(i), i);
            assert_eq!(p.old_to_new(i), i);
        }
    }

    #[test]
    fn from_vec_rejects_non_bijection() {
        assert_eq!(Permutation::from_vec(vec![0, 0, 1]), Err(SparseError::InvalidPermutation));
        assert_eq!(Permutation::from_vec(vec![0, 3]), Err(SparseError::InvalidPermutation));
    }

    #[test]
    fn apply_and_inverse_roundtrip() {
        let p = Permutation::from_vec(vec![2, 0, 3, 1]).unwrap();
        let v = vec![10.0, 11.0, 12.0, 13.0];
        let w = p.apply(&v);
        assert_eq!(w, vec![12.0, 10.0, 13.0, 11.0]);
        assert_eq!(p.apply_inverse(&w), v);
    }

    #[test]
    fn inverse_is_involution() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        assert_eq!(p.inverse().inverse(), p);
    }

    #[test]
    fn compose_with_inverse_is_identity() {
        let p = Permutation::from_vec(vec![3, 1, 0, 2]).unwrap();
        let id = p.compose(&p.inverse());
        assert_eq!(id, Permutation::identity(4));
    }
}
