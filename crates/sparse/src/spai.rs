//! Sparse approximate inverse of a Cholesky factor — **Algorithm 1** of
//! Liu & Yu, DAC 2022.
//!
//! Let `Z = L⁻¹ = [z₁ … zₙ]`. The paper's two structural observations
//! (Propositions 1–2) are:
//!
//! 1. for an SDD matrix, `L` has positive diagonal and non-positive
//!    off-diagonal entries, hence `Z` is lower triangular with
//!    **non-negative** entries;
//! 2. the columns obey the recurrence
//!    `z_j = (1/L_jj)·e_j + Σ_{i>j, L_ij≠0} (−L_ij/L_jj)·z_i`.
//!
//! Processing columns back to front and *pruning* each computed column to
//! its dominant entries yields a sparse `Z̃ ≈ L⁻¹` with `O(n log n)`
//! nonzeros in practice (δ = 0.1), while the recurrence keeps the error
//! bounded: `‖z̃_j − z_j‖ ≤ ε` propagates because the coefficient sum
//! `Σ −L_ij/L_jj ≤ 1` for SDD matrices (paper Eq. 19).

use crate::csc::CscMatrix;
use crate::error::SparseError;
use crate::sparsevec::{SparseVec, Workspace};

/// Options for the approximate-inverse construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpaiOptions {
    /// Relative pruning threshold δ: entries below `δ · max(z*_j)` are
    /// dropped. The paper uses `0.1`.
    pub threshold: f64,
    /// Columns with at most this many nonzeros are kept unpruned. The
    /// paper uses `log n`; `None` selects that default.
    pub keep_small: Option<usize>,
}

impl Default for SpaiOptions {
    fn default() -> Self {
        SpaiOptions { threshold: 0.1, keep_small: None }
    }
}

impl SpaiOptions {
    /// Creates options with the given pruning threshold and the paper's
    /// `log n` small-column exemption.
    pub fn with_threshold(threshold: f64) -> Self {
        SpaiOptions { threshold, ..Default::default() }
    }
}

/// A sparse approximation `Z̃ ≈ L⁻¹` to the inverse of a lower-triangular
/// Cholesky factor, stored column-wise.
///
/// Indices live in the same (permuted) space as the factor itself; callers
/// that work with original node ids must map through the factor's
/// permutation.
///
/// # Example
///
/// ```
/// use tracered_sparse::{CooMatrix, CholeskyFactor, ApproxInverse, SpaiOptions};
/// use tracered_sparse::order::Ordering;
///
/// # fn main() -> Result<(), tracered_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0)?; coo.push(1, 1, 2.0)?;
/// coo.push_symmetric(0, 1, -1.0)?;
/// let a = coo.to_csc().add_diagonal(&[0.1, 0.1])?;
/// let f = CholeskyFactor::factorize(&a, Ordering::Natural)?;
/// let z = ApproxInverse::build(f.l(), SpaiOptions::default())?;
/// assert_eq!(z.n(), 2);
/// assert!(z.nnz() >= 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ApproxInverse {
    columns: Vec<SparseVec>,
}

impl ApproxInverse {
    /// Runs Algorithm 1 on a lower-triangular factor `l` whose diagonal is
    /// the first entry of every column (the layout produced by
    /// [`crate::CholeskyFactor`]).
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if `l` is rectangular, and
    /// [`SparseError::InvalidValue`] if the threshold is negative or not
    /// finite or a diagonal entry is not positive.
    pub fn build(l: &CscMatrix, options: SpaiOptions) -> Result<Self, SparseError> {
        if l.nrows() != l.ncols() {
            return Err(SparseError::NotSquare { nrows: l.nrows(), ncols: l.ncols() });
        }
        if !options.threshold.is_finite() || options.threshold < 0.0 {
            return Err(SparseError::InvalidValue {
                what: format!("pruning threshold {} must be finite and >= 0", options.threshold),
            });
        }
        let n = l.ncols();
        let keep_small =
            options.keep_small.unwrap_or_else(|| (n.max(2) as f64).ln().ceil() as usize);
        let mut columns = vec![SparseVec::zeros(n); n];
        let mut work = Workspace::new(n);
        for j in (0..n).rev() {
            let (rows, vals) = l.col(j);
            if rows.is_empty() || rows[0] != j {
                return Err(SparseError::InvalidFormat {
                    what: format!("column {j} of L does not start with its diagonal"),
                });
            }
            let ljj = vals[0];
            if ljj <= 0.0 || !ljj.is_finite() {
                return Err(SparseError::InvalidValue {
                    what: format!("non-positive diagonal {ljj} in column {j}"),
                });
            }
            // z*_j = (1/L_jj) e_j + Σ_{i>j} (−L_ij/L_jj) z̃_i
            work.add(j, 1.0 / ljj);
            for (&i, &lij) in rows.iter().zip(vals.iter()).skip(1) {
                let coef = -lij / ljj;
                if coef == 0.0 {
                    continue;
                }
                for (r, v) in columns[i].iter() {
                    work.add(r, coef * v);
                }
            }
            // Prune: keep everything when the column is small, otherwise
            // drop entries below δ·max.
            let cutoff = if work.touched_len() <= keep_small {
                0.0
            } else {
                options.threshold * work.max_value()
            };
            columns[j] = work.gather_and_clear(cutoff);
        }
        Ok(ApproxInverse { columns })
    }

    /// Dimension `n`.
    pub fn n(&self) -> usize {
        self.columns.len()
    }

    /// Total number of stored nonzeros across all columns.
    pub fn nnz(&self) -> usize {
        self.columns.iter().map(SparseVec::nnz).sum()
    }

    /// Column `j` of `Z̃` (an approximation to `L⁻¹ e_j`).
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.n()`.
    pub fn column(&self, j: usize) -> &SparseVec {
        &self.columns[j]
    }

    /// The column difference `z̃_p − z̃_q`, the building block of the
    /// paper's Eq. 20 (`z̃_{p,q}` in its notation).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn column_diff(&self, p: usize, q: usize) -> SparseVec {
        self.columns[p].sub(&self.columns[q])
    }

    /// Estimated memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.nnz() * (std::mem::size_of::<usize>() + std::mem::size_of::<f64>())
    }

    /// Converts to a CSC matrix (mainly for inspection and tests).
    pub fn to_csc(&self) -> CscMatrix {
        let n = self.n();
        let mut colptr = vec![0usize; n + 1];
        let mut rowidx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        for (j, col) in self.columns.iter().enumerate() {
            for (i, v) in col.iter() {
                rowidx.push(i);
                values.push(v);
            }
            colptr[j + 1] = rowidx.len();
        }
        CscMatrix::from_raw_parts(n, n, colptr, rowidx, values)
            .expect("sparse columns with sorted indices form a valid CSC matrix")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chol::CholeskyFactor;
    use crate::coo::CooMatrix;
    use crate::order::Ordering;

    /// Shifted Laplacian of a path graph: the canonical SDD test matrix.
    fn path_sdd(n: usize, shift: f64) -> CscMatrix {
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n - 1 {
            coo.push_symmetric(i, i + 1, -1.0).unwrap();
            coo.push(i, i, 1.0).unwrap();
            coo.push(i + 1, i + 1, 1.0).unwrap();
        }
        let base = coo.to_csc();
        base.add_diagonal(&vec![shift; n]).unwrap()
    }

    #[test]
    fn zero_threshold_reproduces_exact_inverse() {
        let a = path_sdd(8, 0.5);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let z = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        let ld = f.l().to_dense();
        let zinv = ld.matmul(&z.to_csc().to_dense());
        // L · Z must be the identity.
        for r in 0..8 {
            for c in 0..8 {
                let expect = if r == c { 1.0 } else { 0.0 };
                assert!(
                    (zinv[(r, c)] - expect).abs() < 1e-10,
                    "L·Z mismatch at ({r},{c}): {}",
                    zinv[(r, c)]
                );
            }
        }
    }

    #[test]
    fn entries_are_nonnegative_and_lower_triangular() {
        let a = path_sdd(12, 0.3);
        let f = CholeskyFactor::factorize(&a, Ordering::MinDegree).unwrap();
        let z = ApproxInverse::build(f.l(), SpaiOptions::default()).unwrap();
        for j in 0..z.n() {
            for (i, v) in z.column(j).iter() {
                assert!(i >= j, "Z must be lower triangular");
                assert!(v >= 0.0, "Z entries must be non-negative (Proposition 1)");
            }
        }
    }

    #[test]
    fn pruning_reduces_nnz_monotonically() {
        let a = path_sdd(40, 0.05);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let exact = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        let coarse = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.3)).unwrap();
        let fine = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.05)).unwrap();
        assert!(coarse.nnz() <= fine.nnz());
        assert!(fine.nnz() <= exact.nnz());
    }

    #[test]
    fn column_error_is_small_for_moderate_threshold() {
        let a = path_sdd(30, 0.5);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let exact = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        let approx = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.1)).unwrap();
        for j in 0..30 {
            let d = exact.column(j).sub(approx.column(j));
            let rel = d.norm_sq().sqrt() / exact.column(j).norm_sq().sqrt();
            assert!(rel < 0.3, "column {j} relative error {rel}");
        }
    }

    #[test]
    fn column_diff_matches_manual_subtraction() {
        let a = path_sdd(10, 0.4);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let z = ApproxInverse::build(f.l(), SpaiOptions::default()).unwrap();
        let d = z.column_diff(7, 3);
        let manual = z.column(7).sub(z.column(3));
        assert_eq!(d, manual);
    }

    #[test]
    fn rejects_bad_threshold() {
        let a = path_sdd(4, 0.4);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        assert!(ApproxInverse::build(f.l(), SpaiOptions::with_threshold(-1.0)).is_err());
        assert!(ApproxInverse::build(f.l(), SpaiOptions::with_threshold(f64::NAN)).is_err());
    }

    #[test]
    fn rejects_rectangular() {
        let l = CscMatrix::zeros(2, 3);
        assert!(ApproxInverse::build(&l, SpaiOptions::default()).is_err());
    }

    #[test]
    fn keep_small_override_keeps_columns_dense() {
        let a = path_sdd(16, 0.01);
        let f = CholeskyFactor::factorize(&a, Ordering::Natural).unwrap();
        let opts = SpaiOptions { threshold: 0.9, keep_small: Some(16) };
        let z = ApproxInverse::build(f.l(), opts).unwrap();
        // With keep_small = n no pruning ever happens: Z̃ is exact.
        let exact = ApproxInverse::build(f.l(), SpaiOptions::with_threshold(0.0)).unwrap();
        assert_eq!(z.nnz(), exact.nnz());
    }
}
